"""Integration tests: end-to-end training on the synthetic datasets."""

import numpy as np
import pytest

from repro.core import ParallelExecutor
from repro.zoo import build_solver


class TestLeNetTraining:
    def test_loss_decreases(self):
        solver = build_solver("lenet", max_iter=25)
        solver.step(25)
        history = solver.loss_history
        assert np.mean(history[-5:]) < np.mean(history[:5]) * 0.5

    def test_accuracy_beats_chance(self):
        solver = build_solver("lenet", max_iter=40, with_test_net=True)
        solver.step(40)
        accuracy = solver.test()
        assert accuracy > 0.5  # chance is 0.1

    def test_parallel_training_converges(self):
        with ParallelExecutor(num_threads=3, reduction="ordered") as executor:
            solver = build_solver("lenet", max_iter=25, executor=executor)
            solver.step(25)
        assert solver.loss_history[-1] < solver.loss_history[0] * 0.5


class TestCifarTraining:
    def test_loss_decreases(self):
        solver = build_solver("cifar10", max_iter=30)
        solver.step(30)
        history = solver.loss_history
        assert np.mean(history[-5:]) < np.mean(history[:3])

    def test_accuracy_beats_chance(self):
        solver = build_solver("cifar10", max_iter=60, with_test_net=True)
        solver.step(60)
        assert solver.test() > 0.3


class TestSolverVariantsOnLeNet:
    @pytest.mark.parametrize("solver_type,base_lr", [
        ("SGD", 0.01), ("AdaGrad", 0.01), ("Nesterov", 0.005),
    ])
    def test_all_solvers_learn(self, solver_type, base_lr):
        from repro.framework.solvers import SolverParams
        params = SolverParams(
            type=solver_type, base_lr=base_lr, lr_policy="fixed",
            momentum=0.9 if solver_type != "AdaGrad" else 0.0,
            max_iter=20,
        )
        solver = build_solver("lenet", params=params)
        solver.step(20)
        assert solver.loss_history[-1] < solver.loss_history[0]


class TestSnapshotResume:
    def test_training_resumes_identically(self, tmp_path):
        a = build_solver("lenet", max_iter=10)
        a.step(10)
        path = str(tmp_path / "snap.npz")
        a.net.save(path)

        # Fresh solver, restored weights AND momentum history: identical
        # continuation requires both plus the same data cursor.
        b = build_solver("lenet", max_iter=10)
        b.net.load(path)
        b.iteration = a.iteration
        for h_b, h_a in zip(b.history, a.history):
            h_b[:] = h_a
        data_layer_a = a.net.layers[0]
        data_layer_b = b.net.layers[0]
        data_layer_b.source._cursor = data_layer_a.source._cursor

        loss_a = a.step(3)
        loss_b = b.step(3)
        assert loss_a == loss_b
