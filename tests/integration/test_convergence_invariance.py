"""The paper's convergence-invariance property, end to end.

"The coarse-grain parallelization does not change any training
parameters. Thus, the convergence rate is kept invariant between the
serial and the parallel executions." (Section 4.3)

With the blockwise reduction, our implementation delivers the strongest
form: the entire loss trajectory is bitwise identical at every thread
count.  The paper's ordered mode is deterministic per thread count and
tracks the sequential trajectory to floating-point reassociation.
"""

import numpy as np
import pytest

from repro.core import ParallelExecutor
from repro.zoo import build_solver

ITERS = 8


def trajectory(network, threads, mode, iters=ITERS):
    if threads == 0:  # plain sequential baseline (no executor machinery)
        solver = build_solver(network, max_iter=iters)
        solver.step(iters)
        return solver.loss_history
    with ParallelExecutor(num_threads=threads, reduction=mode) as executor:
        solver = build_solver(network, max_iter=iters, executor=executor)
        solver.step(iters)
    return solver.loss_history


class TestBlockwiseBitwiseInvariance:
    @pytest.fixture(scope="class")
    def sequential(self):
        return trajectory("lenet", 0, "blockwise")

    @pytest.mark.parametrize("threads", [1, 2, 3, 4, 6])
    def test_lenet_trajectory_identical(self, sequential, threads):
        assert trajectory("lenet", threads, "blockwise") == sequential

    def test_cifar_trajectory_identical(self):
        seq = trajectory("cifar10", 0, "blockwise", iters=4)
        par = trajectory("cifar10", 3, "blockwise", iters=4)
        assert par == seq


class TestOrderedDeterminism:
    def test_deterministic_per_thread_count(self):
        a = trajectory("lenet", 4, "ordered")
        b = trajectory("lenet", 4, "ordered")
        assert a == b

    def test_tracks_sequential_closely(self):
        seq = np.array(trajectory("lenet", 0, "ordered"))
        par = np.array(trajectory("lenet", 4, "ordered"))
        assert np.allclose(seq, par, rtol=1e-3)

    def test_atomic_tracks_sequential(self):
        seq = np.array(trajectory("lenet", 0, "ordered"))
        par = np.array(trajectory("lenet", 4, "atomic"))
        assert np.allclose(seq, par, rtol=1e-3)


class TestHyperparametersUnchanged:
    def test_batch_size_constant_across_thread_counts(self):
        """The convergence-invariance argument rests on this: unlike the
        multi-GPU batch-splitting the paper criticizes, the batch the
        network sees never changes."""
        for threads in (1, 4):
            with ParallelExecutor(num_threads=threads) as executor:
                solver = build_solver("lenet", max_iter=1, executor=executor)
                solver.step(1)
                assert solver.net.blob("data").shape[0] == 64
