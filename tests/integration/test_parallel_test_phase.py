"""Integration: the TEST phase (Accuracy layer) under the parallel
executor, and failure injection through whole nets."""

import numpy as np
import pytest

from repro.core import ParallelExecutor
from repro.core.team import WorkerError
from repro.framework.net import Net
from repro.framework.prototxt import parse_prototxt
from repro.zoo import build_net, build_solver


class TestParallelTestPhase:
    def test_accuracy_identical_sequential_vs_parallel(self):
        net = build_net("lenet", phase="TEST")
        net.forward()
        sequential = float(net.blob("accuracy").flat_data[0])

        net2 = build_net("lenet", phase="TEST")
        with ParallelExecutor(num_threads=3) as executor:
            executor.forward(net2)
        parallel = float(net2.blob("accuracy").flat_data[0])
        assert parallel == sequential

    def test_solver_test_through_parallel_executor(self):
        with ParallelExecutor(num_threads=2, reduction="blockwise") as ex:
            solver = build_solver("lenet", max_iter=5, with_test_net=True,
                                  executor=ex)
            solver.step(5)
            accuracy = solver.test()
        assert 0.0 <= accuracy <= 1.0


class TestFailureInjection:
    BAD_NET = """
    layer { name: "d" type: "Data" top: "data" top: "label"
            data_param { source: "synth_mnist_train" batch_size: 8 } }
    layer { name: "ip" type: "InnerProduct" bottom: "data" top: "ip"
            inner_product_param { num_output: 10 filler_seed: 4
              weight_filler { type: "xavier" } } }
    layer { name: "loss" type: "SoftmaxWithLoss" bottom: "ip"
            bottom: "label" top: "loss" }
    """

    def test_layer_exception_propagates_through_executor(self):
        from repro.data import register_default_sources
        register_default_sources()
        net = Net(parse_prototxt(self.BAD_NET))

        # sabotage a layer mid-net
        original = net.layer("ip").forward_chunk

        def exploding(bottom, top, lo, hi):
            raise RuntimeError("injected fault")

        net.layer("ip").forward_chunk = exploding
        with ParallelExecutor(num_threads=3) as executor:
            with pytest.raises(WorkerError, match="injected fault"):
                executor.forward(net)
            # executor (and team) stay usable after the fault
            net.layer("ip").forward_chunk = original
            loss = executor.forward(net)
            assert loss > 0

    def test_corrupt_labels_detected_in_parallel(self):
        from repro.data import register_default_sources
        register_default_sources()
        net = Net(parse_prototxt(self.BAD_NET))
        with ParallelExecutor(num_threads=2) as executor:
            executor.forward(net)
            net.blob("label").flat_data[0] = 99  # out of range
            net.blob("label").mark_host_data_dirty()
            # re-run only the loss layer's forward path via full forward:
            # data layer refreshes labels, so corrupt the source instead
            loss_layer = net.layer("loss")
            index = net.layer_names.index("loss")
            bottom, top = net.bottoms[index], net.tops[index]
            bottom[1].flat_data[0] = 99
            with pytest.raises((WorkerError, ValueError)):
                executor.team.parallel_for(
                    loss_layer.forward_space(bottom, top),
                    lambda lo, hi, tid: loss_layer.forward_chunk(
                        bottom, top, lo, hi),
                )

    def test_malformed_prototxt_fails_fast(self):
        with pytest.raises(Exception, match="missing 'type'"):
            parse_prototxt('layer { name: "x" top: "y" }')

    def test_shape_mismatch_fails_fast(self):
        from repro.data import register_default_sources
        register_default_sources()
        bad = self.BAD_NET.replace("num_output: 10", "num_output: 0")
        spec = parse_prototxt(bad)
        with pytest.raises(Exception):
            net = Net(spec)
            net.forward()
