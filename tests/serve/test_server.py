"""End-to-end server behavior: pumped virtual-time mode and chaos replay."""

import numpy as np
import pytest

from repro.resilience.faults import (
    ChunkAbort,
    FaultPlan,
    PoisonSample,
    RequestStorm,
    SlowChunk,
)
from repro.serve import (
    STATUS_OK,
    STATUS_QUARANTINED_INPUT,
    STATUS_SHED,
    STATUS_TIMEOUT,
    InferenceEngine,
    InferenceServer,
    ManualClock,
    MonotonicClock,
    RequestTrace,
    chaos,
    replay_trace,
)
from repro.zoo import build_net


def _make(threads=1, max_batch=4, capacity=8, max_delay=0.005,
          default_budget=1.0):
    engine = InferenceEngine(
        lambda: build_net("mlp", phase="TEST"),
        num_threads=threads, max_batch=max_batch, clock=ManualClock(),
        backoff_s=0.001,
    )
    server = InferenceServer(
        engine, capacity=capacity, max_delay=max_delay,
        default_budget=default_budget,
    )
    return engine, server


def _sample(engine, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random(engine.sample_shape, dtype=np.float32)


class TestPumpedMode:
    def test_size_triggered_flush(self):
        engine, server = _make(max_batch=2)
        try:
            h1 = server.submit(_sample(engine, 1), request_id="a")
            h2 = server.submit(_sample(engine, 2), request_id="b")
            delivered = server.pump()
            assert delivered == 2
            assert h1.response().status == STATUS_OK
            assert h2.response().status == STATUS_OK
            assert h1.response().batch_index == h2.response().batch_index
        finally:
            engine.close()

    def test_deadline_triggered_partial_flush(self):
        engine, server = _make(max_batch=4, max_delay=0.005)
        try:
            handle = server.submit(_sample(engine), request_id="solo")
            assert server.pump() == 0         # neither trigger fired
            engine.clock.advance(0.005)
            assert server.pump() == 1         # max_delay partial flush
            assert handle.response().status == STATUS_OK
        finally:
            engine.close()

    def test_expired_request_gets_timeout(self):
        engine, server = _make(max_batch=4)
        try:
            handle = server.submit(_sample(engine), budget=0.01,
                                   request_id="a")
            engine.clock.advance(0.02)        # past the deadline
            server.pump()
            assert handle.response().status == STATUS_TIMEOUT
        finally:
            engine.close()

    def test_overload_sheds_with_code_immediately(self):
        engine, server = _make(max_batch=2, capacity=2)
        try:
            handles = [server.submit(_sample(engine, i), request_id=f"r{i}")
                       for i in range(3)]
            shed = handles[2].response()
            assert shed is not None and shed.status == STATUS_SHED
            assert "queue full" in shed.detail
            server.pump()
            assert handles[0].response().status == STATUS_OK
            assert server.stats()["shed"] == 1
        finally:
            engine.close()

    def test_late_completion_demoted_to_timeout(self):
        engine, server = _make(max_batch=4, max_delay=0.05)
        try:
            handle = server.submit(_sample(engine), budget=0.01,
                                   request_id="a")
            # The flush happens only after the deadline already passed —
            # but eviction runs first in the pump, so the entry times out
            # before a batch forms.  Force the late-serve path instead:
            # flush exactly at the deadline, then let the straggler
            # delay (virtual backoff) push completion past it.
            engine.clock.advance(0.01)  # exactly at deadline: still live
            layer = next(l for l in engine.net.layers if l.blobs)
            original = layer.forward_chunk

            def slow(bottom, top, lo, hi):
                engine.clock.advance(0.05)
                return original(bottom, top, lo, hi)

            layer.forward_chunk = slow
            server.pump()
            layer.__dict__.pop("forward_chunk", None)
            response = handle.response()
            assert response.status == STATUS_TIMEOUT
            assert "after the" in response.detail
        finally:
            engine.close()

    def test_quarantined_input_is_coded(self):
        engine, server = _make(max_batch=2)
        try:
            bad = np.full(engine.sample_shape, np.inf, dtype=np.float32)
            h_ok = server.submit(_sample(engine), request_id="good")
            h_bad = server.submit(bad, request_id="bad")
            server.pump()
            assert h_ok.response().status == STATUS_OK
            assert h_bad.response().status == STATUS_QUARANTINED_INPUT
        finally:
            engine.close()

    def test_drain_answers_everything(self):
        engine, server = _make(max_batch=4)
        try:
            handles = [server.submit(_sample(engine, i), request_id=f"r{i}")
                       for i in range(3)]
            assert server.drain(timeout=5.0)
            assert all(h.done for h in handles)
            assert server.pit.pending_count() == 0
        finally:
            engine.close()


class TestChaosReplay:
    def test_zero_lost_zero_dup_under_full_chaos(self):
        engine, server = _make(threads=2, max_batch=4, capacity=8)
        deliveries = {}
        server.pit.on_deliver = (
            lambda r: deliveries.setdefault(r.request_id, []).append(r)
        )
        try:
            trace = RequestTrace.generate(
                30, engine.sample_shape, seed=1, budget=0.5,
            )
            layer = next(l for l in engine.net.layers if l.blobs).name
            plan = FaultPlan(
                ChunkAbort(layer=layer, iteration=1),
                SlowChunk(layer=layer, batch=3, delay_s=0.02),
                PoisonSample(request=10),
                RequestStorm(at_request=20, count=12),
            )
            with chaos(engine, plan) as harness:
                submitted = replay_trace(server, trace, chaos=harness)
            assert len(submitted) == 42
            lost = [rid for rid in submitted if rid not in deliveries]
            dups = {rid for rid, rs in deliveries.items() if len(rs) > 1}
            assert lost == []
            assert dups == set()
            assert engine.restarts == 1
            assert deliveries["t1-10"][0].status == STATUS_QUARANTINED_INPUT
            statuses = {rs[0].status for rs in deliveries.values()}
            assert STATUS_OK in statuses
        finally:
            engine.close()

    def test_replay_requires_manual_clock(self):
        engine = InferenceEngine(
            lambda: build_net("mlp", phase="TEST"),
            num_threads=1, max_batch=4, clock=MonotonicClock(),
        )
        server = InferenceServer(engine)
        try:
            trace = RequestTrace.generate(3, engine.sample_shape, seed=0)
            with pytest.raises(TypeError, match="ManualClock"):
                replay_trace(server, trace)
        finally:
            engine.close()

    def test_healthy_replay_all_ok_and_parity(self):
        engine, server = _make(threads=2, max_batch=4)
        try:
            trace = RequestTrace.generate(
                12, engine.sample_shape, seed=2, budget=0.5,
            )
            submitted = replay_trace(server, trace)
            stats = server.stats()
            assert stats["delivered"] == {STATUS_OK: len(submitted)}

            # Bitwise parity: replay every served batch through a fresh
            # sequential net and compare the ok outputs row-for-row.
            from repro.serve.engine import (
                _resolve_output_blob,
                _swap_in_staged_sources,
            )
            ref = build_net("mlp", phase="TEST")
            staged = _swap_in_staged_sources(ref, engine.max_batch)
            out = _resolve_output_blob(ref, None)
            for record in engine.batch_log:
                for src in staged:
                    src.stage(record.images)
                ref.forward()
                for row, rid in enumerate(record.request_ids):
                    if rid is None:
                        continue
                    entry_resp = server.pit._done.get(rid)
                    assert entry_resp == STATUS_OK
            assert out.data.shape[0] == engine.max_batch
        finally:
            engine.close()

    def test_hot_reload_mid_trace(self, tmp_path):
        engine, server = _make(threads=1, max_batch=4)
        try:
            path = str(tmp_path / "weights.npz")
            engine.net.save(path)
            trace = RequestTrace.generate(
                10, engine.sample_shape, seed=3, budget=0.5,
            )
            replay_trace(server, trace,
                         hooks={5: lambda: server.reload(path)})
            stats = server.stats()
            assert stats["engine_reloads"] == 1
            assert stats["delivered"] == {STATUS_OK: 10}
        finally:
            engine.close()


class TestBackgroundDispatcher:
    def test_real_clock_round_trip(self):
        engine = InferenceEngine(
            lambda: build_net("mlp", phase="TEST"),
            num_threads=1, max_batch=4,
        )
        server = InferenceServer(engine, capacity=16, max_delay=0.002)
        try:
            server.start()
            handles = [server.submit(_sample(engine, i), budget=5.0,
                                     request_id=f"bg{i}")
                       for i in range(6)]
            responses = [h.result(timeout=10.0) for h in handles]
            assert all(r.status == STATUS_OK for r in responses)
        finally:
            server.stop()
            engine.close()

    def test_dispatcher_survives_pump_defects(self):
        engine = InferenceEngine(
            lambda: build_net("mlp", phase="TEST"),
            num_threads=1, max_batch=4,
        )
        server = InferenceServer(engine, max_delay=0.002)
        armed = {"defect": True}
        real_pump = server.pump

        def bad_pump():
            if armed["defect"]:
                armed["defect"] = False
                raise RuntimeError("test: pump defect")
            return real_pump()

        server.pump = bad_pump
        try:
            server.start()
            handle = server.submit(_sample(engine), budget=5.0,
                                   request_id="survivor")
            response = handle.result(timeout=10.0)
            assert response.status == STATUS_OK
            assert server.pump_failures >= 1
        finally:
            server.stop()
            engine.close()
