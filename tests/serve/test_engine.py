"""Inference engine: staging idempotence, quarantine, recovery, reload."""

import numpy as np
import pytest

from repro.resilience.checkpoint import CheckpointMismatch
from repro.resilience.faults import InjectedFault
from repro.serve.clock import ManualClock
from repro.serve.engine import EngineFault, InferenceEngine, StagedSource
from repro.zoo import build_net


@pytest.fixture
def engine():
    eng = InferenceEngine(
        lambda: build_net("mlp", phase="TEST"),
        num_threads=2, max_batch=4, clock=ManualClock(), backoff_s=0.001,
    )
    yield eng
    eng.close()


def _samples(engine, k, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.random(engine.sample_shape, dtype=np.float32)
            for _ in range(k)]


class TestStagedSource:
    def test_idempotent_replay(self):
        src = StagedSource((3,))
        batch = np.arange(6, dtype=np.float32).reshape(2, 3)
        src.stage(batch)
        first, _ = src.next_batch(2)
        second, _ = src.next_batch(2)
        assert np.array_equal(first, second)
        assert src.batches_served == 2

    def test_shape_and_size_validated(self):
        src = StagedSource((3,))
        with pytest.raises(ValueError, match="shape"):
            src.stage(np.zeros((2, 4), dtype=np.float32))
        src.stage(np.zeros((2, 3), dtype=np.float32))
        with pytest.raises(ValueError, match="asked for"):
            src.next_batch(5)

    def test_unstaged_read_is_loud(self):
        with pytest.raises(RuntimeError, match="no batch staged"):
            StagedSource((3,)).next_batch(1)


class TestRunBatch:
    def test_happy_path_full_batch(self, engine):
        result = engine.run_batch(_samples(engine, 4))
        assert len(result.outputs) == 4
        assert all(out is not None for out in result.outputs)
        assert result.quarantined_input == []
        assert result.attempts == 1

    def test_partial_batch_zero_padded(self, engine):
        result = engine.run_batch(_samples(engine, 2))
        assert len(result.outputs) == 2
        assert engine.batch_log[-1].images.shape[0] == engine.max_batch

    def test_batch_size_bounds(self, engine):
        with pytest.raises(ValueError, match="outside"):
            engine.run_batch([])
        with pytest.raises(ValueError, match="outside"):
            engine.run_batch(_samples(engine, 5))

    def test_poisoned_input_quarantined_not_batch_killing(self, engine):
        samples = _samples(engine, 3)
        samples[1] = np.full(engine.sample_shape, np.nan, dtype=np.float32)
        result = engine.run_batch(samples, ["a", "b", "c"])
        assert result.quarantined_input == [1]
        assert result.outputs[1] is None
        # Batch-mates are served normally despite the poison.
        assert result.outputs[0] is not None
        assert result.outputs[2] is not None
        assert np.all(np.isfinite(result.outputs[0]))

    def test_poison_does_not_leak_into_neighbors(self, engine):
        clean = _samples(engine, 2, seed=7)
        baseline = engine.run_batch(clean, ["a", "b"])
        poisoned = [clean[0],
                    np.full(engine.sample_shape, np.nan, dtype=np.float32)]
        result = engine.run_batch(poisoned, ["c", "d"])
        # Same clean sample, bitwise same output, poison alongside or not.
        assert np.array_equal(baseline.outputs[0], result.outputs[0])


class TestRecovery:
    def _arm_crashes(self, engine, n_failures):
        """Patch the first parameterized layer to raise n times."""
        layer = next(l for l in engine.net.layers if l.blobs)
        original = layer.forward_chunk
        state = {"remaining": n_failures}

        def patched(bottom, top, lo, hi):
            if state["remaining"] > 0:
                state["remaining"] -= 1
                raise InjectedFault("test: worker crash")
            return original(bottom, top, lo, hi)

        layer.forward_chunk = patched
        return layer

    def test_transient_fault_retried_with_restart(self, engine):
        layer = self._arm_crashes(engine, n_failures=1)
        t0 = engine.clock.now()
        result = engine.run_batch(_samples(engine, 2))
        layer.__dict__.pop("forward_chunk", None)
        assert result.attempts == 2
        assert engine.restarts == 1
        assert all(out is not None for out in result.outputs)
        # Backoff went through the injected clock (virtual time moved).
        assert engine.clock.now() > t0

    def test_retries_exhausted_is_coded_engine_fault(self, engine):
        layer = self._arm_crashes(engine, n_failures=100)
        with pytest.raises(EngineFault, match="retries exhausted"):
            engine.run_batch(_samples(engine, 1))
        layer.__dict__.pop("forward_chunk", None)
        # max_retries=2 -> 3 total attempts, a restart per failure.
        assert engine.restarts == engine.max_retries

    def test_retry_replays_identical_batch(self, engine):
        samples = _samples(engine, 2, seed=3)
        clean = engine.run_batch(samples, ["x", "y"])
        layer = self._arm_crashes(engine, n_failures=1)
        retried = engine.run_batch(samples, ["x2", "y2"])
        layer.__dict__.pop("forward_chunk", None)
        for a, b in zip(clean.outputs, retried.outputs):
            assert np.array_equal(a, b)


class TestReload:
    def test_reload_from_npz_roundtrip(self, engine, tmp_path):
        path = str(tmp_path / "weights.npz")
        engine.net.save(path)
        before = engine.run_batch(_samples(engine, 2), ["a", "b"])
        assert engine.reload(path) == 1
        after = engine.run_batch(_samples(engine, 2), ["c", "d"])
        # Same weights back in: outputs bitwise unchanged.
        for x, y in zip(before.outputs, after.outputs):
            assert np.array_equal(x, y)

    def test_reload_rejects_wrong_net(self, engine, tmp_path):
        path = str(tmp_path / "other.npz")
        other = build_net("lenet", phase="TEST")
        other.save(path)
        with pytest.raises(CheckpointMismatch):
            engine.reload(path)
        assert engine.reloads == 0

    def test_failed_reload_leaves_weights_untouched(self, engine, tmp_path):
        baseline = engine.run_batch(_samples(engine, 1), ["a"])
        path = str(tmp_path / "other.npz")
        build_net("lenet", phase="TEST").save(path)
        with pytest.raises(CheckpointMismatch):
            engine.reload(path)
        after = engine.run_batch(_samples(engine, 1), ["b"])
        assert np.array_equal(baseline.outputs[0], after.outputs[0])
