"""Bounded queueing, admission shedding, and the flush-trigger math.

Every assertion here runs at exact virtual instants — no wall-clock
reads anywhere in the tested paths (the deadline-math satellite)."""

import numpy as np
import pytest

from repro.serve.admission import AdmissionController, BoundedDeque, QueueFull
from repro.serve.batcher import DynamicBatcher
from repro.serve.pit import PendingRequestTable
from repro.serve.request import InferenceRequest


def _entry(pit, rid, deadline, submitted_at=0.0):
    handle = pit.add(InferenceRequest(
        request_id=rid,
        sample=np.zeros(2, dtype=np.float32),
        deadline=deadline,
        submitted_at=submitted_at,
    ))
    return handle._entry


class TestBoundedDeque:
    def test_rejects_loudly_at_capacity(self):
        q = BoundedDeque(2)
        q.push("a")
        q.push("b")
        with pytest.raises(QueueFull):
            q.push("c")
        # Nothing was dropped silently: both originals still queued.
        assert q.pop_upto(10) == ["a", "b"]

    def test_capacity_is_mandatory_and_positive(self):
        with pytest.raises(ValueError):
            BoundedDeque(0)

    def test_fifo_and_pop_upto(self):
        q = BoundedDeque(8)
        for item in "abcd":
            q.push(item)
        assert q.pop_upto(3) == ["a", "b", "c"]
        assert len(q) == 1

    def test_prune_counts_removed(self):
        q = BoundedDeque(8)
        for item in (1, 2, 3, 4):
            q.push(item)
        assert q.prune(lambda x: x % 2 == 0) == 2
        assert q.pop_upto(10) == [2, 4]

    def test_high_water(self):
        q = BoundedDeque(8)
        for item in "abc":
            q.push(item)
        q.pop_upto(3)
        assert q.high_water == 3


class TestAdmission:
    def test_admit_then_shed_at_capacity(self):
        pit = PendingRequestTable()
        ctl = AdmissionController(capacity=2)
        assert ctl.try_admit(_entry(pit, "a", 5.0), now=0.0) is None
        assert ctl.try_admit(_entry(pit, "b", 5.0), now=0.0) is None
        reason = ctl.try_admit(_entry(pit, "c", 5.0), now=0.0)
        assert reason is not None and "queue full" in reason
        assert ctl.shed_count == 1
        assert ctl.depth() == 2

    def test_dead_on_arrival_shed(self):
        pit = PendingRequestTable()
        ctl = AdmissionController(capacity=8)
        reason = ctl.try_admit(_entry(pit, "a", deadline=1.0), now=2.0)
        assert reason is not None and "dead on arrival" in reason
        assert ctl.depth() == 0

    def test_deadline_instant_still_admits(self):
        pit = PendingRequestTable()
        ctl = AdmissionController(capacity=8)
        assert ctl.try_admit(_entry(pit, "a", deadline=1.0), now=1.0) is None


class TestFlushTriggers:
    def _setup(self, max_batch=4, max_delay=0.01, margin=0.0):
        return (PendingRequestTable(), AdmissionController(capacity=16),
                DynamicBatcher(max_batch, max_delay, margin))

    def test_empty_queue_never_flushes(self):
        _, ctl, batcher = self._setup()
        assert not batcher.should_flush(ctl, now=100.0)
        assert batcher.take_batch(ctl, now=100.0) == []

    def test_size_trigger_fires_immediately(self):
        pit, ctl, batcher = self._setup(max_batch=2)
        ctl.try_admit(_entry(pit, "a", 5.0, submitted_at=0.0), now=0.0)
        assert not batcher.should_flush(ctl, now=0.0)
        ctl.try_admit(_entry(pit, "b", 5.0, submitted_at=0.0), now=0.0)
        # Full batch at the very instant of the second arrival.
        assert batcher.should_flush(ctl, now=0.0)

    def test_delay_trigger_fires_partial_batch(self):
        pit, ctl, batcher = self._setup(max_batch=4, max_delay=0.01)
        ctl.try_admit(_entry(pit, "a", 5.0, submitted_at=0.0), now=0.0)
        assert not batcher.should_flush(ctl, now=0.0099)
        assert batcher.should_flush(ctl, now=0.01)   # waited == max_delay
        batch = batcher.take_batch(ctl, now=0.01)
        assert [e.request.request_id for e in batch] == ["a"]

    def test_deadline_margin_trigger(self):
        pit, ctl, batcher = self._setup(max_batch=4, max_delay=10.0,
                                        margin=0.1)
        ctl.try_admit(_entry(pit, "a", deadline=1.0, submitted_at=0.0),
                      now=0.0)
        assert not batcher.should_flush(ctl, now=0.89)
        assert batcher.should_flush(ctl, now=0.9)    # deadline - margin

    def test_deadline_vs_size_race_size_wins(self):
        """Both triggers at the same instant: the batch is the full FIFO
        prefix, identical to what the size trigger alone would take."""
        pit, ctl, batcher = self._setup(max_batch=2, max_delay=0.01)
        # Oldest entry hits max_delay at t=0.01; the queue also reaches
        # max_batch at that exact instant.
        ctl.try_admit(_entry(pit, "a", 5.0, submitted_at=0.0), now=0.0)
        ctl.try_admit(_entry(pit, "b", 5.0, submitted_at=0.01), now=0.01)
        assert batcher.should_flush(ctl, now=0.01)
        batch = batcher.take_batch(ctl, now=0.01)
        assert [e.request.request_id for e in batch] == ["a", "b"]
        assert ctl.depth() == 0

    def test_take_batch_caps_at_max_batch(self):
        pit, ctl, batcher = self._setup(max_batch=2)
        for rid in ("a", "b", "c"):
            ctl.try_admit(_entry(pit, rid, 5.0, submitted_at=0.0), now=0.0)
        batch = batcher.take_batch(ctl, now=0.0)
        assert [e.request.request_id for e in batch] == ["a", "b"]
        assert ctl.depth() == 1

    def test_evicted_entries_never_occupy_batch_slots(self):
        pit, ctl, batcher = self._setup(max_batch=2, max_delay=0.01)
        ctl.try_admit(_entry(pit, "a", deadline=1.0, submitted_at=0.0),
                      now=0.0)
        ctl.try_admit(_entry(pit, "b", deadline=9.0, submitted_at=0.0),
                      now=0.0)
        # "a" times out while queued; the PIT answers it.
        pit.evict_expired(now=2.0)
        batch = batcher.take_batch(ctl, now=2.0)
        assert [e.request.request_id for e in batch] == ["b"]

    def test_next_flush_at_hint(self):
        pit, ctl, batcher = self._setup(max_batch=4, max_delay=0.01,
                                        margin=0.1)
        assert batcher.next_flush_at(ctl, now=0.0) is None
        ctl.try_admit(_entry(pit, "a", deadline=5.0, submitted_at=0.0),
                      now=0.0)
        # Delay trigger (0.01) precedes the deadline margin (4.9).
        assert batcher.next_flush_at(ctl, now=0.0) == pytest.approx(0.01)
        # Hints never point into the past.
        assert batcher.next_flush_at(ctl, now=0.02) == pytest.approx(0.02)
