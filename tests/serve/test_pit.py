"""Pending-request table: deadlines, eviction order, idempotent delivery."""

import numpy as np
import pytest

from repro.serve.pit import PendingRequestTable
from repro.serve.request import (
    STATUS_OK,
    STATUS_TIMEOUT,
    InferenceRequest,
    InferenceResponse,
)


def _request(rid, deadline, submitted_at=0.0):
    return InferenceRequest(
        request_id=rid,
        sample=np.zeros(2, dtype=np.float32),
        deadline=deadline,
        submitted_at=submitted_at,
    )


def _ok(rid, at=1.0):
    return InferenceResponse(
        request_id=rid, status=STATUS_OK,
        output=np.ones(3, dtype=np.float32),
        completed_at=at, latency=at,
    )


class TestDelivery:
    def test_single_delivery_wins(self):
        pit = PendingRequestTable()
        handle = pit.add(_request("a", deadline=5.0))
        assert pit.deliver(_ok("a"))
        assert handle.done
        assert handle.response().status == STATUS_OK

    def test_duplicate_delivery_suppressed(self):
        pit = PendingRequestTable()
        handle = pit.add(_request("a", deadline=5.0))
        first = _ok("a", at=1.0)
        second = _ok("a", at=2.0)
        assert pit.deliver(first)
        assert not pit.deliver(second)
        assert pit.duplicates_suppressed == 1
        # The client sees the first response, not the straggler.
        assert handle.response().completed_at == 1.0

    def test_duplicate_request_id_rejected(self):
        pit = PendingRequestTable()
        pit.add(_request("a", deadline=5.0))
        with pytest.raises(ValueError, match="already in flight"):
            pit.add(_request("a", deadline=9.0))

    def test_recently_answered_id_rejected(self):
        pit = PendingRequestTable()
        pit.add(_request("a", deadline=5.0))
        pit.deliver(_ok("a"))
        with pytest.raises(ValueError, match="recently answered"):
            pit.add(_request("a", deadline=9.0))

    def test_on_deliver_observer(self):
        seen = []
        pit = PendingRequestTable(on_deliver=seen.append)
        pit.add(_request("a", deadline=5.0))
        pit.deliver(_ok("a"))
        pit.deliver(_ok("a"))  # duplicate: observer not re-notified
        assert [r.request_id for r in seen] == ["a"]

    def test_done_memory_is_bounded(self):
        pit = PendingRequestTable(done_capacity=2)
        for rid in ("a", "b", "c"):
            pit.add(_request(rid, deadline=5.0))
            pit.deliver(_ok(rid))
        # "a" aged out of suppression memory, so its id is reusable.
        pit.add(_request("a", deadline=9.0))
        with pytest.raises(ValueError):
            pit.add(_request("c", deadline=9.0))


class TestEviction:
    def test_eviction_is_deadline_ordered(self):
        pit = PendingRequestTable()
        # Insert out of deadline order.
        pit.add(_request("late", deadline=3.0))
        pit.add(_request("early", deadline=1.0))
        pit.add(_request("mid", deadline=2.0))
        evicted = pit.evict_expired(now=10.0)
        assert [r.request_id for r in evicted] == ["early", "mid", "late"]
        assert all(r.status == STATUS_TIMEOUT for r in evicted)

    def test_ties_break_by_arrival_sequence(self):
        pit = PendingRequestTable()
        pit.add(_request("first", deadline=1.0))
        pit.add(_request("second", deadline=1.0))
        evicted = pit.evict_expired(now=2.0)
        assert [r.request_id for r in evicted] == ["first", "second"]

    def test_live_through_deadline_instant(self):
        pit = PendingRequestTable()
        pit.add(_request("a", deadline=1.0))
        # At exactly the deadline the request is still live.
        assert pit.evict_expired(now=1.0) == []
        assert pit.is_pending("a")
        assert len(pit.evict_expired(now=1.0000001)) == 1

    def test_partial_eviction_leaves_future_deadlines(self):
        pit = PendingRequestTable()
        pit.add(_request("a", deadline=1.0))
        pit.add(_request("b", deadline=5.0))
        evicted = pit.evict_expired(now=2.0)
        assert [r.request_id for r in evicted] == ["a"]
        assert pit.is_pending("b")
        assert pit.pending_count() == 1

    def test_delivered_entries_skip_eviction(self):
        pit = PendingRequestTable()
        pit.add(_request("a", deadline=1.0))
        pit.deliver(_ok("a"))
        assert pit.evict_expired(now=10.0) == []
        assert pit.duplicates_suppressed == 0

    def test_eviction_is_idempotent_delivery(self):
        pit = PendingRequestTable()
        handle = pit.add(_request("a", deadline=1.0))
        pit.evict_expired(now=2.0)
        # A straggling batch result after eviction is suppressed.
        assert not pit.deliver(_ok("a"))
        assert handle.response().status == STATUS_TIMEOUT
        assert pit.duplicates_suppressed == 1


class TestHandle:
    def test_result_requires_timeout_and_raises(self):
        pit = PendingRequestTable()
        handle = pit.add(_request("a", deadline=5.0))
        with pytest.raises(TimeoutError, match="no response within"):
            handle.result(timeout=0.01)

    def test_response_none_while_pending(self):
        pit = PendingRequestTable()
        handle = pit.add(_request("a", deadline=5.0))
        assert handle.response() is None
        assert not handle.done

    def test_stats(self):
        pit = PendingRequestTable()
        pit.add(_request("a", deadline=5.0))
        pit.add(_request("b", deadline=5.0))
        pit.deliver(_ok("a"))
        stats = pit.stats()
        assert stats["pending"] == 1
        assert stats["delivered"] == {STATUS_OK: 1}
