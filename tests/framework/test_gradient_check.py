"""Self-tests for the numerical gradient checker: it must catch bugs."""

import numpy as np
import pytest

from repro.framework.blob import Blob
from repro.framework.gradient_check import GradientCheckError, check_gradient
from repro.framework.layers.neuron import NeuronLayer
from repro.testing import make_blob, spec


class BrokenBackwardLayer(NeuronLayer):
    """y = 2x forward, but backward claims dy/dx = 3 (wrong)."""

    def forward_chunk(self, bottom, top, lo, hi):
        np.multiply(bottom[0].flat_data[lo:hi], 2.0,
                    out=top[0].flat_data[lo:hi])

    def backward_chunk(self, top, propagate_down, bottom, lo, hi,
                       param_grads):
        np.multiply(top[0].flat_diff[lo:hi], 3.0,
                    out=bottom[0].flat_diff[lo:hi])


class CorrectLayer(NeuronLayer):
    """y = 2x with the right backward."""

    def forward_chunk(self, bottom, top, lo, hi):
        np.multiply(bottom[0].flat_data[lo:hi], 2.0,
                    out=top[0].flat_data[lo:hi])

    def backward_chunk(self, top, propagate_down, bottom, lo, hi,
                       param_grads):
        np.multiply(top[0].flat_diff[lo:hi], 2.0,
                    out=bottom[0].flat_diff[lo:hi])


class SignErrorLayer(NeuronLayer):
    """y = x^2/2 forward; backward returns -x dy (sign flipped)."""

    def forward_chunk(self, bottom, top, lo, hi):
        x = bottom[0].flat_data[lo:hi]
        np.multiply(x, x * 0.5, out=top[0].flat_data[lo:hi])

    def backward_chunk(self, top, propagate_down, bottom, lo, hi,
                       param_grads):
        x = bottom[0].flat_data[lo:hi]
        np.copyto(bottom[0].flat_diff[lo:hi],
                  -x * top[0].flat_diff[lo:hi])


class TestChecker:
    def test_accepts_correct_layer(self, rng):
        layer = CorrectLayer(spec("ok", "ReLU"))
        check_gradient(layer, [make_blob((3, 4), rng=rng)], [Blob()])

    def test_catches_wrong_magnitude(self, rng):
        layer = BrokenBackwardLayer(spec("bad", "ReLU"))
        with pytest.raises(GradientCheckError, match="analytic"):
            check_gradient(layer, [make_blob((3, 4), rng=rng)], [Blob()])

    def test_catches_sign_error(self, rng):
        """Sign errors cancel under a plain-sum objective; the weighted
        objective must still catch them."""
        layer = SignErrorLayer(spec("sign", "ReLU"))
        with pytest.raises(GradientCheckError):
            check_gradient(layer, [make_blob((3, 4), rng=rng)], [Blob()])

    def test_check_bottom_subset(self, rng):
        """Only the requested bottoms are differentiated (labels etc.)."""
        from repro.framework.layer import create_layer
        layer = create_layer(spec("loss", "SoftmaxWithLoss"))
        scores = make_blob((3, 4), rng=rng)
        labels = make_blob((3,), values=[0, 1, 2])
        check_gradient(layer, [scores, labels], [Blob()], check_bottom=[0])

    def test_threshold_respected(self, rng):
        """A very loose threshold lets a slightly-wrong layer pass —
        confirming the threshold knob does what it says."""
        layer = BrokenBackwardLayer(spec("bad", "ReLU"))
        check_gradient(layer, [make_blob((2, 2), rng=rng)], [Blob()],
                       threshold=10.0)
