"""Unit tests for parameter fillers."""

import subprocess
import sys

import numpy as np
import pytest

from repro.framework.blob import Blob
from repro.framework.fillers import FillerSpec, fill, stable_seed


@pytest.fixture
def gen():
    return np.random.default_rng(42)


class TestFillers:
    def test_constant(self, gen):
        blob = fill(Blob((10,)), FillerSpec(type="constant", value=3.0), gen)
        assert np.allclose(blob.data, 3.0)

    def test_uniform_range(self, gen):
        blob = fill(Blob((1000,)), FillerSpec(type="uniform", min=-2, max=5), gen)
        assert blob.flat_data.min() >= -2 and blob.flat_data.max() <= 5
        assert blob.flat_data.std() > 0.5

    def test_uniform_bad_range(self, gen):
        with pytest.raises(ValueError, match="max"):
            fill(Blob((4,)), FillerSpec(type="uniform", min=1, max=0), gen)

    def test_gaussian_moments(self, gen):
        blob = fill(Blob((5000,)), FillerSpec(type="gaussian", mean=1, std=2), gen)
        assert blob.flat_data.mean() == pytest.approx(1.0, abs=0.15)
        assert blob.flat_data.std() == pytest.approx(2.0, abs=0.15)

    def test_gaussian_negative_std(self, gen):
        with pytest.raises(ValueError, match="std"):
            fill(Blob((4,)), FillerSpec(type="gaussian", std=-1), gen)

    def test_xavier_scale(self, gen):
        # fan_in for (50, 20) weights is 20 -> scale sqrt(3/20)
        blob = fill(Blob((50, 20)), FillerSpec(type="xavier"), gen)
        bound = np.sqrt(3.0 / 20.0)
        assert abs(blob.flat_data).max() <= bound + 1e-6

    def test_xavier_variance_norms(self, gen):
        for norm in ("fan_in", "fan_out", "average"):
            fill(Blob((8, 4)), FillerSpec(type="xavier", variance_norm=norm), gen)
        with pytest.raises(ValueError, match="variance_norm"):
            fill(Blob((8, 4)), FillerSpec(type="xavier", variance_norm="x"), gen)

    def test_msra_std(self, gen):
        blob = fill(Blob((100, 200)), FillerSpec(type="msra"), gen)
        assert blob.flat_data.std() == pytest.approx(np.sqrt(2 / 200), rel=0.1)

    def test_positive_unitball_rows_sum_to_one(self, gen):
        blob = fill(Blob((6, 10)), FillerSpec(type="positive_unitball"), gen)
        assert np.allclose(blob.data.sum(axis=1), 1.0, atol=1e-5)
        assert (blob.flat_data >= 0).all()

    def test_unknown_type(self, gen):
        with pytest.raises(ValueError, match="unknown filler"):
            fill(Blob((4,)), FillerSpec(type="bogus"), gen)

    def test_deterministic_per_seed(self):
        a = fill(Blob((16,)), FillerSpec(type="gaussian"),
                 np.random.default_rng(5))
        b = fill(Blob((16,)), FillerSpec(type="gaussian"),
                 np.random.default_rng(5))
        assert np.array_equal(a.flat_data, b.flat_data)


class TestStableSeed:
    """The fallback filler seed must be process-invariant: ``hash(name)``
    is salted per interpreter under PYTHONHASHSEED randomization (the bug
    this replaced), CRC-32 is not."""

    # Pinned values: changing them silently changes every default-seeded
    # parameter initialization, which breaks saved-trajectory replays.
    PINNED = {
        "ip1": 1185304689,
        "conv1": 285681077,
        "mlp.fc2": 2069486542,
    }

    def test_pinned_digests(self):
        for name, expected in self.PINNED.items():
            assert stable_seed(name) == expected

    def test_range_and_determinism(self):
        for name in ("", "a", "layer-with-long-name" * 8):
            seed = stable_seed(name)
            assert 0 <= seed < 2**31
            assert seed == stable_seed(name)

    def test_invariant_across_hash_randomized_processes(self):
        # Two fresh interpreters with different hash salts must agree —
        # the exact property abs(hash(name)) violated.
        code = ("from repro.framework.fillers import stable_seed;"
                "print(stable_seed('ip1'), abs(hash('ip1')) % (2**31))")
        outs = []
        for salt in ("1", "2"):
            result = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": salt},
            )
            outs.append(result.stdout.split())
        (stable_a, hashed_a), (stable_b, hashed_b) = outs
        assert stable_a == stable_b == str(self.PINNED["ip1"])
        assert hashed_a != hashed_b  # the old fallback really was salted

    def test_layer_fallback_uses_stable_seed(self):
        from repro.framework.layer import create_layer
        from repro.testing import make_blob, spec

        layer = create_layer(spec(
            "ip1", "InnerProduct", num_output=3,
            weight_filler={"type": "gaussian", "std": 0.5},
        ))
        layer.setup([make_blob((4, 5))], [Blob()])
        ref = fill(Blob((3, 5)), FillerSpec(type="gaussian", std=0.5),
                   np.random.default_rng(stable_seed("ip1")))
        assert np.array_equal(layer.blobs[0].flat_data, ref.flat_data)
