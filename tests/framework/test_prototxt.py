"""Unit tests for the prototxt parser."""

import pytest

from repro.framework.prototxt import PrototxtError, parse_prototxt, parse_text


class TestTokenizerAndScalars:
    def test_scalars(self):
        msg = parse_text('a: 1 b: -2.5 c: "hi" d: true e: MAX f: 1e-3')
        assert msg == {"a": 1, "b": -2.5, "c": "hi", "d": True,
                       "e": "MAX", "f": 1e-3}

    def test_comments_ignored(self):
        msg = parse_text("# header\na: 1 # trailing\nb: 2")
        assert msg == {"a": 1, "b": 2}

    def test_string_escapes(self):
        msg = parse_text(r'path: "a\nb"')
        assert msg["path"] == "a\nb"

    def test_repeated_keys_accumulate(self):
        msg = parse_text("dim: 1 dim: 2 dim: 3")
        assert msg["dim"] == [1, 2, 3]

    def test_nested_messages(self):
        msg = parse_text("outer { inner { x: 1 } y: 2 }")
        assert msg == {"outer": {"inner": {"x": 1}, "y": 2}}

    def test_unexpected_char(self):
        with pytest.raises(PrototxtError, match="unexpected character"):
            parse_text("a: @")

    def test_unterminated_block(self):
        with pytest.raises(PrototxtError, match="unterminated"):
            parse_text("a { x: 1")

    def test_unmatched_close(self):
        with pytest.raises(PrototxtError, match="unmatched"):
            parse_text("a: 1 }")

    def test_missing_separator(self):
        with pytest.raises(PrototxtError, match="':' or '{'"):
            parse_text("a 1")


class TestNetSpecMapping:
    NET = """
    name: "tiny"
    layer {
      name: "in" type: "Input" top: "data"
      input_param { shape { dim: 1 dim: 3 dim: 4 dim: 4 } }
    }
    layer {
      name: "conv" type: "Convolution" bottom: "data" top: "conv"
      param { lr_mult: 1 decay_mult: 2 }
      convolution_param { num_output: 2 kernel_size: 3 }
    }
    layer {
      name: "acc" type: "Accuracy" bottom: "conv" bottom: "data" top: "acc"
      include { phase: TEST }
    }
    """

    def test_layers_parsed(self):
        spec = parse_prototxt(self.NET)
        assert spec.name == "tiny"
        assert [s.name for s in spec.layers] == ["in", "conv", "acc"]

    def test_param_blocks_merged(self):
        spec = parse_prototxt(self.NET)
        conv = spec.layer("conv")
        assert conv.params["num_output"] == 2
        assert conv.params["kernel_size"] == 3

    def test_param_specs(self):
        conv = parse_prototxt(self.NET).layer("conv")
        assert conv.param_specs[0].lr_mult == 1
        assert conv.param_specs[0].decay_mult == 2

    def test_phase(self):
        spec = parse_prototxt(self.NET)
        assert spec.layer("acc").phase == "TEST"
        assert spec.layer("conv").phase is None

    def test_bottoms_tops(self):
        acc = parse_prototxt(self.NET).layer("acc")
        assert acc.bottoms == ["conv", "data"]
        assert acc.tops == ["acc"]

    def test_missing_name(self):
        with pytest.raises(PrototxtError, match="missing 'name'"):
            parse_prototxt('layer { type: "ReLU" }')

    def test_missing_type(self):
        with pytest.raises(PrototxtError, match="missing 'type'"):
            parse_prototxt('layer { name: "x" }')

    def test_dangling_bottom_rejected(self):
        with pytest.raises(ValueError, match="no earlier layer"):
            parse_prototxt(
                'layer { name: "r" type: "ReLU" bottom: "ghost" top: "r" }'
            )

    def test_loss_weight(self):
        spec = parse_prototxt("""
        layer { name: "in" type: "Input" top: "d"
                input_param { shape { dim: 1 } } }
        layer { name: "l" type: "Softmax" bottom: "d" top: "s"
                loss_weight: 0.5 }
        """)
        assert spec.layer("l").loss_weight == 0.5


class TestZooPrototxts:
    def test_lenet_parses(self):
        from repro.zoo import lenet_spec
        spec = lenet_spec()
        train = spec.layers_for_phase("TRAIN")
        # paper Fig 3: 9 layers (data, conv1, pool1, conv2, pool2, ip1,
        # relu1, ip2, loss)
        assert len(train) == 9

    def test_cifar_parses(self):
        from repro.zoo import cifar10_spec
        spec = cifar10_spec()
        train = spec.layers_for_phase("TRAIN")
        # paper Fig 3: 14 layers
        assert len(train) == 14
        names = [s.name for s in train]
        assert "norm1" in names and "norm2" in names
