"""Tests for the command-line tools."""

import numpy as np
import pytest

from repro.tools.train import build_parser, main as train_main
from repro.tools.profile import main as profile_main


class TestTrainCli:
    def test_zoo_training(self, capsys, tmp_path):
        snapshot = str(tmp_path / "weights.npz")
        code = train_main([
            "--net", "lenet", "--iters", "3", "--display", "1",
            "--snapshot", snapshot,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "final loss" in out
        with np.load(snapshot) as archive:
            assert any(key.startswith("conv1") for key in archive.files)

    def test_parallel_flags(self, capsys):
        code = train_main([
            "--net", "lenet", "--iters", "2", "--threads", "2",
            "--reduction", "blockwise", "--schedule", "static,4",
        ])
        assert code == 0
        assert "blockwise" in capsys.readouterr().out

    def test_adagrad_selection(self, capsys):
        code = train_main([
            "--net", "lenet", "--iters", "2", "--solver", "AdaGrad",
            "--lr", "0.05",
        ])
        assert code == 0

    def test_prototxt_input(self, capsys, tmp_path):
        prototxt = tmp_path / "net.prototxt"
        prototxt.write_text("""
        layer { name: "d" type: "Data" top: "data" top: "label"
                data_param { source: "synth_mnist_train" batch_size: 8 } }
        layer { name: "ip" type: "InnerProduct" bottom: "data" top: "ip"
                inner_product_param { num_output: 10 filler_seed: 5
                  weight_filler { type: "xavier" } } }
        layer { name: "loss" type: "SoftmaxWithLoss" bottom: "ip"
                bottom: "label" top: "loss" }
        """)
        code = train_main(["--prototxt", str(prototxt), "--iters", "2"])
        assert code == 0
        assert "final loss" in capsys.readouterr().out

    def test_requires_net_or_prototxt(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_test_flag_reports_accuracy(self, capsys):
        code = train_main(["--net", "lenet", "--iters", "2", "--test"])
        assert code == 0
        assert "test accuracy" in capsys.readouterr().out


class TestProfileCli:
    def test_sequential_profile(self, capsys):
        code = profile_main(["--net", "lenet", "--iters", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "measured per-layer breakdown" in out
        assert "conv1" in out
        assert "modelled per-layer scalability" in out

    def test_parallel_profile(self, capsys):
        code = profile_main(["--net", "lenet", "--iters", "1",
                             "--threads", "2"])
        assert code == 0
        assert "conv2" in capsys.readouterr().out
