"""Unit tests for the Blob storage unit."""

import numpy as np
import pytest

from repro.framework.blob import Blob, SyncState


class TestShape:
    def test_basic(self):
        blob = Blob((2, 3, 4, 5))
        assert blob.shape == (2, 3, 4, 5)
        assert blob.count == 120
        assert blob.num_axes == 4

    def test_scalar(self):
        blob = Blob(())
        assert blob.count == 1
        assert blob.num_axes == 0

    def test_legacy_accessors(self):
        blob = Blob((2, 3, 4, 5))
        assert (blob.num, blob.channels, blob.height, blob.width) == (2, 3, 4, 5)

    def test_legacy_pads_missing_axes(self):
        blob = Blob((2, 3))
        assert (blob.num, blob.channels, blob.height, blob.width) == (2, 3, 1, 1)

    def test_legacy_rejects_5d(self):
        with pytest.raises(ValueError, match="legacy"):
            Blob((1, 2, 3, 4, 5)).num

    def test_negative_dim(self):
        with pytest.raises(ValueError, match="negative"):
            Blob((2, -1))

    def test_canonical_axis(self):
        blob = Blob((2, 3, 4))
        assert blob.canonical_axis(-1) == 2
        assert blob.canonical_axis(1) == 1
        with pytest.raises(IndexError):
            blob.canonical_axis(3)


class TestOffset:
    def test_paper_formula(self):
        """offset(n,k,h,w) == ((n*K + k)*H + h)*W + w (paper Section 2.1.1)."""
        n_, k_, h_, w_ = 4, 3, 5, 6
        blob = Blob((n_, k_, h_, w_))
        for n in (0, 1, 3):
            for k in (0, 2):
                for h in (0, 4):
                    for w in (0, 5):
                        expected = ((n * k_ + k) * h_ + h) * w_ + w
                        assert blob.offset((n, k, h, w)) == expected

    def test_matches_numpy_ravel(self):
        blob = Blob((2, 3, 4))
        for idx in np.ndindex(2, 3, 4):
            assert blob.offset(idx) == np.ravel_multi_index(idx, (2, 3, 4))

    def test_partial_indices(self):
        blob = Blob((2, 3, 4))
        assert blob.offset((1,)) == 12
        assert blob.offset((1, 2)) == 20

    def test_out_of_range(self):
        blob = Blob((2, 3))
        with pytest.raises(IndexError, match="out of range"):
            blob.offset((2, 0))
        with pytest.raises(IndexError, match="indices"):
            blob.offset((0, 0, 0))


class TestReshape:
    def test_shrink_preserves_storage(self):
        blob = Blob((4, 4))
        blob.flat_data[:] = np.arange(16)
        blob.reshape((2, 4))
        assert np.allclose(blob.flat_data, np.arange(8))

    def test_grow_reallocates(self):
        blob = Blob((2,))
        blob.reshape((4, 4))
        assert blob.count == 16
        assert np.allclose(blob.flat_data, 0)

    def test_reshape_like(self):
        a, b = Blob((2, 3)), Blob((6,))
        b.reshape_like(a)
        assert b.shape == (2, 3)


class TestDataDiff:
    def test_views_share_storage(self):
        blob = Blob((2, 2))
        blob.data[0, 0] = 5.0
        assert blob.flat_data[0] == 5.0

    def test_set_data(self):
        blob = Blob((3,))
        blob.set_data([1, 2, 3])
        assert np.allclose(blob.data, [1, 2, 3])

    def test_set_data_wrong_size(self):
        with pytest.raises(ValueError, match="set_data"):
            Blob((3,)).set_data([1, 2])

    def test_zero_helpers(self):
        blob = Blob((3,))
        blob.set_data([1, 2, 3])
        blob.flat_diff[:] = 4
        blob.zero_data().zero_diff()
        assert blob.asum_data() == 0 and blob.asum_diff() == 0

    def test_norms(self):
        blob = Blob((2,))
        blob.set_data([3, -4])
        assert blob.asum_data() == pytest.approx(7.0)
        assert blob.sumsq_data() == pytest.approx(25.0)

    def test_update_subtracts_diff(self):
        blob = Blob((2,))
        blob.set_data([10, 20])
        blob.flat_diff[:] = [1, 2]
        blob.update()
        assert np.allclose(blob.data, [9, 18])

    def test_scale_diff(self):
        blob = Blob((2,))
        blob.flat_diff[:] = [2, 4]
        blob.scale_diff(0.5)
        assert np.allclose(blob.flat_diff, [1, 2])

    def test_copy_from(self):
        a, b = Blob((2,)), Blob((2,))
        a.set_data([1, 2])
        b.copy_from(a)
        assert np.allclose(b.data, [1, 2])

    def test_copy_from_shape_mismatch(self):
        a, b = Blob((2,)), Blob((3,))
        with pytest.raises(ValueError, match="copy_from"):
            b.copy_from(a)
        b.copy_from(a, reshape=True)
        assert b.shape == (2,)


class TestDeviceSync:
    def test_initial_state(self):
        blob = Blob((2,))
        assert blob.data_state is SyncState.AT_CPU

    def test_round_trip(self):
        blob = Blob((2,))
        blob.set_data([1, 2])
        device = blob.device_data()
        assert blob.data_state is SyncState.SYNCED
        device[:] = [7, 8]
        blob.mark_device_data_dirty()
        assert blob.data_state is SyncState.AT_DEVICE
        assert np.allclose(blob.data, [7, 8])  # triggers device->host
        assert blob.data_state is SyncState.SYNCED

    def test_transfer_counting(self):
        blob = Blob((2,))
        blob.device_data()
        blob.mark_device_data_dirty()
        _ = blob.data
        assert blob.transfer_counts == (1, 1)

    def test_no_redundant_transfers(self):
        blob = Blob((2,))
        blob.device_data()
        blob.device_data()  # already synced
        assert blob.transfer_counts == (1, 0)

    def test_host_write_invalidates_device(self):
        blob = Blob((2,))
        blob.device_data()
        blob.set_data([3, 4])  # marks host dirty
        device = blob.device_data()  # must re-transfer
        assert np.allclose(device, [3, 4])
        assert blob.transfer_counts[0] == 2

    def test_diff_sync_independent(self):
        blob = Blob((2,))
        blob.device_diff()[:] = [1, 1]
        blob.mark_device_diff_dirty()
        assert np.allclose(blob.diff, [1, 1])
        assert blob.data_state is SyncState.AT_CPU

    def test_dirty_without_device_raises(self):
        with pytest.raises(RuntimeError, match="no device data"):
            Blob((1,)).mark_device_data_dirty()


class TestSharing:
    def test_share_data(self):
        a, b = Blob((3,)), Blob((3,))
        b.set_data([1, 2, 3])
        a.share_data_with(b)
        b.flat_data[0] = 9
        assert a.flat_data[0] == 9

    def test_share_larger_rejected(self):
        a, b = Blob((4,)), Blob((3,))
        with pytest.raises(ValueError, match="smaller"):
            a.share_data_with(b)

    def test_nbytes(self):
        assert Blob((10,)).nbytes == 10 * 4 * 2  # data + diff
