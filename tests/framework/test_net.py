"""Unit tests for Net assembly, split insertion and execution."""

import numpy as np
import pytest

from repro.framework.net import Net, _insert_splits
from repro.framework.net_spec import LayerSpec, NetSpec
from repro.framework.prototxt import parse_prototxt


def chain_spec() -> NetSpec:
    return parse_prototxt("""
    name: "chain"
    layer { name: "in" type: "Input" top: "data"
            input_param { shape { dim: 2 dim: 3 } } }
    layer { name: "ip" type: "InnerProduct" bottom: "data" top: "ip"
            inner_product_param { num_output: 4 filler_seed: 3
                weight_filler { type: "gaussian" std: 0.5 } } }
    layer { name: "relu" type: "ReLU" bottom: "ip" top: "ip" }
    """)


class TestConstruction:
    def test_blob_map(self):
        net = Net(chain_spec())
        assert set(net.blob_map) == {"data", "ip"}

    def test_in_place_shares_blob(self):
        net = Net(chain_spec())
        relu_index = net.layer_names.index("relu")
        assert net.bottoms[relu_index][0] is net.tops[relu_index][0]

    def test_learnable_params_collected(self):
        net = Net(chain_spec())
        assert len(net.learnable_params) == 2  # ip weights + bias
        assert net.param_owners == ["ip", "ip"]

    def test_unknown_bottom(self):
        spec = NetSpec(layers=[LayerSpec(name="r", type="ReLU",
                                         bottoms=["nope"], tops=["r"])])
        with pytest.raises(ValueError, match="no earlier layer"):
            Net(spec)

    def test_phase_filtering(self):
        from repro.zoo import lenet_spec
        from repro.data import register_default_sources
        register_default_sources()
        test_net = Net(lenet_spec(), phase="TEST")
        assert test_net.has_layer("accuracy")
        train_net = Net(lenet_spec(), phase="TRAIN")
        assert not train_net.has_layer("accuracy")


class TestSplitInsertion:
    def make(self, consumers=2):
        layers = [
            LayerSpec(name="in", type="Input", tops=["data"],
                      params={"shape": {"dim": [2, 4]}}),
        ]
        for i in range(consumers):
            layers.append(LayerSpec(
                name=f"ip{i}", type="InnerProduct",
                bottoms=["data"], tops=[f"ip{i}"],
                params={"num_output": 3, "filler_seed": i + 1,
                        "weight_filler": {"type": "gaussian", "std": 0.5}},
            ))
        return NetSpec(name="fanout", layers=layers)

    def test_split_inserted_for_shared_blob(self):
        net = Net(self.make())
        assert any("split" in name for name in net.layer_names)

    def test_single_consumer_no_split(self):
        net = Net(self.make(consumers=1))
        assert not any("split" in name for name in net.layer_names)

    def test_forward_copies_to_all_consumers(self):
        net = Net(self.make())
        net.blob("data").set_data(np.arange(8, dtype=np.float32))
        net.forward()
        # both ip layers saw the same input
        split_tops = [n for n in net.blob_map if "split" in n]
        assert len(split_tops) == 2
        for name in split_tops:
            assert np.allclose(net.blob(name).data.ravel(), np.arange(8))

    def test_backward_sums_consumer_diffs(self):
        net = Net(self.make())
        net.blob("data").set_data(np.ones(8, dtype=np.float32))
        net.forward()
        split_names = [n for n in net.blob_map if "split" in n]
        for name in split_names:
            net.blob(name).flat_diff[:] = 1.0
        split_index = next(i for i, n in enumerate(net.layer_names)
                           if "split" in n)
        layer = net.layers[split_index]
        layer.backward(net.tops[split_index], [True],
                       net.bottoms[split_index])
        assert np.allclose(net.blob("data").flat_diff, 2.0)

    def test_inplace_plus_consumer_rejected(self):
        layers = [
            LayerSpec(name="in", type="Input", tops=["d"],
                      params={"shape": {"dim": [2, 4]}}),
            LayerSpec(name="r", type="ReLU", bottoms=["d"], tops=["d"]),
        ]
        # a second consumer of the ORIGINAL production of "d"
        bad = LayerSpec(name="r2", type="ReLU", bottoms=["d"], tops=["x"])
        specs = [layers[0], bad, layers[1]]
        # consumption order: r2 consumes production 0, then r consumes
        # production 0 in place -> Caffe forbids
        with pytest.raises(ValueError, match="in-place"):
            _insert_splits(specs)


class TestExecution:
    def test_forward_returns_weighted_loss(self):
        from repro.zoo import build_net
        net = build_net("lenet")
        loss = net.forward()
        assert loss == pytest.approx(float(net.blob("loss").flat_data[0]),
                                     rel=1e-6)

    def test_backward_fills_param_diffs(self):
        from repro.zoo import build_net
        net = build_net("lenet")
        net.forward()
        net.backward()
        assert all(b.asum_diff() > 0 for b in net.learnable_params)

    def test_clear_param_diffs(self):
        from repro.zoo import build_net
        net = build_net("lenet")
        net.forward_backward()
        net.clear_param_diffs()
        assert all(b.asum_diff() == 0 for b in net.learnable_params)

    def test_label_gets_no_gradient(self):
        from repro.zoo import build_net
        net = build_net("lenet")
        loss_index = net.layer_names.index("loss")
        assert net.bottom_need_backward[loss_index] == [True, False]

    def test_memory_bytes_positive(self):
        from repro.zoo import build_net
        net = build_net("lenet")
        net.forward()
        # paper Section 3.2.1 cites ~8MB total for MNIST; ours should be
        # the same order of magnitude.
        assert 1e6 < net.memory_bytes() < 1e9


class TestSnapshot:
    def test_state_dict_roundtrip(self):
        net = Net(chain_spec())
        state = net.state_dict()
        original = state["ip"][0].copy()
        net.layer("ip").blobs[0].flat_data[:] = 0
        net.load_state_dict(state)
        assert np.allclose(net.layer("ip").blobs[0].data, original)

    def test_save_load_file(self, tmp_path):
        net = Net(chain_spec())
        path = str(tmp_path / "weights.npz")
        net.save(path)
        expected = net.layer("ip").blobs[0].data.copy()
        net.layer("ip").blobs[0].zero_data()
        net.load(path)
        assert np.allclose(net.layer("ip").blobs[0].data, expected)

    def test_load_blob_count_mismatch(self):
        net = Net(chain_spec())
        with pytest.raises(ValueError, match="snapshot"):
            net.load_state_dict({"ip": [np.zeros((4, 3), np.float32)]})
