"""Unit tests for the synthetic MNIST / CIFAR-10 datasets."""

import numpy as np
import pytest

from repro.data import SyntheticCIFAR10, SyntheticMNIST


class TestSyntheticMNIST:
    def test_shapes(self):
        ds = SyntheticMNIST(n_samples=32, seed=0)
        assert ds.images.shape == (32, 1, 28, 28)
        assert ds.labels.shape == (32,)
        assert ds.shape == (1, 28, 28)

    def test_value_range(self):
        ds = SyntheticMNIST(n_samples=16, seed=0)
        assert ds.images.min() >= 0.0 and ds.images.max() <= 1.0

    def test_deterministic(self):
        a = SyntheticMNIST(n_samples=8, seed=5)
        b = SyntheticMNIST(n_samples=8, seed=5)
        assert np.array_equal(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_seed_changes_data(self):
        a = SyntheticMNIST(n_samples=8, seed=1)
        b = SyntheticMNIST(n_samples=8, seed=2)
        assert not np.array_equal(a.images, b.images)

    def test_all_classes_present(self):
        ds = SyntheticMNIST(n_samples=300, seed=0)
        assert set(ds.labels.tolist()) == set(range(10))

    def test_images_have_ink(self):
        ds = SyntheticMNIST(n_samples=16, seed=0)
        # every digit draws something substantial
        assert (ds.images.reshape(16, -1).sum(axis=1) > 10).all()

    def test_classes_are_distinguishable(self):
        """Nearest-class-mean classification beats chance by a wide
        margin — the classes carry learnable signal."""
        train = SyntheticMNIST(n_samples=400, seed=0, noise=0.02)
        test = SyntheticMNIST(n_samples=100, seed=9, noise=0.02)
        means = np.stack([
            train.images[train.labels == c].reshape(-1, 784).mean(axis=0)
            for c in range(10)
        ])
        flat = test.images.reshape(-1, 784)
        predictions = np.argmin(
            ((flat[:, None, :] - means[None]) ** 2).sum(axis=2), axis=1
        )
        accuracy = (predictions == test.labels).mean()
        assert accuracy > 0.5  # chance is 0.1

    def test_invalid_sample_count(self):
        with pytest.raises(ValueError):
            SyntheticMNIST(n_samples=0)


class TestSyntheticCIFAR10:
    def test_shapes(self):
        ds = SyntheticCIFAR10(n_samples=16, seed=0)
        assert ds.images.shape == (16, 3, 32, 32)
        assert ds.shape == (3, 32, 32)

    def test_value_range(self):
        ds = SyntheticCIFAR10(n_samples=16, seed=0)
        assert ds.images.min() >= 0.0 and ds.images.max() <= 1.0

    def test_deterministic(self):
        a = SyntheticCIFAR10(n_samples=8, seed=7)
        b = SyntheticCIFAR10(n_samples=8, seed=7)
        assert np.array_equal(a.images, b.images)

    def test_color_signatures_differ(self):
        ds = SyntheticCIFAR10(n_samples=400, seed=0)
        channel_means = np.stack([
            ds.images[ds.labels == c].mean(axis=(0, 2, 3))
            for c in range(10)
        ])
        # class hues are distinct: pairwise distances are non-trivial
        from itertools import combinations
        distances = [np.linalg.norm(channel_means[a] - channel_means[b])
                     for a, b in combinations(range(10), 2)]
        assert min(distances) > 0.01

    def test_classes_distinguishable(self):
        train = SyntheticCIFAR10(n_samples=400, seed=0, noise=0.02)
        test = SyntheticCIFAR10(n_samples=100, seed=9, noise=0.02)
        dim = 3 * 32 * 32
        means = np.stack([
            train.images[train.labels == c].reshape(-1, dim).mean(axis=0)
            for c in range(10)
        ])
        flat = test.images.reshape(-1, dim)
        predictions = np.argmin(
            ((flat[:, None, :] - means[None]) ** 2).sum(axis=2), axis=1
        )
        assert (predictions == test.labels).mean() > 0.4


class TestRegistry:
    def test_default_sources_registered(self):
        from repro.data import register_default_sources
        from repro.framework.layers.data import create_source
        register_default_sources()
        for name in ("synth_mnist_train", "synth_mnist_test",
                     "synth_cifar_train", "synth_cifar_test"):
            src = create_source(name)
            assert src.size > 0

    def test_sources_share_cached_dataset(self):
        from repro.data import register_default_sources
        from repro.framework.layers.data import create_source
        register_default_sources()
        a = create_source("synth_mnist_train")
        b = create_source("synth_mnist_train")
        assert a is not b  # independent cursors
        assert np.array_equal(a.next_batch(4)[0], b.next_batch(4)[0])
