"""Unit tests for batch sources."""

import numpy as np
import pytest

from repro.data import ArrayBatchSource


def source(n=10, shuffle=False, seed=0):
    images = np.arange(n * 4, dtype=np.float32).reshape(n, 1, 2, 2)
    labels = np.arange(n, dtype=np.int64)
    return ArrayBatchSource(images, labels, shuffle=shuffle, seed=seed)


class TestArrayBatchSource:
    def test_shape(self):
        assert source().shape == (1, 2, 2)

    def test_sequential_order(self):
        s = source()
        _, labels = s.next_batch(4)
        assert list(labels) == [0, 1, 2, 3]
        _, labels = s.next_batch(4)
        assert list(labels) == [4, 5, 6, 7]

    def test_wrap_around(self):
        s = source(n=5)
        _, labels = s.next_batch(8)
        assert list(labels) == [0, 1, 2, 3, 4, 0, 1, 2]
        assert s.epochs_completed == 1

    def test_batch_larger_than_dataset(self):
        s = source(n=3)
        _, labels = s.next_batch(7)
        assert list(labels) == [0, 1, 2, 0, 1, 2, 0]
        assert s.epochs_completed == 2

    def test_images_match_labels(self):
        s = source()
        images, labels = s.next_batch(3)
        for img, lab in zip(images, labels):
            assert img.ravel()[0] == lab * 4

    def test_shuffle_deterministic_per_seed(self):
        a, b = source(shuffle=True, seed=3), source(shuffle=True, seed=3)
        assert np.array_equal(a.next_batch(10)[1], b.next_batch(10)[1])

    def test_shuffle_changes_order(self):
        s = source(n=50, shuffle=True, seed=1)
        _, labels = s.next_batch(50)
        assert not np.array_equal(labels, np.arange(50))
        assert sorted(labels) == list(range(50))  # still a permutation

    def test_reshuffles_each_epoch(self):
        s = source(n=20, shuffle=True, seed=2)
        first = s.next_batch(20)[1]
        second = s.next_batch(20)[1]
        assert not np.array_equal(first, second)

    def test_reset(self):
        s = source()
        s.next_batch(3)
        s.reset()
        assert list(s.next_batch(3)[1]) == [0, 1, 2]

    def test_validation(self):
        with pytest.raises(ValueError, match="n, C, H, W"):
            ArrayBatchSource(np.zeros((3, 4)), np.zeros(3))
        with pytest.raises(ValueError, match="labels"):
            ArrayBatchSource(np.zeros((3, 1, 2, 2)), np.zeros(4))
        with pytest.raises(ValueError, match="at least one"):
            ArrayBatchSource(np.zeros((0, 1, 2, 2)), np.zeros(0))
        with pytest.raises(ValueError, match="batch_size"):
            source().next_batch(0)
