"""Unit tests for learning-rate policies."""

import math

import pytest

from repro.framework.solvers import learning_rate


class TestPolicies:
    def test_fixed(self):
        assert learning_rate("fixed", 0.01, 500) == 0.01

    def test_step(self):
        assert learning_rate("step", 1.0, 0, gamma=0.5, stepsize=10) == 1.0
        assert learning_rate("step", 1.0, 10, gamma=0.5, stepsize=10) == 0.5
        assert learning_rate("step", 1.0, 25, gamma=0.5, stepsize=10) == 0.25

    def test_exp(self):
        assert learning_rate("exp", 1.0, 3, gamma=0.5) == pytest.approx(0.125)

    def test_inv_matches_caffe_formula(self):
        # LeNet solver: base_lr 0.01, gamma 0.0001, power 0.75
        for iteration in (0, 100, 10000):
            expected = 0.01 * (1 + 0.0001 * iteration) ** (-0.75)
            assert learning_rate(
                "inv", 0.01, iteration, gamma=0.0001, power=0.75
            ) == pytest.approx(expected)

    def test_multistep(self):
        values = (10, 20)
        assert learning_rate("multistep", 1.0, 5, gamma=0.1,
                             stepvalues=values) == 1.0
        assert learning_rate("multistep", 1.0, 15, gamma=0.1,
                             stepvalues=values) == pytest.approx(0.1)
        assert learning_rate("multistep", 1.0, 25, gamma=0.1,
                             stepvalues=values) == pytest.approx(0.01)

    def test_poly(self):
        assert learning_rate("poly", 1.0, 0, power=2, max_iter=10) == 1.0
        assert learning_rate("poly", 1.0, 5, power=2, max_iter=10) == \
            pytest.approx(0.25)
        assert learning_rate("poly", 1.0, 10, power=2, max_iter=10) == 0.0

    def test_sigmoid(self):
        mid = learning_rate("sigmoid", 1.0, 10, gamma=0.5, stepsize=10)
        assert mid == pytest.approx(0.5)
        late = learning_rate("sigmoid", 1.0, 100, gamma=0.5, stepsize=10)
        assert late == pytest.approx(1.0, abs=1e-6)

    def test_monotone_decay(self):
        for policy, kwargs in [
            ("inv", dict(gamma=0.01, power=0.75)),
            ("exp", dict(gamma=0.99)),
            ("poly", dict(power=1.0, max_iter=100)),
        ]:
            rates = [learning_rate(policy, 1.0, i, **kwargs)
                     for i in range(0, 100, 10)]
            assert rates == sorted(rates, reverse=True)

    def test_errors(self):
        with pytest.raises(ValueError, match="unknown lr_policy"):
            learning_rate("cosine", 1.0, 0)
        with pytest.raises(ValueError, match="non-negative"):
            learning_rate("fixed", 1.0, -1)
        with pytest.raises(ValueError, match="stepsize"):
            learning_rate("step", 1.0, 5, stepsize=0)
        with pytest.raises(ValueError, match="max_iter"):
            learning_rate("poly", 1.0, 5, max_iter=0)
