"""Unit tests for the SGD / AdaGrad / Nesterov solvers."""

import numpy as np
import pytest

from repro.framework.net import Net
from repro.framework.prototxt import parse_prototxt
from repro.framework.solvers import (
    AdaGradSolver,
    NesterovSolver,
    SGDSolver,
    SolverParams,
    create_solver,
)


def quadratic_net() -> Net:
    """ip -> EuclideanLoss against zeros: minimizes ||W x + b||^2."""
    spec = parse_prototxt("""
    name: "quad"
    layer { name: "in" type: "Input" top: "data" top: "target"
            input_param { shape { dim: 4 dim: 3 } shape { dim: 4 dim: 2 } } }
    layer { name: "ip" type: "InnerProduct" bottom: "data" top: "ip"
            inner_product_param { num_output: 2 filler_seed: 9
                weight_filler { type: "gaussian" std: 1.0 } } }
    layer { name: "loss" type: "EuclideanLoss" bottom: "ip" bottom: "target"
            top: "loss" }
    """)
    net = Net(spec)
    rng = np.random.default_rng(4)
    net.blob("data").set_data(rng.standard_normal(12))
    net.blob("target").set_data(np.zeros(8))
    return net


def params(**kw) -> SolverParams:
    defaults = dict(type="SGD", base_lr=0.05, lr_policy="fixed", max_iter=50)
    defaults.update(kw)
    return SolverParams(**defaults)


class TestSGD:
    def test_loss_decreases(self):
        solver = SGDSolver(params(), quadratic_net())
        solver.step(40)
        assert solver.loss_history[-1] < solver.loss_history[0] * 0.2

    def test_momentum_matches_manual_update(self):
        net = quadratic_net()
        solver = SGDSolver(params(momentum=0.9, base_lr=0.01), net)
        weights = net.learnable_params[0]
        w0 = weights.data.copy()
        net.clear_param_diffs()
        net.forward_backward()
        grad = weights.flat_diff.copy()
        solver.apply_update()
        # first step: V = lr * g; W -= V
        assert np.allclose(weights.flat_data, w0.ravel() - 0.01 * grad,
                           atol=1e-6)

    def test_history_tracks_momentum(self):
        net = quadratic_net()
        solver = SGDSolver(params(momentum=0.5), net)
        solver.step(2)
        assert any(np.abs(h).sum() > 0 for h in solver.history)

    def test_lr_mult_scales_update(self):
        # zoo conv layers use lr_mult 2 for biases; emulate via params_lr
        net = quadratic_net()
        solver = SGDSolver(params(base_lr=0.1), net)
        net.params_lr[0] = 0.0  # freeze weights
        w0 = net.learnable_params[0].data.copy()
        solver.step(3)
        assert np.allclose(net.learnable_params[0].data, w0)

    def test_weight_decay_shrinks_weights(self):
        net = quadratic_net()
        net.blob("data").zero_data()  # no signal: only decay acts
        solver = SGDSolver(params(weight_decay=0.5, base_lr=0.1), net)
        before = net.learnable_params[0].sumsq_data()
        solver.step(5)
        assert net.learnable_params[0].sumsq_data() < before

    def test_clip_gradients(self):
        net = quadratic_net()
        solver = SGDSolver(params(clip_gradients=1e-3), net)
        net.clear_param_diffs()
        net.forward_backward()
        solver._clip_gradients()
        norm = np.sqrt(sum(b.sumsq_diff() for b in net.learnable_params))
        assert norm <= 1e-3 * 1.01

    def test_iter_size_accumulates_and_normalizes(self):
        net = quadratic_net()
        a = SGDSolver(params(iter_size=2, base_lr=0.05), net)
        a.step(3)
        assert len(a.loss_history) == 3


class TestAdaGrad:
    def test_loss_decreases(self):
        solver = AdaGradSolver(params(type="AdaGrad", base_lr=0.3),
                               quadratic_net())
        solver.step(40)
        assert solver.loss_history[-1] < solver.loss_history[0] * 0.5

    def test_rejects_momentum(self):
        with pytest.raises(ValueError, match="momentum"):
            AdaGradSolver(params(type="AdaGrad", momentum=0.9),
                          quadratic_net())

    def test_history_accumulates_squares(self):
        net = quadratic_net()
        solver = AdaGradSolver(params(type="AdaGrad"), net)
        solver.step(1)
        assert all((h >= 0).all() for h in solver.history)
        h1 = [h.copy() for h in solver.history]
        solver.step(1)
        assert all((h2 >= h1_i).all()
                   for h2, h1_i in zip(solver.history, h1))


class TestNesterov:
    def test_loss_decreases(self):
        solver = NesterovSolver(params(type="Nesterov", momentum=0.9,
                                       base_lr=0.02), quadratic_net())
        solver.step(40)
        assert solver.loss_history[-1] < solver.loss_history[0] * 0.2

    def test_first_step_matches_sgd_scaled(self):
        """With V0 = 0, Nesterov's first step is (1 + mu) * lr * g."""
        net_a, net_b = quadratic_net(), quadratic_net()
        sgd = SGDSolver(params(base_lr=0.01), net_a)
        nest = NesterovSolver(params(type="Nesterov", momentum=0.5,
                                     base_lr=0.01), net_b)
        sgd.step(1)
        nest.step(1)
        wa = net_a.learnable_params[0].data
        wb = net_b.learnable_params[0].data
        w0 = quadratic_net().learnable_params[0].data
        assert np.allclose(w0 - wb, 1.5 * (w0 - wa), atol=1e-6)


class TestFactoryAndLoop:
    def test_create_solver(self):
        net = quadratic_net()
        assert isinstance(create_solver(params(type="sgd"), net), SGDSolver)
        assert isinstance(
            create_solver(params(type="AdaGrad"), net), AdaGradSolver
        )
        with pytest.raises(ValueError, match="unknown solver"):
            create_solver(params(type="adam"), net)

    def test_solve_runs_to_max_iter(self):
        solver = SGDSolver(params(max_iter=7), quadratic_net())
        solver.solve()
        assert solver.iteration == 7

    def test_invalid_iter_size(self):
        with pytest.raises(ValueError, match="iter_size"):
            SGDSolver(params(iter_size=0), quadratic_net())

    def test_display_callback(self):
        lines = []
        solver = SGDSolver(params(display=1), quadratic_net())
        solver.set_display(lines.append)
        solver.step(3)
        assert len(lines) == 3 and "loss" in lines[0]
