"""Unit tests for the fine-grain GPU model (Figures 6 and 9)."""

import pytest

from repro.simulator import (
    CPUModel,
    GPUModel,
    K40_CUDNN,
    K40_PLAIN,
    net_costs,
)
from repro.zoo import build_net


@pytest.fixture(scope="module")
def lenet_costs():
    net = build_net("lenet")
    net.forward()
    return net_costs(net)


@pytest.fixture(scope="module")
def cifar_costs():
    net = build_net("cifar10")
    net.forward()
    return net_costs(net)


@pytest.fixture(scope="module")
def models():
    cpu = CPUModel()
    return cpu, GPUModel(K40_PLAIN, host=cpu), GPUModel(K40_CUDNN, host=cpu)


class TestMnistGpuShapes:
    """Figure 6's qualitative structure."""

    def test_plain_pooling_huge_conv_poor(self, models, lenet_costs):
        _, plain, _ = models
        sp = plain.layer_speedups(lenet_costs)
        assert sp["pool1.fwd"] > 25      # paper: 57x
        assert sp["pool2.fwd"] > 25      # paper: 62x
        assert sp["conv1.fwd"] < 3       # paper: 1.11x
        assert sp["conv2.fwd"] < 5       # paper: 1.63x

    def test_plain_conv1_backward_near_or_below_serial(self, models,
                                                       lenet_costs):
        """The paper's striking outlier: plain conv1 backward runs at
        0.43x — slower than one CPU core."""
        _, plain, _ = models
        assert plain.layer_speedups(lenet_costs)["conv1.bwd"] < 1.0

    def test_cudnn_fixes_convolutions(self, models, lenet_costs):
        _, plain, cudnn = models
        for key in ("conv1.fwd", "conv2.fwd", "conv1.bwd", "conv2.bwd"):
            assert cudnn.layer_speedups(lenet_costs)[key] > \
                plain.layer_speedups(lenet_costs)[key]

    def test_cudnn_pooling_regression(self, models, lenet_costs):
        """Paper: pool2 forward drops 62x -> 27x under cuDNN."""
        _, plain, cudnn = models
        assert cudnn.layer_speedups(lenet_costs)["pool2.fwd"] < \
            plain.layer_speedups(lenet_costs)["pool2.fwd"]

    def test_cudnn_relu_regression(self, models, lenet_costs):
        _, plain, cudnn = models
        assert cudnn.layer_speedups(lenet_costs)["relu1.fwd"] < \
            plain.layer_speedups(lenet_costs)["relu1.fwd"]

    def test_overall_ordering(self, models, lenet_costs):
        """Paper Fig 6 left: plain ~2x < OpenMP-16 ~8x < cuDNN ~12x."""
        cpu, plain, cudnn = models
        omp16 = cpu.speedup(lenet_costs, 16)
        assert plain.speedup(lenet_costs) < omp16 < cudnn.speedup(lenet_costs)

    def test_overall_magnitudes(self, models, lenet_costs):
        _, plain, cudnn = models
        assert 1.0 < plain.speedup(lenet_costs) < 4.0    # paper 2x
        assert 8.0 < cudnn.speedup(lenet_costs) < 18.0   # paper 12x


class TestCifarGpuShapes:
    """Figure 9's qualitative structure."""

    def test_plain_layer_magnitudes(self, models, cifar_costs):
        _, plain, _ = models
        sp = plain.layer_speedups(cifar_costs)
        assert sp["pool1.fwd"] > 60     # paper ~110x
        assert sp["norm1.fwd"] > 20     # paper ~40x
        assert 1.5 < sp["conv1.fwd"] < 8  # paper 1.8-6x

    def test_cudnn_conv_huge(self, models, cifar_costs):
        _, _, cudnn = models
        assert cudnn.layer_speedups(cifar_costs)["conv2.fwd"] > 30  # ~50x

    def test_cudnn_ave_pooling_regression(self, models, cifar_costs):
        """Paper: pool3 forward 42x -> 11.75x under cuDNN."""
        _, plain, cudnn = models
        plain_sp = plain.layer_speedups(cifar_costs)["pool3.fwd"]
        cudnn_sp = cudnn.layer_speedups(cifar_costs)["pool3.fwd"]
        assert cudnn_sp < plain_sp / 2

    def test_overall_crossover(self, models, cifar_costs):
        """Paper Fig 9: plain-GPU ~6x sits NEAR OpenMP-16 (8.83x) —
        coarse-grain CPU beats the native GPU port — while cuDNN (27x)
        wins outright."""
        cpu, plain, cudnn = models
        omp16 = cpu.speedup(cifar_costs, 16)
        plain_sp = plain.speedup(cifar_costs)
        cudnn_sp = cudnn.speedup(cifar_costs)
        assert plain_sp < omp16
        assert plain_sp > 3.0          # but same league (paper 6 vs 8.83)
        assert cudnn_sp > 1.8 * omp16  # cuDNN far ahead (paper 27 vs 8.83)

    def test_data_layer_stays_serial_on_gpu(self, models, cifar_costs):
        _, plain, _ = models
        data = next(c for c in cifar_costs if c.serial)
        cpu_time = models[0].layer_time(data, 1)
        assert plain.layer_time(data) > cpu_time  # host time + transfer
