"""Unit tests for per-layer cost extraction."""

import pytest

from repro.simulator import net_costs
from repro.simulator.cost_model import producer_dist
from repro.zoo import build_net


@pytest.fixture(scope="module")
def lenet_costs():
    net = build_net("lenet")
    net.forward()
    return net_costs(net)


def by_key(costs):
    return {cost.key: cost for cost in costs}


class TestLeNetCosts:
    def test_all_layers_present(self, lenet_costs):
        keys = {c.key for c in lenet_costs}
        for name in ("conv1", "pool1", "conv2", "pool2", "ip1", "ip2",
                     "relu1", "loss"):
            assert f"{name}.fwd" in keys and f"{name}.bwd" in keys
        assert "mnist.fwd" in keys  # data layer, forward only

    def test_conv_flops(self, lenet_costs):
        # conv1: 64 x 20 x 24 x 24 x (1 x 25) MACs x 2 + bias adds
        conv1 = by_key(lenet_costs)["conv1.fwd"]
        macs = 64 * 20 * 24 * 24 * 25
        assert conv1.flops == pytest.approx(2 * macs + 64 * 20 * 24 * 24)

    def test_conv_space_is_batch(self, lenet_costs):
        assert by_key(lenet_costs)["conv1.fwd"].space == 64

    def test_pooling_space_is_sample_channel(self, lenet_costs):
        assert by_key(lenet_costs)["pool1.fwd"].space == 64 * 20

    def test_relu_fully_coalesced(self, lenet_costs):
        relu = by_key(lenet_costs)["relu1.fwd"]
        assert relu.space == 64 * 500  # ip1 output elements

    def test_data_layer_serial(self, lenet_costs):
        data = by_key(lenet_costs)["mnist.fwd"]
        assert data.serial and data.dist == "serial"

    def test_only_conv_has_reduction(self, lenet_costs):
        reducers = {c.name for c in lenet_costs if c.reduction_bytes > 0}
        assert reducers == {"conv1", "conv2"}

    def test_conv_reduction_matches_param_bytes(self, lenet_costs):
        conv2 = by_key(lenet_costs)["conv2.bwd"]
        assert conv2.reduction_bytes == (50 * 20 * 25 + 50) * 4

    def test_dominant_layers(self, lenet_costs):
        """Paper Fig 4: conv+pool dominate the serial execution."""
        from repro.simulator import CPUModel
        model = CPUModel()
        times = model.layer_times(lenet_costs, 1)
        total = sum(times.values())
        convpool = sum(v for k, v in times.items()
                       if k.startswith(("conv", "pool")))
        assert convpool / total > 0.7

    def test_pooling_variant_recorded(self, lenet_costs):
        assert by_key(lenet_costs)["pool1.fwd"].variant == "MAX"


class TestProducerDist:
    def test_forward_chain(self, lenet_costs):
        costs = list(lenet_costs)
        index = next(i for i, c in enumerate(costs)
                     if c.key == "conv1.fwd")
        assert producer_dist(costs, index) == "serial"  # fed by data layer

    def test_backward_chain(self, lenet_costs):
        costs = list(lenet_costs)
        index = next(i for i, c in enumerate(costs)
                     if c.key == "conv2.bwd")
        # conv2's backward input comes from pool2's backward
        assert producer_dist(costs, index) == "sample-channel"

    def test_first_layer_has_no_producer(self, lenet_costs):
        costs = list(lenet_costs)
        index = next(i for i, c in enumerate(costs) if c.pass_ == "forward")
        assert producer_dist(costs, index) is None


class TestCifarCosts:
    def test_lrn_present(self):
        net = build_net("cifar10")
        net.forward()
        costs = net_costs(net)
        keys = {c.key for c in costs}
        assert "norm1.fwd" in keys and "norm2.bwd" in keys

    def test_ave_pooling_variant(self):
        net = build_net("cifar10")
        net.forward()
        variants = {c.name: c.variant for c in net_costs(net)
                    if c.type == "Pooling" and c.pass_ == "forward"}
        assert variants == {"pool1": "MAX", "pool2": "AVE", "pool3": "AVE"}
