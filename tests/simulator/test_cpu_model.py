"""Unit tests for the coarse-grain CPU model (Figures 4, 5, 7, 8)."""

import pytest

from repro.simulator import CPUModel, net_costs
from repro.simulator.cost_model import LayerCost
from repro.zoo import build_net


@pytest.fixture(scope="module")
def model():
    return CPUModel()


@pytest.fixture(scope="module")
def lenet_costs():
    net = build_net("lenet")
    net.forward()
    return net_costs(net)


@pytest.fixture(scope="module")
def cifar_costs():
    net = build_net("cifar10")
    net.forward()
    return net_costs(net)


def synthetic_cost(**kw):
    defaults = dict(name="x", type="Convolution", pass_="forward",
                    flops=1e8, bytes=1e6, space=64, segments=64,
                    dist="sample")
    defaults.update(kw)
    return LayerCost(**defaults)


class TestBuildingBlocks:
    def test_bandwidth_monotone(self, model):
        bws = [model.dram_bandwidth(t) for t in (1, 2, 4, 8, 12, 16)]
        assert bws == sorted(bws)

    def test_bandwidth_sublinear(self, model):
        assert model.dram_bandwidth(8) < 8 * model.dram_bandwidth(1)

    def test_effective_cores_numa_discount(self, model):
        assert model.effective_cores(8) == 8
        assert model.effective_cores(16) < 16

    def test_memory_time_cache_path(self, model):
        small = model.params.cache_resident_bytes * 2
        # at 4 threads, per-thread set fits cache -> faster than DRAM
        cached = model.memory_time(small, 4)
        assert cached < small / model.dram_bandwidth(4)

    def test_invalid_threads(self, model):
        with pytest.raises(ValueError):
            model.layer_time(synthetic_cost(), 0)


class TestEdgeCases:
    """Degenerate inputs the planner and perfcheck may hand the model."""

    def test_threads_beyond_cores(self, model):
        """Oversubscription must not crash or predict negative time."""
        t = model.layer_time(synthetic_cost(), 32)
        assert t > 0
        # the NUMA discount keeps the gain over the full machine mild
        assert t > model.layer_time(synthetic_cost(), 16) / 4

    def test_zero_flop_layer(self, model):
        """A pure data-movement pass is priced by memory + dispatch."""
        cost = synthetic_cost(flops=0.0)
        t1 = model.layer_time(cost, 1)
        t8 = model.layer_time(cost, 8)
        assert t1 > 0
        assert 0 < t8 < t1

    def test_empty_iteration_space(self, model):
        """space=0 (nothing chunkable) degrades to serial + fork-join."""
        cost = synthetic_cost(space=0, segments=0)
        t1 = model.layer_time(cost, 1)
        t8 = model.layer_time(cost, 8)
        assert t1 > 0
        assert t8 >= t1  # threads only add overhead

    def test_bandwidth_monotone_nondecreasing_past_cores(self, model):
        bws = [model.dram_bandwidth(t) for t in range(1, 33)]
        assert all(b2 >= b1 for b1, b2 in zip(bws, bws[1:]))
        # saturates: the last doubling buys no bandwidth
        assert bws[31] == bws[15]


class TestLayerBehaviours:
    def test_serial_layer_never_speeds_up(self, model):
        cost = synthetic_cost(serial=True, dist="serial", type="Data")
        t1 = model.layer_time(cost, 1)
        t16 = model.layer_time(cost, 16)
        assert t16 == pytest.approx(t1)

    def test_compute_bound_scales(self, model):
        cost = synthetic_cost(flops=1e9, bytes=1e5, space=1024, segments=64)
        assert model.layer_time(cost, 1) / model.layer_time(cost, 8) > 5

    def test_imbalance_hurts_coarse_spaces(self, model):
        # space 9 over 8 threads: busiest thread does 2/9 of the work
        coarse = synthetic_cost(space=9, segments=9)
        fine = synthetic_cost(space=9 * 64, segments=9)
        assert (model.layer_time(fine, 8) <
                model.layer_time(coarse, 8))

    def test_reduction_cost_grows_with_threads(self, model):
        cost = synthetic_cost(pass_="backward", reduction_bytes=1e5,
                              flops=1e6)
        t4 = model.layer_time(cost, 4)
        t16 = model.layer_time(cost, 16)
        # reduction term is linear in T and dominates this tiny layer
        assert t16 > t4

    def test_serial_producer_locality_penalty(self, model):
        cost = synthetic_cost(input_bytes=5e6)
        clean = model.layer_time(cost, 8, producer="sample")
        dirty = model.layer_time(cost, 8, producer="serial")
        assert dirty > clean


class TestPaperShapes:
    """The headline qualitative results of Figures 4-8."""

    def test_mnist_overall_speedups(self, model, lenet_costs):
        s8 = model.speedup(lenet_costs, 8)
        s16 = model.speedup(lenet_costs, 16)
        assert 5.0 < s8 < 7.5      # paper: ~6x
        assert 7.0 < s16 < 9.5     # paper: ~8x
        assert s16 > s8

    def test_cifar_overall_speedups(self, model, cifar_costs):
        s8 = model.speedup(cifar_costs, 8)
        s16 = model.speedup(cifar_costs, 16)
        assert 5.0 < s8 < 8.5      # paper: ~6x
        assert 7.5 < s16 < 11.5    # paper: 8.83x

    def test_mnist_ip1_plateau(self, model, lenet_costs):
        """Paper Fig 5: ip1 stalls near 4.6-5.9x beyond 8 threads."""
        speedups = model.layer_speedups(lenet_costs, 8)
        s8 = speedups["ip1.fwd"]
        s16 = model.layer_speedups(lenet_costs, 16)["ip1.fwd"]
        assert 3.5 < s8 < 6.0
        assert s16 < s8 * 1.5  # plateau, not linear growth

    def test_mnist_conv1_slower_than_conv2(self, model, lenet_costs):
        """Paper: conv1 trails conv2 by ~10% (serial data layer
        footprint)."""
        speedups = model.layer_speedups(lenet_costs, 16)
        assert speedups["conv1.fwd"] < speedups["conv2.fwd"]

    def test_u_shape_small_layers_do_not_scale(self, model, lenet_costs):
        """The u-shape of Fig 5: the tiny loss/ip2 layers stay near 1x
        while conv layers scale."""
        speedups = model.layer_speedups(lenet_costs, 16)
        assert speedups["loss.fwd"] < 3.0
        assert speedups["conv2.fwd"] > 8.0

    def test_cifar_norm1_scales(self, model, cifar_costs):
        s16 = model.layer_speedups(cifar_costs, 16)["norm1.fwd"]
        assert 8.0 < s16 < 13.0  # paper: 10.8x

    def test_speedup_curve_monotone_to_8(self, model, lenet_costs):
        curve = model.speedup_curve(lenet_costs, [1, 2, 4, 8])
        assert curve == sorted(curve)
        assert curve[0] == pytest.approx(1.0)
