"""Unit tests for the report/table builders."""

import pytest

from repro.bench import lenet_costs, models
from repro.simulator.report import (
    format_table,
    gpu_layer_speedup_table,
    layer_scalability_table,
    layer_time_table,
    overall_speedup_table,
    relative_weights,
)


class TestTables:
    def test_layer_time_table_shape(self):
        cpu = models()[0]
        keys, rows = layer_time_table(lenet_costs(), cpu, (1, 4, 16))
        assert len(rows) == 3
        assert all(len(row) == len(keys) for row in rows)
        assert all(value > 0 for row in rows for value in row)

    def test_times_decrease_with_threads(self):
        cpu = models()[0]
        keys, rows = layer_time_table(lenet_costs(), cpu, (1, 8))
        serial, parallel = rows
        conv_index = keys.index("conv2.fwd")
        assert parallel[conv_index] < serial[conv_index]

    def test_relative_weights_sum_to_one(self):
        cpu = models()[0]
        weights = relative_weights(lenet_costs(), cpu, 4)
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_scalability_table_serial_row_absent(self):
        cpu = models()[0]
        keys, rows = layer_scalability_table(lenet_costs(), cpu, (2, 16))
        assert len(rows) == 2
        # at 2 threads, nothing exceeds 2.1x
        assert max(rows[0]) < 2.2

    def test_overall_table_keys(self):
        cpu, plain, cudnn = models()
        table = overall_speedup_table(lenet_costs(), cpu, plain, cudnn)
        assert set(table) == {
            "OpenMP-2T", "OpenMP-4T", "OpenMP-8T", "OpenMP-12T",
            "OpenMP-16T", "plain-GPU", "cuDNN-GPU",
        }

    def test_gpu_table_alignment(self):
        _, plain, cudnn = models()
        keys, plain_sp, cudnn_sp = gpu_layer_speedup_table(
            lenet_costs(), plain, cudnn
        )
        assert len(keys) == len(plain_sp) == len(cudnn_sp)

    def test_format_table_renders(self):
        text = format_table(["a", "b"], [["x", 1.5], ["y", 2.25]], width=8)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.50" in lines[2] and "2.25" in lines[3]
