"""Tests for the network zoo: the paper's Figure 3 structures."""

import numpy as np
import pytest

from repro.zoo import build_net, build_solver


class TestLeNetStructure:
    @pytest.fixture(scope="class")
    def net(self):
        net = build_net("lenet")
        net.forward()
        return net

    def test_layer_stack(self, net):
        assert net.layer_names == [
            "mnist", "conv1", "pool1", "conv2", "pool2",
            "ip1", "relu1", "ip2", "loss",
        ]

    def test_blob_shapes_match_lenet(self, net):
        """The dimensionality-reduction chain of Fig 3 (28->24->12->8->4)."""
        assert net.blob("data").shape == (64, 1, 28, 28)
        assert net.blob("conv1").shape == (64, 20, 24, 24)
        assert net.blob("pool1").shape == (64, 20, 12, 12)
        assert net.blob("conv2").shape == (64, 50, 8, 8)
        assert net.blob("pool2").shape == (64, 50, 4, 4)
        assert net.blob("ip1").shape == (64, 500)
        assert net.blob("ip2").shape == (64, 10)

    def test_parameter_counts(self, net):
        counts = {name: sum(b.count for b in net.layer(name).blobs)
                  for name in ("conv1", "conv2", "ip1", "ip2")}
        assert counts == {
            "conv1": 20 * 25 + 20,
            "conv2": 50 * 20 * 25 + 50,
            "ip1": 500 * 800 + 500,
            "ip2": 10 * 500 + 10,
        }

    def test_test_phase_has_accuracy(self):
        net = build_net("lenet", phase="TEST")
        net.forward()
        assert 0.0 <= float(net.blob("accuracy").flat_data[0]) <= 1.0


class TestCifarStructure:
    @pytest.fixture(scope="class")
    def net(self):
        net = build_net("cifar10")
        net.forward()
        return net

    def test_layer_stack(self, net):
        assert net.layer_names == [
            "cifar", "conv1", "pool1", "relu1", "norm1",
            "conv2", "relu2", "pool2", "norm2",
            "conv3", "relu3", "pool3", "ip1", "loss",
        ]

    def test_three_levels(self, net):
        """The paper's three-level organization with shrinking maps."""
        assert net.blob("conv1").shape == (100, 32, 32, 32)
        assert net.blob("pool1").shape == (100, 32, 16, 16)
        assert net.blob("conv2").shape == (100, 32, 16, 16)
        assert net.blob("pool2").shape == (100, 32, 8, 8)
        assert net.blob("conv3").shape == (100, 64, 8, 8)
        assert net.blob("pool3").shape == (100, 64, 4, 4)
        assert net.blob("ip1").shape == (100, 10)

    def test_pool_methods(self, net):
        assert net.layer("pool1").method == "MAX"
        assert net.layer("pool2").method == "AVE"
        assert net.layer("pool3").method == "AVE"

    def test_initial_loss_near_log10(self, net):
        loss = float(net.blob("loss").flat_data[0])
        assert loss == pytest.approx(np.log(10), abs=0.3)


class TestBuilders:
    def test_unknown_network(self):
        with pytest.raises(KeyError, match="unknown zoo network"):
            build_net("alexnet")

    def test_build_solver_with_test_net(self):
        solver = build_solver("lenet", max_iter=2, with_test_net=True)
        assert solver.test_net is not None
        # parameters shared: training moves the test net's weights
        train_w = solver.net.layer("conv1").blobs[0]
        test_w = solver.test_net.layer("conv1").blobs[0]
        assert train_w is test_w

    def test_solver_params_match_caffe(self):
        from repro.zoo import cifar10_solver_params, lenet_solver_params
        lenet = lenet_solver_params()
        assert (lenet.base_lr, lenet.momentum, lenet.weight_decay) == \
            (0.01, 0.9, 0.0005)
        assert lenet.lr_policy == "inv"
        cifar = cifar10_solver_params()
        assert (cifar.base_lr, cifar.weight_decay) == (0.001, 0.004)


class TestMlp:
    """The zoo's non-convolutional network (generality witness)."""

    def test_structure(self):
        net = build_net("mlp")
        net.forward()
        assert "flatten" in net.layer_names
        assert net.blob("fc1").shape == (64, 128)
        assert net.blob("fc2").shape == (64, 10)

    def test_trains(self):
        solver = build_solver("mlp", max_iter=25, with_test_net=True)
        solver.step(25)
        assert solver.loss_history[-1] < solver.loss_history[0]
        assert solver.test() > 0.3

    def test_dropout_phase_switch(self):
        train_net = build_net("mlp", phase="TRAIN")
        test_net = build_net("mlp", phase="TEST")
        assert train_net.layer("drop1").train_mode is True
        assert test_net.layer("drop1").train_mode is False

    def test_parallel_bitwise_invariant(self):
        import numpy as np
        from repro.core import ParallelExecutor

        def run(executor=None):
            solver = build_solver("mlp", max_iter=4, executor=executor)
            solver.step(4)
            return solver.loss_history

        sequential = run()
        with ParallelExecutor(num_threads=3, reduction="blockwise") as ex:
            parallel = run(ex)
        assert parallel == sequential
