"""Unit tests for gemm / gemv / ger against numpy references."""

import numpy as np
import pytest

from repro import blaslib
from repro.blaslib import use_backend


@pytest.fixture
def mats(rng):
    a = rng.standard_normal((4, 3)).astype(np.float32)
    b = rng.standard_normal((3, 5)).astype(np.float32)
    c = rng.standard_normal((4, 5)).astype(np.float32)
    return a, b, c


class TestGemm:
    def test_plain(self, mats):
        a, b, c = mats
        expected = a @ b
        blaslib.gemm(False, False, 1.0, a, b, 0.0, c)
        assert np.allclose(c, expected, atol=1e-5)

    def test_alpha_beta(self, mats):
        a, b, c = mats
        expected = 2.0 * (a @ b) + 0.5 * c
        blaslib.gemm(False, False, 2.0, a, b, 0.5, c)
        assert np.allclose(c, expected, atol=1e-5)

    def test_trans_a(self, rng):
        a = rng.standard_normal((3, 4)).astype(np.float32)
        b = rng.standard_normal((3, 5)).astype(np.float32)
        c = np.zeros((4, 5), dtype=np.float32)
        blaslib.gemm(True, False, 1.0, a, b, 0.0, c)
        assert np.allclose(c, a.T @ b, atol=1e-5)

    def test_trans_b(self, rng):
        a = rng.standard_normal((4, 3)).astype(np.float32)
        b = rng.standard_normal((5, 3)).astype(np.float32)
        c = np.zeros((4, 5), dtype=np.float32)
        blaslib.gemm(False, True, 1.0, a, b, 0.0, c)
        assert np.allclose(c, a @ b.T, atol=1e-5)

    def test_both_trans(self, rng):
        a = rng.standard_normal((3, 4)).astype(np.float32)
        b = rng.standard_normal((5, 3)).astype(np.float32)
        c = np.zeros((4, 5), dtype=np.float32)
        blaslib.gemm(True, True, 1.0, a, b, 0.0, c)
        assert np.allclose(c, a.T @ b.T, atol=1e-5)

    def test_inner_mismatch(self, rng):
        a = rng.standard_normal((4, 3)).astype(np.float32)
        b = rng.standard_normal((4, 5)).astype(np.float32)
        with pytest.raises(ValueError, match="inner dimension"):
            blaslib.gemm(False, False, 1.0, a, b, 0.0,
                         np.zeros((4, 5), np.float32))

    def test_output_shape_mismatch(self, mats):
        a, b, _ = mats
        with pytest.raises(ValueError, match="C has shape"):
            blaslib.gemm(False, False, 1.0, a, b, 0.0,
                         np.zeros((2, 2), np.float32))

    def test_reference_backend(self, rng):
        a = rng.standard_normal((2, 3)).astype(np.float32)
        b = rng.standard_normal((3, 2)).astype(np.float32)
        c1 = np.zeros((2, 2), dtype=np.float32)
        c2 = np.zeros((2, 2), dtype=np.float32)
        blaslib.gemm(False, False, 1.0, a, b, 0.0, c1)
        with use_backend("reference"):
            blaslib.gemm(False, False, 1.0, a, b, 0.0, c2)
        assert np.allclose(c1, c2, atol=1e-5)


class TestGemv:
    def test_plain(self, rng):
        a = rng.standard_normal((4, 3)).astype(np.float32)
        x = rng.standard_normal(3).astype(np.float32)
        y = np.zeros(4, dtype=np.float32)
        blaslib.gemv(False, 1.0, a, x, 0.0, y)
        assert np.allclose(y, a @ x, atol=1e-5)

    def test_trans(self, rng):
        a = rng.standard_normal((4, 3)).astype(np.float32)
        x = rng.standard_normal(4).astype(np.float32)
        y = np.zeros(3, dtype=np.float32)
        blaslib.gemv(True, 1.0, a, x, 0.0, y)
        assert np.allclose(y, a.T @ x, atol=1e-5)

    def test_beta_accumulate(self, rng):
        a = rng.standard_normal((2, 2)).astype(np.float32)
        x = rng.standard_normal(2).astype(np.float32)
        y = np.ones(2, dtype=np.float32)
        expected = 0.5 * (a @ x) + 2.0 * y
        blaslib.gemv(False, 0.5, a, x, 2.0, y)
        assert np.allclose(y, expected, atol=1e-5)

    def test_shape_errors(self, rng):
        a = rng.standard_normal((4, 3)).astype(np.float32)
        with pytest.raises(ValueError, match="x has shape"):
            blaslib.gemv(False, 1.0, a, np.zeros(4, np.float32),
                         0.0, np.zeros(4, np.float32))
        with pytest.raises(ValueError, match="y has shape"):
            blaslib.gemv(False, 1.0, a, np.zeros(3, np.float32),
                         0.0, np.zeros(3, np.float32))

    def test_reference_backend(self, rng):
        a = rng.standard_normal((3, 2)).astype(np.float32)
        x = rng.standard_normal(2).astype(np.float32)
        y1 = np.zeros(3, dtype=np.float32)
        y2 = np.zeros(3, dtype=np.float32)
        blaslib.gemv(False, 1.0, a, x, 0.0, y1)
        with use_backend("reference"):
            blaslib.gemv(False, 1.0, a, x, 0.0, y2)
        assert np.allclose(y1, y2, atol=1e-5)


class TestGer:
    def test_rank1_update(self, rng):
        x = rng.standard_normal(3).astype(np.float32)
        y = rng.standard_normal(4).astype(np.float32)
        a = rng.standard_normal((3, 4)).astype(np.float32)
        expected = a + 2.0 * np.outer(x, y)
        blaslib.ger(2.0, x, y, a)
        assert np.allclose(a, expected, atol=1e-5)

    def test_reference(self, rng):
        x = rng.standard_normal(2).astype(np.float32)
        y = rng.standard_normal(2).astype(np.float32)
        a1 = np.zeros((2, 2), dtype=np.float32)
        a2 = np.zeros((2, 2), dtype=np.float32)
        blaslib.ger(1.0, x, y, a1)
        with use_backend("reference"):
            blaslib.ger(1.0, x, y, a2)
        assert np.allclose(a1, a2, atol=1e-5)
