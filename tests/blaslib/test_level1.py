"""Unit tests for level-1 BLAS kernels, including the reference backend."""

import numpy as np
import pytest

from repro import blaslib
from repro.blaslib import use_backend


def vec(*values):
    return np.array(values, dtype=np.float32)


class TestAxpy:
    def test_basic(self):
        y = vec(1, 2, 3)
        blaslib.axpy(2.0, vec(1, 1, 1), y)
        assert np.allclose(y, [3, 4, 5])

    def test_alpha_one_fast_path(self):
        y = vec(1, 2, 3)
        blaslib.axpy(1.0, vec(5, 6, 7), y)
        assert np.allclose(y, [6, 8, 10])

    def test_returns_y(self):
        y = vec(0)
        assert blaslib.axpy(1.0, vec(1), y) is y

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            blaslib.axpy(1.0, vec(1, 2), vec(1))

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            blaslib.axpy(1.0, np.zeros((2, 2), np.float32), vec(1))

    def test_reference_matches_numpy(self):
        x = vec(1, -2, 3.5)
        y1, y2 = vec(4, 5, 6), vec(4, 5, 6)
        blaslib.axpy(-1.5, x, y1)
        with use_backend("reference"):
            blaslib.axpy(-1.5, x, y2)
        assert np.allclose(y1, y2)


class TestAxpby:
    def test_basic(self):
        y = vec(1, 2)
        blaslib.axpby(2.0, vec(3, 4), 0.5, y)
        assert np.allclose(y, [6.5, 9.0])

    def test_reference_matches(self):
        y1, y2 = vec(1, 2), vec(1, 2)
        blaslib.axpby(3.0, vec(1, 1), -2.0, y1)
        with use_backend("reference"):
            blaslib.axpby(3.0, vec(1, 1), -2.0, y2)
        assert np.allclose(y1, y2)


class TestScalSetCopy:
    def test_scal(self):
        x = vec(2, 4)
        blaslib.scal(0.5, x)
        assert np.allclose(x, [1, 2])

    def test_set_scalar(self):
        x = vec(1, 2, 3)
        blaslib.set_scalar(7.0, x)
        assert np.allclose(x, [7, 7, 7])

    def test_copy(self):
        y = vec(0, 0)
        blaslib.copy(vec(3, 4), y)
        assert np.allclose(y, [3, 4])

    def test_reference_scal(self):
        x = vec(1, 2, 3)
        with use_backend("reference"):
            blaslib.scal(3.0, x)
        assert np.allclose(x, [3, 6, 9])


class TestReductions:
    def test_dot(self):
        assert blaslib.dot(vec(1, 2, 3), vec(4, 5, 6)) == pytest.approx(32.0)

    def test_asum(self):
        assert blaslib.asum(vec(-1, 2, -3)) == pytest.approx(6.0)

    def test_nrm2(self):
        assert blaslib.nrm2(vec(3, 4)) == pytest.approx(5.0)

    def test_empty_vectors(self):
        empty = np.zeros(0, dtype=np.float32)
        assert blaslib.dot(empty, empty) == 0.0
        assert blaslib.asum(empty) == 0.0

    def test_reference_dot(self):
        with use_backend("reference"):
            assert blaslib.dot(vec(1, 2), vec(3, 4)) == pytest.approx(11.0)
