"""Unit tests for backend dispatch and operation accounting."""

import threading

import numpy as np
import pytest

from repro import blaslib
from repro.blaslib import backend_name, op_counter, use_backend


class TestBackendSwitch:
    def test_default_is_numpy(self):
        assert backend_name() == "numpy"

    def test_context_restores(self):
        with use_backend("reference"):
            assert backend_name() == "reference"
        assert backend_name() == "numpy"

    def test_nesting(self):
        with use_backend("reference"):
            with use_backend("numpy"):
                assert backend_name() == "numpy"
            assert backend_name() == "reference"

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown BLAS backend"):
            with use_backend("cuda"):
                pass

    def test_thread_local(self):
        seen = {}

        def worker():
            seen["worker"] = backend_name()

        with use_backend("reference"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["worker"] == "numpy"  # other thread unaffected


class TestOpCounter:
    def test_counts_gemm_flops(self, rng):
        a = rng.standard_normal((4, 3)).astype(np.float32)
        b = rng.standard_normal((3, 5)).astype(np.float32)
        c = np.zeros((4, 5), dtype=np.float32)
        with op_counter() as counter:
            blaslib.gemm(False, False, 1.0, a, b, 0.0, c)
        assert counter.flops["gemm"] == 2 * 4 * 5 * 3
        assert counter.calls["gemm"] == 1
        assert counter.total_bytes() > 0

    def test_multiple_kinds(self, rng):
        x = rng.standard_normal(10).astype(np.float32)
        y = np.zeros(10, dtype=np.float32)
        with op_counter() as counter:
            blaslib.axpy(1.0, x, y)
            blaslib.dot(x, y)
        assert set(counter.flops) == {"axpy", "dot"}
        assert counter.total_calls() == 2

    def test_nested_counters_fold_into_outer(self, rng):
        x = rng.standard_normal(8).astype(np.float32)
        y = np.zeros(8, dtype=np.float32)
        with op_counter() as outer:
            blaslib.axpy(1.0, x, y)
            with op_counter() as inner:
                blaslib.axpy(1.0, x, y)
            assert inner.calls["axpy"] == 1
        assert outer.calls["axpy"] == 2

    def test_no_counter_no_error(self, rng):
        x = rng.standard_normal(4).astype(np.float32)
        blaslib.scal(2.0, x)  # records nowhere, must not raise

    def test_merged_with(self):
        from repro.blaslib import OpCounter
        a, b = OpCounter(), OpCounter()
        a.record("gemm", 10, 100)
        b.record("gemm", 5, 50)
        b.record("dot", 2, 8)
        merged = a.merged_with(b)
        assert merged.flops == {"gemm": 15, "dot": 2}
        assert merged.total_bytes() == 158
