"""Unit tests for im2col / col2im."""

import numpy as np
import pytest

from repro import blaslib
from repro.blaslib import use_backend
from repro.blaslib.im2col import conv_out_size


class TestConvOutSize:
    def test_basic(self):
        assert conv_out_size(28, 5, 0, 1) == 24
        assert conv_out_size(24, 2, 0, 2) == 12
        assert conv_out_size(32, 5, 2, 1) == 32

    def test_invalid(self):
        with pytest.raises(ValueError, match="positive"):
            conv_out_size(8, 0, 0, 1)
        with pytest.raises(ValueError, match="pad"):
            conv_out_size(8, 3, -1, 1)
        with pytest.raises(ValueError, match="does not fit"):
            conv_out_size(2, 5, 0, 1)


class TestIm2col:
    def test_identity_kernel(self, rng):
        image = rng.standard_normal((2, 3, 3)).astype(np.float32)
        col = blaslib.im2col(image, 1, 1, 0, 0, 1, 1)
        assert col.shape == (2, 9)
        assert np.allclose(col, image.reshape(2, 9))

    def test_matches_reference(self, rng):
        image = rng.standard_normal((3, 6, 5)).astype(np.float32)
        fast = blaslib.im2col(image, 3, 2, 1, 1, 2, 1)
        with use_backend("reference"):
            slow = blaslib.im2col(image, 3, 2, 1, 1, 2, 1)
        assert np.array_equal(fast, slow)

    def test_convolution_via_gemm(self, rng):
        """im2col + gemm equals direct convolution."""
        image = rng.standard_normal((2, 5, 5)).astype(np.float32)
        weights = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        col = blaslib.im2col(image, 3, 3, 0, 0, 1, 1)
        out = (weights.reshape(3, -1) @ col).reshape(3, 3, 3)
        direct = np.zeros((3, 3, 3), dtype=np.float32)
        for k in range(3):
            for i in range(3):
                for j in range(3):
                    direct[k, i, j] = np.sum(
                        image[:, i : i + 3, j : j + 3] * weights[k]
                    )
        assert np.allclose(out, direct, atol=1e-4)

    def test_padding_zeros(self):
        image = np.ones((1, 2, 2), dtype=np.float32)
        col = blaslib.im2col(image, 2, 2, 1, 1, 1, 1)
        # top-left window sees only the bottom-right image pixel
        assert col.shape == (4, 9)
        assert col[0, 0] == 0.0  # padded corner

    def test_out_buffer(self, rng):
        image = rng.standard_normal((1, 4, 4)).astype(np.float32)
        out = np.empty((4, 9), dtype=np.float32)
        result = blaslib.im2col(image, 2, 2, 0, 0, 1, 1, out=out)
        assert result is out

    def test_bad_out_shape(self, rng):
        image = rng.standard_normal((1, 4, 4)).astype(np.float32)
        with pytest.raises(ValueError, match="out has shape"):
            blaslib.im2col(image, 2, 2, 0, 0, 1, 1,
                           out=np.empty((3, 3), np.float32))

    def test_rejects_2d_image(self):
        with pytest.raises(ValueError, match=r"\(C, H, W\)"):
            blaslib.im2col(np.zeros((4, 4), np.float32), 2, 2, 0, 0, 1, 1)


class TestCol2im:
    def test_adjoint_of_im2col(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint
        property that makes conv backward correct."""
        x = rng.standard_normal((2, 5, 6)).astype(np.float64)
        args = (3, 2, 1, 0, 2, 1)  # kh kw ph pw sh sw
        col_x = blaslib.im2col(x.astype(np.float32), *args).astype(np.float64)
        y = rng.standard_normal(col_x.shape).astype(np.float64)
        folded = blaslib.col2im(
            y.astype(np.float32), 2, 5, 6, *args
        ).astype(np.float64)
        assert np.dot(col_x.ravel(), y.ravel()) == pytest.approx(
            np.dot(x.ravel(), folded.ravel()), rel=1e-4
        )

    def test_matches_reference(self, rng):
        col = rng.standard_normal((2 * 3 * 2, 3 * 5)).astype(np.float32)
        fast = blaslib.col2im(col, 2, 6, 6, 3, 2, 1, 0, 2, 1)
        with use_backend("reference"):
            slow = blaslib.col2im(col, 2, 6, 6, 3, 2, 1, 0, 2, 1)
        assert np.allclose(fast, slow, atol=1e-5)

    def test_overlap_accumulates(self):
        # kernel 2, stride 1 on width 3: middle pixel is in two windows.
        col = np.ones((2, 2), dtype=np.float32)
        out = blaslib.col2im(col, 1, 1, 3, 1, 2, 0, 0, 1, 1)
        assert np.allclose(out.ravel(), [1, 2, 1])

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="col has shape"):
            blaslib.col2im(np.zeros((3, 3), np.float32),
                           1, 4, 4, 2, 2, 0, 0, 1, 1)
