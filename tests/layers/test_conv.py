"""Unit tests for the Convolution layer."""

import numpy as np
import pytest

from repro.framework.blob import Blob
from repro.framework.layer import create_layer
from repro.framework.net_spec import LayerSpec

from repro.testing import make_blob, spec


def conv_layer(**params):
    defaults = dict(num_output=2, kernel_size=3, filler_seed=11,
                    weight_filler={"type": "gaussian", "std": 0.5},
                    bias_filler={"type": "constant", "value": 0.1})
    defaults.update(params)
    return create_layer(spec("conv", "Convolution", **defaults))


def reference_conv(x, weights, bias, stride=1, pad=0):
    """Direct convolution, no im2col."""
    n, c, h, w = x.shape
    k, _, kh, kw = weights.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (x.shape[2] - kh) // stride + 1
    ow = (x.shape[3] - kw) // stride + 1
    out = np.zeros((n, k, oh, ow), dtype=np.float64)
    for s in range(n):
        for f in range(k):
            for i in range(oh):
                for j in range(ow):
                    patch = x[s, :, i * stride : i * stride + kh,
                              j * stride : j * stride + kw]
                    out[s, f, i, j] = np.sum(patch * weights[f]) + bias[f]
    return out


class TestForward:
    def test_matches_direct_convolution(self, rng):
        layer = conv_layer()
        bottom = [make_blob((2, 3, 6, 6), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        expected = reference_conv(
            bottom[0].data, layer.blobs[0].data, layer.blobs[1].data
        )
        assert top[0].shape == (2, 2, 4, 4)
        assert np.allclose(top[0].data, expected, atol=1e-4)

    def test_stride_and_pad(self, rng):
        layer = conv_layer(stride=2, pad=1)
        bottom = [make_blob((1, 2, 5, 5), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        expected = reference_conv(
            bottom[0].data, layer.blobs[0].data, layer.blobs[1].data,
            stride=2, pad=1,
        )
        assert np.allclose(top[0].data, expected, atol=1e-4)

    def test_rectangular_kernel(self, rng):
        layer = conv_layer(kernel_h=3, kernel_w=2)
        bottom = [make_blob((1, 1, 5, 5), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert top[0].shape == (1, 2, 3, 4)

    def test_no_bias(self, rng):
        layer = conv_layer(bias_term=False)
        bottom = [make_blob((1, 1, 4, 4), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        assert len(layer.blobs) == 1

    def test_grouped_convolution(self, rng):
        layer = conv_layer(num_output=4, group=2)
        bottom = [make_blob((1, 4, 5, 5), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        # group 0 outputs depend only on channels 0-1
        x2 = Blob((1, 4, 5, 5), name="x2")
        x2.set_data(bottom[0].flat_data)
        x2.data[0, 2:] = 0  # zero group-1 channels
        x2.mark_host_data_dirty()
        top2 = [Blob()]
        out1 = top[0].data.copy()
        layer.forward([x2], top2)
        assert np.allclose(out1[0, :2], top2[0].data[0, :2], atol=1e-5)

    def test_group_divisibility_error(self, rng):
        layer = conv_layer(num_output=3, group=2)
        with pytest.raises(ValueError, match="group"):
            layer.setup([make_blob((1, 4, 5, 5), rng=rng)], [Blob()])

    def test_chunked_forward_equals_full(self, rng):
        layer = conv_layer()
        bottom = [make_blob((4, 3, 6, 6), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        full = top[0].data.copy()
        top[0].zero_data()
        for s in range(4):
            layer.forward_chunk(bottom, top, s, s + 1)
        assert np.array_equal(top[0].data, full)

    def test_needs_4d_bottom(self, rng):
        layer = conv_layer()
        with pytest.raises(ValueError, match="4-d"):
            layer.setup([make_blob((2, 3), rng=rng)], [Blob()])


class TestBackward:
    def test_gradient_check(self, rng):
        from repro.framework.gradient_check import check_gradient
        layer = conv_layer(num_output=2, kernel_size=2)
        bottom = [make_blob((2, 2, 4, 4), rng=rng)]
        check_gradient(layer, bottom, [Blob()])

    def test_gradient_check_stride_pad(self, rng):
        from repro.framework.gradient_check import check_gradient
        layer = conv_layer(num_output=2, kernel_size=3, stride=2, pad=1)
        bottom = [make_blob((2, 1, 5, 5), rng=rng)]
        check_gradient(layer, bottom, [Blob()])

    def test_param_grads_accumulate(self, rng):
        layer = conv_layer()
        bottom = [make_blob((2, 3, 6, 6), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        top[0].flat_diff[:] = 1.0
        for blob in layer.blobs:
            blob.zero_diff()
        layer.backward(top, [True], bottom)
        once = layer.blobs[0].flat_diff.copy()
        layer.backward(top, [True], bottom)
        assert np.allclose(layer.blobs[0].flat_diff, 2 * once, rtol=1e-5)

    def test_propagate_down_false_skips_bottom(self, rng):
        layer = conv_layer()
        bottom = [make_blob((1, 3, 5, 5), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        top[0].flat_diff[:] = 1.0
        bottom[0].flat_diff[:] = 7.0
        for blob in layer.blobs:
            blob.zero_diff()
        layer.backward(top, [False], bottom)
        assert np.allclose(bottom[0].flat_diff, 7.0)  # untouched
        assert layer.blobs[0].asum_diff() > 0  # weights still updated
