"""Unit tests for Softmax, SoftmaxWithLoss and EuclideanLoss."""

import numpy as np
import pytest

from repro.framework.blob import Blob
from repro.framework.layer import create_layer
from repro.framework.gradient_check import check_gradient
from repro.testing import make_blob, spec


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        layer = create_layer(spec("sm", "Softmax"))
        bottom = [make_blob((4, 6), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert np.allclose(top[0].data.sum(axis=1), 1.0, atol=1e-5)

    def test_shift_invariance(self, rng):
        layer = create_layer(spec("sm", "Softmax"))
        x = rng.standard_normal((2, 5)).astype(np.float32)
        b1, b2 = [make_blob((2, 5), values=x)], [make_blob((2, 5), values=x + 100)]
        t1, t2 = [Blob()], [Blob()]
        layer.setup(b1, t1)
        layer.forward(b1, t1)
        layer.forward(b2, t2)
        assert np.allclose(t1[0].data, t2[0].data, atol=1e-5)

    def test_matches_scipy(self, rng):
        from scipy.special import softmax as scipy_softmax
        layer = create_layer(spec("sm", "Softmax"))
        bottom = [make_blob((3, 7), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert np.allclose(top[0].data,
                           scipy_softmax(bottom[0].data, axis=1), atol=1e-5)

    def test_spatial_softmax(self, rng):
        layer = create_layer(spec("sm", "Softmax"))
        bottom = [make_blob((2, 4, 3, 3), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert np.allclose(top[0].data.sum(axis=1), 1.0, atol=1e-5)

    def test_gradient(self, rng):
        layer = create_layer(spec("sm", "Softmax"))
        bottom = [make_blob((3, 4), rng=rng)]
        check_gradient(layer, bottom, [Blob()])


class TestSoftmaxWithLoss:
    def make(self, rng, batch=4, classes=5, **params):
        layer = create_layer(spec("loss", "SoftmaxWithLoss", **params))
        scores = make_blob((batch, classes), rng=rng)
        labels = make_blob((batch,),
                           values=np.arange(batch) % classes)
        return layer, [scores, labels]

    def test_uniform_scores_give_log_classes(self):
        layer = create_layer(spec("loss", "SoftmaxWithLoss"))
        scores = make_blob((3, 10), values=np.zeros(30))
        labels = make_blob((3,), values=[0, 5, 9])
        top = [Blob()]
        layer.setup([scores, labels], top)
        loss = layer.forward([scores, labels], top)
        assert loss == pytest.approx(np.log(10), rel=1e-5)

    def test_perfect_prediction_low_loss(self):
        layer = create_layer(spec("loss", "SoftmaxWithLoss"))
        scores_values = np.full((2, 3), -50.0)
        scores_values[0, 1] = 50.0
        scores_values[1, 2] = 50.0
        scores = make_blob((2, 3), values=scores_values)
        labels = make_blob((2,), values=[1, 2])
        top = [Blob()]
        layer.setup([scores, labels], top)
        assert layer.forward([scores, labels], top) < 1e-4

    def test_default_loss_weight(self, rng):
        layer, bottom = self.make(rng)
        layer.setup(bottom, [Blob()])
        assert layer.loss_weights == [1.0]

    def test_backward_is_prob_minus_onehot(self, rng):
        layer, bottom = self.make(rng, batch=3, classes=4)
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        top[0].flat_diff[0] = 1.0
        layer.backward(top, [True, False], bottom)
        prob = layer.prob
        onehot = np.zeros_like(prob)
        labels = bottom[1].flat_data.astype(int)
        onehot[np.arange(3), labels] = 1.0
        assert np.allclose(bottom[0].diff, (prob - onehot) / 3.0, atol=1e-5)

    def test_gradient_check(self, rng):
        layer, bottom = self.make(rng, batch=3, classes=4)
        check_gradient(layer, bottom, [Blob()], check_bottom=[0])

    def test_label_out_of_range(self, rng):
        layer = create_layer(spec("loss", "SoftmaxWithLoss"))
        scores = make_blob((2, 3), rng=rng)
        labels = make_blob((2,), values=[0, 7])
        top = [Blob()]
        layer.setup([scores, labels], top)
        with pytest.raises(ValueError, match="label out of range"):
            layer.forward([scores, labels], top)

    def test_ignore_label(self, rng):
        layer = create_layer(spec("loss", "SoftmaxWithLoss", ignore_label=-1))
        scores = make_blob((4, 3), rng=rng)
        labels = make_blob((4,), values=[0, -1, 2, -1])
        top = [Blob()]
        layer.setup([scores, labels], top)
        layer.forward([scores, labels], top)
        top[0].flat_diff[0] = 1.0
        layer.backward(top, [True, False], [scores, labels])
        d = scores.diff
        assert np.allclose(d[1], 0) and np.allclose(d[3], 0)
        assert np.abs(d[0]).sum() > 0

    def test_cannot_backprop_to_labels(self, rng):
        layer, bottom = self.make(rng)
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        top[0].flat_diff[0] = 1.0
        with pytest.raises(ValueError, match="labels"):
            layer.backward(top, [True, True], bottom)

    def test_thread_count_invariant_finalize(self, rng):
        """Chunked forward in any split gives the bitwise-same loss."""
        layer, bottom = self.make(rng, batch=6, classes=5)
        top = [Blob()]
        layer.setup(bottom, top)
        layer.reshape(bottom, top)
        layer.forward_chunk(bottom, top, 0, 6)
        layer.forward_finalize(bottom, top)
        full = float(top[0].flat_data[0])
        for splits in ([2, 6], [1, 3, 6], [5, 6]):
            layer.reshape(bottom, top)
            lo = 0
            for hi in splits:
                layer.forward_chunk(bottom, top, lo, hi)
                lo = hi
            layer.forward_finalize(bottom, top)
            assert float(top[0].flat_data[0]) == full


class TestEuclideanLoss:
    def test_value(self):
        layer = create_layer(spec("l2", "EuclideanLoss"))
        a = make_blob((2, 3), values=[1, 2, 3, 4, 5, 6])
        b = make_blob((2, 3), values=[1, 2, 3, 4, 5, 8])
        top = [Blob()]
        layer.setup([a, b], top)
        loss = layer.forward([a, b], top)
        assert loss == pytest.approx(0.5 * 4 / 2)  # ||diff||^2/2 per batch

    def test_gradient_both_bottoms(self, rng):
        layer = create_layer(spec("l2", "EuclideanLoss"))
        bottom = [make_blob((3, 4), rng=rng), make_blob((3, 4), rng=rng)]
        check_gradient(layer, bottom, [Blob()])

    def test_count_mismatch(self, rng):
        layer = create_layer(spec("l2", "EuclideanLoss"))
        with pytest.raises(ValueError, match="count"):
            layer.setup([make_blob((2, 3)), make_blob((2, 4))], [Blob()])
