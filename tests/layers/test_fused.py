"""Unit tests for the graph compiler's fused layers.

Two properties matter: each fused layer's forward pass is *bitwise*
identical to running the unfused chain with the same parameters, and
its analytic gradients check out numerically.
"""

import numpy as np
import pytest

from repro.framework.blob import Blob
from repro.framework.gradient_check import check_gradient
from repro.framework.layer import create_layer
from repro.framework.net_spec import LayerSpec
from repro.testing import make_blob


def lspec(name, type_, **params):
    return LayerSpec(name=name, type=type_, bottoms=["x"], tops=["t"],
                     params=params)


CONV_PARAMS = dict(num_output=3, kernel_size=3, filler_seed=11,
                   weight_filler={"type": "gaussian", "std": 0.5},
                   bias_filler={"type": "constant", "value": 0.1})
IP_PARAMS = dict(num_output=5, filler_seed=12,
                 weight_filler={"type": "gaussian", "std": 0.5},
                 bias_filler={"type": "constant", "value": 0.1})
SCALE_PARAMS = dict(filler={"type": "gaussian", "std": 1.0}, filler_seed=13)
BIAS_PARAMS = dict(filler={"type": "gaussian", "std": 0.5}, filler_seed=14)


def run_layer(layer, bottoms):
    top = [Blob()]
    layer.setup(bottoms, top)
    layer.forward(bottoms, top)
    return layer, top


def run_chain(bottoms, *specs):
    """Run standalone layers back to back, each out of place."""
    current = list(bottoms)
    for spec in specs:
        layer = create_layer(spec)
        top = [Blob()]
        layer.setup(current, top)
        layer.forward(current, top)
        current = top
    return current[0]


class TestForwardParity:
    """Same filler seeds => same parameters => bitwise-equal outputs."""

    def test_fused_ip_relu(self, rng):
        x = make_blob((4, 6), rng=rng)
        fused, top = run_layer(
            create_layer(lspec("ip", "FusedInnerProductReLU", **IP_PARAMS)),
            [x])
        ref = run_chain([x], lspec("ip", "InnerProduct", **IP_PARAMS),
                        lspec("r", "ReLU"))
        assert np.array_equal(top[0].data, ref.data)

    def test_fused_conv_relu(self, rng):
        x = make_blob((2, 3, 8, 8), rng=rng)
        fused, top = run_layer(
            create_layer(lspec("c", "FusedConv", fused_relu=True,
                               **CONV_PARAMS)),
            [x])
        ref = run_chain([x], lspec("c", "Convolution", **CONV_PARAMS),
                        lspec("r", "ReLU"))
        assert np.array_equal(top[0].data, ref.data)

    def test_fused_conv_scale_relu(self, rng):
        x = make_blob((2, 3, 6, 6), rng=rng)
        middle = {"name": "sc", "type": "Scale", "params": SCALE_PARAMS}
        fused, top = run_layer(
            create_layer(lspec("c", "FusedConv", fused_relu=True,
                               fused_middle=middle, **CONV_PARAMS)),
            [x])
        ref = run_chain([x], lspec("c", "Convolution", **CONV_PARAMS),
                        lspec("sc", "Scale", **SCALE_PARAMS),
                        lspec("r", "ReLU"))
        assert np.array_equal(top[0].data, ref.data)

    def test_fused_conv_bias_relu(self, rng):
        params = dict(CONV_PARAMS, bias_term=False)
        x = make_blob((2, 3, 6, 6), rng=rng)
        middle = {"name": "b", "type": "Bias", "params": BIAS_PARAMS}
        fused, top = run_layer(
            create_layer(lspec("c", "FusedConv", fused_relu=True,
                               fused_middle=middle, **params)),
            [x])
        ref = run_chain([x], lspec("c", "Convolution", **params),
                        lspec("b", "Bias", **BIAS_PARAMS),
                        lspec("r", "ReLU"))
        assert np.array_equal(top[0].data, ref.data)

    def test_fused_eltwise_relu(self, rng):
        a = make_blob((3, 7), rng=rng)
        b = make_blob((3, 7), rng=rng)
        fused, top = run_layer(
            create_layer(LayerSpec(name="e", type="FusedEltwiseReLU",
                                   bottoms=["a", "b"], tops=["t"],
                                   params={})),
            [a, b])
        summed = a.data + b.data
        assert np.array_equal(top[0].data, np.maximum(summed, 0.0))

    def test_fused_scale_bias(self, rng):
        x = make_blob((2, 3, 4, 4), rng=rng)
        middle = {"name": "b", "type": "Bias", "params": BIAS_PARAMS}
        fused, top = run_layer(
            create_layer(lspec("sc", "FusedScaleBias",
                               fused_middle=middle, **SCALE_PARAMS)),
            [x])
        ref = run_chain([x], lspec("sc", "Scale", **SCALE_PARAMS),
                        lspec("b", "Bias", **BIAS_PARAMS))
        assert np.array_equal(top[0].data, ref.data)

    def test_middle_params_are_learnable_blobs(self, rng):
        middle = {"name": "sc", "type": "Scale", "params": SCALE_PARAMS}
        layer = create_layer(lspec("c", "FusedConv", fused_relu=True,
                                   fused_middle=middle, **CONV_PARAMS))
        x = make_blob((2, 3, 6, 6), rng=rng)
        layer.setup([x], [Blob()])
        # conv weight + conv bias + scale gamma
        assert len(layer.blobs) == 3
        assert layer.blobs[2].shape == (3,)


def backward_parity(fused_spec_, chain_specs, x, rng):
    """Fused backward must produce the unfused chain's diffs bitwise.

    The numeric checker cannot handle the ReLU kink (a conv output near
    zero flips its mask across the finite-difference step), so the conv
    variants are held to the stricter standard instead: byte-for-byte
    the gradients of the standalone chain.
    """
    x_fused = make_blob(x.shape, values=x.data.copy())
    fused = create_layer(fused_spec_)
    fused_top = [Blob()]
    fused.setup([x_fused], fused_top)
    fused.forward([x_fused], fused_top)

    x_chain = make_blob(x.shape, values=x.data.copy())
    layers, bottoms_list, tops_list = [], [], []
    current = [x_chain]
    for spec in chain_specs:
        layer = create_layer(spec)
        top = [Blob()]
        layer.setup(current, top)
        layer.forward(current, top)
        layers.append(layer)
        bottoms_list.append(current)
        tops_list.append(top)
        current = top

    dy = rng.standard_normal(fused_top[0].count).astype(np.float32)
    fused_top[0].flat_diff[:] = dy
    fused_top[0].mark_host_diff_dirty()
    current[0].flat_diff[:] = dy
    current[0].mark_host_diff_dirty()
    for layer in layers:
        for blob in layer.blobs:
            blob.zero_diff()
    for blob in fused.blobs:
        blob.zero_diff()

    fused.backward(fused_top, [True], [x_fused])
    for layer, bottoms, tops in zip(
            reversed(layers), reversed(bottoms_list), reversed(tops_list)):
        layer.backward(tops, [True], bottoms)

    assert np.array_equal(x_fused.flat_diff, x_chain.flat_diff)
    chain_params = [b for layer in layers for b in layer.blobs]
    assert len(fused.blobs) == len(chain_params)
    for got, want in zip(fused.blobs, chain_params):
        assert np.array_equal(got.flat_diff, want.flat_diff)


class TestGradients:
    def test_fused_ip_relu(self, rng):
        layer = create_layer(lspec("ip", "FusedInnerProductReLU",
                                   **IP_PARAMS))
        check_gradient(layer, [make_blob((3, 4), rng=rng)], [Blob()])

    def test_fused_conv_relu_backward_parity(self, rng):
        backward_parity(
            lspec("c", "FusedConv", fused_relu=True, **CONV_PARAMS),
            [lspec("c", "Convolution", **CONV_PARAMS), lspec("r", "ReLU")],
            make_blob((2, 3, 6, 6), rng=rng), rng)

    def test_fused_conv_scale_relu_backward_parity(self, rng):
        middle = {"name": "sc", "type": "Scale", "params": SCALE_PARAMS}
        backward_parity(
            lspec("c", "FusedConv", fused_relu=True, fused_middle=middle,
                  **CONV_PARAMS),
            [lspec("c", "Convolution", **CONV_PARAMS),
             lspec("sc", "Scale", **SCALE_PARAMS), lspec("r", "ReLU")],
            make_blob((2, 3, 6, 6), rng=rng), rng)

    def test_fused_conv_bias_relu_backward_parity(self, rng):
        params = dict(CONV_PARAMS, bias_term=False)
        middle = {"name": "b", "type": "Bias", "params": BIAS_PARAMS}
        backward_parity(
            lspec("c", "FusedConv", fused_relu=True, fused_middle=middle,
                  **params),
            [lspec("c", "Convolution", **params),
             lspec("b", "Bias", **BIAS_PARAMS), lspec("r", "ReLU")],
            make_blob((2, 3, 6, 6), rng=rng), rng)

    def test_fused_ip_relu_backward_parity(self, rng):
        backward_parity(
            lspec("ip", "FusedInnerProductReLU", **IP_PARAMS),
            [lspec("ip", "InnerProduct", **IP_PARAMS), lspec("r", "ReLU")],
            make_blob((4, 6), rng=rng), rng)

    def test_fused_conv_scale_numeric_without_relu(self, rng):
        # No ReLU => no kink; numerically validates the scale middle's
        # dgamma plumbing through the _prescale stash.
        middle = {"name": "sc", "type": "Scale", "params": SCALE_PARAMS}
        layer = create_layer(lspec("c", "FusedConv", fused_relu=False,
                                   fused_middle=middle, **CONV_PARAMS))
        check_gradient(layer, [make_blob((2, 3, 5, 5), rng=rng)], [Blob()])

    def test_fused_eltwise_relu(self, rng):
        layer = create_layer(LayerSpec(name="e", type="FusedEltwiseReLU",
                                       bottoms=["a", "b"], tops=["t"],
                                       params={}))
        check_gradient(
            layer,
            [make_blob((2, 6), rng=rng), make_blob((2, 6), rng=rng)],
            [Blob()])

    def test_fused_scale_bias(self, rng):
        middle = {"name": "b", "type": "Bias", "params": BIAS_PARAMS}
        layer = create_layer(lspec("sc", "FusedScaleBias",
                                   fused_middle=middle, **SCALE_PARAMS))
        check_gradient(layer, [make_blob((2, 3, 3, 3), rng=rng)], [Blob()])
