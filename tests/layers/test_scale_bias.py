"""Unit tests for the Scale and Bias layers."""

import numpy as np
import pytest

from repro.framework.blob import Blob
from repro.framework.layer import create_layer
from repro.framework.gradient_check import check_gradient
from repro.testing import make_blob, spec


def scale_layer(**params):
    defaults = dict(filler={"type": "gaussian", "std": 1.0},
                    filler_seed=17)
    defaults.update(params)
    return create_layer(spec("sc", "Scale", **defaults))


class TestScaleForward:
    def test_channel_scaling(self, rng):
        layer = scale_layer()
        bottom = [make_blob((2, 3, 4, 4), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        gamma = layer.blobs[0].data
        expected = bottom[0].data * gamma[None, :, None, None]
        assert np.allclose(top[0].data, expected, atol=1e-5)

    def test_with_bias(self, rng):
        layer = scale_layer(bias_term=True,
                            bias_filler={"type": "constant", "value": 0.5})
        bottom = [make_blob((2, 3, 2, 2), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        gamma = layer.blobs[0].data
        expected = bottom[0].data * gamma[None, :, None, None] + 0.5
        assert np.allclose(top[0].data, expected, atol=1e-5)

    def test_default_filler_is_identity(self, rng):
        layer = create_layer(spec("sc", "Scale"))
        bottom = [make_blob((2, 3, 2, 2), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert np.allclose(top[0].data, bottom[0].data)

    def test_2d_input(self, rng):
        layer = scale_layer()
        bottom = [make_blob((4, 5), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        expected = bottom[0].data * layer.blobs[0].data[None, :]
        assert np.allclose(top[0].data, expected, atol=1e-5)


class TestScaleBackward:
    def test_gradient_check(self, rng):
        layer = scale_layer(bias_term=True,
                            bias_filler={"type": "gaussian", "std": 0.2})
        check_gradient(layer, [make_blob((2, 3, 2, 2), rng=rng)], [Blob()])

    def test_channel_loop_chunking_invariant(self, rng):
        layer = scale_layer()
        bottom = [make_blob((3, 6, 2, 2), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        top[0].flat_diff[:] = rng.standard_normal(top[0].count)
        top[0].mark_host_diff_dirty()

        def grads(splits):
            layer.blobs[0].zero_diff()
            lo = 0
            for hi in splits:
                layer._backward_param_channels(top, bottom, lo, hi)
                lo = hi
            return layer.blobs[0].flat_diff.copy()

        assert np.array_equal(grads([6]), grads([1, 3, 6]))

    def test_backward_loops_reduction_free(self, rng):
        layer = scale_layer()
        bottom = [make_blob((2, 3, 2, 2), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        loops = layer.backward_loops(top, [True], bottom)
        assert len(loops) == 2
        assert not any(loop.reduction for loop in loops)


class TestBias:
    def test_forward(self, rng):
        layer = create_layer(spec("b", "Bias",
                                  filler={"type": "gaussian", "std": 1.0},
                                  filler_seed=19))
        bottom = [make_blob((2, 4, 3, 3), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        beta = layer.blobs[0].data
        assert np.allclose(top[0].data,
                           bottom[0].data + beta[None, :, None, None],
                           atol=1e-6)

    def test_gradient_check(self, rng):
        layer = create_layer(spec("b", "Bias",
                                  filler={"type": "gaussian", "std": 0.3},
                                  filler_seed=23))
        check_gradient(layer, [make_blob((2, 3, 2, 2), rng=rng)], [Blob()])


class TestScaleInParallelNet:
    def test_scale_trains_in_parallel_bitwise(self, rng):
        """A net with a Scale layer trains identically at any thread
        count — the new layer needed no parallelization work."""
        from repro.core import ParallelExecutor
        from repro.data import register_default_sources
        from repro.framework.net import Net
        from repro.framework.prototxt import parse_prototxt
        from repro.framework.solvers import SGDSolver, SolverParams

        register_default_sources()
        text = """
        layer { name: "d" type: "Data" top: "data" top: "label"
                data_param { source: "synth_mnist_train" batch_size: 16 } }
        layer { name: "sc" type: "Scale" bottom: "data" top: "scaled"
                scale_param { bias_term: true filler_seed: 31
                  filler { type: "gaussian" std: 0.5 }
                  bias_filler { type: "constant" } } }
        layer { name: "ip" type: "InnerProduct" bottom: "scaled" top: "ip"
                inner_product_param { num_output: 10 filler_seed: 32
                  weight_filler { type: "xavier" } } }
        layer { name: "loss" type: "SoftmaxWithLoss" bottom: "ip"
                bottom: "label" top: "loss" }
        """

        def run(executor=None):
            net = Net(parse_prototxt(text))
            solver = SGDSolver(SolverParams(base_lr=0.01, max_iter=5),
                               net, executor=executor)
            solver.step(5)
            return solver.loss_history

        sequential = run()
        with ParallelExecutor(num_threads=3, reduction="blockwise") as ex:
            parallel = run(ex)
        assert parallel == sequential
        assert sequential[-1] < sequential[0]
