"""Unit tests for the InnerProduct layer."""

import numpy as np
import pytest

from repro.framework.blob import Blob
from repro.framework.layer import create_layer
from repro.testing import make_blob, spec


def ip_layer(**params):
    defaults = dict(num_output=4, filler_seed=13,
                    weight_filler={"type": "gaussian", "std": 0.5},
                    bias_filler={"type": "constant", "value": 0.25})
    defaults.update(params)
    return create_layer(spec("ip", "InnerProduct", **defaults))


class TestForward:
    def test_matches_matmul(self, rng):
        layer = ip_layer()
        bottom = [make_blob((3, 5), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        expected = bottom[0].data @ layer.blobs[0].data.T + layer.blobs[1].data
        assert np.allclose(top[0].data, expected, atol=1e-5)

    def test_flattens_trailing_axes(self, rng):
        layer = ip_layer()
        bottom = [make_blob((2, 3, 4, 4), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert top[0].shape == (2, 4)
        flat = bottom[0].data.reshape(2, -1)
        expected = flat @ layer.blobs[0].data.T + layer.blobs[1].data
        assert np.allclose(top[0].data, expected, atol=1e-5)

    def test_no_bias(self, rng):
        layer = ip_layer(bias_term=False)
        bottom = [make_blob((2, 3), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert np.allclose(top[0].data, bottom[0].data @ layer.blobs[0].data.T,
                           atol=1e-5)

    def test_chunked_equals_full_bitwise(self, rng):
        layer = ip_layer(num_output=7)
        bottom = [make_blob((5, 6), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        full = top[0].data.copy()
        top[0].zero_data()
        layer.forward_chunk(bottom, top, 0, 2)
        layer.forward_chunk(bottom, top, 2, 5)
        # bitwise: the per-sample gemv makes values chunking-invariant
        assert np.array_equal(top[0].data, full)

    def test_inner_size_change_rejected(self, rng):
        layer = ip_layer()
        bottom = [make_blob((2, 5), rng=rng)]
        layer.setup(bottom, [Blob()])
        with pytest.raises(ValueError, match="inner size"):
            layer.reshape([make_blob((2, 6), rng=rng)], [Blob()])


class TestBackward:
    def test_gradient_check(self, rng):
        from repro.framework.gradient_check import check_gradient
        layer = ip_layer(num_output=3)
        bottom = [make_blob((4, 5), rng=rng)]
        check_gradient(layer, bottom, [Blob()])

    def test_weight_rows_chunking_invariant(self, rng):
        layer = ip_layer(num_output=6)
        bottom = [make_blob((4, 5), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        top[0].flat_diff[:] = rng.standard_normal(top[0].count)
        top[0].mark_host_diff_dirty()

        def grads_with_rows(splits):
            for blob in layer.blobs:
                blob.zero_diff()
            lo = 0
            for hi in splits:
                layer._backward_weight_rows(top, bottom, lo, hi)
                lo = hi
            return layer.blobs[0].flat_diff.copy()

        a = grads_with_rows([6])
        b = grads_with_rows([1, 4, 6])
        assert np.array_equal(a, b)

    def test_backward_loops_structure(self, rng):
        layer = ip_layer()
        bottom = [make_blob((3, 5), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        loops = layer.backward_loops(top, [True], bottom)
        assert len(loops) == 2
        assert not any(loop.reduction for loop in loops)  # row-parallel dW

    def test_backward_loops_skip_data_when_not_propagating(self, rng):
        layer = ip_layer()
        bottom = [make_blob((3, 5), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        loops = layer.backward_loops(top, [False], bottom)
        assert len(loops) == 1  # only the weight loop
