"""Unit tests for the element-wise neuron layers."""

import numpy as np
import pytest

from repro.framework.blob import Blob
from repro.framework.layer import create_layer
from repro.framework.gradient_check import check_gradient
from repro.testing import make_blob, spec


class TestReLU:
    def test_forward(self):
        layer = create_layer(spec("r", "ReLU"))
        bottom = [make_blob((4,), values=[-1, 0, 2, -3])]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert np.allclose(top[0].data, [0, 0, 2, 0])

    def test_negative_slope(self):
        layer = create_layer(spec("r", "ReLU", negative_slope=0.1))
        bottom = [make_blob((3,), values=[-10, 0, 5])]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert np.allclose(top[0].data, [-1, 0, 5])

    def test_in_place(self):
        layer = create_layer(spec("r", "ReLU"))
        blob = make_blob((3,), values=[-1, 2, -3])
        layer.setup([blob], [blob])
        layer.forward([blob], [blob])
        assert np.allclose(blob.data, [0, 2, 0])

    def test_in_place_backward(self):
        layer = create_layer(spec("r", "ReLU"))
        blob = make_blob((3,), values=[-1, 2, 3])
        layer.setup([blob], [blob])
        layer.forward([blob], [blob])
        blob.flat_diff[:] = [1, 1, 1]
        layer.backward([blob], [True], [blob])
        assert np.allclose(blob.flat_diff, [0, 1, 1])

    def test_gradient(self, rng):
        layer = create_layer(spec("r", "ReLU"))
        # keep values away from the kink at 0
        values = rng.standard_normal(24)
        values[np.abs(values) < 0.2] += 0.5
        bottom = [make_blob((2, 3, 2, 2), values=values)]
        check_gradient(layer, bottom, [Blob()], step=1e-2)

    def test_gradient_leaky(self, rng):
        layer = create_layer(spec("r", "ReLU", negative_slope=0.25))
        values = rng.standard_normal(12)
        values[np.abs(values) < 0.2] += 0.5
        bottom = [make_blob((3, 4), values=values)]
        check_gradient(layer, bottom, [Blob()], step=1e-2)

    def test_fully_coalesced_space(self):
        layer = create_layer(spec("r", "ReLU"))
        bottom = [make_blob((2, 3, 4, 5))]
        top = [Blob()]
        layer.setup(bottom, top)
        assert layer.forward_space(bottom, top) == 120


class TestSigmoid:
    def test_forward_values(self):
        layer = create_layer(spec("s", "Sigmoid"))
        bottom = [make_blob((3,), values=[0, 100, -100])]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert np.allclose(top[0].data, [0.5, 1.0, 0.0], atol=1e-6)

    def test_gradient(self, rng):
        layer = create_layer(spec("s", "Sigmoid"))
        bottom = [make_blob((3, 4), rng=rng)]
        check_gradient(layer, bottom, [Blob()])

    def test_no_overflow_warnings(self):
        layer = create_layer(spec("s", "Sigmoid"))
        bottom = [make_blob((2,), values=[-500, 500])]
        top = [Blob()]
        layer.setup(bottom, top)
        with np.errstate(over="raise"):
            layer.forward(bottom, top)


class TestTanH:
    def test_forward(self):
        layer = create_layer(spec("t", "TanH"))
        bottom = [make_blob((2,), values=[0.0, 1.0])]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert np.allclose(top[0].data, [0.0, np.tanh(1.0)], atol=1e-6)

    def test_gradient(self, rng):
        layer = create_layer(spec("t", "TanH"))
        bottom = [make_blob((4, 3), rng=rng)]
        check_gradient(layer, bottom, [Blob()])


class TestPower:
    def test_identity_default(self, rng):
        layer = create_layer(spec("p", "Power"))
        bottom = [make_blob((5,), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert np.allclose(top[0].data, bottom[0].data)

    def test_affine_square(self):
        layer = create_layer(spec("p", "Power", power=2.0, scale=2.0, shift=1.0))
        bottom = [make_blob((2,), values=[0.0, 1.0])]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert np.allclose(top[0].data, [1.0, 9.0])

    def test_gradient(self, rng):
        layer = create_layer(spec("p", "Power", power=2.0, scale=0.5, shift=2.0))
        bottom = [make_blob((3, 3), rng=rng)]
        check_gradient(layer, bottom, [Blob()])
