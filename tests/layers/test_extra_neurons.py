"""Unit tests for AbsVal, Exp, Log and BNLL layers."""

import numpy as np
import pytest

from repro.framework.blob import Blob
from repro.framework.layer import create_layer
from repro.framework.gradient_check import check_gradient
from repro.testing import make_blob, spec


class TestAbsVal:
    def test_forward(self):
        layer = create_layer(spec("a", "AbsVal"))
        bottom = [make_blob((4,), values=[-2, -0.5, 0, 3])]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert np.allclose(top[0].data, [2, 0.5, 0, 3])

    def test_gradient(self, rng):
        layer = create_layer(spec("a", "AbsVal"))
        values = rng.standard_normal(12)
        values[np.abs(values) < 0.2] += 0.5  # keep away from the kink
        check_gradient(layer, [make_blob((3, 4), values=values)], [Blob()])


class TestExp:
    def test_default_is_natural_exp(self, rng):
        layer = create_layer(spec("e", "Exp"))
        bottom = [make_blob((6,), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert np.allclose(top[0].data, np.exp(bottom[0].data), rtol=1e-5)

    def test_base_two(self):
        layer = create_layer(spec("e", "Exp", base=2.0))
        bottom = [make_blob((3,), values=[0, 1, 3])]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert np.allclose(top[0].data, [1, 2, 8], rtol=1e-5)

    def test_scale_shift(self):
        layer = create_layer(spec("e", "Exp", scale=2.0, shift=1.0))
        bottom = [make_blob((1,), values=[0.5])]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert top[0].flat_data[0] == pytest.approx(np.exp(2.0), rel=1e-5)

    def test_gradient(self, rng):
        layer = create_layer(spec("e", "Exp", scale=0.5))
        check_gradient(layer, [make_blob((3, 3), rng=rng)], [Blob()])

    def test_invalid_base(self):
        layer = create_layer(spec("e", "Exp", base=-2.0))
        with pytest.raises(ValueError, match="base"):
            layer.setup([make_blob((2,))], [Blob()])


class TestLog:
    def test_natural_log(self):
        layer = create_layer(spec("l", "Log"))
        bottom = [make_blob((3,), values=[1.0, np.e, np.e**2])]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert np.allclose(top[0].data, [0, 1, 2], atol=1e-5)

    def test_base_ten(self):
        layer = create_layer(spec("l", "Log", base=10.0))
        bottom = [make_blob((2,), values=[1.0, 100.0])]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert np.allclose(top[0].data, [0, 2], atol=1e-5)

    def test_gradient(self, rng):
        layer = create_layer(spec("l", "Log", shift=3.0))
        values = np.abs(rng.standard_normal(9)) + 0.5
        check_gradient(layer, [make_blob((3, 3), values=values)], [Blob()])


class TestBNLL:
    def test_softplus_values(self):
        layer = create_layer(spec("b", "BNLL"))
        bottom = [make_blob((3,), values=[0.0, 10.0, -10.0])]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert top[0].flat_data[0] == pytest.approx(np.log(2), rel=1e-5)
        assert top[0].flat_data[1] == pytest.approx(10.0, abs=1e-3)
        assert top[0].flat_data[2] == pytest.approx(0.0, abs=1e-3)

    def test_stable_for_large_inputs(self):
        layer = create_layer(spec("b", "BNLL"))
        bottom = [make_blob((2,), values=[500.0, -500.0])]
        top = [Blob()]
        layer.setup(bottom, top)
        with np.errstate(over="raise"):
            layer.forward(bottom, top)
        assert np.isfinite(top[0].data).all()

    def test_gradient(self, rng):
        layer = create_layer(spec("b", "BNLL"))
        check_gradient(layer, [make_blob((4, 3), rng=rng)], [Blob()])

    def test_always_positive(self, rng):
        layer = create_layer(spec("b", "BNLL"))
        bottom = [make_blob((20,), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert (top[0].data >= 0).all()
