"""Unit tests for the data layers and Accuracy/Dropout."""

import numpy as np
import pytest

from repro.data import ArrayBatchSource
from repro.framework.blob import Blob
from repro.framework.layer import create_layer
from repro.framework.net_spec import LayerSpec
from repro.testing import make_blob, spec


def tiny_source(n=6):
    rng = np.random.default_rng(0)
    images = rng.random((n, 2, 3, 3)).astype(np.float32)
    labels = (np.arange(n) % 3).astype(np.int64)
    return ArrayBatchSource(images, labels)


class TestDataLayer:
    def make(self, batch_size=4, **extra):
        s = spec("data", "Data", batch_size=batch_size, **extra)
        s.params["source_object"] = tiny_source()
        return create_layer(s)

    def test_produces_batch(self):
        layer = self.make()
        top = [Blob(), Blob()]
        layer.setup([], top)
        layer.forward([], top)
        assert top[0].shape == (4, 2, 3, 3)
        assert top[1].shape == (4,)

    def test_serial_space(self):
        layer = self.make()
        top = [Blob(), Blob()]
        layer.setup([], top)
        assert layer.forward_space([], top) == 1  # data layers run serially

    def test_wraps_around(self):
        layer = self.make(batch_size=4)
        top = [Blob(), Blob()]
        layer.setup([], top)
        layer.forward([], top)
        layer.forward([], top)  # 8 > 6 samples: wraps
        assert layer.source.epochs_completed == 1

    def test_scale_and_mean(self):
        s = spec("data", "Data", batch_size=2, scale=2.0, mean_value=0.5)
        s.params["source_object"] = tiny_source()
        layer = create_layer(s)
        top = [Blob(), Blob()]
        layer.setup([], top)
        layer.forward([], top)
        raw = tiny_source().next_batch(2)[0]
        assert np.allclose(top[0].data, (raw - 0.5) * 2.0, atol=1e-6)

    def test_invalid_batch_size(self):
        s = spec("data", "Data", batch_size=0)
        s.params["source_object"] = tiny_source()
        with pytest.raises(ValueError, match="batch_size"):
            create_layer(s).setup([], [Blob(), Blob()])

    def test_unknown_named_source(self):
        layer = create_layer(spec("data", "Data", batch_size=2,
                                  source="no_such_source"))
        with pytest.raises(KeyError, match="unknown data source"):
            layer.setup([], [Blob(), Blob()])


class TestMemoryData:
    def test_serves_batches(self, rng):
        layer = create_layer(spec("m", "MemoryData", batch_size=2,
                                  channels=1, height=2, width=2))
        top = [Blob(), Blob()]
        layer.setup([], top)
        images = rng.random((2, 1, 2, 2)).astype(np.float32)
        layer.set_batch(images, np.array([0, 1]))
        layer.forward([], top)
        assert np.allclose(top[0].data, images)
        assert np.allclose(top[1].data, [0, 1])

    def test_requires_set_batch(self):
        layer = create_layer(spec("m", "MemoryData", batch_size=1,
                                  channels=1, height=1, width=1))
        top = [Blob()]
        layer.setup([], top)
        with pytest.raises(RuntimeError, match="set_batch"):
            layer.forward([], top)

    def test_shape_validation(self):
        layer = create_layer(spec("m", "MemoryData", batch_size=2,
                                  channels=1, height=2, width=2))
        layer.setup([], [Blob()])
        with pytest.raises(ValueError, match="batch shape"):
            layer.set_batch(np.zeros((2, 1, 3, 3), np.float32))


class TestInputLayer:
    def test_shapes_top(self):
        layer = create_layer(spec("in", "Input",
                                  shape={"dim": [2, 3, 4, 4]}))
        top = [Blob()]
        layer.setup([], top)
        assert top[0].shape == (2, 3, 4, 4)

    def test_multiple_shapes(self):
        layer = create_layer(spec(
            "in", "Input", shape=[{"dim": [2, 3]}, {"dim": [2]}]
        ))
        tops = [Blob(), Blob()]
        layer.setup([], tops)
        assert tops[0].shape == (2, 3) and tops[1].shape == (2,)


class TestAccuracy:
    def run_layer(self, scores, labels, **params):
        layer = create_layer(spec("acc", "Accuracy", **params))
        s = make_blob(scores.shape, values=scores)
        l = make_blob((scores.shape[0],), values=labels)
        top = [Blob()]
        layer.setup([s, l], top)
        layer.forward([s, l], top)
        return float(top[0].flat_data[0])

    def test_top1(self):
        scores = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]], np.float32)
        assert self.run_layer(scores, [0, 1, 1]) == pytest.approx(2 / 3)

    def test_top_k(self):
        scores = np.array([[3.0, 2.0, 1.0, 0.0]], np.float32)
        assert self.run_layer(scores, [2], top_k=3) == 1.0
        assert self.run_layer(scores, [3], top_k=3) == 0.0

    def test_ignore_label(self):
        scores = np.array([[1.0, 0.0], [1.0, 0.0]], np.float32)
        acc = self.run_layer(scores, [0, -1], ignore_label=-1)
        assert acc == 1.0

    def test_top_k_exceeds_classes(self):
        layer = create_layer(spec("acc", "Accuracy", top_k=5))
        with pytest.raises(ValueError, match="top_k"):
            layer.setup([make_blob((2, 3)), make_blob((2,))], [Blob()])

    def test_no_backward(self):
        layer = create_layer(spec("acc", "Accuracy"))
        with pytest.raises(RuntimeError, match="no backward"):
            layer.backward_chunk()


class TestDropout:
    def make(self, ratio=0.5, train=True):
        layer = create_layer(spec("drop", "Dropout", dropout_ratio=ratio,
                                  seed=3))
        layer.train_mode = train
        return layer

    def test_test_mode_identity(self, rng):
        layer = self.make(train=False)
        bottom = [make_blob((100,), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert np.array_equal(top[0].data, bottom[0].data)

    def test_train_mode_zeroes_and_scales(self):
        layer = self.make(ratio=0.5)
        bottom = [make_blob((1000,), values=np.ones(1000))]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        values = top[0].flat_data
        kept = values[values != 0]
        assert np.allclose(kept, 2.0)  # inverted scaling 1/(1-0.5)
        assert 0.3 < (values == 0).mean() < 0.7

    def test_backward_uses_same_mask(self):
        layer = self.make(ratio=0.5)
        bottom = [make_blob((100,), values=np.ones(100))]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        top[0].flat_diff[:] = 1.0
        layer.backward(top, [True], bottom)
        # gradient zero exactly where output was zeroed
        assert np.array_equal(bottom[0].flat_diff == 0,
                              top[0].flat_data == 0)

    def test_expectation_preserved(self):
        layer = self.make(ratio=0.3)
        bottom = [make_blob((20000,), values=np.ones(20000))]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert top[0].flat_data.mean() == pytest.approx(1.0, abs=0.05)

    def test_invalid_ratio(self):
        layer = create_layer(spec("drop", "Dropout", dropout_ratio=1.0))
        with pytest.raises(ValueError, match="dropout_ratio"):
            layer.setup([make_blob((4,))], [Blob()])
