"""Unit tests for Flatten, Split, Concat and Eltwise layers."""

import numpy as np
import pytest

from repro.framework.blob import Blob
from repro.framework.layer import create_layer
from repro.framework.gradient_check import check_gradient
from repro.testing import make_blob, spec


class TestFlatten:
    def test_shape(self, rng):
        layer = create_layer(spec("f", "Flatten"))
        bottom = [make_blob((2, 3, 4, 5), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert top[0].shape == (2, 60)
        assert np.array_equal(top[0].flat_data, bottom[0].flat_data)

    def test_axis(self, rng):
        layer = create_layer(spec("f", "Flatten", axis=2))
        bottom = [make_blob((2, 3, 4, 5), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert top[0].shape == (2, 3, 20)

    def test_gradient(self, rng):
        layer = create_layer(spec("f", "Flatten"))
        check_gradient(layer, [make_blob((2, 3, 2), rng=rng)], [Blob()])


class TestSplit:
    def test_forward_copies(self, rng):
        layer = create_layer(spec("s", "Split"))
        bottom = [make_blob((2, 3), rng=rng)]
        top = [Blob(), Blob(), Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        for t in top:
            assert np.array_equal(t.flat_data, bottom[0].flat_data)

    def test_backward_sums(self, rng):
        layer = create_layer(spec("s", "Split"))
        bottom = [make_blob((4,), rng=rng)]
        top = [Blob(), Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        top[0].flat_diff[:] = [1, 2, 3, 4]
        top[1].flat_diff[:] = [10, 20, 30, 40]
        layer.backward(top, [True], bottom)
        assert np.allclose(bottom[0].flat_diff, [11, 22, 33, 44])


class TestConcat:
    def test_channel_concat(self, rng):
        layer = create_layer(spec("c", "Concat"))
        a = make_blob((2, 3, 2, 2), rng=rng)
        b = make_blob((2, 5, 2, 2), rng=rng)
        top = [Blob()]
        layer.setup([a, b], top)
        layer.forward([a, b], top)
        assert top[0].shape == (2, 8, 2, 2)
        assert np.allclose(top[0].data[:, :3], a.data)
        assert np.allclose(top[0].data[:, 3:], b.data)

    def test_backward_slices(self, rng):
        layer = create_layer(spec("c", "Concat"))
        a, b = make_blob((2, 2), rng=rng), make_blob((2, 3), rng=rng)
        top = [Blob()]
        layer.setup([a, b], top)
        layer.forward([a, b], top)
        top[0].flat_diff[:] = np.arange(10, dtype=np.float32)
        layer.backward(top, [True, True], [a, b])
        grid = np.arange(10, dtype=np.float32).reshape(2, 5)
        assert np.allclose(a.diff, grid[:, :2])
        assert np.allclose(b.diff, grid[:, 2:])

    def test_gradient(self, rng):
        layer = create_layer(spec("c", "Concat"))
        bottom = [make_blob((2, 2, 2), rng=rng), make_blob((2, 3, 2), rng=rng)]
        check_gradient(layer, bottom, [Blob()])

    def test_mismatched_non_concat_axis(self, rng):
        layer = create_layer(spec("c", "Concat"))
        with pytest.raises(ValueError, match="non-concat axis"):
            layer.setup([make_blob((2, 2, 2)), make_blob((3, 2, 2))], [Blob()])

    def test_rank_mismatch(self, rng):
        layer = create_layer(spec("c", "Concat"))
        with pytest.raises(ValueError, match="rank"):
            layer.setup([make_blob((2, 2)), make_blob((2, 2, 2))], [Blob()])


class TestEltwise:
    def test_sum_with_coeffs(self):
        layer = create_layer(spec("e", "Eltwise", operation="SUM",
                                  coeff=[1.0, -1.0]))
        a = make_blob((3,), values=[5, 6, 7])
        b = make_blob((3,), values=[1, 2, 3])
        top = [Blob()]
        layer.setup([a, b], top)
        layer.forward([a, b], top)
        assert np.allclose(top[0].data, [4, 4, 4])

    def test_prod(self):
        layer = create_layer(spec("e", "Eltwise", operation="PROD"))
        a = make_blob((2,), values=[2, 3])
        b = make_blob((2,), values=[4, 5])
        top = [Blob()]
        layer.setup([a, b], top)
        layer.forward([a, b], top)
        assert np.allclose(top[0].data, [8, 15])

    def test_max_routing(self):
        layer = create_layer(spec("e", "Eltwise", operation="MAX"))
        a = make_blob((3,), values=[1, 9, 2])
        b = make_blob((3,), values=[5, 3, 2])
        top = [Blob()]
        layer.setup([a, b], top)
        layer.forward([a, b], top)
        assert np.allclose(top[0].data, [5, 9, 2])
        top[0].flat_diff[:] = 1.0
        layer.backward(top, [True, True], [a, b])
        assert np.allclose(a.flat_diff, [0, 1, 1])  # tie at idx 2 -> first
        assert np.allclose(b.flat_diff, [1, 0, 0])

    def test_sum_gradient(self, rng):
        layer = create_layer(spec("e", "Eltwise", operation="SUM",
                                  coeff=[2.0, -0.5]))
        bottom = [make_blob((2, 3), rng=rng), make_blob((2, 3), rng=rng)]
        check_gradient(layer, bottom, [Blob()])

    def test_prod_gradient(self, rng):
        layer = create_layer(spec("e", "Eltwise", operation="PROD"))
        bottom = [make_blob((2, 3), rng=rng), make_blob((2, 3), rng=rng)]
        check_gradient(layer, bottom, [Blob()])

    def test_three_bottoms(self, rng):
        layer = create_layer(spec("e", "Eltwise", operation="SUM"))
        bottoms = [make_blob((4,), rng=rng) for _ in range(3)]
        top = [Blob()]
        layer.setup(bottoms, top)
        layer.forward(bottoms, top)
        expected = sum(b.data for b in bottoms)
        assert np.allclose(top[0].data, expected, atol=1e-6)

    def test_shape_mismatch(self):
        layer = create_layer(spec("e", "Eltwise"))
        with pytest.raises(ValueError, match="shape"):
            layer.setup([make_blob((2,)), make_blob((3,))], [Blob()])

    def test_coeff_count_mismatch(self):
        layer_spec = spec("e", "Eltwise", coeff=[1.0])
        layer = create_layer(layer_spec)
        with pytest.raises(ValueError, match="coeffs"):
            layer.setup([make_blob((2,)), make_blob((2,))], [Blob()])

    def test_unknown_operation(self):
        layer = create_layer(spec("e", "Eltwise", operation="DIV"))
        with pytest.raises(ValueError, match="unknown operation"):
            layer.setup([make_blob((2,)), make_blob((2,))], [Blob()])
