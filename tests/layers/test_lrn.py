"""Unit tests for the LRN layer."""

import numpy as np
import pytest

from repro.framework.blob import Blob
from repro.framework.layer import create_layer
from repro.framework.gradient_check import check_gradient
from repro.testing import make_blob, spec


def lrn_layer(**params):
    defaults = dict(local_size=3, alpha=0.5, beta=0.75, k=1.0)
    defaults.update(params)
    return create_layer(spec("norm", "LRN", **defaults))


def reference_lrn(x, local_size, alpha, beta, k):
    n, c, h, w = x.shape
    half = local_size // 2
    out = np.zeros_like(x, dtype=np.float64)
    for s in range(n):
        for ch in range(c):
            lo, hi = max(0, ch - half), min(c, ch + half + 1)
            window = (x[s, lo:hi].astype(np.float64) ** 2).sum(axis=0)
            scale = k + (alpha / local_size) * window
            out[s, ch] = x[s, ch] * scale ** (-beta)
    return out


class TestForward:
    def test_matches_reference(self, rng):
        layer = lrn_layer()
        bottom = [make_blob((2, 5, 3, 3), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        expected = reference_lrn(bottom[0].data, 3, 0.5, 0.75, 1.0)
        assert np.allclose(top[0].data, expected, atol=1e-4)

    def test_cifar_parameters(self, rng):
        layer = lrn_layer(local_size=3, alpha=5e-5, beta=0.75)
        bottom = [make_blob((2, 32, 4, 4), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        expected = reference_lrn(bottom[0].data, 3, 5e-5, 0.75, 1.0)
        assert np.allclose(top[0].data, expected, atol=1e-4)

    def test_single_channel(self, rng):
        layer = lrn_layer(local_size=1)
        bottom = [make_blob((1, 1, 2, 2), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        expected = reference_lrn(bottom[0].data, 1, 0.5, 0.75, 1.0)
        assert np.allclose(top[0].data, expected, atol=1e-5)

    def test_chunked_equals_full(self, rng):
        layer = lrn_layer()
        bottom = [make_blob((4, 6, 3, 3), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        full = top[0].data.copy()
        top[0].zero_data()
        layer.forward_chunk(bottom, top, 0, 1)
        layer.forward_chunk(bottom, top, 1, 4)
        assert np.array_equal(top[0].data, full)


class TestBackward:
    def test_gradient_check(self, rng):
        layer = lrn_layer(alpha=0.9, beta=0.6)
        bottom = [make_blob((2, 4, 2, 2), rng=rng)]
        check_gradient(layer, bottom, [Blob()], step=1e-2, threshold=2e-2)


class TestScratchRouting:
    """The float64 window sums run through the pooled scratch buffers
    (PerfDecl: no per-chunk allocation), so results must stay bitwise
    stable across pool reuse and any chunking."""

    def test_forward_bitwise_stable_across_pool_reuse(self, rng):
        layer = lrn_layer()
        bottom = [make_blob((3, 6, 4, 4), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        first = top[0].data.copy()
        # dirty the pool with a different geometry, then recompute
        other = lrn_layer()
        other_bottom = [make_blob((2, 8, 3, 3), rng=rng)]
        other_top = [Blob()]
        other.setup(other_bottom, other_top)
        other.forward(other_bottom, other_top)
        top[0].zero_data()
        layer.forward(bottom, top)
        assert np.array_equal(top[0].data, first)

    def test_backward_chunked_equals_full(self, rng):
        layer = lrn_layer()
        bottom = [make_blob((4, 6, 3, 3), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        top[0].flat_diff[:] = rng.standard_normal(top[0].data.size)
        layer.backward(top, [True], bottom)
        full = bottom[0].diff.copy()
        bottom[0].zero_diff()
        space = layer.backward_space(top, bottom)
        for lo in range(0, space, 3):
            layer.backward_chunk(top, [True], bottom, lo,
                                 min(lo + 3, space), [])
        assert np.array_equal(bottom[0].diff, full)


class TestValidation:
    def test_even_local_size(self):
        with pytest.raises(ValueError, match="odd"):
            lrn_layer(local_size=4).setup([make_blob((1, 2, 2, 2))], [Blob()])

    def test_within_channel_unsupported(self):
        with pytest.raises(ValueError, match="ACROSS_CHANNELS"):
            lrn_layer(norm_region="WITHIN_CHANNEL").setup(
                [make_blob((1, 2, 2, 2))], [Blob()]
            )

    def test_needs_4d(self):
        with pytest.raises(ValueError, match="4-d"):
            lrn_layer().setup([make_blob((2, 3))], [Blob()])
