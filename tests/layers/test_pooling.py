"""Unit tests for the Pooling layer (MAX and AVE)."""

import numpy as np
import pytest

from repro.framework.blob import Blob
from repro.framework.layer import create_layer
from repro.framework.layers.pooling import pool_out_size
from repro.testing import make_blob, spec


def pool_layer(**params):
    defaults = dict(pool="MAX", kernel_size=2, stride=2)
    defaults.update(params)
    return create_layer(spec("pool", "Pooling", **defaults))


def reference_pool(x, kernel, stride, pad, method):
    n, c, h, w = x.shape
    oh = pool_out_size(h, kernel, pad, stride)
    ow = pool_out_size(w, kernel, pad, stride)
    out = np.zeros((n, c, oh, ow), dtype=np.float64)
    for s in range(n):
        for ch in range(c):
            for i in range(oh):
                for j in range(ow):
                    h0, w0 = i * stride - pad, j * stride - pad
                    h1, w1 = min(h0 + kernel, h), min(w0 + kernel, w)
                    h0c, w0c = max(h0, 0), max(w0, 0)
                    window = x[s, ch, h0c:h1, w0c:w1]
                    if method == "MAX":
                        out[s, ch, i, j] = window.max()
                    else:
                        # Caffe divisor: clipped to the padded image
                        h1p = min(h0 + kernel, h + pad)
                        w1p = min(w0 + kernel, w + pad)
                        out[s, ch, i, j] = window.sum() / (
                            (h1p - h0) * (w1p - w0)
                        )
    return out


class TestOutSize:
    def test_exact_fit(self):
        assert pool_out_size(24, 2, 0, 2) == 12

    def test_ceil_overhang(self):
        # CIFAR pool1: 32 with kernel 3 stride 2 -> ceil((32-3)/2)+1 = 16
        assert pool_out_size(32, 3, 0, 2) == 16

    def test_pad_clip(self):
        # last window must start inside the padded image
        assert pool_out_size(4, 3, 1, 2) == 3


class TestMaxForward:
    def test_matches_reference(self, rng):
        layer = pool_layer(kernel_size=3, stride=2)
        bottom = [make_blob((2, 3, 7, 7), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        expected = reference_pool(bottom[0].data, 3, 2, 0, "MAX")
        assert np.allclose(top[0].data, expected)

    def test_overhanging_window(self, rng):
        layer = pool_layer(kernel_size=3, stride=2)
        bottom = [make_blob((1, 1, 6, 6), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        assert top[0].shape == (1, 1, 3, 3)
        expected = reference_pool(bottom[0].data, 3, 2, 0, "MAX")
        assert np.allclose(top[0].data, expected)

    def test_with_padding(self, rng):
        layer = pool_layer(kernel_size=3, stride=2, pad=1)
        bottom = [make_blob((1, 2, 5, 5), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        expected = reference_pool(bottom[0].data, 3, 2, 1, "MAX")
        assert np.allclose(top[0].data, expected)

    def test_chunked_equals_full(self, rng):
        layer = pool_layer(kernel_size=3, stride=2)
        bottom = [make_blob((3, 4, 6, 6), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        full = top[0].data.copy()
        top[0].zero_data()
        space = layer.forward_space(bottom, top)
        assert space == 12  # 3 samples x 4 channels
        for lo in range(0, space, 5):
            layer.forward_chunk(bottom, top, lo, min(lo + 5, space))
        assert np.array_equal(top[0].data, full)


class TestAveForward:
    def test_matches_reference(self, rng):
        layer = pool_layer(pool="AVE", kernel_size=3, stride=2)
        bottom = [make_blob((2, 2, 7, 7), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        expected = reference_pool(bottom[0].data, 3, 2, 0, "AVE")
        assert np.allclose(top[0].data, expected, atol=1e-5)

    def test_with_padding_divisor(self, rng):
        layer = pool_layer(pool="AVE", kernel_size=3, stride=2, pad=1)
        bottom = [make_blob((1, 1, 5, 5), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        expected = reference_pool(bottom[0].data, 3, 2, 1, "AVE")
        assert np.allclose(top[0].data, expected, atol=1e-5)


class TestBackward:
    def test_max_routes_to_argmax(self):
        layer = pool_layer(kernel_size=2, stride=2)
        bottom = [make_blob((1, 1, 2, 2), values=[1, 5, 2, 3])]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        top[0].flat_diff[:] = 1.0
        layer.backward(top, [True], bottom)
        assert np.allclose(bottom[0].flat_diff, [0, 1, 0, 0])

    def test_max_gradient_check(self, rng):
        from repro.framework.gradient_check import check_gradient
        # Distinct values avoid argmax ties, which break finite differences.
        values = rng.permutation(2 * 2 * 5 * 5).astype(np.float32)
        layer = pool_layer(kernel_size=3, stride=2)
        bottom = [make_blob((2, 2, 5, 5), values=values)]
        check_gradient(layer, bottom, [Blob()], step=1e-1)

    def test_ave_gradient_check(self, rng):
        from repro.framework.gradient_check import check_gradient
        layer = pool_layer(pool="AVE", kernel_size=3, stride=2, pad=1)
        bottom = [make_blob((2, 2, 5, 5), rng=rng)]
        check_gradient(layer, bottom, [Blob()])

    def test_ave_spreads_uniformly(self):
        layer = pool_layer(pool="AVE", kernel_size=2, stride=2)
        bottom = [make_blob((1, 1, 2, 2), values=[1, 2, 3, 4])]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        top[0].flat_diff[:] = 4.0
        layer.backward(top, [True], bottom)
        assert np.allclose(bottom[0].flat_diff, 1.0)


class TestScratchRouting:
    """The padded planes run through the pooled scratch buffers
    (PerfDecl: no per-chunk allocation), so results must stay bitwise
    stable across pool reuse and any chunking."""

    @pytest.mark.parametrize("method", ["MAX", "AVE"])
    def test_forward_bitwise_stable_across_pool_reuse(self, rng, method):
        layer = pool_layer(pool=method, kernel_size=3, stride=2, pad=1)
        bottom = [make_blob((2, 3, 6, 6), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        first = top[0].data.copy()
        # dirty the pool with a different geometry, then recompute
        other = pool_layer(pool=method, kernel_size=2, stride=2)
        other_bottom = [make_blob((1, 2, 8, 8), rng=rng)]
        other_top = [Blob()]
        other.setup(other_bottom, other_top)
        other.forward(other_bottom, other_top)
        top[0].zero_data()
        layer.forward(bottom, top)
        assert np.array_equal(top[0].data, first)

    @pytest.mark.parametrize("method", ["MAX", "AVE"])
    def test_backward_chunked_equals_full(self, rng, method):
        layer = pool_layer(pool=method, kernel_size=3, stride=2, pad=1)
        values = rng.permutation(3 * 2 * 6 * 6).astype(np.float32)
        bottom = [make_blob((3, 2, 6, 6), values=values)]
        top = [Blob()]
        layer.setup(bottom, top)
        layer.forward(bottom, top)
        top[0].flat_diff[:] = rng.standard_normal(top[0].data.size)
        layer.backward(top, [True], bottom)
        full = bottom[0].diff.copy()
        bottom[0].zero_diff()
        space = layer.backward_space(top, bottom)
        for lo in range(0, space, 2):
            layer.backward_chunk(top, [True], bottom, lo,
                                 min(lo + 2, space), [])
        assert np.array_equal(bottom[0].diff, full)


class TestValidation:
    def test_unknown_method(self):
        with pytest.raises(ValueError, match="pool method"):
            pool_layer(pool="STOCHASTIC").setup(
                [make_blob((1, 1, 4, 4))], [Blob()]
            )

    def test_pad_too_large(self):
        with pytest.raises(ValueError, match="pad"):
            pool_layer(kernel_size=2, pad=2).setup(
                [make_blob((1, 1, 4, 4))], [Blob()]
            )
