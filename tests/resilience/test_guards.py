"""Unit tests for the numeric health guards.

A guarded healthy run must be bitwise identical to the unguarded one;
each policy (halt / skip-batch / rollback) must deliver its promised
recovery on poisoned losses and post-update parameters; and any
exception escaping forward/backward must be contained (state restored,
diffs cleared, re-raised) under every policy.
"""

import numpy as np
import pytest

from repro.analysis.detcheck import _build_solver
from repro.resilience.guards import (
    GUARD_POLICIES,
    GuardEvent,
    HealthGuard,
    NumericFault,
)


def _params(solver):
    return [b.flat_data.copy() for b in solver.net.learnable_params]


def _poison_loss_once(solver, at_iteration):
    """Make forward/backward report a NaN loss at one iteration."""
    inner = solver._forward_backward

    def wrapped():
        loss = inner()
        if solver.iteration == at_iteration:
            return float("nan")
        return loss

    solver._forward_backward = wrapped


class TestHealthyPath:
    def test_guarded_run_bitwise_equals_unguarded(self):
        plain = _build_solver("mlp", 4, 4, None)
        plain.step(4)

        guarded = _build_solver("mlp", 4, 4, None)
        guarded.guard = HealthGuard(policy="halt")
        guarded.step(4)

        assert guarded.loss_history == plain.loss_history
        for got, want in zip(_params(guarded), _params(plain)):
            np.testing.assert_array_equal(got, want)
        assert guarded.guard.events == []

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown guard policy"):
            HealthGuard(policy="retry")


class TestHaltPolicy:
    def test_nan_loss_halts_with_restored_params(self):
        solver = _build_solver("mlp", 4, 4, None)
        solver.guard = HealthGuard(policy="halt")
        solver.step(1)
        before = _params(solver)
        _poison_loss_once(solver, at_iteration=1)
        with pytest.raises(NumericFault) as info:
            solver.step(1)
        event = info.value.event
        assert event.stage == "loss" and event.action == "halt"
        assert solver.iteration == 1  # poisoned iteration did not count
        for got, want in zip(_params(solver), before):
            np.testing.assert_array_equal(got, want)
        assert all(
            np.all(b.flat_diff == 0)
            for b in solver.net.learnable_params
        )


class TestSkipBatchPolicy:
    def test_update_dropped_iteration_counts(self):
        solver = _build_solver("mlp", 4, 4, None)
        solver.guard = HealthGuard(policy="skip-batch")
        solver.step(1)
        before = _params(solver)
        _poison_loss_once(solver, at_iteration=1)
        solver.step(1)
        assert solver.iteration == 2  # the skipped iteration counted
        assert len(solver.loss_history) == 2
        for got, want in zip(_params(solver), before):
            np.testing.assert_array_equal(got, want)  # update dropped
        events = solver.guard.events
        assert len(events) == 1 and events[0].action == "skip-batch"
        # training continues cleanly afterwards
        solver.step(2)
        assert solver.iteration == 4

    def test_post_update_poison_escalates_to_halt(self):
        solver = _build_solver("mlp", 4, 4, None)
        solver.guard = HealthGuard(policy="skip-batch")
        solver.step(1)
        before = _params(solver)

        inner = solver.apply_update

        def poisoned_update():
            inner()
            blob = solver.net.learnable_params[0]
            blob.flat_data[0] = np.nan
            blob.mark_host_data_dirty()

        solver.apply_update = poisoned_update
        with pytest.raises(NumericFault) as info:
            solver.step(1)
        assert info.value.event.stage == "param"
        assert info.value.event.action == "halt"
        for got, want in zip(_params(solver), before):
            np.testing.assert_array_equal(got, want)


class TestRollbackPolicy:
    def test_rollback_restores_and_continues(self):
        solver = _build_solver("mlp", 4, 4, None)
        solver.guard = HealthGuard(policy="rollback")
        solver.step(1)
        before = _params(solver)
        _poison_loss_once(solver, at_iteration=1)
        solver.step(3)
        assert solver.iteration == 4
        assert len(solver.guard.events) == 1
        assert solver.guard.events[0].action == "rollback"
        assert all(np.all(np.isfinite(p)) for p in _params(solver))
        # iteration 2 onward trained from the rolled-back state, so the
        # parameters moved on from `before`
        assert any(
            not np.array_equal(got, want)
            for got, want in zip(_params(solver), before)
        )

    def test_rollback_recovers_post_update_poison(self):
        solver = _build_solver("mlp", 4, 4, None)
        solver.guard = HealthGuard(policy="rollback")
        solver.step(1)
        before = _params(solver)

        inner = solver.apply_update
        fired = []

        def poisoned_update():
            inner()
            if not fired:
                fired.append(True)
                blob = solver.net.learnable_params[0]
                blob.flat_data[0] = np.inf
                blob.mark_host_data_dirty()

        solver.apply_update = poisoned_update
        solver.step(1)
        assert solver.iteration == 2
        for got, want in zip(_params(solver), before):
            np.testing.assert_array_equal(got, want)  # shadow restored


class TestExceptionContainment:
    @pytest.mark.parametrize("policy", GUARD_POLICIES)
    def test_restores_state_and_reraises(self, policy):
        solver = _build_solver("mlp", 4, 4, None)
        solver.guard = HealthGuard(policy=policy)
        solver.step(1)
        before = _params(solver)
        history_before = [h.copy() for h in solver.history]

        def exploding():
            raise RuntimeError("chunk blew up")

        solver._forward_backward = exploding
        with pytest.raises(RuntimeError, match="chunk blew up"):
            solver.step(1)
        assert solver.iteration == 1
        for got, want in zip(_params(solver), before):
            np.testing.assert_array_equal(got, want)
        for got, want in zip(solver.history, history_before):
            np.testing.assert_array_equal(got, want)
        assert all(
            np.all(b.flat_diff == 0)
            for b in solver.net.learnable_params
        )
        events = solver.guard.events
        assert len(events) == 1
        assert events[0].stage == "exception"
        assert events[0].action == "contain"


class TestGuardEvent:
    def test_str_is_informative(self):
        event = GuardEvent(3, "loss", "loss=nan", "halt", "halt")
        text = str(event)
        assert "iteration 3" in text and "loss" in text and "halt" in text
