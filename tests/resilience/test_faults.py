"""Unit and integration tests for the deterministic fault injector.

Every fault class fires at its exact iteration, surfaces the
:class:`InjectedFault` sentinel (never a masked secondary error), and —
crucially — the runtime recovers: the thread team stays usable, guards
contain the damage, and a resumed run rejoins the reference trajectory.
"""

import numpy as np
import pytest

from repro.analysis.detcheck import _build_solver, capture_trajectory
from repro.core import ParallelExecutor
from repro.core.team import WorkerError
from repro.resilience import (
    ChunkAbort,
    FaultPlan,
    HealthGuard,
    InjectedFault,
    LayerRaise,
    NaNBlob,
    NumericFault,
    corrupt_checkpoint,
    inject,
    truncate_checkpoint,
)


def _params(solver):
    return [b.flat_data.copy() for b in solver.net.learnable_params]


class TestFaultPlan:
    def test_rejects_non_fault_entries(self):
        with pytest.raises(TypeError, match="FaultPlan entries"):
            FaultPlan("not a fault")

    def test_layer_raise_validates_phase(self):
        with pytest.raises(ValueError, match="phase"):
            LayerRaise(layer="fc1", iteration=0, phase="sideways")


class TestNaNBlob:
    def test_poisons_named_blob_at_exact_iteration(self):
        solver = _build_solver("mlp", 4, 4, None)
        solver.guard = HealthGuard(policy="halt")
        solver.step(1)  # iteration 0 runs clean
        plan = FaultPlan(NaNBlob(blob="fc1", iteration=1))
        with inject(solver, plan):
            with pytest.raises(NumericFault) as info:
                solver.step(3)
        assert info.value.event.iteration == 1
        assert all(np.all(np.isfinite(p)) for p in _params(solver))

    def test_sequential_run_unaffected_before_fault_iteration(self):
        reference = _build_solver("mlp", 4, 4, None)
        reference.step(2)

        solver = _build_solver("mlp", 4, 4, None)
        plan = FaultPlan(NaNBlob(blob="fc1", iteration=3))
        with inject(solver, plan):
            solver.step(2)  # fault iteration never reached
        assert solver.loss_history == reference.loss_history


class TestLayerRaise:
    @pytest.mark.parametrize("phase", ["forward", "backward"])
    def test_raises_injected_fault_in_phase(self, phase):
        solver = _build_solver("mlp", 4, 4, None)
        solver.step(1)
        plan = FaultPlan(
            LayerRaise(layer="fc1", iteration=1, phase=phase))
        with inject(solver, plan):
            with pytest.raises(InjectedFault, match=phase):
                solver.step(1)

    def test_patches_removed_on_exit(self):
        solver = _build_solver("mlp", 4, 4, None)
        plan = FaultPlan(
            LayerRaise(layer="fc1", iteration=0, phase="forward"))
        with inject(solver, plan):
            with pytest.raises(InjectedFault):
                solver.step(1)
        solver.step(1)  # same solver, clean run: patches are gone
        assert solver.iteration == 1

    def test_guard_contains_and_state_survives(self):
        solver = _build_solver("mlp", 4, 4, None)
        solver.guard = HealthGuard(policy="halt")
        solver.step(1)
        before = _params(solver)
        plan = FaultPlan(
            LayerRaise(layer="fc1", iteration=1, phase="forward"))
        with inject(solver, plan):
            with pytest.raises(InjectedFault):
                solver.step(1)
        for got, want in zip(_params(solver), before):
            np.testing.assert_array_equal(got, want)
        assert solver.guard.events[-1].action == "contain"


class TestChunkAbort:
    def test_surfaces_root_cause_and_team_recovers(self):
        executor = ParallelExecutor(num_threads=2, reduction="blockwise")
        try:
            solver = _build_solver("mlp", 4, 4, executor)
            plan = FaultPlan(ChunkAbort(layer="fc1", iteration=0))
            with inject(solver, plan):
                with pytest.raises(WorkerError) as info:
                    solver.step(1)
            assert isinstance(info.value.original, InjectedFault)
            assert info.value.layer == "fc1"
            assert info.value.phase == "forward"
            # the same team must run the next iteration cleanly
            solver.net.clear_param_diffs()
            solver.step(1)
            assert solver.iteration == 1
        finally:
            executor.close()

    def test_never_fires_under_sequential_executor(self):
        solver = _build_solver("mlp", 4, 4, None)
        plan = FaultPlan(ChunkAbort(layer="fc1", iteration=0))
        with inject(solver, plan):
            solver.step(1)  # no parallel region exists to abort
        assert solver.iteration == 1

    def test_post_crash_resume_rejoins_reference(self, tmp_path):
        iters, crash_at = 4, 2
        path = str(tmp_path / "ck.rckp")
        reference = capture_trajectory("mlp", iters, 4, threads=2,
                                       mode="blockwise")

        executor = ParallelExecutor(num_threads=2, reduction="blockwise")
        try:
            crasher = _build_solver("mlp", iters, 4, executor)
            crasher.guard = HealthGuard(policy="halt")
            crasher.step(crash_at)
            crasher.save_state(path)
            plan = FaultPlan(
                LayerRaise(layer="fc1", iteration=crash_at))
            with inject(crasher, plan):
                # chunked execution wraps the fault in WorkerError
                with pytest.raises((InjectedFault, WorkerError)) as info:
                    crasher.step(1)
            if isinstance(info.value, WorkerError):
                assert isinstance(info.value.original, InjectedFault)
        finally:
            executor.close()

        executor = ParallelExecutor(num_threads=2, reduction="blockwise")
        try:
            survivor = _build_solver("mlp", iters, 4, executor)
            survivor.load_state(path)
            survivor.step(iters - crash_at)
            for snapshot, params in zip(
                reference.snapshots[-1].params,
                (b.flat_data for b in survivor.net.learnable_params),
            ):
                np.testing.assert_array_equal(params, snapshot)
            assert [s.loss for s in reference.snapshots] == \
                survivor.loss_history
        finally:
            executor.close()


class TestFileDamage:
    def test_corrupt_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.bin", tmp_path / "b.bin"
        payload = bytes(range(256)) * 4
        for path in (a, b):
            path.write_bytes(payload)
            corrupt_checkpoint(str(path), seed=3)
        assert a.read_bytes() == b.read_bytes()
        assert a.read_bytes() != payload

    def test_corrupt_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(ValueError, match="empty"):
            corrupt_checkpoint(str(path))

    def test_truncate_keeps_fraction(self, tmp_path):
        path = tmp_path / "t.bin"
        path.write_bytes(b"z" * 100)
        truncate_checkpoint(str(path), fraction=0.25)
        assert len(path.read_bytes()) == 25

    def test_truncate_validates_fraction(self, tmp_path):
        path = tmp_path / "t.bin"
        path.write_bytes(b"z" * 10)
        with pytest.raises(ValueError, match="fraction"):
            truncate_checkpoint(str(path), fraction=1.0)
