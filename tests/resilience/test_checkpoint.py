"""Unit and integration tests for crash-consistent checkpointing.

Container half: atomic writes, CRC-32 verification, coded rejection of
corrupt / truncated / old-format / future-version files.  Trajectory
half: save -> fresh-solver resume is bitwise identical to the
uninterrupted run, and incompatible solver or LR-policy state is
rejected instead of silently forking the trajectory.
"""

import os

import numpy as np
import pytest

from repro.analysis.detcheck import _build_solver
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    MAGIC,
    _HEADER,
    CheckpointCorrupt,
    CheckpointFormatError,
    CheckpointMismatch,
    atomic_savez,
    atomic_savez_with_digest,
    atomic_write_bytes,
    capture_state,
    checked_load,
    load_npz_verified,
    read_container,
    write_container,
)


def _arrays():
    return {
        "alpha": np.arange(12, dtype=np.float32).reshape(3, 4),
        "beta": np.array([1.5, -2.5], dtype=np.float64),
        "gamma": np.array(7, dtype=np.int64),
    }


class TestAtomicWrite:
    def test_replaces_existing_file(self, tmp_path):
        path = str(tmp_path / "state.bin")
        atomic_write_bytes(path, b"old")
        atomic_write_bytes(path, b"new")
        with open(path, "rb") as fh:
            assert fh.read() == b"new"

    def test_no_temp_litter(self, tmp_path):
        path = str(tmp_path / "state.bin")
        atomic_write_bytes(path, b"payload")
        assert os.listdir(tmp_path) == ["state.bin"]


class TestContainer:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "ck.rckp")
        atomic_savez(path, _arrays())
        loaded = checked_load(path)
        for name, ref in _arrays().items():
            np.testing.assert_array_equal(loaded[name], ref)
            assert loaded[name].dtype == ref.dtype

    def test_corrupt_payload_rejected_with_digests(self, tmp_path):
        path = str(tmp_path / "ck.rckp")
        write_container(path, b"x" * 64)
        raw = bytearray(open(path, "rb").read())
        raw[_HEADER.size + 10] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(raw)
        with pytest.raises(CheckpointCorrupt) as info:
            read_container(path)
        message = str(info.value)
        assert "ck.rckp" in message
        assert info.value.expected is not None
        assert info.value.actual is not None
        assert info.value.expected != info.value.actual

    def test_truncated_payload_rejected(self, tmp_path):
        path = str(tmp_path / "ck.rckp")
        write_container(path, b"y" * 128)
        raw = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(raw[: _HEADER.size + 40])
        with pytest.raises(CheckpointCorrupt, match="truncated"):
            read_container(path)

    def test_old_format_npz_rejected(self, tmp_path):
        path = str(tmp_path / "legacy.npz")
        np.savez(path, weights=np.zeros(3))
        with pytest.raises(CheckpointFormatError, match="pre-resilience"):
            read_container(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "junk.rckp")
        with open(path, "wb") as fh:
            fh.write(b"NOPE" + b"\0" * 32)
        with pytest.raises(CheckpointFormatError):
            read_container(path)

    def test_future_version_rejected(self, tmp_path):
        path = str(tmp_path / "future.rckp")
        header = _HEADER.pack(MAGIC, CHECKPOINT_VERSION + 1, 0, 0)
        with open(path, "wb") as fh:
            fh.write(header)
        with pytest.raises(CheckpointFormatError, match="version"):
            read_container(path)


class TestDigestNpz:
    def test_stays_np_load_compatible(self, tmp_path):
        path = str(tmp_path / "weights.npz")
        atomic_savez_with_digest(path, _arrays())
        with np.load(path) as raw:
            np.testing.assert_array_equal(raw["alpha"], _arrays()["alpha"])

    def test_verified_loader_pops_digest(self, tmp_path):
        path = str(tmp_path / "weights.npz")
        atomic_savez_with_digest(path, _arrays())
        loaded = load_npz_verified(path)
        assert set(loaded) == set(_arrays())

    def test_tampered_array_rejected(self, tmp_path):
        path = str(tmp_path / "weights.npz")
        arrays = _arrays()
        atomic_savez_with_digest(path, arrays)
        # Tamper: rewrite one array without refreshing the digest.
        with np.load(path) as raw:
            stored = {name: raw[name] for name in raw.files}
        stored["alpha"] = stored["alpha"] + 1
        np.savez(path, **stored)
        with pytest.raises(CheckpointCorrupt):
            load_npz_verified(path)


def _losses_and_params(solver):
    return (
        list(solver.loss_history),
        [b.flat_data.copy() for b in solver.net.learnable_params],
    )


class TestTrajectoryResume:
    @pytest.mark.parametrize("net", ["mlp", "lenet"])
    def test_resume_bitwise_equals_uninterrupted(self, tmp_path, net):
        iters, resume_at = 4, 2
        path = str(tmp_path / "ck.rckp")

        reference = _build_solver(net, iters, 4, None)
        reference.step(iters)
        ref_losses, ref_params = _losses_and_params(reference)

        first = _build_solver(net, iters, 4, None)
        first.step(resume_at)
        first.save_state(path)

        second = _build_solver(net, iters, 4, None)
        second.load_state(path)
        assert second.iteration == resume_at
        second.step(iters - resume_at)
        res_losses, res_params = _losses_and_params(second)

        assert res_losses == ref_losses  # bitwise: float == float
        for got, want in zip(res_params, ref_params):
            np.testing.assert_array_equal(got, want)

    def test_roundtrip_state_is_stable(self, tmp_path):
        path = str(tmp_path / "ck.rckp")
        solver = _build_solver("mlp", 4, 4, None)
        solver.step(2)
        solver.save_state(path)
        fresh = _build_solver("mlp", 4, 4, None)
        fresh.load_state(path)
        saved = checked_load(path)
        recaptured = capture_state(fresh)
        assert set(saved) == set(recaptured)
        for key in saved:
            np.testing.assert_array_equal(saved[key], recaptured[key])

    def test_solver_type_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "ck.rckp")
        solver = _build_solver("mlp", 4, 4, None)
        solver.step(1)
        solver.save_state(path)

        from repro.framework.solvers import create_solver

        other = _build_solver("mlp", 4, 4, None)
        params = other.params
        params.type = "AdaGrad"
        params.momentum = 0.0
        adagrad = create_solver(params, other.net)
        with pytest.raises(CheckpointMismatch, match="solver"):
            adagrad.load_state(path)

    def test_lr_policy_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "ck.rckp")
        solver = _build_solver("mlp", 4, 4, None)
        solver.step(1)
        solver.save_state(path)
        other = _build_solver("mlp", 8, 4, None)  # different max_iter
        with pytest.raises(CheckpointMismatch, match="max_iter"):
            other.load_state(path)

    def test_old_format_snapshot_rejected_on_load_state(self, tmp_path):
        path = str(tmp_path / "legacy.npz")
        np.savez(path, __iteration__=np.array(3))
        solver = _build_solver("mlp", 4, 4, None)
        with pytest.raises(CheckpointFormatError):
            solver.load_state(path)

    def test_corrupt_snapshot_rejected_on_load_state(self, tmp_path):
        from repro.resilience import corrupt_checkpoint

        path = str(tmp_path / "ck.rckp")
        solver = _build_solver("mlp", 4, 4, None)
        solver.step(1)
        solver.save_state(path)
        corrupt_checkpoint(path, seed=7)
        fresh = _build_solver("mlp", 4, 4, None)
        with pytest.raises(CheckpointCorrupt):
            fresh.load_state(path)


class TestNetSave:
    def test_net_save_verified_roundtrip(self, tmp_path):
        path = str(tmp_path / "weights.npz")
        solver = _build_solver("mlp", 2, 4, None)
        solver.step(1)
        solver.net.save(path)
        fresh = _build_solver("mlp", 2, 4, None)
        fresh.net.load(path)
        for got, want in zip(
            fresh.net.learnable_params, solver.net.learnable_params
        ):
            np.testing.assert_array_equal(got.flat_data, want.flat_data)


class TestHeaderTruncation:
    """Torn writes that cut the file before the header ends must surface
    as CheckpointFormatError naming the path and byte count — never as a
    bare struct.error / EOFError from the header unpack."""

    def _container(self, tmp_path):
        path = str(tmp_path / "state.rckp")
        write_container(path, b"payload-bytes-for-truncation")
        with open(path, "rb") as fh:
            blob = fh.read()
        assert len(blob) > _HEADER.size
        return path, blob

    @pytest.mark.parametrize("cut", list(range(_HEADER.size)))
    def test_every_header_boundary_is_coded(self, tmp_path, cut):
        path, blob = self._container(tmp_path)
        with open(path, "wb") as fh:
            fh.write(blob[:cut])
        with pytest.raises(CheckpointFormatError) as excinfo:
            read_container(path)
        message = str(excinfo.value)
        assert path in message
        assert f"{cut} byte(s)" in message

    def test_zero_length_file_is_coded(self, tmp_path):
        path = str(tmp_path / "empty.rckp")
        with open(path, "wb"):
            pass
        with pytest.raises(CheckpointFormatError, match="0 byte"):
            read_container(path)

    @pytest.mark.parametrize("keep_extra", [0, 1, 7])
    def test_post_header_truncation_stays_coded(self, tmp_path, keep_extra):
        """Cuts past the header are the existing payload-truncation
        path: still a coded checkpoint error, never struct/EOF."""
        path, blob = self._container(tmp_path)
        with open(path, "wb") as fh:
            fh.write(blob[:_HEADER.size + keep_extra])
        with pytest.raises((CheckpointFormatError, CheckpointCorrupt)):
            read_container(path)
