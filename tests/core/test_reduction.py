"""Unit tests for the gradient merge helpers."""

import numpy as np
import pytest

from repro.core.reduction import add_into, tree_combine


class TestAddInto:
    def test_accumulates(self):
        target = np.array([1.0, 2.0], np.float32)
        add_into([target], [np.array([3.0, 4.0], np.float32)])
        assert np.allclose(target, [4, 6])

    def test_multiple_targets(self):
        a = np.zeros(2, np.float32)
        b = np.zeros(3, np.float32)
        add_into([a, b], [np.ones(2, np.float32), np.full(3, 2.0, np.float32)])
        assert np.allclose(a, 1) and np.allclose(b, 2)

    def test_count_mismatch(self):
        with pytest.raises(ValueError, match="buffers"):
            add_into([np.zeros(2)], [])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            add_into([np.zeros(2)], [np.zeros(3)])


class TestTreeCombine:
    def test_equals_sum(self, rng):
        partials = [
            [rng.standard_normal(8).astype(np.float32)] for _ in range(5)
        ]
        expected = np.sum([p[0].copy() for p in partials], axis=0)
        root = tree_combine([list(map(np.copy, p)) for p in partials])
        assert np.allclose(root[0], expected, atol=1e-5)

    def test_single_thread(self):
        only = [np.array([1.0, 2.0], np.float32)]
        assert tree_combine([only])[0] is only[0]

    def test_deterministic_shape(self, rng):
        """Fixed tree: combining the same partials twice gives the
        bitwise-same result."""
        def partials():
            gen = np.random.default_rng(3)
            return [[gen.standard_normal(16).astype(np.float32)]
                    for _ in range(7)]

        a = tree_combine(partials())[0]
        b = tree_combine(partials())[0]
        assert np.array_equal(a, b)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            tree_combine([])
