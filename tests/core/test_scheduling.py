"""Unit tests for loop schedules."""

import pytest

from repro.core.scheduling import (
    DynamicSchedule,
    GuidedSchedule,
    StaticSchedule,
    make_schedule,
)


def collect(schedule, space, threads):
    """All chunks of a schedule, flattened."""
    if schedule.is_static:
        plan = schedule.plan(space, threads)
        return [chunk for per in plan for chunk in per]
    server = schedule.chunk_server(space, threads)
    chunks = []
    while (chunk := server.next_chunk()) is not None:
        chunks.append(chunk)
    return chunks


def assert_exact_partition(chunks, space):
    covered = sorted(chunks)
    position = 0
    for lo, hi in covered:
        assert lo == position, f"gap/overlap at {lo}"
        assert hi > lo
        position = hi
    assert position == space


class TestStatic:
    def test_default_one_block_per_thread(self):
        plan = StaticSchedule().plan(10, 4)
        assert plan == [[(0, 3)], [(3, 6)], [(6, 9)], [(9, 10)]]

    def test_partition_exact(self):
        for space in (0, 1, 7, 16, 100):
            for threads in (1, 2, 3, 8):
                assert_exact_partition(
                    collect(StaticSchedule(), space, threads), space
                )

    def test_chunked_round_robin(self):
        plan = StaticSchedule(chunk=2).plan(10, 2)
        assert plan[0] == [(0, 2), (4, 6), (8, 10)]
        assert plan[1] == [(2, 4), (6, 8)]

    def test_empty_space(self):
        assert StaticSchedule().plan(0, 4) == [[], [], [], []]

    def test_fewer_iterations_than_threads(self):
        plan = StaticSchedule().plan(2, 4)
        assert plan[0] and plan[1] and not plan[2] and not plan[3]

    def test_deterministic(self):
        a = StaticSchedule(chunk=3).plan(20, 4)
        b = StaticSchedule(chunk=3).plan(20, 4)
        assert a == b

    def test_invalid(self):
        with pytest.raises(ValueError):
            StaticSchedule(chunk=0)
        with pytest.raises(ValueError):
            StaticSchedule().plan(-1, 2)
        with pytest.raises(ValueError):
            StaticSchedule().plan(4, 0)


class TestDynamic:
    def test_partition_exact(self):
        for chunk in (1, 3, 7):
            assert_exact_partition(
                collect(DynamicSchedule(chunk), 20, 4), 20
            )

    def test_chunk_sizes(self):
        chunks = collect(DynamicSchedule(4), 10, 2)
        assert chunks == [(0, 4), (4, 8), (8, 10)]

    def test_not_static(self):
        assert not DynamicSchedule().is_static


class TestGuided:
    def test_partition_exact(self):
        assert_exact_partition(collect(GuidedSchedule(1), 100, 4), 100)

    def test_decreasing_chunks(self):
        chunks = collect(GuidedSchedule(1), 100, 4)
        sizes = [hi - lo for lo, hi in chunks]
        assert sizes[0] > sizes[-1]
        assert sizes == sorted(sizes, reverse=True) or min(sizes) >= 1

    def test_min_chunk_respected(self):
        chunks = collect(GuidedSchedule(5), 100, 4)
        # all but possibly the last chunk are >= 5
        assert all(hi - lo >= 5 for lo, hi in chunks[:-1])


class TestMakeSchedule:
    def test_parse(self):
        assert isinstance(make_schedule("static"), StaticSchedule)
        assert make_schedule("static,4").chunk == 4
        assert isinstance(make_schedule("dynamic,2"), DynamicSchedule)
        assert isinstance(make_schedule("guided"), GuidedSchedule)

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            make_schedule("auto")
