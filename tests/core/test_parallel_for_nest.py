"""Tests for the literal Algorithm-4 API: parallel_for_nest."""

import numpy as np
import pytest

from repro.core.scheduling import StaticSchedule
from repro.core.team import ThreadTeam


@pytest.fixture
def team():
    with ThreadTeam(3) as t:
        yield t


class TestParallelForNest:
    def test_full_collapse_covers_nest(self, team):
        hits = np.zeros((4, 3, 2), dtype=np.int64)

        def body(s, d1, d2, thread_id):
            hits[s, d1, d2] += 1

        team.parallel_for_nest((4, 3, 2), body)
        assert (hits == 1).all()

    def test_partial_collapse(self, team):
        """collapse=1 parallelizes only the batch loop (the un-coalesced
        baseline of the paper's ablation); inner loops run serially per
        iteration."""
        hits = np.zeros((5, 4), dtype=np.int64)
        owners = np.full(5, -1, dtype=np.int64)

        def body(s, d, thread_id):
            hits[s, d] += 1
            owners[s] = thread_id

        team.parallel_for_nest((5, 4), body, collapse=1)
        assert (hits == 1).all()
        # a whole batch row belongs to exactly one thread
        assert (owners >= 0).all()

    def test_indices_match_row_major(self, team):
        seen = []

        def body(i, j, thread_id):
            if thread_id == 0:
                seen.append((i, j))

        team.parallel_for_nest((2, 3), body, StaticSchedule())
        # thread 0 owns the first static chunk: iterations 0 and 1
        assert seen == [(0, 0), (0, 1)]

    def test_invalid_collapse(self, team):
        with pytest.raises(ValueError, match="collapse"):
            team.parallel_for_nest((2, 2), lambda *a, **k: None, collapse=3)

    def test_matches_sequential_sum(self, team):
        total = np.zeros(1)
        lock_free = np.zeros((6, 7))

        def body(i, j, thread_id):
            lock_free[i, j] = i * 10 + j

        team.parallel_for_nest((6, 7), body)
        expected = np.add.outer(np.arange(6) * 10, np.arange(7))
        assert np.array_equal(lock_free, expected)


class TestSolverStateSnapshot:
    def test_full_resume_is_exact(self, tmp_path):
        from repro.zoo import build_solver

        a = build_solver("lenet", max_iter=20)
        a.step(6)
        path = str(tmp_path / "solver.npz")
        a.save_state(path)

        b = build_solver("lenet", max_iter=20)
        b.load_state(path)
        assert b.iteration == a.iteration
        # align the data cursor (not part of solver state, as in Caffe)
        b.net.layers[0].source._cursor = a.net.layers[0].source._cursor

        assert a.step(3) == b.step(3)  # identical continuation

    def test_history_restored(self, tmp_path):
        from repro.zoo import build_solver

        a = build_solver("lenet", max_iter=5)
        a.step(3)
        path = str(tmp_path / "solver.npz")
        a.save_state(path)
        b = build_solver("lenet", max_iter=5)
        b.load_state(path)
        for ha, hb in zip(a.history, b.history):
            assert np.array_equal(ha, hb)
