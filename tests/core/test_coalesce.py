"""Unit tests for loop coalescing."""

import pytest

from repro.core.coalesce import CoalescedSpace
from repro.core.scheduling import StaticSchedule


class TestBijection:
    def test_size(self):
        assert CoalescedSpace((4, 3, 2)).size == 24

    def test_row_major_order(self):
        space = CoalescedSpace((2, 3))
        expected = [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]
        assert [space.indices(i) for i in range(6)] == expected

    def test_round_trip(self):
        space = CoalescedSpace((3, 4, 5))
        for civ in range(space.size):
            assert space.civ(space.indices(civ)) == civ

    def test_single_dim(self):
        space = CoalescedSpace((7,))
        assert space.indices(3) == (3,)
        assert space.civ((3,)) == 3

    def test_out_of_range(self):
        space = CoalescedSpace((2, 2))
        with pytest.raises(IndexError):
            space.indices(4)
        with pytest.raises(IndexError):
            space.civ((2, 0))

    def test_wrong_arity(self):
        with pytest.raises(ValueError, match="indices"):
            CoalescedSpace((2, 2)).civ((1,))

    def test_invalid_dims(self):
        with pytest.raises(ValueError, match="positive"):
            CoalescedSpace((2, 0))
        with pytest.raises(ValueError, match="at least one"):
            CoalescedSpace(())


class TestImbalance:
    def test_perfect_balance(self):
        assert CoalescedSpace((16,)).imbalance(4) == 0.0

    def test_batch_only_worst_case(self):
        # 9 iterations over 8 threads: busiest gets 2, ideal 1.125
        space = CoalescedSpace((9,))
        assert space.imbalance(8) == pytest.approx(2 / (9 / 8) - 1)

    def test_coalescing_reduces_imbalance(self):
        """The paper's motivation for Algorithm 4's coalescing: same
        total work, finer units, better balance."""
        batch_only = CoalescedSpace((9,))
        coalesced = CoalescedSpace((9, 64))
        for threads in (2, 4, 8, 16):
            assert coalesced.imbalance(threads) <= batch_only.imbalance(threads)

    def test_more_threads_than_iterations(self):
        space = CoalescedSpace((4,))
        assert space.imbalance(8) == pytest.approx(8 / 4 - 1)

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            CoalescedSpace((4,)).imbalance(0)


class TestDimSubsetOwnership:
    """Plans may coalesce any dim subset (channel-only, spatial-only,
    sample x channel, ...), not just the default sample-major space.
    Whatever subset is chosen, the static chunk deal over the civ space
    must partition it exactly: every multi-index owned by exactly one
    thread."""

    SUBSETS = {
        "channel_only": (20,),
        "spatial_only": (24, 24),
        "sample_channel": (64, 20),
    }

    @pytest.mark.parametrize("threads", [1, 2, 8])
    @pytest.mark.parametrize(
        "dims", SUBSETS.values(), ids=SUBSETS.keys()
    )
    def test_static_chunks_partition_exactly(self, dims, threads):
        space = CoalescedSpace(dims)
        per_thread = StaticSchedule().plan(space.size, threads)
        assert len(per_thread) == threads
        owner = {}
        for tid, chunks in enumerate(per_thread):
            for lo, hi in chunks:
                assert 0 <= lo <= hi <= space.size
                for civ in range(lo, hi):
                    indices = space.indices(civ)
                    assert all(
                        0 <= i < d for i, d in zip(indices, dims)
                    )
                    assert indices not in owner, (
                        f"civ {civ} owned by both {owner[indices]} "
                        f"and {tid}"
                    )
                    owner[indices] = tid
        assert len(owner) == space.size

    @pytest.mark.parametrize("threads", [1, 2, 8])
    @pytest.mark.parametrize(
        "dims", SUBSETS.values(), ids=SUBSETS.keys()
    )
    def test_chunked_round_robin_partitions_exactly(self, dims, threads):
        """Same invariant under the round-robin chunked static deal."""
        space = CoalescedSpace(dims)
        per_thread = StaticSchedule(chunk=7).plan(space.size, threads)
        covered = []
        for chunks in per_thread:
            for lo, hi in chunks:
                covered.extend(range(lo, hi))
        assert sorted(covered) == list(range(space.size))
