"""Unit tests for the private gradient pool."""

import numpy as np
import pytest

from repro.core.privatization import PrivatePool


class TestPool:
    def test_zeroed_buffers(self):
        pool = PrivatePool()
        buffers = pool.request(0, [4, 8])
        assert [b.size for b in buffers] == [4, 8]
        assert all((b == 0).all() for b in buffers)

    def test_reuse_across_layers(self):
        """Buffers are reused (the paper's 'memory never crosses the
        layer boundaries' observation): requesting a smaller layer after
        a bigger one allocates nothing new."""
        pool = PrivatePool()
        pool.request(0, [100])
        before = pool.high_water_bytes
        pool.request(0, [40])
        assert pool.high_water_bytes == before

    def test_growth(self):
        pool = PrivatePool()
        pool.request(0, [10])
        pool.request(0, [100])
        assert pool.current_bytes == 100 * 4

    def test_buffers_rezeroed_on_reuse(self):
        pool = PrivatePool()
        first = pool.request(0, [4])[0]
        first[:] = 7.0
        second = pool.request(0, [4])[0]
        assert (second == 0).all()

    def test_slots_independent(self):
        pool = PrivatePool()
        a = pool.request(0, [4])[0]
        b = pool.request(1, [4])[0]
        a[:] = 1.0
        assert (b == 0).all()
        assert a.base is not b.base

    def test_high_water_is_max_over_time(self):
        pool = PrivatePool()
        for tid in range(4):
            pool.request(tid, [50])
        assert pool.high_water_bytes == 4 * 50 * 4

    def test_clear(self):
        pool = PrivatePool()
        pool.request(0, [10])
        pool.clear()
        assert pool.current_bytes == 0

    def test_negative_size(self):
        with pytest.raises(ValueError):
            PrivatePool().request(0, [-1])

    def test_high_water_matches_paper_model(self):
        """Extra memory = threads x largest reduction layer (Section
        3.2.1): simulate 16 threads over conv-sized layers."""
        pool = PrivatePool()
        conv1, conv2 = 500, 25_000  # LeNet coefficient counts
        for tid in range(16):
            pool.request(tid, [conv1])
        for tid in range(16):
            pool.request(tid, [conv2])
        assert pool.high_water_bytes == 16 * conv2 * 4
