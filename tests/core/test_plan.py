"""Tests for per-layer execution plans (repro.core.plan).

Covers the plan data model (validation, tiers, JSON round-trip), the
PlannedSchedule chunk protocol (exact partition, thread capping,
granularity alignment), load-time drift detection (PL101-PL104), and
the load-bearing runtime claim: a planned run mixing per-layer thread
counts, granularities and reduction modes is bitwise equal to the
sequential pass when every layer sits at the bitwise tier.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import ParallelExecutor
from repro.core.plan import (
    ExecutionPlan,
    LayerPlan,
    PlannedSchedule,
    plan_drift,
    plan_schedule_for,
    uniform_plan,
)
from repro.core.reduction import (
    BITWISE_INVARIANT,
    DETERMINISTIC_PER_T,
    NONDETERMINISTIC,
)
from repro.core.scheduling import DynamicSchedule, StaticSchedule
from repro.zoo import build_net


def layer_spaces(net):
    """(name, coalesced forward space) per layer, shapes propagated."""
    spaces = []
    for layer, bottom, top in zip(net.layers, net.bottoms, net.tops):
        layer.reshape(bottom, top)
        spaces.append((layer.name, layer.forward_space(bottom, top)))
    return spaces


class TestLayerPlan:
    def test_validation(self):
        with pytest.raises(ValueError, match="threads"):
            LayerPlan(layer="x", threads=0)
        with pytest.raises(ValueError, match="granularity"):
            LayerPlan(layer="x", threads=1, granularity=0)
        with pytest.raises(ValueError, match="reduction"):
            LayerPlan(layer="x", threads=1, reduction="majority-vote")

    def test_single_thread_is_bitwise(self):
        lp = LayerPlan(layer="x", threads=1, reduction="atomic")
        assert lp.tier("atomic", False) == BITWISE_INVARIANT

    def test_tier_follows_mode_and_schedule(self):
        blockwise = LayerPlan(layer="x", threads=4, reduction="blockwise")
        assert blockwise.tier("ordered", True) == BITWISE_INVARIANT
        ordered = LayerPlan(layer="x", threads=4, reduction="ordered")
        assert ordered.tier("ordered", True) == DETERMINISTIC_PER_T
        atomic = LayerPlan(layer="x", threads=4, reduction="atomic")
        assert atomic.tier("ordered", True) == NONDETERMINISTIC

    def test_none_reduction_inherits_base_mode(self):
        lp = LayerPlan(layer="x", threads=4)
        assert lp.tier("blockwise", True) == BITWISE_INVARIANT
        assert lp.tier("atomic", True) == NONDETERMINISTIC


class TestPlanRoundTrip:
    def _plan(self):
        plan = ExecutionPlan(net="lenet", batch=64, team_threads=8,
                             tier=BITWISE_INVARIANT, predicted_us=12.5,
                             uniform_us=14.0)
        plan.add(LayerPlan(
            layer="conv1", threads=8, granularity=1, reduction="blockwise",
            space=64, dims=(("sample", 64),), coalesced=1,
        ))
        plan.add(LayerPlan(
            layer="pool1", threads=8, granularity=20, space=1280,
            dims=(("sample", 64), ("channel", 20)), coalesced=1,
        ))
        return plan

    def test_json_round_trip(self, tmp_path):
        plan = self._plan()
        path = str(tmp_path / "plan.json")
        plan.save(path)
        assert ExecutionPlan.load(path) == plan

    def test_rejects_foreign_format(self):
        with pytest.raises(ValueError, match="format"):
            ExecutionPlan.from_json({"format": "not-a-plan/9"})

    def test_with_layer_does_not_mutate(self):
        plan = self._plan()
        other = plan.with_layer(LayerPlan(layer="conv1", threads=1))
        assert plan.layers["conv1"].threads == 8
        assert other.layers["conv1"].threads == 1


class TestPlannedSchedule:
    @pytest.mark.parametrize("space", [17, 64, 100])
    @pytest.mark.parametrize("threads", [1, 2, 8])
    @pytest.mark.parametrize("granularity", [1, 4, 7])
    def test_exact_partition(self, space, threads, granularity):
        """Every iteration owned exactly once; chunk starts on whole
        granularity blocks; inactive team threads get empty plans."""
        sched = PlannedSchedule(StaticSchedule(), threads, granularity)
        team = 8
        per_thread = sched.plan(space, team)
        assert len(per_thread) == team
        for chunks in per_thread[min(threads, team):]:
            assert chunks == []
        covered = []
        for chunks in per_thread:
            for lo, hi in chunks:
                assert 0 <= lo < hi <= space
                assert lo % granularity == 0
                covered.extend(range(lo, hi))
        assert sorted(covered) == list(range(space))

    def test_caps_at_team_size(self):
        sched = PlannedSchedule(StaticSchedule(), 8)
        assert len(sched.plan(100, 2)) == 2

    def test_chunk_server_scales_granularity(self):
        sched = PlannedSchedule(DynamicSchedule(chunk=1), 2, granularity=10)
        server = sched.chunk_server(25, 8)
        chunks = []
        while (chunk := server.next_chunk()) is not None:
            chunks.append(chunk)
        assert chunks == [(0, 10), (10, 20), (20, 25)]

    def test_validation(self):
        with pytest.raises(ValueError):
            PlannedSchedule(StaticSchedule(), 0)
        with pytest.raises(ValueError):
            PlannedSchedule(StaticSchedule(), 1, granularity=0)

    def test_plan_schedule_for_drops_stale_granularity(self):
        lp = LayerPlan(layer="x", threads=2, granularity=50, space=100)
        assert plan_schedule_for(lp, 100).granularity == 50
        # live space drifted: granularity no longer meaningful
        assert plan_schedule_for(lp, 64).granularity == 1


class TestPlanDrift:
    @pytest.fixture(scope="class")
    def net(self):
        return build_net("mlp")

    @pytest.fixture(scope="class")
    def plan(self, net):
        return uniform_plan(net.name, 32, 4, "blockwise",
                            layer_spaces(net))

    def test_clean_plan_has_no_drift(self, net, plan):
        assert plan_drift(plan, net, 4) == []

    def test_net_mismatch_is_pl101(self, net, plan):
        other = dataclasses.replace(plan, net="cifar10")
        codes = [code for code, _, _ in plan_drift(other, net, 4)]
        assert "PL101" in codes

    def test_orphan_entry_is_pl101(self, net, plan):
        other = plan.with_layer(LayerPlan(layer="ghost", threads=1))
        issues = plan_drift(other, net, 4)
        assert [c for c, layer, _ in issues if layer == "ghost"] == ["PL101"]

    def test_space_drift_is_pl102(self, net, plan):
        name = next(n for n, lp in plan.layers.items() if lp.space > 1)
        stale = dataclasses.replace(plan.layers[name], space=7)
        codes = [c for c, _, _ in plan_drift(plan.with_layer(stale), net, 4)]
        assert "PL102" in codes

    def test_thread_overcommit_is_pl103(self, net, plan):
        codes = [c for c, _, _ in plan_drift(plan, net, 2)]
        assert "PL103" in codes

    def test_missing_parallel_layer_is_pl104(self, net, plan):
        name = next(n for n, lp in plan.layers.items() if lp.space > 1)
        layers = dict(plan.layers)
        del layers[name]
        gappy = dataclasses.replace(plan, layers=layers)
        issues = plan_drift(gappy, net, 4)
        assert [c for c, layer, _ in issues if layer == name] == ["PL104"]


class TestPlannedExecution:
    """Planned runs must honour the tier they claim."""

    @pytest.fixture(scope="class")
    def mlp_reference(self):
        net = build_net("mlp")
        state = net.state_dict()
        net.clear_param_diffs()
        loss = net.forward()
        net.backward()
        grads = np.concatenate(
            [b.flat_diff.copy() for b in net.learnable_params]
        )
        return state, loss, grads

    def _mixed_plan(self, net, team):
        """Alternate inline and full-width layers, blockwise merges —
        every layer at the bitwise tier, widths deliberately uneven."""
        plan = ExecutionPlan(net=net.name, batch=0, team_threads=team,
                             tier=BITWISE_INVARIANT)
        for i, (name, space) in enumerate(layer_spaces(net)):
            threads = 1 if i % 2 == 0 else min(team, max(space, 1))
            plan.add(LayerPlan(
                layer=name, threads=threads,
                granularity=max(1, space // 8) if threads > 1 else 1,
                reduction="blockwise", space=space,
                dims=(("iteration", space),) if space else (),
                coalesced=1 if space else 0,
            ))
        return plan

    @pytest.mark.parametrize("team", [2, 4, 8])
    def test_mixed_plan_bitwise_equals_sequential(self, mlp_reference, team):
        state, ref_loss, ref_grads = mlp_reference
        # derive the plan from a throwaway instance: probing spaces
        # reshapes layers, which must not disturb the measured net
        plan = self._mixed_plan(build_net("mlp"), team)
        net = build_net("mlp")
        net.load_state_dict(state)
        with ParallelExecutor(num_threads=team, reduction="blockwise",
                              plan=plan) as ex:
            net.clear_param_diffs()
            loss = ex.forward(net)
            ex.backward(net)
            grads = np.concatenate(
                [b.flat_diff.copy() for b in net.learnable_params]
            )
        assert loss == ref_loss
        assert np.array_equal(grads, ref_grads)

    def test_all_inline_plan_equals_sequential(self, mlp_reference):
        """A plan that pins every layer to one thread runs inline on the
        master even under an atomic executor — still bitwise."""
        state, ref_loss, ref_grads = mlp_reference
        probe = build_net("mlp")
        plan = uniform_plan(probe.name, 0, 1, "blockwise",
                            layer_spaces(probe))
        net = build_net("mlp")
        net.load_state_dict(state)
        with ParallelExecutor(num_threads=4, reduction="atomic",
                              plan=plan) as ex:
            net.clear_param_diffs()
            loss = ex.forward(net)
            ex.backward(net)
            grads = np.concatenate(
                [b.flat_diff.copy() for b in net.learnable_params]
            )
        assert loss == ref_loss
        assert np.array_equal(grads, ref_grads)

    def test_executor_tier_reflects_plan(self):
        plan = ExecutionPlan(net="x", batch=0, team_threads=4,
                             tier=BITWISE_INVARIANT)
        plan.add(LayerPlan(layer="a", threads=4, reduction="blockwise"))
        ex = ParallelExecutor(num_threads=4, reduction="blockwise",
                              plan=plan)
        try:
            assert ex.invariance_tier == BITWISE_INVARIANT
        finally:
            ex.close()
        weak = plan.with_layer(LayerPlan(layer="a", threads=4,
                                         reduction="atomic"))
        ex = ParallelExecutor(num_threads=4, reduction="blockwise",
                              plan=weak)
        try:
            assert ex.invariance_tier == NONDETERMINISTIC
        finally:
            ex.close()
