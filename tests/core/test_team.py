"""Unit tests for the ThreadTeam runtime."""

import threading
import time

import numpy as np
import pytest

from repro.core.scheduling import DynamicSchedule
from repro.core.team import ThreadTeam, WorkerError


@pytest.fixture
def team4():
    with ThreadTeam(4) as team:
        yield team


class TestParallelRegion:
    def test_all_threads_run(self, team4):
        seen = [False] * 4
        team4.parallel(lambda ctx: seen.__setitem__(ctx.thread_id, True))
        assert all(seen)

    def test_caller_is_thread_zero(self, team4):
        main = threading.get_ident()
        idents = {}
        team4.parallel(
            lambda ctx: idents.__setitem__(ctx.thread_id, threading.get_ident())
        )
        assert idents[0] == main
        assert len(set(idents.values())) == 4

    def test_single_thread_inline(self):
        with ThreadTeam(1) as team:
            ran = []
            team.parallel(lambda ctx: ran.append(ctx.thread_id))
            assert ran == [0]

    def test_num_threads_exposed(self, team4):
        counts = []
        team4.parallel(lambda ctx: counts.append(ctx.num_threads))
        assert counts.count(4) == 4

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ThreadTeam(0)

    def test_reuse_many_regions(self, team4):
        total = []
        for i in range(20):
            team4.parallel(lambda ctx: total.append(1))
        assert len(total) == 80


class TestSynchronization:
    def test_ordered_is_in_thread_order(self, team4):
        for _ in range(5):
            order = []
            team4.parallel(lambda ctx: ctx.ordered(
                lambda: order.append(ctx.thread_id)))
            assert order == [0, 1, 2, 3]

    def test_critical_mutual_exclusion(self, team4):
        counter = {"value": 0}

        def bump():
            value = counter["value"]
            time.sleep(0.001)  # widen the race window
            counter["value"] = value + 1

        team4.parallel(lambda ctx: ctx.critical(bump))
        assert counter["value"] == 4

    def test_barrier(self, team4):
        phase = []

        def region(ctx):
            phase.append(("a", ctx.thread_id))
            ctx.barrier()
            phase.append(("b", ctx.thread_id))

        team4.parallel(region)
        labels = [tag for tag, _ in phase]
        assert labels[:4] == ["a"] * 4 and labels[4:] == ["b"] * 4


class TestErrors:
    def test_worker_error_propagates(self, team4):
        def region(ctx):
            if ctx.thread_id == 1:
                raise KeyError("boom")

        with pytest.raises(WorkerError) as info:
            team4.parallel(region)
        assert info.value.thread_id == 1
        assert isinstance(info.value.original, KeyError)

    def test_error_does_not_deadlock_ordered(self, team4):
        def region(ctx):
            if ctx.thread_id == 2:
                raise ValueError("x")
            ctx.ordered(lambda: None)

        with pytest.raises(WorkerError) as info:
            team4.parallel(region)
        assert info.value.thread_id == 2  # root cause, not a secondary

    def test_team_usable_after_error(self, team4):
        with pytest.raises(WorkerError):
            team4.parallel(lambda ctx: 1 / 0)
        order = []
        team4.parallel(lambda ctx: ctx.ordered(lambda: order.append(ctx.thread_id)))
        assert order == [0, 1, 2, 3]

    def test_master_error(self, team4):
        def region(ctx):
            if ctx.thread_id == 0:
                raise RuntimeError("master")

        with pytest.raises(WorkerError) as info:
            team4.parallel(region)
        assert info.value.thread_id == 0

    def test_shutdown_rejects_new_regions(self):
        team = ThreadTeam(2)
        team.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            team.parallel(lambda ctx: None)

    def test_barrier_peers_are_secondary_not_root(self, team4):
        # Peers parked at a barrier when the abort breaks it raise
        # BrokenBarrierError; the surfaced WorkerError must still be
        # the thread that actually failed.
        def region(ctx):
            if ctx.thread_id == 3:
                raise ValueError("real failure")
            ctx.barrier()

        with pytest.raises(WorkerError) as info:
            team4.parallel(region)
        assert info.value.thread_id == 3
        assert isinstance(info.value.original, ValueError)

    def test_peer_errors_collected_on_root(self, team4):
        def region(ctx):
            if ctx.thread_id == 2:
                raise KeyError("root")
            ctx.barrier()

        with pytest.raises(WorkerError) as info:
            team4.parallel(region)
        peers = info.value.peer_errors
        assert peers and all(isinstance(p, WorkerError) for p in peers)
        assert all(p.thread_id != 2 for p in peers)
        assert all(
            isinstance(p.original, threading.BrokenBarrierError)
            for p in peers
        )

    def test_abort_cannot_leave_thread_blocked_on_barrier(self, team4):
        # The failing thread aborts the barrier, so peers cannot stay
        # parked; the same team (and its barrier) must then run a
        # barrier-using region cleanly.
        def region(ctx):
            if ctx.thread_id == 1:
                raise RuntimeError("abort me")
            ctx.barrier()

        with pytest.raises(WorkerError):
            team4.parallel(region)

        phase = []

        def healthy(ctx):
            phase.append(("a", ctx.thread_id))
            ctx.barrier()
            phase.append(("b", ctx.thread_id))

        team4.parallel(healthy)
        labels = [tag for tag, _ in phase]
        assert labels[:4] == ["a"] * 4 and labels[4:] == ["b"] * 4

    def test_team_reusable_after_repeated_aborts(self, team4):
        for _ in range(3):
            with pytest.raises(WorkerError):
                team4.parallel(lambda ctx: 1 / 0)
            order = []
            team4.parallel(
                lambda ctx: ctx.ordered(lambda: order.append(ctx.thread_id))
            )
            assert order == [0, 1, 2, 3]


class TestParallelFor:
    def test_covers_space(self, team4):
        out = np.zeros(101)
        team4.parallel_for(101, lambda lo, hi, tid: out[lo:hi].fill(1))
        assert out.all()

    def test_disjoint_writes(self, team4):
        out = np.full(64, -1.0)
        team4.parallel_for(64, lambda lo, hi, tid: out[lo:hi].fill(tid))
        assert (out >= 0).all()

    def test_zero_space_noop(self, team4):
        team4.parallel_for(0, lambda lo, hi, tid: 1 / 0)

    def test_dynamic_schedule(self, team4):
        out = np.zeros(50)
        team4.parallel_for(
            50, lambda lo, hi, tid: out[lo:hi].__iadd__(1),
            DynamicSchedule(chunk=3),
        )
        assert np.allclose(out, 1.0)

    def test_single_thread_team(self):
        with ThreadTeam(1) as team:
            out = np.zeros(10)
            team.parallel_for(10, lambda lo, hi, tid: out[lo:hi].fill(tid + 1))
            assert np.allclose(out, 1.0)


class TestAbortAtEverySyncPoint:
    """Fault-inject a failure at each region sync point; the root cause
    must win error selection and the team must stay usable."""

    POINTS = ("start", "critical", "ordered", "finish")

    @staticmethod
    def _body(point, faulty):
        from repro.resilience.faults import InjectedFault

        def noop():
            pass

        def boom():
            raise InjectedFault(f"injected at {point}")

        def body(ctx):
            if ctx.thread_id == faulty and point == "start":
                raise InjectedFault("injected at start")
            ctx.barrier()
            if point == "critical":
                ctx.critical(boom if ctx.thread_id == faulty else noop)
            elif point == "ordered":
                ctx.ordered(boom if ctx.thread_id == faulty else noop)
            else:
                ctx.critical(noop)
                ctx.ordered(noop)
            ctx.barrier()
            if ctx.thread_id == faulty and point == "finish":
                raise InjectedFault("injected after last barrier")

        return body

    @pytest.mark.parametrize("nthreads", [2, 8])
    @pytest.mark.parametrize("point", POINTS)
    def test_root_cause_wins_and_team_survives(self, nthreads, point):
        from repro.core.team import _RegionAborted
        from repro.resilience.faults import InjectedFault

        with ThreadTeam(nthreads) as team:
            with pytest.raises(WorkerError) as excinfo:
                team.parallel(self._body(point, faulty=1))
            err = excinfo.value
            assert isinstance(err.original, InjectedFault), (
                f"{point}: root cause was {type(err.original).__name__}"
            )
            assert err.thread_id == 1
            for peer in err.peer_errors:
                assert isinstance(
                    peer.original,
                    (_RegionAborted, threading.BrokenBarrierError),
                ), f"{point}: peer {peer.thread_id} not demoted"
            # clean teardown: the team must run a full region afterwards
            out = np.zeros(nthreads)
            team.parallel_for(
                nthreads, lambda lo, hi, tid: out[lo:hi].fill(1.0))
            assert np.allclose(out, 1.0)

    @pytest.mark.parametrize("nthreads", [2, 8])
    def test_master_abort_at_start(self, nthreads):
        from repro.resilience.faults import InjectedFault

        with ThreadTeam(nthreads) as team:
            with pytest.raises(WorkerError) as excinfo:
                team.parallel(self._body("start", faulty=0))
            assert isinstance(excinfo.value.original, InjectedFault)
            assert excinfo.value.thread_id == 0
            team.parallel(lambda ctx: None)


class TestWatchdog:
    def test_default_is_disabled(self):
        with ThreadTeam(2) as team:
            assert team.watchdog is None

    def test_env_var_parsing(self, monkeypatch):
        from repro.core.team import _default_watchdog

        for raw, want in (("2.5", 2.5), ("", None),
                          ("junk", None), ("-1", None)):
            monkeypatch.setenv("REPRO_TEAM_WATCHDOG", raw)
            assert _default_watchdog() == want

    def test_invalid_watchdog_rejected(self):
        with pytest.raises(ValueError):
            ThreadTeam(2, watchdog=0)

    def test_barrier_timeout_reports_stuck_thread(self):
        from repro.core.team import TeamDeadlock

        with ThreadTeam(2, watchdog=0.2) as team:

            def body(ctx):
                if ctx.thread_id == 1:
                    time.sleep(1.0)  # never reaches the barrier in time
                ctx.barrier()

            with pytest.raises(WorkerError) as excinfo:
                team.parallel(body)
            root = excinfo.value.original
            assert isinstance(root, TeamDeadlock)
            assert root.point == "region-barrier"
            assert "last sync point" in str(root)
            assert "thread 1" in str(root)
            # stack dump names the sleeping frame
            assert "time.sleep" in str(root) or "sleep" in str(root)
            team.parallel(lambda ctx: None)  # team recovered

    def test_ordered_timeout_names_the_turn(self):
        from repro.core.team import TeamDeadlock

        with ThreadTeam(2, watchdog=0.2) as team:

            def body(ctx):
                if ctx.thread_id == 1:
                    ctx.ordered(lambda: None)  # waits on t0's turn forever
                else:
                    time.sleep(1.0)

            with pytest.raises(WorkerError) as excinfo:
                team.parallel(body)
            root = excinfo.value.original
            assert isinstance(root, TeamDeadlock)
            assert root.point == "ordered"
            team.parallel(lambda ctx: None)

    def test_critical_timeout_while_lock_hogged(self):
        from repro.core.team import TeamDeadlock

        with ThreadTeam(2, watchdog=0.2) as team:

            def body(ctx):
                if ctx.thread_id == 0:
                    ctx.critical(lambda: time.sleep(1.0))
                else:
                    time.sleep(0.05)  # let t0 grab the lock first
                    ctx.critical(lambda: None)

            with pytest.raises(WorkerError) as excinfo:
                team.parallel(body)
            root = excinfo.value.original
            assert isinstance(root, TeamDeadlock)
            assert root.point == "critical"
            team.parallel(lambda ctx: None)

    def test_last_sync_recorded_per_thread(self):
        with ThreadTeam(2, watchdog=5.0) as team:
            team.parallel(lambda ctx: ctx.barrier())
            assert team._last_sync[0] is not None
            assert team._last_sync[1] is not None


class TestLifecycle:
    """shutdown() idempotence and restart() — the serving supervisor's
    recovery primitives."""

    def test_double_shutdown_is_idempotent(self):
        team = ThreadTeam(4)
        team.shutdown()
        team.shutdown()  # must not hang or raise
        with pytest.raises(RuntimeError, match="shut down"):
            team.parallel(lambda ctx: None)

    def test_shutdown_from_another_thread(self):
        # The serving watchdog calls shutdown from its own (non-master)
        # thread after an abort; this must not deadlock.
        team = ThreadTeam(4)
        with pytest.raises(WorkerError):
            team.parallel(lambda ctx: 1 / 0)
        errors = []

        def watchdog():
            try:
                team.shutdown()
            except BaseException as exc:  # noqa: BLE001 - test recorder
                errors.append(exc)

        thread = threading.Thread(target=watchdog)
        thread.start()
        thread.join(timeout=10.0)
        assert not thread.is_alive(), "shutdown deadlocked off-master"
        assert errors == []

    def test_restart_after_shutdown_runs_regions(self):
        team = ThreadTeam(4)
        team.shutdown()
        team.restart()
        try:
            seen = [False] * 4
            team.parallel(lambda ctx: seen.__setitem__(ctx.thread_id, True))
            assert all(seen)
        finally:
            team.shutdown()

    def test_abort_restart_run(self):
        team = ThreadTeam(4)
        try:
            with pytest.raises(WorkerError):
                team.parallel(lambda ctx: 1 / 0)
            team.restart()
            order = []
            team.parallel(
                lambda ctx: ctx.ordered(lambda: order.append(ctx.thread_id))
            )
            assert order == [0, 1, 2, 3]
        finally:
            team.shutdown()

    def test_restart_without_shutdown(self):
        # restart() on a live team recycles it in place.
        team = ThreadTeam(2)
        try:
            team.parallel(lambda ctx: None)
            team.restart()
            out = np.zeros(10)
            team.parallel_for(10, lambda lo, hi, tid: out[lo:hi].fill(1))
            assert out.all()
        finally:
            team.shutdown()

    def test_repeated_restarts(self):
        team = ThreadTeam(2)
        try:
            for _ in range(3):
                team.restart()
                total = []
                team.parallel(lambda ctx: total.append(1))
                assert len(total) == 2
        finally:
            team.shutdown()
