"""Tests for the execution tracer."""

import numpy as np
import pytest

from repro.core import ParallelExecutor, Trace, TracingExecutor
from repro.framework.solvers.base import SequentialExecutor
from repro.zoo import build_net


class TestTrace:
    def test_totals_aggregate(self):
        trace = Trace()
        trace.record("conv1", "forward", 0.5, 1)
        trace.record("conv1", "forward", 0.25, 1)
        trace.record("conv1", "backward", 1.0, 1)
        assert trace.totals() == {("conv1", "forward"): 0.75,
                                  ("conv1", "backward"): 1.0}

    def test_shares_sum_to_one(self):
        trace = Trace()
        trace.record("a", "forward", 3.0, 1)
        trace.record("b", "forward", 1.0, 1)
        shares = trace.shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares[("a", "forward")] == pytest.approx(0.75)

    def test_table_renders(self):
        trace = Trace()
        trace.record("conv1", "forward", 0.001, 4)
        table = trace.table()
        assert "conv1" in table and "%" in table

    def test_clear(self):
        trace = Trace()
        trace.record("x", "forward", 1.0, 1)
        trace.clear()
        assert not trace.events


class TestTracingExecutor:
    def test_sequential_semantics_preserved(self):
        net = build_net("lenet")
        state = net.state_dict()
        ref_loss = net.forward()

        net2 = build_net("lenet")
        net2.load_state_dict(state)
        tracer = TracingExecutor(SequentialExecutor())
        loss = tracer.forward(net2)
        assert loss == ref_loss

    def test_events_per_layer(self):
        net = build_net("lenet")
        tracer = TracingExecutor(SequentialExecutor())
        tracer.forward(net)
        tracer.backward(net)
        layers = {e.layer for e in tracer.trace.events}
        assert "conv1" in layers and "loss" in layers
        passes = {e.pass_ for e in tracer.trace.events}
        assert passes == {"forward", "backward"}

    def test_parallel_semantics_preserved(self):
        net = build_net("lenet")
        state = net.state_dict()
        net.clear_param_diffs()
        net.forward()
        net.backward()
        ref = np.concatenate([b.flat_diff.copy()
                              for b in net.learnable_params])

        net2 = build_net("lenet")
        net2.load_state_dict(state)
        with ParallelExecutor(num_threads=3, reduction="blockwise") as inner:
            tracer = TracingExecutor(inner)
            net2.clear_param_diffs()
            tracer.forward(net2)
            tracer.backward(net2)
        grads = np.concatenate([b.flat_diff.copy()
                                for b in net2.learnable_params])
        assert np.array_equal(grads, ref)  # blockwise: bitwise invariant

    def test_conv_dominates_real_time(self):
        """The real measured breakdown shows the paper's Figure 4 story:
        convolutions dominate the iteration."""
        net = build_net("lenet")
        tracer = TracingExecutor(SequentialExecutor())
        for _ in range(2):
            net.clear_param_diffs()
            tracer.forward(net)
            tracer.backward(net)
        shares = tracer.trace.shares()
        conv_share = sum(v for (layer, _), v in shares.items()
                         if layer.startswith("conv"))
        assert conv_share > 0.4

    def test_thread_count_recorded(self):
        net = build_net("lenet")
        with ParallelExecutor(num_threads=2) as inner:
            tracer = TracingExecutor(inner)
            tracer.forward(net)
        assert all(e.threads == 2 for e in tracer.trace.events)
