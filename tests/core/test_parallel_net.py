"""Tests for the ParallelExecutor: the paper's correctness claims.

These are the load-bearing tests of the reproduction: batch-level
parallel execution must match sequential execution for every reduction
mode, thread count and network.
"""

import numpy as np
import pytest

from repro.core import ParallelExecutor
from repro.core.scheduling import DynamicSchedule, StaticSchedule
from repro.zoo import build_net


def run_once(net, executor):
    net.clear_param_diffs()
    loss = executor.forward(net)
    executor.backward(net)
    grads = np.concatenate([b.flat_diff.copy() for b in net.learnable_params])
    activations = {
        name: blob.flat_data.copy() for name, blob in net.blob_map.items()
    }
    return loss, grads, activations


class SequentialRef:
    def forward(self, net):
        return net.forward()

    def backward(self, net):
        net.backward()


@pytest.fixture(scope="module")
def lenet_reference():
    net = build_net("lenet")
    state = net.state_dict()
    loss, grads, acts = run_once(net, SequentialRef())
    return state, loss, grads, acts


def fresh_lenet(state):
    net = build_net("lenet")
    net.load_state_dict(state)
    return net


class TestForwardEquivalence:
    @pytest.mark.parametrize("threads", [1, 2, 3, 4, 7])
    def test_forward_bitwise_equal(self, lenet_reference, threads):
        state, ref_loss, _, ref_acts = lenet_reference
        net = fresh_lenet(state)
        with ParallelExecutor(num_threads=threads) as executor:
            loss = executor.forward(net)
        assert loss == ref_loss
        for name, expected in ref_acts.items():
            assert np.array_equal(net.blob(name).flat_data, expected), name


class TestBackwardEquivalence:
    @pytest.mark.parametrize("threads", [2, 4, 5])
    @pytest.mark.parametrize("mode", ["ordered", "atomic", "tree"])
    def test_close_to_sequential(self, lenet_reference, threads, mode):
        state, ref_loss, ref_grads, _ = lenet_reference
        net = fresh_lenet(state)
        with ParallelExecutor(num_threads=threads, reduction=mode) as ex:
            loss, grads, _ = run_once(net, ex)
        assert loss == ref_loss
        assert np.allclose(grads, ref_grads, rtol=1e-3, atol=1e-6)

    @pytest.mark.parametrize("threads", [1, 2, 3, 4, 5, 8])
    def test_blockwise_bitwise_invariant(self, lenet_reference, threads):
        """The strongest convergence-invariance form: gradients bitwise
        identical to sequential at EVERY thread count."""
        state, _, ref_grads, _ = lenet_reference
        net = fresh_lenet(state)
        with ParallelExecutor(num_threads=threads, reduction="blockwise") as ex:
            _, grads, _ = run_once(net, ex)
        assert np.array_equal(grads, ref_grads)

    def test_ordered_deterministic_per_thread_count(self, lenet_reference):
        state = lenet_reference[0]
        results = []
        for _ in range(2):
            net = fresh_lenet(state)
            with ParallelExecutor(num_threads=4, reduction="ordered") as ex:
                _, grads, _ = run_once(net, ex)
            results.append(grads)
        assert np.array_equal(results[0], results[1])

    def test_one_thread_equals_sequential_bitwise(self, lenet_reference):
        state, _, ref_grads, _ = lenet_reference
        for mode in ("ordered", "atomic", "tree", "blockwise"):
            net = fresh_lenet(state)
            with ParallelExecutor(num_threads=1, reduction=mode) as ex:
                _, grads, _ = run_once(net, ex)
            assert np.array_equal(grads, ref_grads), mode


class TestSchedules:
    def test_dynamic_schedule_with_atomic(self, lenet_reference):
        state, ref_loss, ref_grads, _ = lenet_reference
        net = fresh_lenet(state)
        ex = ParallelExecutor(num_threads=4, reduction="atomic",
                              schedule=DynamicSchedule(chunk=2))
        with ex:
            loss, grads, _ = run_once(net, ex)
        assert loss == ref_loss
        assert np.allclose(grads, ref_grads, rtol=1e-3, atol=1e-6)

    def test_ordered_rejects_dynamic(self):
        with pytest.raises(ValueError, match="static"):
            ParallelExecutor(num_threads=2, reduction="ordered",
                             schedule=DynamicSchedule())

    def test_static_chunked(self, lenet_reference):
        state, ref_loss, _, _ = lenet_reference
        net = fresh_lenet(state)
        ex = ParallelExecutor(num_threads=3, schedule=StaticSchedule(chunk=4))
        with ex:
            loss = ex.forward(net)
        assert loss == ref_loss


class TestConfigValidation:
    def test_unknown_reduction(self):
        with pytest.raises(ValueError, match="reduction"):
            ParallelExecutor(reduction="magic")

    def test_bad_window(self):
        with pytest.raises(ValueError, match="block_window"):
            ParallelExecutor(block_window=0)

    def test_shared_team_not_shut_down(self):
        from repro.core.team import ThreadTeam
        with ThreadTeam(2) as team:
            ex = ParallelExecutor(team=team)
            ex.close()
            # team still usable: close() must not shut a borrowed team
            team.parallel(lambda ctx: None)


class TestMemoryAccounting:
    def test_privatization_bounded_by_largest_reduction_layer(self):
        """Paper Section 3.2.1: extra memory = threads x largest
        reduction layer (the conv layers; ip uses the row-parallel
        decomposition and needs no privatization)."""
        net = build_net("lenet")
        threads = 8
        with ParallelExecutor(num_threads=threads, reduction="ordered") as ex:
            ex.forward(net)
            ex.backward(net)
            conv_bytes = max(
                sum(b.nbytes // 2 for b in layer.blobs)  # data half only
                for layer in net.layers if layer.type == "Convolution"
            )
            assert ex.privatization_high_water_bytes == threads * conv_bytes

    def test_extra_memory_small_fraction_of_total(self):
        """The paper reports ~5% overhead; ours stays the same order."""
        net = build_net("lenet")
        net.forward()
        with ParallelExecutor(num_threads=16, reduction="ordered") as ex:
            ex.forward(net)
            ex.backward(net)
            fraction = ex.privatization_high_water_bytes / net.memory_bytes()
        assert fraction < 0.25


class TestCifar:
    def test_cifar_blockwise_invariance(self):
        net = build_net("cifar10")
        state = net.state_dict()
        ref_loss, ref_grads, _ = run_once(net, SequentialRef())
        net2 = build_net("cifar10")
        net2.load_state_dict(state)
        with ParallelExecutor(num_threads=3, reduction="blockwise") as ex:
            loss, grads, _ = run_once(net2, ex)
        assert loss == ref_loss
        assert np.array_equal(grads, ref_grads)
