"""Tests for the multi-device data-parallel solver.

The paper's multi-GPU compatibility claim: sharding (not shrinking) the
batch across replicas keeps every training hyper-parameter — and hence
the convergence behaviour — intact.
"""

import numpy as np
import pytest

from repro.core import DataParallelSolver
from repro.data import ArrayBatchSource, SyntheticMNIST, register_default_sources
from repro.framework.solvers import SolverParams
from repro.zoo import build_solver
from repro.zoo.lenet import lenet_solver_params, lenet_spec


def mnist_source():
    dataset = SyntheticMNIST(n_samples=256, seed=1)
    return ArrayBatchSource(dataset.images, dataset.labels)


def make_solver(replicas=2, threads=1, iters=4):
    register_default_sources()
    solver = DataParallelSolver(
        lenet_spec(), lenet_solver_params(max_iter=iters),
        source=mnist_source(), replicas=replicas,
        threads_per_replica=threads,
    )
    return solver


class TestConstruction:
    def test_batch_sharding(self):
        with make_solver(replicas=4) as solver:
            assert solver.global_batch == 64
            assert solver.shard_size == 16
            assert len(solver.nets) == 4

    def test_replicas_start_in_sync(self):
        with make_solver(replicas=4) as solver:
            assert solver.replicas_in_sync()

    def test_indivisible_batch_rejected(self):
        register_default_sources()
        with pytest.raises(ValueError, match="divisible"):
            DataParallelSolver(
                lenet_spec(), lenet_solver_params(),
                source=mnist_source(), replicas=7,
            )

    def test_invalid_replica_count(self):
        with pytest.raises(ValueError, match="replicas"):
            DataParallelSolver(
                lenet_spec(), lenet_solver_params(),
                source=mnist_source(), replicas=0,
            )


class TestTrainingSemantics:
    def test_replicas_stay_in_sync_through_training(self):
        with make_solver(replicas=2) as solver:
            solver.step(3)
            assert solver.replicas_in_sync()

    def test_loss_decreases(self):
        with make_solver(replicas=2) as solver:
            solver.step(10)
            assert solver.loss_history[-1] < solver.loss_history[0]

    def test_deterministic_run_to_run(self):
        with make_solver(replicas=2) as a:
            a.step(3)
        with make_solver(replicas=2) as b:
            b.step(3)
        assert a.loss_history == b.loss_history
        for pa, pb in zip(a.nets[0].learnable_params,
                          b.nets[0].learnable_params):
            assert np.array_equal(pa.flat_data, pb.flat_data)

    def test_matches_single_device_trajectory(self):
        """The convergence-invariance claim at the device level: the
        sharded run tracks the single-device run on the same batches
        (same global batch size -> same hyper-parameters)."""
        # single-device reference on the identical source
        register_default_sources()
        from repro.framework.net import Net
        spec = lenet_spec()
        data = next(l for l in spec.layers_for_phase("TRAIN")
                    if l.type == "Data")
        data.params["source_object"] = mnist_source()
        net = Net(spec, phase="TRAIN")
        from repro.framework.solvers import create_solver
        ref = create_solver(lenet_solver_params(max_iter=4), net)
        # align initial parameters
        with make_solver(replicas=2) as solver:
            net.load_state_dict(solver.state_dict())
            ref.step(4)
            solver.step(4)
            assert np.allclose(solver.loss_history, ref.loss_history,
                               rtol=1e-3)
            for pa, pb in zip(solver.nets[0].learnable_params,
                              net.learnable_params):
                assert np.allclose(pa.flat_data, pb.flat_data,
                                   rtol=1e-2, atol=1e-5)

    def test_two_level_parallelism(self):
        """Replicas x threads: the paper's multi-GPU + batch-level
        combination."""
        with make_solver(replicas=2, threads=2) as solver:
            solver.step(2)
            assert solver.replicas_in_sync()
            assert len(solver.loss_history) == 2
