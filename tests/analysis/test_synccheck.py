"""Tests for synccheck: static sync lint + interleaving model checker."""

import json

import pytest

from repro.analysis.codes import CODE_CATALOGUE, check_code_drift
from repro.analysis.interleave import (
    CheckerSync,
    ModelChecker,
    Op,
    Scheduler,
    schedule_from_json,
)
from repro.analysis.report import ERROR, INFO
from repro.analysis.synccheck import (
    certify_seeded,
    check_config,
    replay_trace,
    seeded_program,
)
from repro.analysis.synclint import lint_sync
from repro.resilience.faults import (
    BarrierSkip,
    ChunkAbort,
    FaultPlan,
    LockOrderInversion,
)

_BAD_MODULE = '''
import threading

A = threading.Lock()
B = threading.Lock()
COND = threading.Condition()
BAR = threading.Barrier(2)
SHARED = []


def ab():
    with A:
        with B:
            pass


def ba():
    with B:
        with A:
            pass


def double():
    with A:
        with A:
            pass


def held_across_barrier():
    with A:
        BAR.wait()


def bare_wait():
    with COND:
        if not SHARED:
            COND.wait()


def unguarded_write():
    SHARED.append(1)


def diverge(flag):
    if flag:
        BAR.wait()
    BAR.wait()
'''


# ---------------------------------------------------------------------------
# static lint
# ---------------------------------------------------------------------------
class TestSyncLint:
    def test_all_rules_fire_on_fixture(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(_BAD_MODULE)
        rules = {f.rule for f in lint_sync([bad])}
        assert rules == {"SY001", "SY002", "SY003", "SY004",
                         "SY005", "SY006"}

    def test_clean_module_is_clean(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text(
            "import threading\n"
            "LOCK = threading.Lock()\n"
            "STATE = {}\n"
            "def guarded():\n"
            "    with LOCK:\n"
            "        STATE['k'] = 1\n"
        )
        assert lint_sync([good]) == []

    def test_runtime_corpus_is_lint_clean(self):
        findings = lint_sync()
        assert findings == [], [
            f"{f.rule} {f.layer}: {f.message}" for f in findings
        ]

    def test_exempt_shutdown_branch_not_divergence(self, tmp_path):
        mod = tmp_path / "loop.py"
        mod.write_text(
            "import threading\n"
            "BAR = threading.Barrier(2)\n"
            "_shutdown = False\n"
            "def worker_loop():\n"
            "    BAR.wait()\n"
            "    if _shutdown:\n"
            "        return\n"
            "    BAR.wait()\n"
        )
        assert [f.rule for f in lint_sync([mod])] == []


# ---------------------------------------------------------------------------
# scheduler / model checker
# ---------------------------------------------------------------------------
def _defect_free_program(sync):
    from repro.core.team import ThreadTeam

    team = ThreadTeam(2, sync=sync)
    try:
        order = []

        def body(ctx):
            ctx.barrier()
            ctx.ordered(lambda: order.append(ctx.thread_id))
            ctx.barrier()

        team.parallel(body)
        return sum((i + 1) * tid for i, tid in enumerate(order))
    finally:
        team.shutdown()


def _racy_digest_program(sync):
    from repro.core.team import ThreadTeam

    team = ThreadTeam(2, sync=sync)
    try:
        order = []

        def body(ctx):
            ctx.critical(lambda: order.append(ctx.thread_id))

        team.parallel(body)
        # first-come-first-served: the digest encodes acquisition order
        return order[0] * 10 + order[1]
    finally:
        team.shutdown()


class TestModelChecker:
    def test_defect_free_program_completes_everywhere(self):
        checker = ModelChecker(_defect_free_program, preemptions=2,
                               max_runs=128)
        result = checker.explore()
        assert not result.truncated
        assert result.deadlocks == []
        assert result.errors == []
        # the ordered construct serializes in thread-id order on every
        # schedule, so the digest is schedule-invariant
        assert len(result.digests) == 1

    def test_schedule_dependence_is_observable(self):
        checker = ModelChecker(_racy_digest_program, preemptions=2,
                               max_runs=128)
        result = checker.explore()
        assert not result.truncated
        # both lock-acquisition orders must have been explored
        assert result.digests == {1, 10}

    def test_finds_lock_order_inversion(self):
        checker = ModelChecker(seeded_program(LockOrderInversion()),
                               preemptions=2, max_runs=128)
        result = checker.explore()
        assert result.deadlocks, "inversion deadlock not discovered"
        record = result.deadlocks[0]
        pending_kinds = {p["kind"]
                         for p in record.deadlock["pending"].values()}
        assert pending_kinds == {"acquire", "turn_wait"}

    def test_finds_barrier_skip(self):
        checker = ModelChecker(seeded_program(BarrierSkip()),
                               preemptions=2, max_runs=128)
        result = checker.explore()
        assert result.deadlocks, "barrier-skip deadlock not discovered"

    def test_deadlock_schedule_replays_faithfully(self):
        checker = ModelChecker(seeded_program(LockOrderInversion()),
                               preemptions=2, max_runs=128)
        record = checker.explore().deadlocks[0]
        faithful, replayed = checker.replay(record.schedule)
        assert faithful
        assert replayed.status == "deadlock"
        assert replayed.deadlock == record.deadlock

    def test_schedule_json_roundtrip(self):
        checker = ModelChecker(seeded_program(BarrierSkip()),
                               preemptions=2, max_runs=64)
        record = checker.explore().deadlocks[0]
        trace = record.trace_json({"kind": "seeded",
                                   "defect": "BarrierSkip"})
        rebuilt = schedule_from_json(trace["schedule"])
        assert rebuilt == record.schedule
        faithful, _ = checker.replay(rebuilt)
        assert faithful

    def test_preemption_bound_zero_is_single_canonical_run(self):
        checker = ModelChecker(_racy_digest_program, preemptions=0,
                               max_runs=64)
        result = checker.explore()
        # without preemptions only free (non-preempting) switches branch;
        # the racy acquire is reached by both threads from a barrier
        # release, so zero-bound still explores both resumption orders
        assert result.explored >= 1
        assert not result.truncated

    def test_chunk_independence_prunes(self):
        calls = []

        def independent(a, b):
            calls.append((a.resource, b.resource))
            return True

        sched = Scheduler(independent=independent)
        a = Op("chunk", "l/forward[0:2]", payload=("l", "forward", 0, 2))
        b = Op("chunk", "l/forward[2:4]", payload=("l", "forward", 2, 4))
        assert sched._op_independent(a, b)
        assert calls

    def test_chunk_vs_sync_independent(self):
        sched = Scheduler()
        chunk = Op("chunk", "l/forward[0:2]",
                   payload=("l", "forward", 0, 2))
        assert sched._op_independent(chunk, Op("acquire", "critical"))
        assert sched._op_independent(Op("barrier", "region", parties=2),
                                     chunk)

    def test_contended_acquires_are_dependent(self):
        sched = Scheduler()
        assert not sched._op_independent(Op("acquire", "critical"),
                                         Op("turn_wait", "ordered"))


# ---------------------------------------------------------------------------
# seeded-defect certification + fault vocabulary
# ---------------------------------------------------------------------------
class TestCertification:
    def test_both_seeded_defects_certify(self):
        certs, findings, traces = certify_seeded()
        assert [c["defect"] for c in certs] == [
            "LockOrderInversion", "BarrierSkip"]
        assert all(c["found"] and c["replayed"] for c in certs)
        assert [f.rule for f in findings] == ["SY202", "SY202"]
        assert all(f.severity == INFO for f in findings)
        assert len(traces) == 2

    def test_certification_trace_replays_standalone(self):
        _, _, traces = certify_seeded()
        for trace in traces:
            faithful, record = replay_trace(trace)
            assert faithful
            assert record.status == "deadlock"

    def test_fault_plan_accepts_sync_descriptors(self):
        plan = FaultPlan(LockOrderInversion(), BarrierSkip(skip_tid=1),
                         ChunkAbort(layer="conv1", iteration=0))
        assert len(list(plan)) == 3

    def test_fault_plan_still_rejects_junk(self):
        with pytest.raises(TypeError):
            FaultPlan(object())

    def test_seeded_program_rejects_unknown_fault(self):
        with pytest.raises(TypeError):
            seeded_program(ChunkAbort(layer="conv1", iteration=0))


# ---------------------------------------------------------------------------
# zoo configuration checking
# ---------------------------------------------------------------------------
class TestZooConfig:
    def test_mlp_two_threads_is_clean(self):
        result, findings, traces = check_config(
            "mlp", 2, batch=4, iters=1, max_runs=32)
        assert result.deadlocks == 0
        assert result.errors == 0
        assert result.digests == 1
        assert not result.truncated
        assert [f for f in findings if f.severity == ERROR] == []


# ---------------------------------------------------------------------------
# codes + CLI
# ---------------------------------------------------------------------------
class TestCodesAndCli:
    def test_sy_codes_registered(self):
        sy = {c for c in CODE_CATALOGUE if c.startswith("SY")}
        assert sy == {"SY001", "SY002", "SY003", "SY004", "SY005",
                      "SY006", "SY101", "SY102", "SY103", "SY104",
                      "SY201", "SY202"}
        assert all(CODE_CATALOGUE[c][0] == "synccheck" for c in sy)

    def test_no_code_drift(self):
        unregistered, unreferenced = check_code_drift()
        assert unregistered == []
        assert unreferenced == []

    def test_cli_static_only_json(self, capsys):
        from repro.analysis.__main__ import synccheck_main

        rc = synccheck_main(["--static-only", "--json", "--gate"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["ok"] is True
        assert payload["configs"] == []

    def test_cli_check_codes(self, capsys):
        from repro.analysis.__main__ import main

        assert main(["--check-codes"]) == 0
        assert "agree" in capsys.readouterr().out

    def test_cli_trace_and_replay_roundtrip(self, tmp_path, capsys):
        from repro.analysis.__main__ import synccheck_main

        trace_file = tmp_path / "traces.json"
        rc = synccheck_main([
            "--net", "mlp", "--threads", "2", "--max-runs", "16",
            "--trace", str(trace_file), "--json",
        ])
        capsys.readouterr()
        assert rc == 0
        payload = json.loads(trace_file.read_text())
        assert payload["traces"], "seeded certification traces expected"
        rc = synccheck_main(["--replay", str(trace_file), "--gate"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "faithful" in out
