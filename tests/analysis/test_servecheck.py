"""servecheck: SV static rules fire on seeded defects; certification
passes on the real serve stack."""

import textwrap

import pytest

from repro.analysis.codes import CODE_CATALOGUE
from repro.analysis.servecheck import (
    certify_config,
    lint_serve,
    run_servecheck,
)


def _write_pkg(tmp_path, name, body):
    pkg = tmp_path / "fakeserve"
    pkg.mkdir(exist_ok=True)
    (pkg / "__init__.py").write_text("")
    (pkg / name).write_text(textwrap.dedent(body))
    return pkg


def _rules(findings):
    return {f.rule for f in findings}


class TestStaticRules:
    def test_sv001_unbounded_queue(self, tmp_path):
        pkg = _write_pkg(tmp_path, "bad.py", """
            import queue
            q = queue.Queue()
        """)
        findings = lint_serve(pkg)
        assert "SV001" in _rules(findings)

    def test_sv001_silent_drop_deque(self, tmp_path):
        pkg = _write_pkg(tmp_path, "bad.py", """
            from collections import deque
            buffer = deque(maxlen=100)
        """)
        findings = [f for f in lint_serve(pkg) if f.rule == "SV001"]
        assert findings and "silently" in findings[0].message

    def test_sv001_bare_deque_outside_boundeddeque(self, tmp_path):
        pkg = _write_pkg(tmp_path, "bad.py", """
            from collections import deque
            class SomethingElse:
                def __init__(self):
                    self.items = deque()
        """)
        assert "SV001" in _rules(lint_serve(pkg))

    def test_sv001_allows_deque_inside_boundeddeque(self, tmp_path):
        pkg = _write_pkg(tmp_path, "ok.py", """
            from collections import deque
            class BoundedDeque:
                def __init__(self, capacity):
                    self.capacity = capacity
                    self._items = deque()
        """)
        assert "SV001" not in _rules(lint_serve(pkg))

    def test_sv002_unbounded_wait_and_join(self, tmp_path):
        pkg = _write_pkg(tmp_path, "bad.py", """
            def stall(event, thread):
                event.wait()
                thread.join()
        """)
        hits = [f for f in lint_serve(pkg) if f.rule == "SV002"]
        assert len(hits) == 2

    def test_sv002_allows_bounded_waits(self, tmp_path):
        pkg = _write_pkg(tmp_path, "ok.py", """
            def bounded(event, thread):
                event.wait(timeout=0.1)
                thread.join(5.0)
        """)
        assert "SV002" not in _rules(lint_serve(pkg))

    def test_sv004_wall_clock_read(self, tmp_path):
        pkg = _write_pkg(tmp_path, "bad.py", """
            import time
            def now():
                return time.monotonic()
        """)
        hits = [f for f in lint_serve(pkg) if f.rule == "SV004"]
        assert len(hits) == 2  # the import and the attribute read

    def test_sv004_exempts_clock_module(self, tmp_path):
        pkg = _write_pkg(tmp_path, "clock.py", """
            import time
            def now():
                return time.monotonic()
        """)
        assert "SV004" not in _rules(lint_serve(pkg))

    def test_sv005_bare_except_and_except_pass(self, tmp_path):
        pkg = _write_pkg(tmp_path, "bad.py", """
            def swallow():
                try:
                    risky()
                except:
                    handle()
                try:
                    risky()
                except ValueError:
                    pass
        """)
        hits = [f for f in lint_serve(pkg) if f.rule == "SV005"]
        assert len(hits) == 2

    def test_real_serve_package_is_clean(self):
        errors = [f for f in lint_serve() if f.severity == "error"]
        assert errors == []

    def test_sv_codes_registered(self):
        for code in ("SV001", "SV002", "SV003", "SV004", "SV005",
                     "SV101", "SV102", "SV103", "SV104", "SV105"):
            assert code in CODE_CATALOGUE


class TestCertification:
    def test_mlp_healthy_and_chaos_certify(self):
        findings, outcomes = certify_config("mlp", 2, requests=24)
        errors = [f for f in findings if f.severity == "error"]
        assert errors == []
        regimes = {o.regime for o in outcomes}
        assert regimes == {"healthy", "chaos"}
        chaos = next(o for o in outcomes if o.regime == "chaos")
        assert chaos.restarts >= 1
        assert chaos.reloads >= 1
        assert chaos.status_counts.get("quarantined-input", 0) == 1
        healthy = next(o for o in outcomes if o.regime == "healthy")
        assert set(healthy.status_counts) == {"ok"}

    def test_report_gates_and_summary(self):
        report = run_servecheck(nets=("mlp",), threads=(1,), requests=15)
        assert report.ok
        lines = report.summary_lines()
        assert lines[-1] == "servecheck: OK"
        assert any("chaos" in line for line in lines)
        doc = report.to_json()
        assert doc["ok"] is True
        assert len(doc["replays"]) == 2

    def test_static_only_skips_replays(self):
        report = run_servecheck(static_only=True)
        assert report.replays == []
        assert report.ok
