"""Unit tests for the performance certifier (perflint + perfcheck +
the repro-bench/1 schema + BLAS pinning)."""

import json

import numpy as np
import pytest

from repro.analysis.perfcheck import (
    DEFAULT_TOLERANCE,
    _classify,
    dram_saturation_width,
    judge_residuals,
    run_perfcheck,
)
from repro.analysis.perflint import (
    _own_method_trees,
    analyze_layer_classes_perf,
    analyze_layer_perf,
    chunk_reachable_methods,
    lint_sources_perf,
)
from repro.analysis.report import ERROR, WARNING
from repro.bench.pinning import BLAS_THREAD_VARS, pin_blas_threads
from repro.bench.schema import (
    BENCH_FORMAT,
    BenchSchemaError,
    envelope,
    host_fingerprint,
    load_bench,
    validate_bench,
)
from repro.framework.layer import PerfDecl
from repro.simulator import CPUModel
from repro.simulator.cost_model import LayerCost


# ---------------------------------------------------------------------------
# synthetic layer classes for the lint (source comes from this file)
# ---------------------------------------------------------------------------
class CleanLayer:
    def forward_chunk(self, bottom, top, lo, hi):
        top[0].data[lo:hi] = np.maximum(bottom[0].data[lo:hi], 0)


class Float64Layer:
    def forward_chunk(self, bottom, top, lo, hi):
        x = bottom[0].data[lo:hi].astype(np.float64)
        top[0].data[lo:hi] = x


class AllocLayer:
    def forward_chunk(self, bottom, top, lo, hi):
        buf = np.zeros((hi - lo, 4))
        top[0].data[lo:hi] = buf


class CopyLayer:
    def forward_chunk(self, bottom, top, lo, hi):
        top[0].data[lo:hi] = np.ascontiguousarray(bottom[0].data[lo:hi])


class LoopLayer:
    def forward_chunk(self, bottom, top, lo, hi):
        for i in range(lo, hi):
            top[0].data[i] = bottom[0].data[i] * 2


class HelperLayer:
    """The hazard hides one self-call below the chunk root."""

    def forward_chunk(self, bottom, top, lo, hi):
        top[0].data[lo:hi] = self._accumulate(bottom[0].data[lo:hi])

    def _accumulate(self, x):
        return x.astype(np.float64)

    def unreached_helper(self, x):
        # float64 here is fine: never called from chunk code
        return np.float64(x)


class DeclaredLayer:
    perf_decl = PerfDecl(
        float64=("forward_chunk",),
        note="accumulates in float64 for a bitwise-stable reduction",
    )

    def forward_chunk(self, bottom, top, lo, hi):
        top[0].data[lo:hi] = bottom[0].data[lo:hi].astype(np.float64)


class UnknownMethodDeclLayer:
    perf_decl = PerfDecl(allocs=("no_such_method",), note="stale")

    def forward_chunk(self, bottom, top, lo, hi):
        top[0].data[lo:hi] = bottom[0].data[lo:hi]


class UnreachableDeclLayer:
    perf_decl = PerfDecl(float64=("helper",), note="dead allowance")

    def forward_chunk(self, bottom, top, lo, hi):
        top[0].data[lo:hi] = bottom[0].data[lo:hi]

    def helper(self, x):
        return x.astype(np.float64)


class StaleDeclLayer:
    perf_decl = PerfDecl(float64=("forward_chunk",), note="gone now")

    def forward_chunk(self, bottom, top, lo, hi):
        top[0].data[lo:hi] = bottom[0].data[lo:hi]


def rules(findings):
    return sorted(f.rule for f in findings)


class TestPerfDecl:
    def test_requires_note(self):
        with pytest.raises(ValueError, match="note"):
            PerfDecl(float64=("forward_chunk",), note="")

    def test_requires_an_allowance(self):
        with pytest.raises(ValueError, match="allowance"):
            PerfDecl(note="vouches for nothing")

    def test_rejects_non_tuple(self):
        with pytest.raises(ValueError, match="tuple"):
            PerfDecl(float64="forward_chunk", note="string, not tuple")


class TestPerflint:
    def test_clean_class(self):
        assert analyze_layer_perf(CleanLayer) == []

    def test_pe001_float64(self):
        assert rules(analyze_layer_perf(Float64Layer)) == ["PE001"]

    def test_pe002_allocation(self):
        assert rules(analyze_layer_perf(AllocLayer)) == ["PE002"]

    def test_pe003_copy(self):
        findings = analyze_layer_perf(CopyLayer)
        assert rules(findings) == ["PE003"]
        assert findings[0].severity == WARNING

    def test_pe004_loop(self):
        findings = analyze_layer_perf(LoopLayer)
        assert rules(findings) == ["PE004"]
        assert findings[0].severity == WARNING

    def test_hazard_found_through_self_call(self):
        findings = analyze_layer_perf(HelperLayer)
        assert rules(findings) == ["PE001"]
        assert "_accumulate" in findings[0].message
        # unreached_helper's float64 never fires
        assert all("unreached_helper" not in f.message for f in findings)

    def test_chunk_reachability_closure(self):
        trees = _own_method_trees(HelperLayer)
        reachable = chunk_reachable_methods(trees)
        assert "forward_chunk" in reachable
        assert "_accumulate" in reachable
        assert "unreached_helper" not in reachable

    def test_declared_allowance_silences(self):
        assert analyze_layer_perf(DeclaredLayer) == []

    def test_pe005_unknown_method(self):
        findings = analyze_layer_perf(UnknownMethodDeclLayer)
        assert rules(findings) == ["PE005"]
        assert "no such method" in findings[0].message

    def test_pe005_unreachable_method(self):
        findings = analyze_layer_perf(UnreachableDeclLayer)
        assert rules(findings) == ["PE005"]
        assert "not chunk-reachable" in findings[0].message

    def test_pe005_stale_allowance(self):
        findings = analyze_layer_perf(StaleDeclLayer)
        assert rules(findings) == ["PE005"]
        assert "stale" in findings[0].message

    def test_inherited_decl_never_vouches(self):
        class Child(DeclaredLayer):
            def forward_chunk(self, bottom, top, lo, hi):
                top[0].data[lo:hi] = (
                    bottom[0].data[lo:hi].astype(np.float64)
                )

        assert rules(analyze_layer_perf(Child)) == ["PE001"]

    def test_builtin_layers_clean(self):
        assert analyze_layer_classes_perf() == []

    def test_core_and_compiler_sources_clean(self):
        assert lint_sources_perf() == []


# ---------------------------------------------------------------------------
# roofline classifier
# ---------------------------------------------------------------------------
def synthetic_cost(**kw):
    defaults = dict(name="x", type="Convolution", pass_="forward",
                    flops=1e8, bytes=1e6, space=64, segments=64,
                    dist="sample")
    defaults.update(kw)
    return LayerCost(**defaults)


class TestRoofline:
    @pytest.fixture(scope="class")
    def model(self):
        return CPUModel()

    def test_saturation_width_is_machine_property(self, model):
        sat = dram_saturation_width(model)
        assert 2 <= sat <= model.params.cores
        # same answer regardless of the tested thread range
        assert dram_saturation_width(model, model.params.cores) == sat

    def test_serial_pass_stays_width_one(self, model):
        verdict = _classify(model, synthetic_cost(serial=True), 8)
        assert verdict["width"] == 1
        assert verdict["path"] == "serial"

    def test_compute_bound_conv(self, model):
        verdict = _classify(
            model, synthetic_cost(flops=1e9, bytes=1e5), 8)
        assert verdict["bound"] == "compute"

    def test_bandwidth_bound_big_bytes(self, model):
        verdict = _classify(
            model, synthetic_cost(flops=1e5, bytes=5e8), 8)
        assert verdict["bound"] == "bandwidth"
        assert verdict["path"] == "dram"

    def test_width_clipped_to_space(self, model):
        verdict = _classify(model, synthetic_cost(space=3), 8)
        assert verdict["width"] == 3


class TestJudgeResiduals:
    def test_in_band_is_quiet(self):
        pool = {("Convolution", "forward"): [1.2, 0.8, 1.0]}
        summary, findings = judge_residuals(pool, DEFAULT_TOLERANCE)
        assert findings == []
        assert summary["Convolution.forward"] == pytest.approx(0.986, abs=5e-3)

    def test_out_of_band_fires_pe201(self):
        pool = {("Pooling", "backward"): [20.0, 25.0, 30.0]}
        summary, findings = judge_residuals(pool, DEFAULT_TOLERANCE)
        assert rules(findings) == ["PE201"]
        assert findings[0].severity == ERROR

    def test_warn_only_demotes(self):
        pool = {("Pooling", "backward"): [0.01]}
        _, findings = judge_residuals(
            pool, DEFAULT_TOLERANCE, severity=WARNING)
        assert rules(findings) == ["PE201"]
        assert findings[0].severity == WARNING


class TestRunPerfcheckStatic:
    def test_static_only_smoke(self):
        report = run_perfcheck(
            nets=("lenet",), threads=(1, 2), static_only=True)
        assert report.static_findings == []
        assert not report.timing_ran
        assert report.bench_nets == {}
        assert report.saturation_width >= 2
        rows = report.roofline["lenet"]
        assert rows  # every pass classified at every team size
        assert all(set(r.per_threads) == {1, 2} for r in rows)
        assert report.ok
        assert any("perfcheck verdict: OK" in line
                   for line in report.summary_lines())


# ---------------------------------------------------------------------------
# repro-bench/1 schema
# ---------------------------------------------------------------------------
def perf_nets():
    return {
        "lenet": {
            "batch": 64, "iters": 3, "warmup": 1,
            "threads": {
                "1": {
                    "scale": 5.1,
                    "layers": {
                        "conv1.fwd": {
                            "measured_us": 100.0, "predicted_us": 20.0,
                            "residual": 1.0, "noisy": False,
                        },
                    },
                },
            },
        },
    }


def timer():
    return {"iters": 3, "warmup": 1, "clock": "perf_counter",
            "blas": {"pinned_before_numpy": True}}


class TestBenchSchema:
    def test_envelope_roundtrip(self, tmp_path):
        from repro.bench.schema import dump_bench

        doc = envelope(kind="perf", timer=timer(), nets=perf_nets())
        assert doc["format"] == BENCH_FORMAT
        path = tmp_path / "BENCH_perf.json"
        dump_bench(doc, path)
        loaded = load_bench(path)
        assert loaded["nets"]["lenet"]["threads"]["1"]["scale"] == 5.1

    def test_host_fingerprint_keys(self):
        host = host_fingerprint()
        for key in ("platform", "machine", "python", "numpy", "cpus"):
            assert key in host

    def test_legacy_format_rejected_with_tool_pointer(self):
        with pytest.raises(BenchSchemaError, match="bench_plan"):
            validate_bench({"format": "repro-bench-plan/1"})

    def test_unknown_format_rejected(self):
        with pytest.raises(BenchSchemaError, match="format"):
            validate_bench({"format": "something-else/9"})

    def test_wrong_kind_rejected(self):
        doc = envelope(kind="perf", timer=timer(), nets=perf_nets())
        doc["kind"] = "nonsense"
        with pytest.raises(BenchSchemaError, match="kind"):
            validate_bench(doc)

    def test_missing_entry_key_rejected(self):
        nets = perf_nets()
        del nets["lenet"]["threads"]["1"]["scale"]
        with pytest.raises(BenchSchemaError, match="scale"):
            envelope(kind="perf", timer=timer(), nets=nets)

    def test_missing_layer_key_rejected(self):
        nets = perf_nets()
        layers = nets["lenet"]["threads"]["1"]["layers"]
        del layers["conv1.fwd"]["residual"]
        with pytest.raises(BenchSchemaError, match="residual"):
            envelope(kind="perf", timer=timer(), nets=nets)

    def test_non_integer_thread_key_rejected(self):
        nets = perf_nets()
        nets["lenet"]["threads"]["two"] = nets["lenet"]["threads"]["1"]
        with pytest.raises(BenchSchemaError, match="integer"):
            envelope(kind="perf", timer=timer(), nets=nets)

    def test_committed_bench_files_validate(self):
        import os

        root = os.path.join(os.path.dirname(__file__), "..", "..")
        for name in ("BENCH_plan.json", "BENCH_fuse.json"):
            path = os.path.join(root, name)
            if os.path.exists(path):
                doc = load_bench(path)
                assert doc["format"] == BENCH_FORMAT

    def test_corrupt_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(BenchSchemaError, match="cannot read"):
            load_bench(path)


class TestBlasPinning:
    def test_sets_unset_vars(self, monkeypatch):
        for var in BLAS_THREAD_VARS:
            monkeypatch.delenv(var, raising=False)
        in_effect = pin_blas_threads()
        for var in BLAS_THREAD_VARS:
            assert in_effect[var] == "1"

    def test_explicit_env_wins(self, monkeypatch):
        monkeypatch.setenv("OPENBLAS_NUM_THREADS", "8")
        in_effect = pin_blas_threads()
        assert in_effect["OPENBLAS_NUM_THREADS"] == "8"

    def test_reports_numpy_already_loaded(self):
        # numpy is imported by this test module, so the pin is late
        assert pin_blas_threads()["pinned_before_numpy"] is False

    def test_importing_pinning_does_not_load_numpy(self):
        import subprocess
        import sys

        code = ("import repro.bench.pinning, sys; "
                "print('numpy' in sys.modules)")
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == "False"


class TestCatalogue:
    def test_pe_codes_registered(self):
        from repro.analysis.codes import CODE_CATALOGUE

        for code in ("PE001", "PE002", "PE003", "PE004", "PE005",
                     "PE101", "PE102", "PE201", "PE202", "PE203"):
            assert code in CODE_CATALOGUE
            assert CODE_CATALOGUE[code][0] == "perfcheck"

    def test_report_json_shape(self):
        report = run_perfcheck(
            nets=("mlp",), threads=(1,), static_only=True)
        doc = json.loads(json.dumps(report.to_json()))
        assert doc["ok"] is True
        assert doc["timing_ran"] is False
        assert "mlp" in doc["roofline"]
