"""Tests for the graph-compiler certifier (fusecheck, FU codes)."""

import json

import pytest

from repro.analysis.fusecheck import (
    FusecheckReport,
    certify_fuse,
    check_fuse,
)
from repro.analysis.report import ERROR, INFO


@pytest.fixture(autouse=True)
def _sources():
    from repro.data import register_default_sources

    register_default_sources()


def _zoo_spec(name):
    from repro.zoo.build import _SPECS

    return _SPECS[name][0]()


class TestCheckFuse:
    def test_lenet_passes_all_static_stages(self):
        report = check_fuse(_zoo_spec("lenet"), net_name="lenet",
                            threads=8, batch=4)
        assert report.ok
        assert len(report.fusion["fused"]) == 1
        assert report.arena is not None
        assert report.arena["arena_bytes"] < report.arena["baseline_bytes"]
        assert not any(f.rule == "FU004" for f in report.findings)

    def test_mlp_reports_nothing_to_fuse(self):
        report = check_fuse(_zoo_spec("mlp"), net_name="mlp",
                            threads=2, batch=4)
        assert report.ok
        assert any(f.rule == "FU005" and f.severity == INFO
                   for f in report.findings)

    def test_report_roundtrips_to_json(self):
        report = check_fuse(_zoo_spec("mlp"), net_name="mlp",
                            threads=1, batch=4)
        doc = FusecheckReport(reports=[report]).to_json()
        json.dumps(doc)  # must be serializable
        assert doc["ok"] is True
        assert doc["reports"][0]["net"] == "mlp"
        assert doc["reports"][0]["arena"]["arena_bytes"] > 0

    def test_summary_has_verdict_line(self):
        doc = FusecheckReport(reports=[check_fuse(
            _zoo_spec("mlp"), net_name="mlp", threads=1, batch=4)])
        assert doc.summary_lines()[-1] == "verdict: OK"

    def test_cost_parity_is_really_checked(self):
        """spec_costs and net_costs must agree on the fused zoo nets."""
        from repro.compiler.fuse import fuse_spec
        from repro.framework.net import Net
        from repro.simulator.cost_model import net_costs, spec_costs

        for name in ("lenet", "cifar10"):
            fused_spec, _ = fuse_spec(_zoo_spec(name))
            net = Net(fused_spec, phase="TRAIN")
            net.forward()
            assert net_costs(net) == spec_costs(fused_spec, phase="TRAIN")


class TestCertifyFuse:
    @pytest.mark.parametrize("threads", [1, 2])
    def test_lenet_certifies_bitwise(self, threads):
        findings, plan = certify_fuse("lenet", threads=threads,
                                      iters=2, batch=4)
        assert plan is not None
        rules = [f.rule for f in findings]
        assert "FU202" in rules
        assert not any(f.severity == ERROR for f in findings)

    def test_unknown_net_raises(self):
        with pytest.raises(KeyError):
            certify_fuse("nope", threads=2)


class TestCli:
    def test_gate_passes_on_zoo_net(self, capsys):
        from repro.analysis.__main__ import main

        rc = main(["fusecheck", "--net", "mlp", "--threads", "1",
                   "--batch", "4", "--gate"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verdict: OK" in out

    def test_json_output(self, capsys):
        from repro.analysis.__main__ import main

        rc = main(["fusecheck", "--net", "lenet", "--threads", "2",
                   "--batch", "4", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["reports"][0]["fusion"]["fused"]

    def test_codes_catalogue_names_fu_family(self):
        from repro.analysis.codes import CODE_CATALOGUE

        for code in ("FU001", "FU002", "FU003", "FU004", "FU005",
                     "FU201", "FU202"):
            assert code in CODE_CATALOGUE
            assert CODE_CATALOGUE[code][0] == "fusecheck"
