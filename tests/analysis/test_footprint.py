"""Unit tests for the static write-footprint classifier."""

import numpy as np
import pytest

from repro.analysis import (
    ERROR,
    analyze_layer_class,
    lint_runtime,
    run_static,
)
from repro.framework.layer import (
    FootprintDecl,
    Layer,
    REDUCTION,
    SAMPLE_DISJOINT,
    SEQUENTIAL,
    UNSAFE,
)


# ----------------------------------------------------------------------
# fixture layer classes (must live in a real file for inspect.getsource)
# ----------------------------------------------------------------------
class CleanElementwise(Layer):
    write_footprint = FootprintDecl()

    def reshape(self, bottom, top):
        top[0].reshape_like(bottom[0])

    def forward_chunk(self, bottom, top, lo, hi):
        top[0].flat_data[lo:hi] = bottom[0].flat_data[lo:hi] * 2.0

    def backward_chunk(self, top, pd, bottom, lo, hi, param_grads):
        bottom[0].flat_diff[lo:hi] = top[0].flat_diff[lo:hi] * 2.0


class UndeclaredOverride(CleanElementwise):
    def forward_chunk(self, bottom, top, lo, hi):
        top[0].flat_data[lo:hi] = bottom[0].flat_data[lo:hi] * 3.0


class WholeBufferWriter(Layer):
    write_footprint = FootprintDecl()

    def reshape(self, bottom, top):
        top[0].reshape_like(bottom[0])

    def forward_chunk(self, bottom, top, lo, hi):
        top[0].flat_data[:] = bottom[0].flat_data * 2.0

    def backward_chunk(self, top, pd, bottom, lo, hi, param_grads):
        bottom[0].flat_diff[lo:hi] = top[0].flat_diff[lo:hi]


class DeclaredSequentialWriter(WholeBufferWriter):
    write_footprint = FootprintDecl(forward=SEQUENTIAL)

    def forward_space(self, bottom, top):
        return 1

    def forward_chunk(self, bottom, top, lo, hi):
        top[0].flat_data[:] = bottom[0].flat_data * 2.0


class HiddenStateWriter(Layer):
    write_footprint = FootprintDecl()

    def reshape(self, bottom, top):
        top[0].reshape_like(bottom[0])

    def forward_chunk(self, bottom, top, lo, hi):
        self._cache = np.maximum(bottom[0].flat_data[lo:hi], 0.0)
        top[0].flat_data[lo:hi] = self._cache

    def backward_chunk(self, top, pd, bottom, lo, hi, param_grads):
        bottom[0].flat_diff[lo:hi] = top[0].flat_diff[lo:hi]


class DeclaredScratchWriter(Layer):
    write_footprint = FootprintDecl(scratch=("_per_sample",))

    def reshape(self, bottom, top):
        top[0].reshape_like(bottom[0])

    def forward_chunk(self, bottom, top, lo, hi):
        self._per_sample[lo:hi] = bottom[0].flat_data[lo:hi]
        top[0].flat_data[lo:hi] = self._per_sample[lo:hi]

    def backward_chunk(self, top, pd, bottom, lo, hi, param_grads):
        bottom[0].flat_diff[lo:hi] = top[0].flat_diff[lo:hi]


class ReductionBypasser(Layer):
    """Accumulates into the shared parameter diff instead of param_grads."""

    write_footprint = FootprintDecl()

    def reshape(self, bottom, top):
        top[0].reshape_like(bottom[0])

    def forward_chunk(self, bottom, top, lo, hi):
        top[0].flat_data[lo:hi] = bottom[0].flat_data[lo:hi]

    def backward_chunk(self, top, pd, bottom, lo, hi, param_grads):
        dw = self.blobs[0].flat_diff
        dw += top[0].flat_diff[lo:hi].sum()


class UndeclaredReduction(Layer):
    """Uses param_grads correctly but declares sample_disjoint."""

    write_footprint = FootprintDecl()

    def reshape(self, bottom, top):
        top[0].reshape_like(bottom[0])

    def forward_chunk(self, bottom, top, lo, hi):
        top[0].flat_data[lo:hi] = bottom[0].flat_data[lo:hi]

    def backward_chunk(self, top, pd, bottom, lo, hi, param_grads):
        param_grads[0] += top[0].flat_diff[lo:hi].sum()
        bottom[0].flat_diff[lo:hi] = top[0].flat_diff[lo:hi]


class ProperReduction(UndeclaredReduction):
    write_footprint = FootprintDecl(backward=REDUCTION, reduction_params=(0,))

    def backward_chunk(self, top, pd, bottom, lo, hi, param_grads):
        param_grads[0] += top[0].flat_diff[lo:hi].sum()
        bottom[0].flat_diff[lo:hi] = top[0].flat_diff[lo:hi]


def rules(report):
    return sorted({f.rule for f in report.findings})


class TestClassification:
    def test_clean_elementwise(self):
        report = analyze_layer_class(CleanElementwise)
        assert report.ok
        assert report.inferred_forward == SAMPLE_DISJOINT
        assert report.inferred_backward == SAMPLE_DISJOINT
        assert not report.findings

    def test_undeclared_override_fp001(self):
        report = analyze_layer_class(UndeclaredOverride)
        assert not report.ok
        assert "FP001" in rules(report)

    def test_whole_buffer_write_fp005(self):
        report = analyze_layer_class(WholeBufferWriter)
        assert not report.ok
        assert report.inferred_forward == UNSAFE
        assert "FP005" in rules(report)

    def test_sequential_declaration_permits_whole_buffer(self):
        report = analyze_layer_class(DeclaredSequentialWriter)
        assert report.ok

    def test_hidden_state_fp004(self):
        report = analyze_layer_class(HiddenStateWriter)
        assert not report.ok
        assert "FP004" in rules(report)

    def test_declared_bounded_scratch_ok(self):
        report = analyze_layer_class(DeclaredScratchWriter)
        assert report.ok

    def test_reduction_bypass_fp003(self):
        report = analyze_layer_class(ReductionBypasser)
        assert not report.ok
        assert report.inferred_backward == UNSAFE
        assert "FP003" in rules(report)

    def test_undeclared_reduction_fp002(self):
        report = analyze_layer_class(UndeclaredReduction)
        assert not report.ok
        assert report.inferred_backward == REDUCTION
        assert "FP002" in rules(report)

    def test_proper_reduction_ok(self):
        report = analyze_layer_class(ProperReduction)
        assert report.ok
        assert report.inferred_backward == REDUCTION
        assert report.inferred_reduction_params == (0,)


class TestBuiltinLayers:
    def test_all_builtin_layers_classify_clean(self):
        # other test modules register deliberately-racy layers in the
        # global registry; only the built-in package must be clean
        from repro.framework.layer import _REGISTRY

        builtin_names = {
            cls.__name__ for cls in _REGISTRY.values()
            if cls.__module__.startswith("repro.framework.layers")
        }
        assert builtin_names, "registry should not be empty"
        report = run_static()
        for name in builtin_names:
            layer_report = report.layers[name]
            assert layer_report.ok, (name, layer_report.findings)

    def test_conv_is_a_declared_reduction(self):
        report = run_static()
        conv = report.layers["ConvolutionLayer"]
        assert conv.inferred_backward == REDUCTION
        assert conv.inferred_reduction_params == (0, 1)
        assert conv.declared.reduction_params == (0, 1)

    def test_inner_product_avoids_the_reduction(self):
        # InnerProduct decomposes backward into disjoint output rows —
        # the paper's reduction-free alternative the analyzer must
        # follow through backward_loops helpers.
        report = run_static()
        ip = report.layers["InnerProductLayer"]
        assert ip.inferred_backward == SAMPLE_DISJOINT


class TestRuntimeLint:
    def test_executor_source_is_clean(self):
        assert lint_runtime() == []

    def test_unprotected_merge_flagged(self, tmp_path):
        bad = tmp_path / "bad_executor.py"
        bad.write_text(
            "def outer(self, loop):\n"
            "    def region(ctx):\n"
            "        grads = self.pool.request(ctx.thread_id, sizes)\n"
            "        loop.body(0, 1, grads)\n"
            "        add_into(loop.grad_targets, grads)\n"
            "    self.team.parallel(region)\n"
        )
        findings = lint_runtime(str(bad))
        assert len(findings) == 1
        assert findings[0].rule == "RT001"
        assert findings[0].severity == ERROR

    def test_guarded_merge_accepted(self, tmp_path):
        good = tmp_path / "good_executor.py"
        good.write_text(
            "def outer(self, loop):\n"
            "    def region(ctx):\n"
            "        grads = self.pool.request(ctx.thread_id, sizes)\n"
            "        merge = lambda: add_into(loop.grad_targets, grads)\n"
            "        ctx.ordered(merge)\n"
            "        ctx.critical(lambda: add_into(loop.grad_targets, grads))\n"
            "    self.team.parallel(region)\n"
            "    add_into(loop.grad_targets, combined)  # master-only\n"
        )
        assert lint_runtime(str(good)) == []
