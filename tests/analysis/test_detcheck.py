"""Unit and integration tests for the determinism certifier.

Static half: the DC0xx source lint and layer provenance checks on
seeded-nondeterminism fixtures; the DC1xx configuration tier rules.
Dynamic half: the replay certifier on the zoo (blockwise certifies
bitwise, atomic's divergence is pinpointed to a layer, never silently
passed).
"""

import json
import textwrap

import numpy as np
import pytest

from repro.analysis import ERROR, INFO
from repro.analysis.detcheck import (
    Divergence,
    IterationSnapshot,
    Trajectory,
    capture_trajectory,
    certify_mode,
    classify_config,
    first_divergence,
    run_detcheck,
    ulp_distance,
    ulp_distance_scalar,
)
from repro.analysis.rng_lint import (
    analyze_layer_rng,
    lint_rng,
    lint_sources,
)
from repro.analysis.__main__ import main
from repro.core.reduction import (
    BITWISE_INVARIANT,
    DETERMINISTIC_PER_T,
    NONDETERMINISTIC,
)
from repro.framework.layer import RNG_PER_FORWARD, RNGDecl


# ----------------------------------------------------------------------
# fixture layer classes (must live in a real file for inspect.getsource)
# ----------------------------------------------------------------------
class UnseededRNGLayer:
    """DC006: constructs an RNG, declares nothing."""

    def layer_setup(self, bottom, top):
        self._rng = np.random.default_rng(7)


class ChunkDrawLayer:
    """DC004: draws inside the chunked forward."""

    rng_provenance = RNGDecl(seed_params=("seed",))

    def layer_setup(self, bottom, top):
        self._rng = np.random.default_rng(int(self.spec.param("seed", 1)))

    def forward_chunk(self, bottom, top, lo, hi):
        noise = self._rng.normal(size=hi - lo)
        top[0].flat_data[lo:hi] = bottom[0].flat_data[lo:hi] + noise


class StaleDeclLayer:
    """DC007 twice: seed param never read, stable_digest never used."""

    rng_provenance = RNGDecl(seed_params=("filler_seed",),
                             fallback="stable_digest")

    def layer_setup(self, bottom, top):
        self._rng = np.random.default_rng(13)


class WrongDrawSiteLayer:
    """DC007: declares draws='setup' but reshape() draws per forward."""

    rng_provenance = RNGDecl(seed_params=("seed",))

    def layer_setup(self, bottom, top):
        self._rng = np.random.default_rng(int(self.spec.param("seed", 1)))

    def reshape(self, bottom, top):
        self._mask = self._rng.random(8)


class CleanStochasticLayer:
    """Correctly declared: no findings."""

    rng_provenance = RNGDecl(seed_params=("seed",), draws=RNG_PER_FORWARD)

    def layer_setup(self, bottom, top):
        self._rng = np.random.default_rng(int(self.spec.param("seed", 1)))

    def reshape(self, bottom, top):
        self._mask = self._rng.random(8)


def rules(findings):
    return sorted(f.rule for f in findings)


class TestLayerRNGAnalysis:
    def test_undeclared_construction_is_dc006(self):
        assert rules(analyze_layer_rng(UnseededRNGLayer)) == ["DC006"]

    def test_chunk_draw_is_dc004(self):
        found = analyze_layer_rng(ChunkDrawLayer)
        assert "DC004" in rules(found)
        assert all(f.severity == ERROR for f in found)

    def test_stale_declaration_is_dc007(self):
        found = analyze_layer_rng(StaleDeclLayer)
        assert rules(found) == ["DC007", "DC007"]

    def test_wrong_draw_site_is_dc007(self):
        found = analyze_layer_rng(WrongDrawSiteLayer)
        assert "DC007" in rules(found)
        assert any("per_forward" in f.message for f in found)

    def test_clean_declaration_passes(self):
        assert analyze_layer_rng(CleanStochasticLayer) == []

    def test_builtin_layers_are_clean(self):
        errors = [f for f in lint_rng() if f.severity == ERROR]
        assert errors == []


class TestSourceLint:
    def lint(self, tmp_path, source):
        path = tmp_path / "fixture.py"
        path.write_text(textwrap.dedent(source))
        return lint_sources([path])

    def test_unseeded_rng_is_dc001(self, tmp_path):
        found = self.lint(tmp_path, """
            import numpy as np
            rng = np.random.default_rng()
        """)
        assert rules(found) == ["DC001"]
        assert "fixture.py:3" in found[0].location

    def test_hash_seed_is_dc002(self, tmp_path):
        found = self.lint(tmp_path, """
            import numpy as np
            def make(name):
                return np.random.default_rng(abs(hash(name)) % (2**31))
        """)
        assert rules(found) == ["DC002"]

    def test_wall_clock_seed_is_dc003(self, tmp_path):
        found = self.lint(tmp_path, """
            import time
            import numpy as np
            rng = np.random.default_rng(int(time.time()))
        """)
        assert rules(found) == ["DC003"]

    def test_timing_without_seeding_is_clean(self, tmp_path):
        # core/trace.py-style instrumentation must not trip DC003.
        found = self.lint(tmp_path, """
            import time
            def timed(fn):
                start = time.perf_counter()
                fn()
                return time.perf_counter() - start
        """)
        assert found == []

    def test_entropy_source_is_dc003(self, tmp_path):
        found = self.lint(tmp_path, """
            import os
            salt = os.urandom(8)
        """)
        assert rules(found) == ["DC003"]

    def test_legacy_global_stream_is_dc005(self, tmp_path):
        found = self.lint(tmp_path, """
            import numpy as np
            np.random.seed(0)
            x = np.random.rand(4)
        """)
        assert rules(found) == ["DC005", "DC005"]

    def test_identity_map_id_is_clean(self, tmp_path):
        # net.py keys blob maps by id(); only id() in a seed is a hazard.
        found = self.lint(tmp_path, """
            def track(blobs):
                return {id(b): b for b in blobs}
        """)
        assert found == []

    def test_shipped_packages_are_clean(self):
        assert lint_sources() == []


class TestConfigRules:
    def test_atomic_claiming_bitwise_is_dc101(self):
        found = classify_config("lenet", "atomic", [1, 2, 8],
                                claim=BITWISE_INVARIANT)
        assert rules(found) == ["DC101"]
        assert found[0].severity == ERROR

    def test_ordered_claiming_bitwise_is_dc101(self):
        found = classify_config("lenet", "ordered", [2],
                                claim=BITWISE_INVARIANT)
        assert rules(found) == ["DC101"]

    def test_claim_within_tier_passes(self):
        assert classify_config("lenet", "blockwise", [1, 2, 8],
                               claim=BITWISE_INVARIANT) == []
        assert classify_config("lenet", "ordered", [2],
                               claim=DETERMINISTIC_PER_T) == []

    def test_single_thread_meets_any_claim(self):
        assert classify_config("lenet", "atomic", [1],
                               claim=BITWISE_INVARIANT) == []

    def test_dynamic_schedule_is_dc102(self):
        found = classify_config("lenet", "tree", [4],
                                schedule_static=False)
        assert rules(found) == ["DC102"]

    def test_uncertified_solver_is_dc104_warning(self):
        found = classify_config("lenet", "blockwise", [2],
                                solver_type="Adam")
        assert rules(found) == ["DC104"]
        assert found[0].severity != ERROR

    def test_undeclared_stochastic_layer_is_dc103(self, monkeypatch):
        from repro.framework.layer import _REGISTRY
        from repro.framework.net_spec import LayerSpec, NetSpec

        monkeypatch.setitem(_REGISTRY, "noisyfixture", UnseededRNGLayer)
        spec = NetSpec(name="fixture", layers=[LayerSpec(
            name="noise1", type="NoisyFixture", bottoms=[], tops=["y"],
        )])
        found = classify_config("fixture", "blockwise", [2], spec=spec)
        assert rules(found) == ["DC103"]
        assert "noise1" in found[0].layer


class TestULPDistance:
    def test_adjacent_floats_are_one_ulp(self):
        a = np.array([1.0, -1.0, 0.0], dtype=np.float32)
        b = np.array([np.nextafter(np.float32(1.0), np.float32(2.0)),
                      np.nextafter(np.float32(-1.0), np.float32(-2.0)),
                      np.nextafter(np.float32(0.0), np.float32(-1.0))],
                     dtype=np.float32)
        assert ulp_distance(a, b) == 1

    def test_signed_zeros_are_equal(self):
        a = np.array([0.0], dtype=np.float32)
        b = np.array([-0.0], dtype=np.float32)
        assert ulp_distance(a, b) == 0
        assert ulp_distance_scalar(0.0, -0.0) == 0

    def test_identical_is_zero(self):
        a = np.linspace(-5, 5, 17, dtype=np.float32)
        assert ulp_distance(a, a.copy()) == 0


def _traj(losses, updates, params):
    names = tuple(f"p{i}" for i in range(len(updates[0])))
    owners = tuple(f"layer{i}" for i in range(len(updates[0])))
    snaps = tuple(
        IterationSnapshot(
            loss=loss,
            updates=tuple(np.asarray(u, dtype=np.float32) for u in ups),
            params=tuple(np.asarray(p, dtype=np.float32) for p in pars),
        )
        for loss, ups, pars in zip(losses, updates, params)
    )
    return Trajectory(param_names=names, param_owners=owners,
                      snapshots=snaps)


class TestFirstDivergence:
    BASE = dict(
        losses=[1.5, 1.25],
        updates=[[[0.1, 0.2], [0.3]], [[0.1, 0.2], [0.35]]],
        params=[[[1.0, 1.0], [2.0]], [[0.9, 0.8], [1.65]]],
    )

    def test_equal_trajectories(self):
        assert first_divergence(_traj(**self.BASE),
                                _traj(**self.BASE)) is None

    def test_loss_reported_before_updates(self):
        other = dict(self.BASE, losses=[1.5000001, 1.25],
                     updates=[[[0.1, 0.2], [0.4]], [[0.1, 0.2], [0.35]]])
        div = first_divergence(_traj(**self.BASE), _traj(**other))
        assert div.site == "loss" and div.iteration == 0

    def test_updates_scanned_in_backward_order(self):
        # Both params' updates differ; the later layer computes first.
        other = dict(self.BASE,
                     updates=[[[0.11, 0.2], [0.31]], [[0.1, 0.2], [0.35]]])
        div = first_divergence(_traj(**self.BASE), _traj(**other))
        assert div.site == "update:p1" and div.layer == "layer1"

    def test_earlier_iteration_wins(self):
        other = dict(self.BASE, losses=[1.5, 1.2500001])
        div = first_divergence(_traj(**self.BASE), _traj(**other))
        assert div.iteration == 1 and div.site == "loss"
        assert div.max_ulps >= 1


class TestReplayCertification:
    def test_blockwise_certifies_bitwise_on_mlp(self):
        cert = certify_mode("mlp", "blockwise", [1, 2], iters=1, batch=4)
        assert cert.ok
        assert cert.observed_tier == BITWISE_INVARIANT
        assert cert.findings == []
        assert all(cert.bitwise_vs_sequential.values())

    def test_atomic_divergence_pinpoints_layer(self):
        cert = certify_mode("lenet", "atomic", [2], iters=1, batch=4)
        assert cert.promised_tier == NONDETERMINISTIC
        assert cert.ok  # divergence within tier is not an error...
        div = cert.first_divergence[2]
        assert div is not None  # ...but it is never silently passed:
        assert div.layer != "" and div.max_ulps >= 1
        assert any(f.rule == "DC203" and f.severity == INFO
                   for f in cert.findings)

    def test_trajectory_capture_is_reproducible(self):
        a = capture_trajectory("mlp", iters=1, batch=4)
        b = capture_trajectory("mlp", iters=1, batch=4)
        assert first_divergence(a, b) is None

    def test_run_detcheck_document_shape(self):
        report = run_detcheck(nets=["mlp"], modes=["blockwise"],
                              threads=[1, 2], iters=1, batch=4)
        doc = report.to_json()
        assert doc["ok"] is True
        assert doc["static_findings"] == []
        (cert,) = doc["certificates"]
        assert cert["mode"] == "blockwise"
        assert cert["observed_tier"] == BITWISE_INVARIANT
        assert any("CERTIFIED" in line for line in report.summary_lines())


class TestCLI:
    def test_static_only_gate_passes(self, capsys):
        code = main(["detcheck", "--net", "mlp", "--static-only", "--gate"])
        assert code == 0
        assert "verdict: CERTIFIED" in capsys.readouterr().out

    def test_bogus_claim_fails_gate(self, capsys):
        code = main(["detcheck", "--net", "mlp", "--mode", "atomic",
                     "--claim", "bitwise_invariant", "--static-only",
                     "--gate"])
        assert code == 1
        out = capsys.readouterr().out
        assert "DC101" in out and "VIOLATIONS FOUND" in out

    def test_json_output(self, capsys):
        code = main(["detcheck", "--net", "mlp", "--threads", "1,2",
                     "--iters", "1", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True and len(doc["certificates"]) == 3

    def test_list_codes(self, capsys):
        assert main(["--list-codes"]) == 0
        out = capsys.readouterr().out
        for code in ("FP001", "RT001", "NG009", "DC001", "DC101", "DC203"):
            assert code in out

    def test_dynamic_gate_on_mlp(self, capsys):
        code = main(["detcheck", "--net", "mlp", "--threads", "1,2",
                     "--iters", "1", "--gate"])
        assert code == 0
