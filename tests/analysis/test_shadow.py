"""Unit tests for the shadow-memory machinery and executor validation."""

import numpy as np
import pytest

from repro.analysis.shadow import (
    PERTURB_EPS,
    RebindWatch,
    ShadowTracker,
    TrackedArray,
    owner_runs,
    thread_write_sets,
)
from repro.core import ParallelExecutor
from repro.core.parallel_net import iteration_owners
from repro.framework.blob import Blob, set_write_tracker


class TestOwnerRuns:
    def test_contiguous_static_plan(self):
        owners = iteration_owners(10, 3)
        runs = owner_runs(owners)
        assert runs == [(0, 4, 0), (4, 8, 1), (8, 10, 2)]

    def test_single_thread(self):
        assert owner_runs(iteration_owners(5, 1)) == [(0, 5, 0)]

    def test_covers_space_exactly_once(self):
        owners = iteration_owners(17, 4)
        runs = owner_runs(owners)
        covered = sorted(i for lo, hi, _ in runs for i in range(lo, hi))
        assert covered == list(range(17))


class TestTrackedArray:
    def test_diff_mask_catches_changed_values(self):
        arr = np.zeros(6)
        tracked = TrackedArray("t", arr)
        arr[2] = 5.0
        mask = tracked.diff_mask(tracked.baseline)
        assert list(np.flatnonzero(mask)) == [2]

    def test_perturbed_image_catches_same_value_writes(self):
        # Writing 0 over 0 is invisible against the baseline but visible
        # against the perturbed image — the reason for the double replay.
        arr = np.zeros(4)
        tracked = TrackedArray("t", arr)
        tracked.restore(tracked.perturbed)
        arr[1] = 0.0  # the "invisible" write
        mask = tracked.diff_mask(tracked.perturbed)
        assert list(np.flatnonzero(mask)) == [1]

    def test_int_arrays_not_perturbed(self):
        arr = np.array([1, 2, 3])
        tracked = TrackedArray("t", arr)
        assert (tracked.perturbed == tracked.baseline).all()

    def test_float_perturbation_is_small(self):
        arr = np.array([3.0])  # a label stored as float
        tracked = TrackedArray("t", arr)
        assert int(tracked.perturbed[0]) == 3
        assert tracked.perturbed[0] != 3.0
        assert abs(tracked.perturbed[0] - 3.0) == pytest.approx(PERTURB_EPS)

    def test_nan_scratch_not_flagged(self):
        arr = np.array([np.nan, 1.0])
        tracked = TrackedArray("t", arr)
        mask = tracked.diff_mask(tracked.baseline)
        assert not mask.any()


class TestThreadWriteSets:
    def test_disjoint_writers_do_not_overlap(self):
        arr = np.zeros(8)
        tracked = [TrackedArray("t", arr)]

        def run_chunks(tid):
            lo, hi = (0, 4) if tid == 0 else (4, 8)
            arr[lo:hi] = tid + 1.0

        masks, rebinds = thread_write_sets(tracked, 2, run_chunks)
        assert not (masks[0][0] & masks[1][0]).any()
        assert rebinds == [set(), set()]
        # arrays restored to baseline afterwards
        assert (arr == 0).all()

    def test_overlapping_writers_intersect(self):
        arr = np.zeros(8)
        tracked = [TrackedArray("t", arr)]

        def run_chunks(tid):
            arr[:] = tid + 1.0  # every thread writes everything

        masks, _ = thread_write_sets(tracked, 2, run_chunks)
        assert (masks[0][0] & masks[1][0]).all()


class TestRebindWatch:
    class _FakeLayer:
        pass

    def test_detects_rebind_and_restores(self):
        layer = self._FakeLayer()
        original = np.zeros(3)
        layer.scratch = original
        watch = RebindWatch(layer)
        layer.scratch = np.ones(3)
        layer.extra = np.ones(2)
        assert watch.rebound() == {"scratch", "extra"}
        watch.restore()
        assert layer.scratch is original
        assert not hasattr(layer, "extra")

    def test_in_place_write_is_not_a_rebind(self):
        layer = self._FakeLayer()
        layer.scratch = np.zeros(3)
        watch = RebindWatch(layer)
        layer.scratch[1] = 7.0
        assert watch.rebound() == set()


class TestShadowTracker:
    def test_records_blob_accesses_per_thread(self):
        blob = Blob((4,))
        blob.flat_data  # allocate
        tracker = ShadowTracker()
        prev = set_write_tracker(tracker)
        try:
            tracker.begin(0)
            blob.mark_host_data_dirty()
            tracker.end()
            tracker.begin(1)
            blob.mark_host_diff_dirty()
            tracker.end()
        finally:
            set_write_tracker(prev)
        assert tracker.touched(0, id(blob), "data")
        assert not tracker.touched(0, id(blob), "diff")
        assert tracker.touched(1, id(blob), "diff")

    def test_no_recording_outside_begin_end(self):
        blob = Blob((4,))
        tracker = ShadowTracker()
        prev = set_write_tracker(tracker)
        try:
            blob.mark_host_data_dirty()
        finally:
            set_write_tracker(prev)
        assert tracker.accesses == {}


class TestExecutorValidation:
    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError, match="num_threads >= 1"):
            ParallelExecutor(num_threads=0)

    def test_negative_threads_rejected(self):
        with pytest.raises(ValueError, match="num_threads >= 1"):
            ParallelExecutor(num_threads=-2)

    def test_one_thread_accepted(self):
        with ParallelExecutor(num_threads=1):
            pass

    def test_empty_forward_space_rejected(self):
        from repro.framework.net import Net
        from repro.framework.net_spec import LayerSpec, NetSpec

        net = Net(NetSpec(layers=[
            LayerSpec(name="in", type="Input", tops=["d"],
                      params={"shape": {"dim": [2, 3]}}),
            LayerSpec(name="r", type="ReLU", bottoms=["d"], tops=["r"]),
        ]))
        relu = net.layers[net.layer_names.index("r")]
        relu.forward_space = lambda bottom, top: 0
        with ParallelExecutor(num_threads=2) as executor:
            with pytest.raises(ValueError, match="empty coalesced forward"):
                executor.forward(net)

    def test_empty_backward_loop_rejected(self):
        from repro.framework.layer import LoopSpec

        with ParallelExecutor(num_threads=2) as executor:
            loop = LoopSpec(space=0, body=lambda lo, hi, grads: None)
            with pytest.raises(ValueError, match="empty iteration space"):
                executor._run_backward_loop(loop, "probe")
