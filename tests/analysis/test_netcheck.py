"""Tests for the net-graph static checker (netcheck).

Covers the three tentpole pieces — symbolic shape inference, the
NG-coded linter, the static schedule/memory planner — plus the
satellites: golden shape tables for every zoo net, one broken prototxt
per lint code, planner parity with the runtime's chunk assignment,
symbolic/instantiated cost parity, prototxt error line numbers, and the
inputs-without-shapes rejection.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.netcheck import (
    NG_DANGLING_BOTTOM,
    NG_DEAD_BLOB,
    NG_DUPLICATE_NAME,
    NG_DUPLICATE_PRODUCER,
    NG_ILLEGAL_INPLACE,
    NG_INPUT_WITHOUT_SHAPE,
    NG_LOSSY_GEOMETRY,
    NG_SHAPE_MISMATCH,
    NG_UNKNOWN_TYPE,
    check_spec,
)
from repro.analysis.report import ERROR, WARNING
from repro.core.parallel_net import iteration_owners
from repro.data import register_default_sources
from repro.framework.net import Net
from repro.framework.net_spec import NetSpec
from repro.framework.prototxt import parse_prototxt
from repro.framework.symbolic import infer_net
from repro.simulator.cost_model import net_costs, spec_costs
from repro.zoo.build import _SPECS

ZOO_NETS = sorted(_SPECS)
PHASES = ["TRAIN", "TEST"]


@pytest.fixture(autouse=True)
def _sources():
    register_default_sources()


def zoo_spec(name: str) -> NetSpec:
    return _SPECS[name][0]()


def codes(report):
    return {f.rule for f in report.findings}


# ----------------------------------------------------------------------
# symbolic shape inference: golden tables + parity with instantiation
# ----------------------------------------------------------------------
#: Hand-checked TRAIN-phase shape tables — the golden anchors; the
#: parametrized parity test below extends the guarantee to every zoo
#: net and phase (including the Split blobs TEST graphs insert).
GOLDEN_TRAIN_SHAPES = {
    "lenet": {
        "data": (64, 1, 28, 28),
        "label": (64,),
        "conv1": (64, 20, 24, 24),
        "pool1": (64, 20, 12, 12),
        "conv2": (64, 50, 8, 8),
        "pool2": (64, 50, 4, 4),
        "ip1": (64, 500),
        "ip2": (64, 10),
        "loss": (),
    },
    "cifar10": {
        "data": (100, 3, 32, 32),
        "label": (100,),
        "conv1": (100, 32, 32, 32),
        "pool1": (100, 32, 16, 16),
        "norm1": (100, 32, 16, 16),
        "conv2": (100, 32, 16, 16),
        "pool2": (100, 32, 8, 8),
        "norm2": (100, 32, 8, 8),
        "conv3": (100, 64, 8, 8),
        "pool3": (100, 64, 4, 4),
        "ip1": (100, 10),
        "loss": (),
    },
    "mlp": {
        "data": (64, 1, 28, 28),
        "label": (64,),
        "flat": (64, 784),
        "fc1": (64, 128),
        "fc2": (64, 10),
        "loss": (),
    },
}


@pytest.mark.parametrize("name", sorted(GOLDEN_TRAIN_SHAPES))
def test_golden_train_shapes(name):
    sym = infer_net(zoo_spec(name), phase="TRAIN")
    shapes = {n: i.shape for n, i in sym.blob_map.items()}
    assert shapes == GOLDEN_TRAIN_SHAPES[name]


@pytest.mark.parametrize("name", ZOO_NETS)
@pytest.mark.parametrize("phase", PHASES)
def test_symbolic_matches_instantiated(name, phase):
    spec = zoo_spec(name)
    sym = infer_net(spec, phase=phase)
    assert sym.ok
    net = Net(spec, phase=phase)
    assert set(sym.blob_map) == set(net.blob_map)
    for blob_name, blob in net.blob_map.items():
        assert sym.blob_map[blob_name].shape == blob.shape, blob_name


@pytest.mark.parametrize("name", ZOO_NETS)
@pytest.mark.parametrize("phase", PHASES)
def test_spec_costs_match_net_costs(name, phase):
    spec = zoo_spec(name)
    symbolic = spec_costs(spec, phase=phase)
    instantiated = net_costs(Net(spec, phase=phase))
    assert symbolic == instantiated


def test_batch_override_propagates():
    sym = infer_net(zoo_spec("lenet"), phase="TRAIN", batch=7)
    assert sym.blob_map["data"].shape == (7, 1, 28, 28)
    assert sym.blob_map["ip2"].shape == (7, 10)


# ----------------------------------------------------------------------
# linter: one broken spec per NG code
# ----------------------------------------------------------------------
INPUT_8x8 = (
    'layer { name: "in" type: "Input" top: "x" '
    'input_param { shape { dim: 4 dim: 3 dim: 8 dim: 8 } } }\n'
)


def check_prototxt(text, phase="TRAIN", **kwargs):
    spec = parse_prototxt(text, validate=False)
    return check_spec(spec, phase=phase, **kwargs)


def test_ng001_shape_mismatch():
    report = check_prototxt(
        INPUT_8x8
        + 'layer { name: "conv" type: "Convolution" bottom: "x" top: "y" '
          'convolution_param { num_output: 2 kernel_size: 100 } }\n'
    )
    assert any(
        f.rule == NG_SHAPE_MISMATCH and f.severity == ERROR
        and f.layer == "conv" for f in report.findings
    )
    assert not report.ok


def test_ng002_illegal_inplace():
    # LRN reads a neighbourhood across channels; writing its own bottom
    # violates the chunk-write protocol.
    report = check_prototxt(
        INPUT_8x8
        + 'layer { name: "lrn" type: "LRN" bottom: "x" top: "x" }\n'
    )
    assert any(
        f.rule == NG_ILLEGAL_INPLACE and f.layer == "lrn"
        for f in report.findings
    )


def test_ng002_ok_for_relu_inplace():
    report = check_prototxt(
        INPUT_8x8
        + 'layer { name: "relu" type: "ReLU" bottom: "x" top: "x" }\n'
        + 'layer { name: "ip" type: "InnerProduct" bottom: "x" top: "y" '
          'inner_product_param { num_output: 2 } }\n'
        + 'layer { name: "loss" type: "SoftmaxWithLoss" '
          'bottom: "y" bottom: "y" top: "loss" }\n'
    )
    assert NG_ILLEGAL_INPLACE not in codes(report)


def test_ng003_dead_blob():
    report = check_prototxt(
        INPUT_8x8
        + 'layer { name: "flat" type: "Flatten" bottom: "x" top: "y" }\n'
    )
    dead = [f for f in report.findings if f.rule == NG_DEAD_BLOB]
    assert dead and dead[0].severity == WARNING
    assert dead[0].layer == "flat"


def test_ng003_terminal_loss_is_not_dead():
    report = check_spec(zoo_spec("lenet"), phase="TEST")
    assert NG_DEAD_BLOB not in codes(report)


def test_ng004_duplicate_producer():
    report = check_prototxt(
        INPUT_8x8
        + 'layer { name: "a" type: "Flatten" bottom: "x" top: "y" }\n'
        + 'layer { name: "b" type: "Flatten" bottom: "x" top: "y" }\n'
        + 'layer { name: "c" type: "Flatten" bottom: "y" top: "z" }\n'
    )
    dup = [f for f in report.findings if f.rule == NG_DUPLICATE_PRODUCER]
    assert dup and dup[0].layer == "b" and dup[0].severity == ERROR


def test_ng005_pixel_dropping_conv():
    # (8 - 3) % 2 == 1: the rightmost column never enters any window.
    report = check_prototxt(
        INPUT_8x8
        + 'layer { name: "conv" type: "Convolution" bottom: "x" top: "y" '
          'convolution_param { num_output: 2 kernel_size: 3 stride: 2 } }\n'
        + 'layer { name: "flat" type: "Flatten" bottom: "y" top: "z" }\n'
    )
    lossy = [f for f in report.findings if f.rule == NG_LOSSY_GEOMETRY]
    assert lossy and lossy[0].severity == WARNING
    assert lossy[0].layer == "conv"


def test_ng006_input_without_shape():
    report = check_prototxt(
        'input: "x"\n'
        + 'layer { name: "flat" type: "Flatten" bottom: "x" top: "y" }\n'
    )
    assert any(
        f.rule == NG_INPUT_WITHOUT_SHAPE and f.severity == ERROR
        for f in report.findings
    )


def test_ng007_unknown_type():
    report = check_prototxt(
        INPUT_8x8
        + 'layer { name: "frob" type: "Frobnicate" bottom: "x" top: "y" }\n'
    )
    assert any(
        f.rule == NG_UNKNOWN_TYPE and f.layer == "frob"
        for f in report.findings
    )


def test_ng008_dangling_bottom():
    report = check_prototxt(
        INPUT_8x8
        + 'layer { name: "flat" type: "Flatten" bottom: "nope" top: "y" }\n'
    )
    assert any(
        f.rule == NG_DANGLING_BOTTOM and f.layer == "flat"
        for f in report.findings
    )


def test_ng009_duplicate_layer_name():
    report = check_prototxt(
        INPUT_8x8
        + 'layer { name: "flat" type: "Flatten" bottom: "x" top: "y" }\n'
        + 'layer { name: "flat" type: "Flatten" bottom: "y" top: "z" }\n'
    )
    assert any(f.rule == NG_DUPLICATE_NAME for f in report.findings)


@pytest.mark.parametrize("name", ZOO_NETS)
@pytest.mark.parametrize("phase", PHASES)
def test_zoo_nets_lint_clean(name, phase):
    report = check_spec(zoo_spec(name), phase=phase)
    assert report.ok, [f.message for f in report.findings]


# ----------------------------------------------------------------------
# planner: chunk parity with the runtime, memory, batch override
# ----------------------------------------------------------------------
@pytest.mark.parametrize("num_threads", [1, 2, 8])
def test_planner_chunks_match_iteration_owners(num_threads):
    report = check_spec(
        zoo_spec("lenet"), phase="TRAIN", threads=[num_threads],
    )
    (plan,) = report.plans
    assert plan.num_threads == num_threads
    assert len(plan.layers) == len(report.layers)
    for layer_plan in plan.layers:
        owners = iteration_owners(layer_plan.space, num_threads)
        counts = np.bincount(owners, minlength=num_threads)
        assert layer_plan.per_thread == counts.tolist(), layer_plan.name


def test_planner_imbalance():
    report = check_spec(zoo_spec("lenet"), phase="TRAIN", threads=[8])
    (plan,) = report.plans
    for layer_plan in plan.layers:
        if layer_plan.sequential:
            assert layer_plan.imbalance == 1.0
        else:
            expected = (
                max(layer_plan.per_thread) * 8 / layer_plan.space
            )
            assert layer_plan.imbalance == pytest.approx(expected)
    assert plan.max_imbalance >= 1.0


def test_planner_memory_accounting():
    report = check_spec(zoo_spec("lenet"), phase="TRAIN")
    net = Net(zoo_spec("lenet"), phase="TRAIN")
    activation = sum(b.count * 4 for b in net.blob_map.values())
    params = sum(p.count * 4 for p in net.learnable_params)
    assert report.memory.activation_bytes == activation
    assert report.memory.param_bytes == params
    assert 0 < report.memory.peak_activation_bytes <= activation


def test_planner_batch_override():
    report = check_spec(zoo_spec("lenet"), phase="TRAIN", batch=16)
    assert report.shapes["data"] == (16, 1, 28, 28)
    conv1 = next(l for l in report.layers if l.name == "conv1")
    assert conv1.space == 16
    plan = next(p for p in report.plans if p.num_threads == 8)
    conv1_plan = next(l for l in plan.layers if l.name == "conv1")
    assert sum(conv1_plan.per_thread) == 16


def test_report_json_roundtrips():
    report = check_spec(zoo_spec("mlp"), phase="TRAIN")
    blob = json.dumps(report.to_json())
    parsed = json.loads(blob)
    assert parsed["ok"] is True
    assert parsed["shapes"]["data"] == [64, 1, 28, 28]
    assert parsed["memory"]["param_bytes"] == report.memory.param_bytes


# ----------------------------------------------------------------------
# satellites: prototxt line numbers, inputs-without-shapes rejection
# ----------------------------------------------------------------------
def test_prototxt_unterminated_message_reports_line():
    with pytest.raises(ValueError, match=r"line 3.*missing '}'"):
        parse_prototxt('name: "x"\nlayer {\n  name: "l"\n')


def test_prototxt_eof_after_colon_reports_line():
    with pytest.raises(ValueError, match=r"line 2.*unexpected end of input"):
        parse_prototxt('name: "x"\ntype:')


def test_prototxt_eof_after_field_name_reports_line():
    with pytest.raises(
        ValueError, match=r"line 1: field 'name'.*unexpected end of input"
    ):
        parse_prototxt("name")


def test_netspec_rejects_inputs_without_shapes():
    spec = NetSpec(name="bad", inputs=["x", "y"], input_shapes=[[1, 2]])
    with pytest.raises(ValueError, match=r"inputs without a shape: 'y'"):
        spec.validate()


def test_parse_prototxt_rejects_unshaped_input_by_default():
    text = 'input: "x"\n'
    with pytest.raises(ValueError, match="input"):
        parse_prototxt(text)
    spec = parse_prototxt(text, validate=False)  # linter path still parses
    assert spec.inputs == ["x"] and spec.input_shapes == []


def test_net_rejects_unshaped_input():
    text = (
        'input: "x"\n'
        'layer { name: "flat" type: "Flatten" bottom: "x" top: "y" }\n'
    )
    spec = parse_prototxt(text, validate=False)
    with pytest.raises(ValueError, match="input"):
        Net(spec, phase="TRAIN")


# ----------------------------------------------------------------------
# CLI: netcheck subcommand + legacy flag mode
# ----------------------------------------------------------------------
def test_cli_netcheck_gate_ok(capsys):
    from repro.analysis.__main__ import main

    assert main(["netcheck", "--net", "lenet", "--gate"]) == 0
    out = capsys.readouterr().out
    assert "verdict: OK" in out


def test_cli_netcheck_gate_fails_on_broken_prototxt(tmp_path, capsys):
    from repro.analysis.__main__ import main

    path = tmp_path / "broken.prototxt"
    path.write_text(
        INPUT_8x8
        + 'layer { name: "lrn" type: "LRN" bottom: "x" top: "x" }\n'
    )
    assert main(
        ["netcheck", "--prototxt", str(path), "--phase", "TRAIN", "--gate"]
    ) == 1
    out = capsys.readouterr().out
    assert "NG002" in out


def test_cli_netcheck_json(capsys):
    from repro.analysis.__main__ import main

    assert main(
        ["netcheck", "--net", "mlp", "--phase", "TRAIN", "--json",
         "--batch", "8", "--threads", "2"]
    ) == 0
    reports = json.loads(capsys.readouterr().out)
    assert len(reports) == 1
    assert reports[0]["ok"] is True
    assert reports[0]["shapes"]["data"][0] == 8
    assert reports[0]["plans"][0]["num_threads"] == 2


def test_cli_legacy_flag_mode_still_works(capsys):
    from repro.analysis.__main__ import main

    # No --gate: other test modules may have registered deliberately
    # racy fixture layers, which the static pass correctly flags.
    assert main(["--static-only"]) == 0
    assert "static" in capsys.readouterr().out.lower()
