"""Unit and integration tests for the auto-parallelization planner.

Static half: the search itself (plans gate-clean over the zoo, mixed
thread widths, never predicted slower than uniform), the PL001-PL006
plan lint on handcrafted fixtures, and the PL101-PL104 drift wrappers.
Cost half: the parity regression — pricing the uniform strategy through
the planner's chain walk must equal ``CPUModel.iteration_time`` bitwise
for every zoo net.  Dynamic half: a planned configuration passes the FP
race gate and the detcheck replay certifies the claimed tier; the CLI
gate exits 0 over the zoo.
"""

import dataclasses
import json

import pytest

from repro.analysis import ERROR, INFO, WARNING
from repro.analysis.__main__ import main
from repro.analysis.codes import CODE_CATALOGUE
from repro.analysis.plancheck import (
    IMBALANCE_THRESHOLD,
    certify_plan,
    derive_dims,
    lint_plan,
    drift_findings,
    plan_spec,
    run_plancheck,
    thread_widths,
    uniform_chain_time,
)
from repro.analysis.race import run_dynamic
from repro.core.plan import ExecutionPlan, LayerPlan
from repro.core.reduction import BITWISE_INVARIANT, DETERMINISTIC_PER_T
from repro.data import register_default_sources
from repro.simulator import CPUModel, net_costs
from repro.zoo import build_net
from repro.zoo.build import _SPECS

ZOO = ("lenet", "cifar10", "mlp")


def zoo_spec(name):
    register_default_sources()
    return _SPECS[name][0]()


@pytest.fixture(scope="module")
def lenet_report():
    return plan_spec(zoo_spec("lenet"), net_name="lenet", threads=8)


# ----------------------------------------------------------------------
# the search
# ----------------------------------------------------------------------
class TestPlanning:
    @pytest.mark.parametrize("net", ZOO)
    @pytest.mark.parametrize("threads", [1, 2, 8])
    def test_zoo_plans_are_gate_clean(self, net, threads):
        report = plan_spec(zoo_spec(net), net_name=net, threads=threads)
        assert report.plan is not None
        assert not [f for f in report.findings if f.severity == ERROR]
        assert report.gate_ok, [str(f) for f in report.findings]

    @pytest.mark.parametrize("net", ZOO)
    def test_never_predicted_slower_than_uniform(self, net):
        """The uniform strategy is always in the search space, so the
        winner can never price above it."""
        for threads in (1, 2, 8):
            report = plan_spec(zoo_spec(net), net_name=net, threads=threads)
            assert report.predicted_us <= report.uniform_us + 1e-9

    def test_lenet_mixes_thread_widths(self, lenet_report):
        """The point of per-layer planning: tiny layers run inline while
        the convolutions take the full team."""
        widths = {lp.layer: lp.threads
                  for lp in lenet_report.plan.layers.values()}
        assert widths["conv1"] == 8
        assert widths["loss"] == 1

    def test_single_thread_plan_is_all_inline(self):
        report = plan_spec(zoo_spec("mlp"), net_name="mlp", threads=1)
        assert all(lp.threads == 1
                   for lp in report.plan.layers.values())
        assert report.plan.tier == BITWISE_INVARIANT

    def test_search_prunes(self, lenet_report):
        assert lenet_report.candidates_pruned > 0
        assert (lenet_report.candidates_considered
                > lenet_report.candidates_pruned)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="threads"):
            plan_spec(zoo_spec("mlp"), threads=0)
        with pytest.raises(ValueError, match="tier"):
            plan_spec(zoo_spec("mlp"), claim="mostly-deterministic")

    def test_thread_widths(self):
        assert thread_widths(8) == [1, 2, 4, 8]
        assert thread_widths(6) == [1, 2, 4, 6]
        assert thread_widths(1) == [1]

    def test_derive_dims_product_matches_space(self):
        for net in ZOO:
            report = plan_spec(zoo_spec(net), net_name=net, threads=8)
            for lp in report.plan.layers.values():
                if lp.dims:
                    product = 1
                    for _, extent in lp.dims:
                        product *= extent
                    assert product == lp.space, lp.layer


# ----------------------------------------------------------------------
# cost-model parity
# ----------------------------------------------------------------------
class TestCostParity:
    @pytest.mark.parametrize("net", ZOO)
    @pytest.mark.parametrize("threads", [1, 2, 8])
    def test_uniform_chain_equals_iteration_time(self, net, threads):
        """Per-layer candidate costs summed by the planner must equal
        the cost model's own iteration total — bitwise, not approx."""
        chain = uniform_chain_time(zoo_spec(net), threads=threads,
                                   mode="ordered")
        reference = CPUModel().iteration_time(
            net_costs(build_net(net)), threads
        )
        assert chain == reference


# ----------------------------------------------------------------------
# plan lint: PL001-PL006
# ----------------------------------------------------------------------
def codes_of(findings):
    return [f.rule for f in findings]


class TestLint:
    @pytest.fixture(scope="class")
    def plan(self):
        return plan_spec(zoo_spec("lenet"), net_name="lenet",
                         threads=8).plan

    @pytest.fixture(scope="class")
    def spec(self):
        return zoo_spec("lenet")

    def test_clean_plan_lints_clean(self, plan, spec):
        assert [f for f in lint_plan(plan, spec)
                if f.severity == ERROR] == []

    def test_pl001_unknown_layer(self, plan, spec):
        bad = plan.with_layer(LayerPlan(layer="ghost", threads=1))
        findings = [f for f in lint_plan(bad, spec) if f.rule == "PL001"]
        assert findings and findings[0].severity == ERROR
        assert findings[0].layer == "ghost"

    def test_pl002_dims_mismatch(self, spec, plan):
        bad = plan.with_layer(LayerPlan(
            layer="conv1", threads=2, space=64,
            dims=(("sample", 64), ("channel", 3)), coalesced=1,
            granularity=1,
        ))
        codes = codes_of(lint_plan(bad, spec))
        assert "PL002" in codes

    def test_pl002_granularity_mismatch(self, spec, plan):
        bad = plan.with_layer(LayerPlan(
            layer="conv1", threads=2, space=192,
            dims=(("sample", 64), ("channel", 3)), coalesced=1,
            granularity=7,
        ))
        codes = codes_of(lint_plan(bad, spec))
        assert "PL002" in codes

    def test_pl002_coalesced_out_of_range(self, spec, plan):
        bad = plan.with_layer(LayerPlan(
            layer="conv1", threads=2, space=64,
            dims=(("sample", 64),), coalesced=5,
        ))
        assert "PL002" in codes_of(lint_plan(bad, spec))

    def test_pl003_threads_exceed_units(self, spec, plan):
        bad = plan.with_layer(LayerPlan(
            layer="conv1", threads=8, space=4,
            dims=(("sample", 4),), coalesced=1,
        ))
        assert "PL003" in codes_of(lint_plan(bad, spec))

    def test_pl004_tier_degrade(self, spec, plan):
        assert plan.tier == BITWISE_INVARIANT
        bad = plan.with_layer(LayerPlan(
            layer="conv1", threads=8, reduction="atomic", space=64,
            dims=(("sample", 64),), coalesced=1,
        ))
        findings = [f for f in lint_plan(bad, spec) if f.rule == "PL004"]
        assert findings and findings[0].severity == ERROR

    def test_pl005_slower_than_uniform(self, spec, plan):
        slow = dataclasses.replace(
            plan, predicted_us=plan.uniform_us * 2 + 1.0
        )
        findings = [f for f in lint_plan(slow, spec) if f.rule == "PL005"]
        assert findings and findings[0].severity == WARNING

    def test_pl006_imbalance_info(self, spec, plan):
        """5 units over 4 threads: busiest owns 2 vs ideal 1.25 — 60%
        imbalance, well past the 20% threshold, severity INFO."""
        lumpy = plan.with_layer(LayerPlan(
            layer="conv1", threads=4, space=5,
            dims=(("sample", 5),), coalesced=1,
        ))
        findings = [f for f in lint_plan(lumpy, spec) if f.rule == "PL006"]
        assert findings and findings[0].severity == INFO
        assert "60%" in findings[0].message

    def test_pl006_balanced_is_quiet(self, spec, plan):
        even = plan.with_layer(LayerPlan(
            layer="conv1", threads=4, space=64,
            dims=(("sample", 64),), coalesced=1,
        ))
        assert "PL006" not in codes_of(lint_plan(even, spec))


# ----------------------------------------------------------------------
# drift wrappers: PL101-PL104 severities
# ----------------------------------------------------------------------
class TestDriftFindings:
    def test_severities(self, lenet_report):
        net = build_net("lenet")
        plan = lenet_report.plan
        findings = drift_findings(plan, net, 2)  # team too small: PL103
        assert findings
        assert all(f.rule == "PL103" and f.severity == ERROR
                   for f in findings)

    def test_pl104_is_warning(self, lenet_report):
        net = build_net("lenet")
        layers = dict(lenet_report.plan.layers)
        del layers["conv1"]
        gappy = dataclasses.replace(lenet_report.plan, layers=layers)
        findings = [f for f in drift_findings(gappy, net, 8)
                    if f.rule == "PL104"]
        assert findings and findings[0].severity == WARNING


# ----------------------------------------------------------------------
# dynamic gates: races + replay certification
# ----------------------------------------------------------------------
class TestDynamicGates:
    def test_planned_run_has_no_races(self):
        report = plan_spec(zoo_spec("mlp"), net_name="mlp", threads=8)
        net = build_net("mlp")
        dynamic = run_dynamic(net, "mlp", 8, plan=report.plan)
        assert dynamic.races == []

    def test_certify_bitwise_claim(self):
        findings, plan = certify_plan("lenet", threads=2, iters=1,
                                      batch=4)
        assert findings == []
        assert plan is not None and plan.batch == 4

    def test_certify_deterministic_claim(self):
        findings, _ = certify_plan("mlp", threads=4, iters=1, batch=4,
                                   claim=DETERMINISTIC_PER_T)
        assert [f for f in findings if f.severity == ERROR] == []


# ----------------------------------------------------------------------
# report + CLI surface
# ----------------------------------------------------------------------
class TestReportAndCLI:
    def test_run_plancheck_gate(self):
        report = run_plancheck(("mlp",), threads=(1, 2))
        assert report.ok
        data = report.to_json()
        assert json.dumps(data)  # serializable
        assert len(data["reports"]) == 2

    def test_report_json_has_plan(self):
        report = run_plancheck(("mlp",), threads=(2,))
        entry = report.to_json()["reports"][0]
        assert entry["plan"]["format"] == "repro-plan/1"
        assert entry["gate_ok"] is True

    def test_unknown_net_exits(self):
        with pytest.raises(SystemExit):
            run_plancheck(("imagenet",))

    def test_cli_gate_ok(self, capsys):
        assert main(["plancheck", "--net", "mlp", "--threads", "1,2",
                     "--gate"]) == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_cli_emit_plan_round_trips(self, tmp_path, capsys):
        path = str(tmp_path / "mlp.plan.json")
        assert main(["plancheck", "--net", "mlp", "--threads", "2",
                     "--emit-plan", path]) == 0
        plan = ExecutionPlan.load(path)
        assert plan.team_threads == 2
        assert plan.layers

    def test_cli_json_output(self, capsys):
        assert main(["plancheck", "--net", "mlp", "--threads", "2",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["reports"][0]["net"] == "mlp"

    def test_pl_codes_registered(self, capsys):
        for code in ("PL001", "PL002", "PL003", "PL004", "PL005",
                     "PL006", "PL101", "PL102", "PL103", "PL104",
                     "PL201", "PL202"):
            assert code in CODE_CATALOGUE
        main(["--list-codes"])
        out = capsys.readouterr().out
        assert "PL001" in out and "PL201" in out

    def test_imbalance_threshold_is_twenty_percent(self):
        assert IMBALANCE_THRESHOLD == pytest.approx(0.20)

    def test_derive_dims_serial(self):
        dims = derive_dims("SoftmaxWithLoss", (4, 10), _FakeCost(
            serial=True, space=1, dist="serial"
        ))
        assert dims == (("serial", 1),)


class _FakeCost:
    def __init__(self, serial, space, dist):
        self.serial = serial
        self.space = space
        self.dist = dist
