"""Unit and integration tests for the resilience certifier.

Static half: the RS0xx lint on fabricated unsafe sources / classes and
its cleanliness on the real runtime.  Dynamic half: bitwise resume
certification per zoo net x reduction mode, the fault-injection
certification, and the CLI (including ``--gate`` semantics).
"""

import json
import textwrap

import pytest

from repro.analysis import ERROR
from repro.analysis.__main__ import main
from repro.analysis.rescheck import (
    DEFAULT_MODES,
    RescheckReport,
    ResumeCertificate,
    certify_faults,
    certify_resume,
    lint_batch_sources,
    lint_resilience,
    lint_rng_capture,
    lint_state_writes,
    run_rescheck,
)
from repro.framework.layer import Layer, RNGDecl


class TestStaticLint:
    def test_runtime_sources_are_clean(self):
        assert lint_resilience() == []

    def test_raw_savez_flagged(self, tmp_path):
        bad = tmp_path / "snapshotter.py"
        bad.write_text(textwrap.dedent("""
            import numpy as np

            def save(path, arrays):
                np.savez(path, **arrays)
        """))
        findings = lint_state_writes(roots=[bad])
        assert [f.rule for f in findings] == ["RS001"]
        assert "atomic" in findings[0].message
        assert findings[0].location.endswith(":5")

    def test_raw_load_flagged(self, tmp_path):
        bad = tmp_path / "loader.py"
        bad.write_text(textwrap.dedent("""
            import numpy as np

            def load(path):
                return np.load(path)
        """))
        findings = lint_state_writes(roots=[bad])
        assert [f.rule for f in findings] == ["RS002"]

    def test_checkpoint_writer_is_exempt(self, tmp_path):
        writer_dir = tmp_path / "resilience"
        writer_dir.mkdir()
        writer = writer_dir / "checkpoint.py"
        writer.write_text("import numpy as np\nnp.savez('x', a=1)\n")
        assert lint_state_writes(roots=[tmp_path]) == []

    def test_uncapturable_per_forward_rng_flagged(self):
        class LeakyDropout(Layer):
            rng_provenance = RNGDecl(
                seed_params=("seed",), fallback="constant",
                draws="per_forward",
            )

            def layer_setup(self, bottom, top):
                import numpy as np
                # generator hidden from rng_state(): not self._rng
                self._hidden = np.random.default_rng(self.params["seed"])

        findings = lint_rng_capture(classes=[LeakyDropout])
        assert [f.rule for f in findings] == ["RS003"]
        assert findings[0].layer == "LeakyDropout"

    def test_capturable_per_forward_rng_passes(self):
        from repro.framework.layers import DropoutLayer

        assert lint_rng_capture(classes=[DropoutLayer]) == []

    def test_cursorless_batch_source_flagged(self):
        class CursorlessSource:
            def next_batch(self):
                return None

        findings = lint_batch_sources(classes=[CursorlessSource])
        assert [f.rule for f in findings] == ["RS004"]
        assert "get_state" in findings[0].message

    def test_real_batch_sources_pass(self):
        assert lint_batch_sources() == []


class TestResumeCertification:
    @pytest.mark.parametrize("net", ["mlp", "lenet", "cifar10"])
    @pytest.mark.parametrize("mode", DEFAULT_MODES)
    def test_bitwise_resume_per_net_and_mode(self, net, mode):
        cert = certify_resume(net, mode, threads=(2,), iters=2, batch=4)
        assert cert.ok, [str(f.message) for f in cert.findings]
        assert cert.resume_bitwise == {2: True}
        assert cert.roundtrip_stable == {2: True}

    def test_sequential_resume_certifies(self):
        # threads=1 exercises the no-executor path end to end
        cert = certify_resume("mlp", "blockwise", threads=(1,),
                              iters=2, batch=4)
        assert cert.ok

    def test_certificate_json_shape(self):
        cert = ResumeCertificate(net="mlp", mode="tree", threads=[2])
        payload = cert.to_json()
        assert payload["net"] == "mlp"
        assert payload["ok"] is True
        json.dumps(payload)  # must be serializable


class TestFaultCertification:
    def test_all_fault_classes_pass_on_mlp(self):
        findings = certify_faults("mlp", threads=2, iters=2, batch=4)
        assert findings == [], [f.message for f in findings]


class TestReport:
    def test_static_only_report(self):
        report = run_rescheck(static_only=True)
        assert report.ok
        assert report.certificates == []
        lines = report.summary_lines()
        assert any("rescheck static" in line for line in lines)
        assert lines[-1] == "verdict: RESILIENT"

    def test_report_aggregates_findings(self):
        from repro.analysis.report import Finding

        report = RescheckReport()
        report.static_findings.append(
            Finding(rule="RS001", severity=ERROR, layer="<x>",
                    message="raw write"))
        assert not report.ok
        assert any("VIOLATIONS" in line
                   for line in report.summary_lines())
        json.dumps(report.to_json())

    def test_unknown_net_rejected(self):
        with pytest.raises(SystemExit, match="unknown zoo net"):
            run_rescheck(nets=["resnet152"], static_only=False,
                         threads=(1,), skip_faults=True)


class TestCli:
    def test_static_only_gate_passes(self, capsys):
        assert main(["rescheck", "--static-only", "--gate"]) == 0
        out = capsys.readouterr().out
        assert "verdict: RESILIENT" in out

    def test_dynamic_gate_single_net(self, capsys):
        code = main([
            "rescheck", "--net", "mlp", "--mode", "blockwise",
            "--threads", "2", "--skip-faults", "--gate",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "resume certificate: net=mlp mode=blockwise" in out

    def test_json_output(self, capsys):
        assert main(["rescheck", "--static-only", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_list_codes_includes_rs(self, capsys):
        assert main(["--list-codes"]) == 0
        out = capsys.readouterr().out
        for code in ("RS001", "RS004", "RS101", "RS102",
                     "RS201", "RS204"):
            assert code in out
        assert "rescheck" in out

    def test_bad_iters_rejected(self):
        with pytest.raises(SystemExit):
            main(["rescheck", "--iters", "0"])

    def test_tools_analyze_alias(self):
        from repro.tools import analyze

        assert analyze.main is main
