"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

import repro.framework.layers  # noqa: F401  (register layer types)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
