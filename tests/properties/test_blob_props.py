"""Property-based tests for Blob indexing (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.framework.blob import Blob

shape_st = st.lists(st.integers(1, 8), min_size=1, max_size=4)


class TestOffsetProperties:
    @given(shape=shape_st, data=st.data())
    def test_offset_equals_ravel_multi_index(self, shape, data):
        blob = Blob(shape)
        idx = tuple(
            data.draw(st.integers(0, d - 1)) for d in shape
        )
        assert blob.offset(idx) == int(np.ravel_multi_index(idx, shape))

    @given(shape=shape_st)
    @settings(max_examples=40)
    def test_offset_is_injective_and_dense(self, shape):
        blob = Blob(shape)
        offsets = {blob.offset(idx) for idx in np.ndindex(*shape)}
        assert offsets == set(range(blob.count))

    @given(shape=shape_st, data=st.data())
    def test_flat_view_consistency(self, shape, data):
        """Writing via the shaped view is visible at the flat offset."""
        blob = Blob(shape)
        idx = tuple(data.draw(st.integers(0, d - 1)) for d in shape)
        blob.data[idx] = 42.0
        assert blob.flat_data[blob.offset(idx)] == 42.0


class TestReshapeProperties:
    @given(first=shape_st, second=shape_st)
    @settings(max_examples=40)
    def test_reshape_preserves_prefix(self, first, second):
        blob = Blob(first)
        blob.flat_data[:] = np.arange(blob.count)
        old = blob.flat_data.copy()
        blob.reshape(second)
        kept = min(len(old), blob.count)
        if blob.count <= len(old):  # no reallocation
            assert np.array_equal(blob.flat_data[:kept], old[:kept])
