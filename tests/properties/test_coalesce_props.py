"""Property-based tests for loop coalescing (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coalesce import CoalescedSpace

dims_strategy = st.lists(st.integers(1, 12), min_size=1, max_size=4)


class TestCoalesceProperties:
    @given(dims=dims_strategy)
    def test_size_is_product(self, dims):
        space = CoalescedSpace(dims)
        product = 1
        for d in dims:
            product *= d
        assert space.size == product

    @given(dims=dims_strategy, data=st.data())
    def test_bijection_round_trip(self, dims, data):
        space = CoalescedSpace(dims)
        civ = data.draw(st.integers(0, space.size - 1))
        indices = space.indices(civ)
        assert space.civ(indices) == civ
        assert all(0 <= i < d for i, d in zip(indices, dims))

    @given(dims=dims_strategy)
    def test_enumeration_is_lexicographic(self, dims):
        space = CoalescedSpace(dims)
        previous = None
        for civ in range(min(space.size, 200)):
            current = space.indices(civ)
            if previous is not None:
                assert current > previous  # tuple (lex) order
            previous = current

    @given(dims=dims_strategy, threads=st.integers(1, 32))
    def test_imbalance_non_negative(self, dims, threads):
        assert CoalescedSpace(dims).imbalance(threads) >= 0.0

    @given(outer=st.integers(1, 16), inner=st.integers(1, 16),
           threads=st.integers(1, 16))
    @settings(max_examples=60)
    def test_coalescing_never_hurts_balance(self, outer, inner, threads):
        """Algorithm 4's motivation as a universal property."""
        batch_only = CoalescedSpace((outer,))
        coalesced = CoalescedSpace((outer, inner))
        assert coalesced.imbalance(threads) <= batch_only.imbalance(threads) + 1e-12
