"""Property-based tests on the parallel runtime's invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reduction import tree_combine
from repro.core.scheduling import StaticSchedule
from repro.core.team import ThreadTeam


class TestParallelForProperties:
    @given(space=st.integers(1, 500), threads=st.integers(1, 6),
           chunk=st.one_of(st.none(), st.integers(1, 9)))
    @settings(max_examples=25, deadline=None)
    def test_every_iteration_executed_once(self, space, threads, chunk):
        counts = np.zeros(space, dtype=np.int64)
        with ThreadTeam(threads) as team:
            team.parallel_for(
                space,
                lambda lo, hi, tid: counts.__setitem__(
                    slice(lo, hi), counts[lo:hi] + 1
                ),
                StaticSchedule(chunk),
            )
        assert (counts == 1).all()


class TestReductionProperties:
    @given(parts=st.integers(1, 9), size=st.integers(1, 32),
           seed=st.integers(0, 2**16))
    @settings(max_examples=40)
    def test_tree_combine_equals_sum(self, parts, size, seed):
        rng = np.random.default_rng(seed)
        arrays = [rng.standard_normal(size).astype(np.float32)
                  for _ in range(parts)]
        expected = np.sum([a.astype(np.float64) for a in arrays], axis=0)
        root = tree_combine([[a.copy()] for a in arrays])[0]
        assert np.allclose(root, expected, atol=1e-4)

    @given(sizes=st.lists(st.integers(1, 16), min_size=1, max_size=4),
           slots=st.integers(1, 4))
    @settings(max_examples=30)
    def test_pool_request_shapes(self, sizes, slots):
        from repro.core.privatization import PrivatePool
        pool = PrivatePool()
        for slot in range(slots):
            buffers = pool.request(slot, sizes)
            assert [b.size for b in buffers] == sizes
            assert all((b == 0).all() for b in buffers)


class TestLrPolicyProperties:
    @given(base=st.floats(1e-5, 1.0), iteration=st.integers(0, 100_000),
           gamma=st.floats(1e-6, 0.9), power=st.floats(0.1, 2.0))
    @settings(max_examples=60)
    def test_inv_policy_positive_and_bounded(self, base, iteration, gamma,
                                             power):
        from repro.framework.solvers import learning_rate
        rate = learning_rate("inv", base, iteration, gamma=gamma, power=power)
        assert 0.0 < rate <= base

    @given(base=st.floats(1e-5, 1.0), stepsize=st.integers(1, 1000),
           gamma=st.floats(0.01, 0.99))
    @settings(max_examples=60)
    def test_step_policy_monotone(self, base, stepsize, gamma):
        from repro.framework.solvers import learning_rate
        rates = [learning_rate("step", base, i, gamma=gamma,
                               stepsize=stepsize)
                 for i in range(0, 5 * stepsize, stepsize)]
        assert all(b <= a for a, b in zip(rates, rates[1:]))


class TestSoftmaxProperties:
    @given(rows=st.integers(1, 6), classes=st.integers(2, 8),
           seed=st.integers(0, 2**16), shift=st.floats(-50, 50))
    @settings(max_examples=40, deadline=None)
    def test_softmax_simplex_and_shift_invariance(self, rows, classes, seed,
                                                  shift):
        from repro.framework.blob import Blob
        from repro.framework.layer import create_layer
        from repro.testing import make_blob, spec

        layer = create_layer(spec("sm", "Softmax"))
        scores = np.random.default_rng(seed).standard_normal(
            (rows, classes)).astype(np.float32)
        b1 = [make_blob((rows, classes), values=scores)]
        b2 = [make_blob((rows, classes), values=scores + np.float32(shift))]
        t1, t2 = [Blob()], [Blob()]
        layer.setup(b1, t1)
        layer.forward(b1, t1)
        layer.forward(b2, t2)
        assert np.allclose(t1[0].data.sum(axis=1), 1.0, atol=1e-4)
        assert (t1[0].data >= 0).all()
        assert np.allclose(t1[0].data, t2[0].data, atol=1e-4)


class TestPoolingProperties:
    @given(n=st.integers(1, 3), c=st.integers(1, 3), h=st.integers(3, 8),
           kernel=st.integers(1, 3), stride=st.integers(1, 3),
           seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_max_pool_dominates_ave_pool(self, n, c, h, kernel, stride, seed):
        """max >= mean over every window, on non-clipped geometry."""
        from repro.framework.blob import Blob
        from repro.framework.layer import create_layer
        from repro.testing import make_blob, spec

        values = np.random.default_rng(seed).standard_normal(
            n * c * h * h).astype(np.float32)
        results = {}
        for method in ("MAX", "AVE"):
            layer = create_layer(spec("p", "Pooling", pool=method,
                                      kernel_size=kernel, stride=stride))
            bottom = [make_blob((n, c, h, h), values=values)]
            top = [Blob()]
            layer.setup(bottom, top)
            layer.forward(bottom, top)
            results[method] = top[0].data.copy()
        assert (results["MAX"] >= results["AVE"] - 1e-5).all()
