"""Property tests for the reduction modes' determinism contracts.

Each reduction mode ships an invariance tier
(:data:`repro.core.reduction.REDUCTION_TIERS`); these properties pin the
contracts the determinism certifier enforces dynamically:

* ``blockwise`` — bitwise identical across thread counts (the tier the
  paper's convergence-invariance argument wants);
* ``ordered`` / ``tree`` — bitwise reproducible at a fixed thread count;
* divergence as small as one ULP is *detected* by the certifier's
  comparator, never silently passed — the property that makes the
  ``atomic`` tier honest.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ParallelExecutor
from repro.core.reduction import (
    BITWISE_INVARIANT,
    DETERMINISTIC_PER_T,
    NONDETERMINISTIC,
    REDUCTION_TIERS,
    TIER_ORDER,
    invariance_tier,
)
from repro.framework.layer import LoopSpec


def _reduce_sum(space, width, seed, threads, mode, repeats=1):
    """Run the canonical privatized reduction — per-sample partial sums
    merged into one target — and return the target bytes per repeat."""
    rng = np.random.default_rng(seed)
    data = (rng.standard_normal((space, width)) * 10
            ).astype(np.float32) ** 3  # spread magnitudes: reassociation
    results = []                       # visibly moves low-order bits
    for _ in range(repeats):
        target = np.zeros(width, dtype=np.float32)

        def body(lo, hi, grads):
            for s in range(lo, hi):
                grads[0] += data[s]

        loop = LoopSpec(space=space, body=body, reduction=True,
                        grad_targets=(target,), block=1)
        with ParallelExecutor(num_threads=threads, reduction=mode) as ex:
            ex._run_backward_loop(loop, "synthetic")
        results.append(target.tobytes())
    return results


class TestBlockwiseBitwiseInvariance:
    @given(space=st.integers(1, 40), width=st.integers(1, 8),
           seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_identical_across_thread_counts(self, space, width, seed):
        baseline = _reduce_sum(space, width, seed, 1, "blockwise")[0]
        for threads in (2, 4, 8):
            assert _reduce_sum(space, width, seed, threads,
                               "blockwise")[0] == baseline


class TestPerThreadCountDeterminism:
    @given(space=st.integers(1, 40), width=st.integers(1, 8),
           seed=st.integers(0, 2**16), threads=st.sampled_from([2, 4, 8]),
           mode=st.sampled_from(["ordered", "tree"]))
    @settings(max_examples=15, deadline=None)
    def test_replay_reproducible_at_fixed_t(self, space, width, seed,
                                            threads, mode):
        a, b = _reduce_sum(space, width, seed, threads, mode, repeats=2)
        assert a == b


class TestDivergenceDetection:
    """The certifier's comparator must catch any bit flip — this is what
    keeps the atomic mode's nondeterminism from passing silently."""

    @given(size=st.integers(1, 64), seed=st.integers(0, 2**16),
           index=st.integers(0, 63))
    @settings(max_examples=40)
    def test_one_ulp_flip_detected(self, size, seed, index):
        from repro.analysis.detcheck import _array_divergence, ulp_distance

        rng = np.random.default_rng(seed)
        a = rng.standard_normal(size).astype(np.float32)
        b = a.copy()
        assert _array_divergence(a, b) is None
        i = index % size
        b[i] = np.nextafter(b[i], np.float32(np.inf), dtype=np.float32)
        diff = _array_divergence(a, b)
        assert diff is not None
        ulps, _, count = diff
        assert ulps == 1 and count == 1
        assert ulp_distance(a, b) == 1

    @given(loss=st.floats(-1e6, 1e6, allow_nan=False, width=64))
    @settings(max_examples=40)
    def test_scalar_loss_flip_detected(self, loss):
        import math

        from repro.analysis.detcheck import ulp_distance_scalar

        assert ulp_distance_scalar(loss, loss) == 0
        bumped = math.nextafter(loss, math.inf)
        assert ulp_distance_scalar(loss, bumped) == 1


class TestTierMetadata:
    def test_tier_table_covers_every_mode(self):
        from repro.core.reduction import REDUCTION_MODES

        assert set(REDUCTION_TIERS) == set(REDUCTION_MODES)
        assert (TIER_ORDER[BITWISE_INVARIANT]
                > TIER_ORDER[DETERMINISTIC_PER_T]
                > TIER_ORDER[NONDETERMINISTIC])

    def test_dynamic_schedule_degrades_ordered_and_tree(self):
        assert invariance_tier("tree", static_schedule=False) \
            == NONDETERMINISTIC
        assert invariance_tier("blockwise", static_schedule=False) \
            == BITWISE_INVARIANT
        assert invariance_tier("atomic") == NONDETERMINISTIC

    def test_executor_exposes_tier(self):
        with ParallelExecutor(num_threads=2, reduction="blockwise") as ex:
            assert ex.invariance_tier == BITWISE_INVARIANT
        with ParallelExecutor(num_threads=2, reduction="ordered") as ex:
            assert ex.invariance_tier == DETERMINISTIC_PER_T
