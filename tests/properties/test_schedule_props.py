"""Property-based tests for loop schedules (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduling import (
    DynamicSchedule,
    GuidedSchedule,
    StaticSchedule,
)

space_st = st.integers(0, 300)
threads_st = st.integers(1, 17)
chunk_st = st.integers(1, 19)


def drain(schedule, space, threads):
    if schedule.is_static:
        return [c for per in schedule.plan(space, threads) for c in per]
    server = schedule.chunk_server(space, threads)
    chunks = []
    while (chunk := server.next_chunk()) is not None:
        chunks.append(chunk)
    return chunks


def is_exact_partition(chunks, space):
    position = 0
    for lo, hi in sorted(chunks):
        if lo != position or hi <= lo:
            return False
        position = hi
    return position == space


class TestPartitionProperties:
    @given(space=space_st, threads=threads_st)
    def test_static_partitions_exactly(self, space, threads):
        assert is_exact_partition(drain(StaticSchedule(), space, threads), space)

    @given(space=space_st, threads=threads_st, chunk=chunk_st)
    def test_static_chunked_partitions_exactly(self, space, threads, chunk):
        assert is_exact_partition(
            drain(StaticSchedule(chunk), space, threads), space
        )

    @given(space=space_st, threads=threads_st, chunk=chunk_st)
    def test_dynamic_partitions_exactly(self, space, threads, chunk):
        assert is_exact_partition(
            drain(DynamicSchedule(chunk), space, threads), space
        )

    @given(space=space_st, threads=threads_st, chunk=chunk_st)
    def test_guided_partitions_exactly(self, space, threads, chunk):
        assert is_exact_partition(
            drain(GuidedSchedule(chunk), space, threads), space
        )

    @given(space=st.integers(1, 300), threads=threads_st)
    @settings(max_examples=60)
    def test_static_balance_bound(self, space, threads):
        """OpenMP static: per-thread totals differ by at most ceil(s/T)."""
        plan = StaticSchedule().plan(space, threads)
        totals = [sum(hi - lo for lo, hi in per) for per in plan]
        assert max(totals) - min(t for t in totals) <= -(-space // threads)

    @given(space=space_st, threads=threads_st, chunk=chunk_st)
    def test_static_chunked_sizes(self, space, threads, chunk):
        chunks = drain(StaticSchedule(chunk), space, threads)
        assert all(hi - lo <= chunk for lo, hi in chunks)

    @given(space=space_st, threads=threads_st)
    def test_static_deterministic(self, space, threads):
        assert StaticSchedule().plan(space, threads) == \
            StaticSchedule().plan(space, threads)
