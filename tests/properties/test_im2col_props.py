"""Property-based tests for im2col/col2im (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import blaslib


@st.composite
def conv_case(draw):
    c = draw(st.integers(1, 3))
    kh = draw(st.integers(1, 3))
    kw = draw(st.integers(1, 3))
    sh = draw(st.integers(1, 2))
    sw = draw(st.integers(1, 2))
    ph = draw(st.integers(0, kh - 1))
    pw = draw(st.integers(0, kw - 1))
    h = draw(st.integers(kh, 7))
    w = draw(st.integers(kw, 7))
    seed = draw(st.integers(0, 2**16))
    return c, h, w, kh, kw, ph, pw, sh, sw, seed


class TestIm2colProperties:
    @given(case=conv_case())
    @settings(max_examples=60, deadline=None)
    def test_fast_equals_reference(self, case):
        c, h, w, kh, kw, ph, pw, sh, sw, seed = case
        image = np.random.default_rng(seed).standard_normal(
            (c, h, w)).astype(np.float32)
        fast = blaslib.im2col(image, kh, kw, ph, pw, sh, sw)
        with blaslib.use_backend("reference"):
            slow = blaslib.im2col(image, kh, kw, ph, pw, sh, sw)
        assert np.array_equal(fast, slow)

    @given(case=conv_case())
    @settings(max_examples=60, deadline=None)
    def test_adjoint_identity(self, case):
        """<im2col(x), y> == <x, col2im(y)> for all shapes."""
        c, h, w, kh, kw, ph, pw, sh, sw, seed = case
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((c, h, w)).astype(np.float32)
        col = blaslib.im2col(x, kh, kw, ph, pw, sh, sw)
        y = rng.standard_normal(col.shape).astype(np.float32)
        folded = blaslib.col2im(y, c, h, w, kh, kw, ph, pw, sh, sw)
        lhs = float(np.dot(col.astype(np.float64).ravel(),
                           y.astype(np.float64).ravel()))
        rhs = float(np.dot(x.astype(np.float64).ravel(),
                           folded.astype(np.float64).ravel()))
        assert abs(lhs - rhs) <= 1e-3 * max(abs(lhs), abs(rhs), 1.0)

    @given(case=conv_case())
    @settings(max_examples=40, deadline=None)
    def test_column_count_matches_output_size(self, case):
        c, h, w, kh, kw, ph, pw, sh, sw, seed = case
        from repro.blaslib.im2col import conv_out_size
        image = np.zeros((c, h, w), dtype=np.float32)
        col = blaslib.im2col(image, kh, kw, ph, pw, sh, sw)
        oh = conv_out_size(h, kh, ph, sh)
        ow = conv_out_size(w, kw, pw, sw)
        assert col.shape == (c * kh * kw, oh * ow)
