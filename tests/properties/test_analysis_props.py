"""Property tests for the parallel-safety analyzer.

The contract under test: layers that honor the chunk protocol come out
clean from both passes at any thread count, and each seeded violation
archetype (whole-buffer write, hidden-state rebind, reduction bypass)
is flagged by BOTH the static classifier and the dynamic race detector.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_layer_class, run_dynamic
from repro.framework.blob import Blob
from repro.framework.layer import _REGISTRY, FootprintDecl, Layer
from repro.framework.net import Net
from repro.framework.net_spec import LayerSpec, NetSpec


# ----------------------------------------------------------------------
# seeded-violation layers (file-level so inspect.getsource works)
# ----------------------------------------------------------------------
class RacyForwardLayer(Layer):
    """Writes the WHOLE top buffer from every chunk."""

    write_footprint = FootprintDecl()

    def reshape(self, bottom, top):
        top[0].reshape_like(bottom[0])

    def forward_chunk(self, bottom, top, lo, hi):
        top[0].flat_data[:] = bottom[0].flat_data * 2.0
        top[0].mark_host_data_dirty()

    def backward_chunk(self, top, pd, bottom, lo, hi, param_grads):
        bottom[0].flat_diff[lo:hi] = top[0].flat_diff[lo:hi] * 2.0


class RacyHiddenStateLayer(Layer):
    """Rebinds undeclared layer state from inside the coalesced loop."""

    write_footprint = FootprintDecl()

    def reshape(self, bottom, top):
        top[0].reshape_like(bottom[0])

    def forward_chunk(self, bottom, top, lo, hi):
        self._stash = np.maximum(bottom[0].flat_data[lo:hi], 0.0)
        top[0].flat_data[lo:hi] = self._stash
        top[0].mark_host_data_dirty()

    def backward_chunk(self, top, pd, bottom, lo, hi, param_grads):
        bottom[0].flat_diff[lo:hi] = top[0].flat_diff[lo:hi]


class RacyReductionLayer(Layer):
    """Accumulates into the shared param diff, bypassing param_grads."""

    write_footprint = FootprintDecl()

    def layer_setup(self, bottom, top):
        weight = Blob((3,), name=f"{self.name}.w")
        weight.flat_data.fill(0.5)
        self.blobs = [weight]

    def reshape(self, bottom, top):
        top[0].reshape_like(bottom[0])

    def forward_chunk(self, bottom, top, lo, hi):
        top[0].flat_data[lo:hi] = bottom[0].flat_data[lo:hi]
        top[0].mark_host_data_dirty()

    def backward_chunk(self, top, pd, bottom, lo, hi, param_grads):
        dw = self.blobs[0].flat_diff
        dw += top[0].flat_diff[lo:hi].sum()


class CleanScaledLayer(Layer):
    """A correct sample-disjoint layer, the control group."""

    write_footprint = FootprintDecl()

    def reshape(self, bottom, top):
        top[0].reshape_like(bottom[0])

    def forward_chunk(self, bottom, top, lo, hi):
        top[0].flat_data[lo:hi] = bottom[0].flat_data[lo:hi] * 2.0
        top[0].mark_host_data_dirty()

    def backward_chunk(self, top, pd, bottom, lo, hi, param_grads):
        bottom[0].flat_diff[lo:hi] = top[0].flat_diff[lo:hi] * 2.0
        bottom[0].mark_host_diff_dirty()


_TEST_LAYERS = {
    "RacyForwardT": RacyForwardLayer,
    "RacyHiddenStateT": RacyHiddenStateLayer,
    "RacyReductionT": RacyReductionLayer,
    "CleanScaledT": CleanScaledLayer,
}
for _name, _cls in _TEST_LAYERS.items():
    _REGISTRY.setdefault(_name.lower(), _cls)


def tiny_net(layer_type: str, batch: int = 8, width: int = 5) -> Net:
    net = Net(NetSpec(name="probe", layers=[
        LayerSpec(name="in", type="Input", tops=["data"],
                  params={"shape": {"dim": [batch, width]}}),
        LayerSpec(name="probe", type=layer_type,
                  bottoms=["data"], tops=["out"]),
    ]))
    rng = np.random.default_rng(7)
    net.blob_map["data"].flat_data[:] = rng.standard_normal(batch * width)
    net.blob_map["out"].flat_diff[:] = rng.standard_normal(batch * width)
    return net


class TestSeededViolations:
    @pytest.mark.parametrize("cls,rule", [
        (RacyForwardLayer, "FP005"),
        (RacyHiddenStateLayer, "FP004"),
        (RacyReductionLayer, "FP003"),
    ])
    def test_static_pass_flags_each_archetype(self, cls, rule):
        report = analyze_layer_class(cls)
        assert not report.ok
        assert rule in {f.rule for f in report.findings}

    @pytest.mark.parametrize("layer_type,phase", [
        ("RacyForwardT", "forward"),
        ("RacyHiddenStateT", "forward"),
        ("RacyReductionT", "backward"),
    ])
    def test_dynamic_pass_flags_each_archetype(self, layer_type, phase):
        report = run_dynamic(tiny_net(layer_type), layer_type, 2)
        assert not report.ok
        assert any(r.layer == "probe" and r.phase == phase
                   for r in report.races)

    def test_clean_layer_is_clean_both_ways(self):
        assert analyze_layer_class(CleanScaledLayer).ok
        assert run_dynamic(tiny_net("CleanScaledT"), "clean", 4).ok


class TestDynamicProperties:
    @given(batch=st.integers(2, 16), threads=st.integers(2, 8),
           width=st.integers(1, 7))
    @settings(max_examples=15, deadline=None)
    def test_racy_forward_caught_at_any_geometry(self, batch, threads,
                                                 width):
        report = run_dynamic(
            tiny_net("RacyForwardT", batch, width), "probe", threads
        )
        # with >= 2 samples and >= 2 threads at least two simulated
        # threads own iterations, and each writes the whole top
        assert not report.ok

    @given(batch=st.integers(1, 16), threads=st.integers(1, 8),
           width=st.integers(1, 7))
    @settings(max_examples=15, deadline=None)
    def test_clean_layer_clean_at_any_geometry(self, batch, threads,
                                               width):
        report = run_dynamic(
            tiny_net("CleanScaledT", batch, width), "probe", threads
        )
        assert report.ok

    def test_single_thread_never_races(self):
        # one thread owns every iteration: no pair to race
        for layer_type in _TEST_LAYERS:
            report = run_dynamic(tiny_net(layer_type), layer_type, 1)
            assert report.ok, layer_type


class TestZooNetsClean:
    @pytest.mark.parametrize("name", ["lenet", "cifar10"])
    @pytest.mark.parametrize("threads", [1, 2, 8])
    def test_zoo_net_clean(self, name, threads):
        from repro.data import register_default_sources
        from repro.zoo.build import _SPECS

        register_default_sources()
        spec = _SPECS[name][0]()
        for layer_spec in spec.layers:
            if "batch_size" in layer_spec.params:
                layer_spec.params["batch_size"] = 4
        net = Net(spec, phase="TRAIN")
        report = run_dynamic(net, name, threads)
        assert report.ok, [r.to_json() for r in report.races]
        assert report.layers_checked
