"""Tests for the per-thread scratch pool and the conv zero-alloc fix."""

import threading

import numpy as np
import pytest

from repro.compiler.scratch import (
    clear_pool,
    pool_stats,
    reset_pool_stats,
    scratch_buffer,
)
from repro.framework.blob import Blob
from repro.framework.layer import create_layer
from repro.testing import make_blob, spec


@pytest.fixture(autouse=True)
def _isolated_pool():
    clear_pool()
    yield
    clear_pool()


class TestPool:
    def test_same_key_same_array(self):
        a = scratch_buffer("t", (4, 5))
        b = scratch_buffer("t", (4, 5))
        assert a is b

    def test_distinct_tags_never_alias(self):
        a = scratch_buffer("a", (8,))
        b = scratch_buffer("b", (8,))
        assert a is not b
        assert not np.shares_memory(a, b)

    def test_shape_change_is_a_new_buffer(self):
        a = scratch_buffer("t", (4,))
        b = scratch_buffer("t", (5,))
        assert a is not b

    def test_stats_count_hits_and_misses(self):
        scratch_buffer("t", (4,))
        scratch_buffer("t", (4,))
        scratch_buffer("u", (4,))
        stats = pool_stats()
        assert stats["misses"] == 2
        assert stats["hits"] == 1
        assert stats["buffers"] == 2

    def test_reset_keeps_buffers_warm(self):
        a = scratch_buffer("t", (4,))
        reset_pool_stats()
        b = scratch_buffer("t", (4,))
        assert a is b
        assert pool_stats() == {
            "hits": 1, "misses": 0, "buffers": 1, "bytes": a.nbytes}

    def test_threads_get_private_buffers(self):
        mine = scratch_buffer("t", (16,))
        theirs = {}

        def worker():
            theirs["buf"] = scratch_buffer("t", (16,))

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert theirs["buf"] is not mine
        assert not np.shares_memory(theirs["buf"], mine)


class TestConvZeroAlloc:
    """The im2col scratch must never hit the allocator in steady state."""

    def _conv(self):
        return create_layer(spec(
            "conv", "Convolution", num_output=3, kernel_size=3,
            filler_seed=11, weight_filler={"type": "gaussian", "std": 0.5},
            bias_filler={"type": "constant", "value": 0.1},
        ))

    def test_forward_backward_steady_state_never_allocates(self, rng):
        layer = self._conv()
        bottom = [make_blob((2, 3, 8, 8), rng=rng)]
        top = [Blob()]
        layer.setup(bottom, top)

        def one_iter():
            layer.forward(bottom, top)
            top[0].flat_diff[:] = 1.0
            top[0].mark_host_diff_dirty()
            layer.backward(top, [True], bottom)

        one_iter()  # warmup populates the pool
        reset_pool_stats()
        for _ in range(5):
            one_iter()
        stats = pool_stats()
        assert stats["misses"] == 0, (
            f"conv scratch hit the allocator in steady state: {stats}")
        assert stats["hits"] > 0


class TestDeadStateRelease:
    """Pool states of exited threads must be reclaimed, not accumulated."""

    def _run_in_thread(self, fn):
        t = threading.Thread(target=fn)
        t.start()
        t.join()

    def test_release_drops_dead_thread_slabs(self):
        from repro.compiler.scratch import release_dead_states

        self._run_in_thread(lambda: scratch_buffer("w", (1024,)))
        # the dead worker's buffer bytes must vanish from the registry
        released = release_dead_states()
        assert released == 1
        stats = pool_stats()
        assert stats["buffers"] == 0
        assert stats["bytes"] == 0

    def test_retired_counters_survive_release(self):
        from repro.compiler.scratch import release_dead_states

        def work():
            scratch_buffer("w", (8,))   # miss
            scratch_buffer("w", (8,))   # hit

        self._run_in_thread(work)
        release_dead_states()
        stats = pool_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_release_is_idempotent_and_keeps_live_states(self):
        from repro.compiler.scratch import release_dead_states

        mine = scratch_buffer("live", (16,))
        self._run_in_thread(lambda: scratch_buffer("dead", (16,)))
        assert release_dead_states() == 1
        assert release_dead_states() == 0
        stats = pool_stats()
        assert stats["buffers"] == 1
        assert stats["bytes"] == mine.nbytes

    def test_team_shutdown_releases_worker_states(self):
        from repro.core.team import ThreadTeam

        def grab(ctx):
            scratch_buffer("t", (32,))

        team = ThreadTeam(2)
        team.parallel(grab)
        assert pool_stats()["buffers"] == 2
        team.shutdown()
        stats = pool_stats()
        assert stats["buffers"] == 1  # only the master's survives
        assert stats["misses"] == 2   # counters fold into retired totals

    def test_registry_stays_bounded_across_team_generations(self):
        from repro.compiler.scratch import _STATES, _STATES_LOCK
        from repro.core.team import ThreadTeam

        def grab(ctx):
            scratch_buffer("gen", (8,))

        for _ in range(5):
            team = ThreadTeam(2)
            team.parallel(grab)
            team.shutdown()
        with _STATES_LOCK:
            live = len(_STATES)
        # master + at most the threads of the last (shut-down) team
        assert live <= 2
