"""Tests for the fusion pass and the in-place rewriter."""

import pytest

from repro.compiler.fuse import fuse_spec, rewrite_inplace
from repro.framework.net_spec import LayerSpec, NetSpec
from repro.framework.symbolic import infer_net


def _layer(name, type_, bottoms, tops, **params):
    return LayerSpec(name=name, type=type_, bottoms=list(bottoms),
                     tops=list(tops), params=params)


def _conv_relu_spec(inplace_relu=False):
    relu_top = "conv1" if inplace_relu else "act1"
    return NetSpec(
        name="toy",
        inputs=["x"],
        input_shapes=[[2, 3, 8, 8]],
        layers=[
            _layer("conv1", "Convolution", ["x"], ["conv1"],
                   num_output=4, kernel_size=3, filler_seed=7),
            _layer("relu1", "ReLU", ["conv1"], [relu_top]),
            _layer("ip1", "InnerProduct", [relu_top], ["ip1"],
                   num_output=5, filler_seed=8),
        ],
    )


class TestZooDecisions:
    def test_lenet_fuses_ip_relu(self):
        from repro.zoo.build import _SPECS

        fused, report = fuse_spec(_SPECS["lenet"][0]())
        decisions = {d.primary: d.fused_type for d in report.fused}
        assert decisions == {"ip1": "FusedInnerProductReLU"}
        assert fused.layer("ip1").type == "FusedInnerProductReLU"
        assert "relu1" not in [l.name for l in fused.layers]

    def test_cifar10_fuses_both_relu_convs(self):
        from repro.zoo.build import _SPECS

        _, report = fuse_spec(_SPECS["cifar10"][0]())
        decisions = {d.primary: d.fused_type for d in report.fused}
        assert decisions == {"conv2": "FusedConv", "conv3": "FusedConv"}

    def test_mlp_has_nothing_to_fuse(self):
        from repro.zoo.build import _SPECS

        fused, report = fuse_spec(_SPECS["mlp"][0]())
        assert not report.fused
        assert not report.rewrites
        base = _SPECS["mlp"][0]()
        assert [l.name for l in fused.layers] == [
            l.name for l in base.layers]


class TestChains:
    def test_conv_relu_collapses(self):
        fused, report = fuse_spec(_conv_relu_spec(inplace_relu=True))
        assert [d.primary for d in report.fused] == ["conv1"]
        assert report.fused[0].absorbed == ["relu1"]
        conv = fused.layer("conv1")
        assert conv.type == "FusedConv"
        assert conv.param("fused_relu") is True
        assert conv.param("fused_middle") is None
        # downstream consumer now reads the fused layer's top
        assert fused.layer("ip1").bottoms == ["conv1"]

    def test_conv_bias_relu_absorbs_the_middle(self):
        spec = NetSpec(
            name="toy",
            inputs=["x"],
            input_shapes=[[2, 3, 8, 8]],
            layers=[
                _layer("conv1", "Convolution", ["x"], ["conv1"],
                       num_output=4, kernel_size=3, filler_seed=7,
                       bias_term=False),
                _layer("bias1", "Bias", ["conv1"], ["conv1"],
                       filler_seed=9),
                _layer("relu1", "ReLU", ["conv1"], ["conv1"]),
            ],
        )
        fused, report = fuse_spec(spec)
        assert report.fused[0].absorbed == ["bias1", "relu1"]
        conv = fused.layer("conv1")
        assert conv.param("fused_middle")["type"] == "Bias"
        assert len(fused.layers) == 1

    def test_eltwise_relu(self):
        spec = NetSpec(
            name="toy",
            inputs=["a", "b"],
            input_shapes=[[2, 4], [2, 4]],
            layers=[
                _layer("sum", "Eltwise", ["a", "b"], ["sum"]),
                _layer("relu", "ReLU", ["sum"], ["sum"]),
            ],
        )
        fused, report = fuse_spec(spec)
        assert fused.layer("sum").type == "FusedEltwiseReLU"

    def test_scale_bias(self):
        spec = NetSpec(
            name="toy",
            inputs=["x"],
            input_shapes=[[2, 3, 4, 4]],
            layers=[
                _layer("sc", "Scale", ["x"], ["sc"], filler_seed=4),
                _layer("bi", "Bias", ["sc"], ["sc"], filler_seed=5),
            ],
        )
        fused, report = fuse_spec(spec)
        assert fused.layer("sc").type == "FusedScaleBias"
        assert report.fused[0].absorbed == ["bi"]

    def test_multi_consumer_top_blocks_fusion(self):
        spec = NetSpec(
            name="toy",
            inputs=["x"],
            input_shapes=[[2, 3, 8, 8]],
            layers=[
                _layer("conv1", "Convolution", ["x"], ["conv1"],
                       num_output=4, kernel_size=3, filler_seed=7),
                _layer("relu1", "ReLU", ["conv1"], ["act1"]),
                # second consumer of conv1 keeps the chain unfusable
                _layer("pool1", "Pooling", ["conv1"], ["pool1"],
                       kernel_size=2, stride=2),
            ],
        )
        _, report = fuse_spec(spec)
        assert not report.fused

    def test_leaky_relu_blocks_fusion(self):
        spec = _conv_relu_spec(inplace_relu=True)
        spec.layer("relu1").params["negative_slope"] = 0.1
        _, report = fuse_spec(spec)
        assert not report.fused


class TestShapeParity:
    def test_fused_zoo_specs_keep_surviving_shapes(self):
        from repro.data import register_default_sources
        from repro.zoo.build import _SPECS

        register_default_sources()

        for name in ("lenet", "cifar10", "mlp"):
            base = _SPECS[name][0]()
            fused, _ = fuse_spec(base)
            base_shapes = {
                b: tuple(info.shape) for b, info in
                infer_net(base, phase="TRAIN").blob_map.items()}
            fused_shapes = {
                b: tuple(info.shape) for b, info in
                infer_net(fused, phase="TRAIN").blob_map.items()}
            for blob, shape in fused_shapes.items():
                assert base_shapes.get(blob, shape) == shape, (
                    f"{name}: blob {blob!r} changed shape under fusion")


class TestInplaceRewrite:
    def test_out_of_place_relu_is_rewritten(self):
        spec = _conv_relu_spec(inplace_relu=False)
        rewritten, rewrites = rewrite_inplace(spec)
        assert [(r.layer, r.old_top, r.new_top) for r in rewrites] == [
            ("relu1", "act1", "conv1")]
        relu = rewritten.layer("relu1")
        assert relu.bottoms == ["conv1"]
        assert relu.tops == ["conv1"]
        assert rewritten.layer("ip1").bottoms == ["conv1"]

    def test_second_consumer_of_bottom_blocks_rewrite(self):
        spec = _conv_relu_spec(inplace_relu=False)
        spec.layers.append(_layer(
            "pool1", "Pooling", ["conv1"], ["pool1"],
            kernel_size=2, stride=2))
        _, rewrites = rewrite_inplace(spec)
        assert not rewrites

    def test_fuse_spec_applies_rewrites_to_synthetic_net(self):
        fused, report = fuse_spec(_conv_relu_spec(inplace_relu=False))
        # the relu is absorbed by fusion first; nothing left to rewrite
        assert [d.primary for d in report.fused] == ["conv1"]
        infer_net(fused, phase="TRAIN", strict=True)  # must stay valid

    def test_rewritten_spec_builds_and_runs(self):
        from repro.framework.net import Net

        rewritten, rewrites = rewrite_inplace(
            _conv_relu_spec(inplace_relu=False))
        assert rewrites
        net = Net(rewritten, phase="TRAIN")
        import numpy as np

        net.blob_map["x"].set_data(
            np.random.default_rng(3).standard_normal(
                net.blob_map["x"].count).astype("float32"))
        net.forward()
        assert np.all(net.blob_map["conv1"].data >= 0.0)
