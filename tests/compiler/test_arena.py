"""Tests for the static memory arena: layout invariants and bitwise
transparency of the rebind."""

import numpy as np
import pytest

from repro.compiler.arena import (
    ArenaReport,
    BlobPlacement,
    _first_fit,
    apply_arena,
    plan_arena,
)
from repro.compiler.fuse import fuse_spec
from repro.framework.net import Net


@pytest.fixture(autouse=True)
def _sources():
    from repro.data import register_default_sources

    register_default_sources()


def _zoo_net(name, fused=False, batch=4):
    from repro.zoo.build import _SPECS

    spec = _SPECS[name][0]()
    for layer_spec in spec.layers:
        if "batch_size" in layer_spec.params:
            layer_spec.params["batch_size"] = batch
    if fused:
        spec = fuse_spec(spec)[0]
    return Net(spec, phase="TRAIN")


def _run_iters(net, iters=2):
    loss = 0.0
    for _ in range(iters):
        net.clear_param_diffs()
        loss = net.forward()
        net.backward()
    state = [np.float64(loss)]
    for layer in net.layers:
        for blob in layer.blobs:
            state.append(blob.flat_data.copy())
            state.append(blob.flat_diff.copy())
    return state


class TestLayout:
    @pytest.mark.parametrize("name", ["lenet", "cifar10", "mlp"])
    @pytest.mark.parametrize("fused", [False, True])
    def test_no_overlap_violations(self, name, fused):
        report = plan_arena(_zoo_net(name, fused=fused))
        assert report.overlap_violations() == []

    @pytest.mark.parametrize("name", ["lenet", "cifar10", "mlp"])
    def test_arena_shrinks_activation_memory(self, name):
        report = plan_arena(_zoo_net(name, fused=True))
        assert report.arena_bytes < report.baseline_bytes
        assert report.saved_bytes > 0

    def test_first_fit_property(self):
        """Randomized packing never aliases two live-overlapping blobs."""
        rng = np.random.default_rng(42)
        for _ in range(50):
            placed = []
            for i in range(rng.integers(2, 20)):
                first = int(rng.integers(0, 10))
                last = first + int(rng.integers(0, 10))
                cap = int(rng.integers(1, 500))
                offset = _first_fit(placed, cap, first, last)
                placed.append(BlobPlacement(
                    name=f"b{i}", count=cap, capacity=cap,
                    first=first, last=last,
                    data_offset=sum(p.capacity for p in placed),
                    diff_offset=offset,
                ))
            report = ArenaReport(placements=placed)
            assert report.overlap_violations() == []

    def test_disjoint_intervals_actually_share_diff_storage(self):
        """The packing must reuse storage, not just avoid conflicts."""
        placed = []
        for i, (first, last) in enumerate([(0, 1), (2, 3), (4, 5)]):
            offset = _first_fit(placed, 100, first, last)
            placed.append(BlobPlacement(
                name=f"b{i}", count=100, capacity=100, first=first,
                last=last, data_offset=i * 100, diff_offset=offset))
        assert [p.diff_offset for p in placed] == [0, 0, 0]


class TestApply:
    def test_apply_is_bitwise_transparent(self):
        plain = _run_iters(_zoo_net("lenet", fused=True))
        arena_net = _zoo_net("lenet", fused=True)
        apply_arena(arena_net)
        packed = _run_iters(arena_net)
        assert len(plain) == len(packed)
        for a, b in zip(plain, packed):
            assert np.array_equal(a, b)

    def test_apply_preserves_warm_state(self):
        net = _zoo_net("lenet", fused=True)
        net.forward()
        before = {name: blob.data.copy()
                  for name, blob in net.blob_map.items()}
        apply_arena(net)
        for name, blob in net.blob_map.items():
            assert np.array_equal(blob.data, before[name]), name

    def test_apply_is_idempotent(self):
        net = _zoo_net("mlp")
        first = apply_arena(net)
        second = apply_arena(net)
        assert first is second

    def test_blobs_really_live_in_the_slabs(self):
        net = _zoo_net("mlp")
        report = apply_arena(net)
        data_slab, diff_slab = net._arena_slabs
        placed = {p.name for p in report.placements}
        seen = set()
        for blob in net.blob_map.values():
            if blob.name in placed and id(blob) not in seen:
                seen.add(id(blob))
                assert np.shares_memory(blob._flat_data, data_slab)
                assert np.shares_memory(blob._flat_diff, diff_slab)
