"""CIFAR-10 end-to-end: train the paper's 14-layer network.

The CIFAR-10 "full" network (conv/pool/ReLU/LRN x3 levels, Section 2.2)
on the synthetic color dataset, trained with Caffe's solver settings and
the coarse-grain parallel executor with the paper's ordered reduction.

Run:  python examples/cifar10_training.py [iterations] [threads]
"""

import sys

from repro.core import ParallelExecutor
from repro.zoo import build_solver


def main() -> None:
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 90
    threads = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    print(f"Training CIFAR-10 full: {iterations} iterations, "
          f"{threads} threads (ordered reduction)")
    with ParallelExecutor(num_threads=threads, reduction="ordered") as ex:
        solver = build_solver("cifar10", max_iter=iterations,
                              with_test_net=True, executor=ex)
        chunk = max(iterations // 6, 1)
        done = 0
        while done < iterations:
            step = min(chunk, iterations - done)
            solver.step(step)
            done += step
            accuracy = solver.test()
            print(f"  iter {done:>4}: loss {solver.loss_history[-1]:.4f}, "
                  f"test accuracy {accuracy:.3f}")

        print(f"\nprivatized gradient memory (high water): "
              f"{ex.privatization_high_water_bytes / 1024:.0f} KB "
              f"across {threads} threads")
        final = solver.test()
    print(f"final test accuracy: {final:.3f} (chance: 0.100)")


if __name__ == "__main__":
    main()
