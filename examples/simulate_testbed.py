"""Regenerate the paper's performance figures from the machine models.

Prints the overall-speedup panels of Figures 6 and 9 (OpenMP 2-16
threads vs plain-GPU vs cuDNN-GPU) and the per-layer scalability series
of Figures 5 and 8, computed by the 16-core Xeon / K40 analytic models
on the real network shapes.

Run:  python examples/simulate_testbed.py
"""

from repro.simulator import (
    CPUModel,
    GPUModel,
    K40_CUDNN,
    K40_PLAIN,
    net_costs,
)
from repro.simulator.report import (
    format_table,
    layer_scalability_table,
    overall_speedup_table,
)
from repro.zoo import build_net

PAPER_OVERALL = {
    "lenet": {"OpenMP-8T": 6.0, "OpenMP-16T": 8.0,
              "plain-GPU": 2.0, "cuDNN-GPU": 12.0},
    "cifar10": {"OpenMP-8T": 6.0, "OpenMP-16T": 8.83,
                "plain-GPU": 6.0, "cuDNN-GPU": 27.0},
}


def main() -> None:
    cpu = CPUModel()
    plain = GPUModel(K40_PLAIN, host=cpu)
    cudnn = GPUModel(K40_CUDNN, host=cpu)

    for name, figure in (("lenet", "Figure 6"), ("cifar10", "Figure 9")):
        net = build_net(name)
        net.forward()
        costs = net_costs(net)
        print(f"\n===== {figure} (overall, {name}) =====")
        table = overall_speedup_table(costs, cpu, plain, cudnn)
        paper = PAPER_OVERALL[name]
        print(f"{'config':<12}{'model':>8}{'paper':>8}")
        for key, value in table.items():
            reference = paper.get(key)
            ref_text = f"{reference:>8.2f}" if reference else " " * 8
            print(f"{key:<12}{value:>8.2f}{ref_text}")

    for name, figure in (("lenet", "Figure 5"), ("cifar10", "Figure 8")):
        net = build_net(name)
        net.forward()
        costs = net_costs(net)
        keys, rows = layer_scalability_table(costs, cpu, (2, 4, 8, 12, 16))
        print(f"\n===== {figure} (per-layer speedups, {name}) =====")
        print(format_table(
            ["threads"] + keys,
            [[f"{t}T"] + row for t, row in zip((2, 4, 8, 12, 16), rows)],
            width=11,
        ))


if __name__ == "__main__":
    main()
