"""MNIST end-to-end: train the LeNet classifier and evaluate accuracy.

Reproduces the paper's MNIST workload (Section 2.2) on the synthetic
digit dataset: trains with the Caffe LeNet solver hyper-parameters,
reports train loss and test accuracy, and sweeps the thread count to
demonstrate that every configuration computes the same model.

Run:  python examples/mnist_training.py [iterations]
"""

import sys

from repro.core import ParallelExecutor
from repro.zoo import build_solver


def train_with(threads: int, iterations: int):
    executor = None
    if threads > 1:
        executor = ParallelExecutor(num_threads=threads,
                                    reduction="blockwise")
    solver = build_solver("lenet", max_iter=iterations,
                          with_test_net=True, executor=executor)
    solver.set_display(print)
    solver.params = type(solver.params)(
        **{**solver.params.__dict__, "display": max(iterations // 5, 1)}
    )
    solver.step(iterations)
    accuracy = solver.test()
    if executor is not None:
        executor.close()
    return solver.loss_history, accuracy


def main() -> None:
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 60

    print(f"=== sequential training ({iterations} iterations) ===")
    seq_history, seq_accuracy = train_with(1, iterations)
    print(f"final loss {seq_history[-1]:.4f}, "
          f"test accuracy {seq_accuracy:.3f} (chance: 0.100)\n")

    print("=== thread sweep (same model bit for bit) ===")
    print(f"{'threads':>8} {'final loss':>12} {'accuracy':>9} {'invariant':>10}")
    for threads in (2, 4, 8):
        history, accuracy = train_with(threads, iterations)
        invariant = "yes" if history == seq_history else "NO"
        print(f"{threads:>8} {history[-1]:>12.6f} {accuracy:>9.3f}"
              f" {invariant:>10}")


if __name__ == "__main__":
    main()
