"""Multi-device data parallelism: the paper's multi-GPU claim, executable.

"[Batch-level parallelism] is compatible with multi-GPU execution
without altering the algorithm convergence rate" (Section 1).  The batch
is *sharded* (never shrunk) across model replicas; shard gradients are
all-reduced in fixed order; every replica applies the identical update.
The global batch size — the hyper-parameter whose change the paper
faults in contemporaneous multi-GPU practice — is untouched.

Run:  python examples/multi_device.py [iterations]
"""

import sys

import numpy as np

from repro.core import DataParallelSolver
from repro.data import ArrayBatchSource, SyntheticMNIST, register_default_sources
from repro.framework.net import Net
from repro.framework.solvers import create_solver
from repro.zoo.lenet import lenet_solver_params, lenet_spec


def source():
    dataset = SyntheticMNIST(n_samples=512, seed=1)
    return ArrayBatchSource(dataset.images, dataset.labels)


def main() -> None:
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    register_default_sources()

    print(f"single device ({iterations} iterations, batch 64) ...")
    spec = lenet_spec()
    data = next(l for l in spec.layers_for_phase("TRAIN") if l.type == "Data")
    data.params["source_object"] = source()
    reference = create_solver(lenet_solver_params(max_iter=iterations),
                              Net(spec, phase="TRAIN"))

    print("2 replicas x 2 threads (batch 64 sharded 32+32) ...")
    with DataParallelSolver(
        lenet_spec(), lenet_solver_params(max_iter=iterations),
        source=source(), replicas=2, threads_per_replica=2,
    ) as parallel:
        reference.net.load_state_dict(parallel.state_dict())
        reference.step(iterations)
        parallel.step(iterations)

        print(f"\n{'iter':>5} {'single-device':>14} {'2x2 replicas':>14}")
        for i, (a, b) in enumerate(zip(reference.loss_history,
                                       parallel.loss_history)):
            print(f"{i:>5} {a:>14.6f} {b:>14.6f}")

        drift = max(abs(a - b) for a, b in zip(reference.loss_history,
                                               parallel.loss_history))
        print(f"\nmax trajectory drift: {drift:.2e} "
              "(floating-point reassociation only)")
        print("replicas in sync:", parallel.replicas_in_sync())
        assert np.allclose(reference.loss_history, parallel.loss_history,
                           rtol=1e-3)
        print("convergence preserved at the multi-device level.")


if __name__ == "__main__":
    main()
