"""Network-agnostic parallelism: a brand-new layer, zero porting effort.

The paper's central claim: because the coarse-grain transformation only
touches the batch-level loop, a *novel research layer* (here: a "Swish"
activation, x * sigmoid(beta x), which did not exist in 2016) gets
parallel execution for free — no GPU kernel, no data-layout design, no
recoding.  We define the layer in ~30 lines, drop it into a LeNet
variant via prototxt, and train in parallel with bitwise-invariant
convergence.

Run:  python examples/custom_layer.py
"""

import numpy as np

from repro.core import ParallelExecutor
from repro.data import register_default_sources
from repro.framework.blob import Blob
from repro.framework.layer import FootprintDecl, register_layer
from repro.framework.layers.neuron import NeuronLayer
from repro.framework.net import Net
from repro.framework.prototxt import parse_prototxt
from repro.framework.solvers import SGDSolver, SolverParams


@register_layer("Swish")
class SwishLayer(NeuronLayer):
    """``y = x * sigmoid(beta * x)`` — a post-2016 activation.

    Only the element-wise math is written; the chunk protocol inherited
    from :class:`NeuronLayer` is what the batch-parallel runtime needs.

    The footprint declaration states the safety contract the analyzer
    checks: every chunk writes only its own ``[lo, hi)`` slice.
    """

    write_footprint = FootprintDecl()

    def layer_setup(self, bottom, top):
        self.beta = float(self.spec.param("beta", 1.0))

    def forward_chunk(self, bottom, top, lo, hi):
        x = bottom[0].flat_data[lo:hi]
        sig = 1.0 / (1.0 + np.exp(-self.beta * x))
        np.multiply(x, sig, out=top[0].flat_data[lo:hi])
        top[0].mark_host_data_dirty()

    def backward_chunk(self, top, propagate_down, bottom, lo, hi,
                       param_grads):
        if not propagate_down[0]:
            return
        x = bottom[0].flat_data[lo:hi]
        y = top[0].flat_data[lo:hi]
        dy = top[0].flat_diff[lo:hi]
        sig = 1.0 / (1.0 + np.exp(-self.beta * x))
        # d/dx [x*sig] = sig + beta*y*(1 - sig)
        np.copyto(bottom[0].flat_diff[lo:hi],
                  dy * (sig + self.beta * y * (1.0 - sig)))
        bottom[0].mark_host_diff_dirty()


SWISH_NET = """
name: "LeNet-Swish"
layer {
  name: "mnist" type: "Data" top: "data" top: "label"
  data_param { source: "synth_mnist_train" batch_size: 64 }
}
layer {
  name: "conv1" type: "Convolution" bottom: "data" top: "conv1"
  convolution_param { num_output: 12 kernel_size: 5 filler_seed: 21
    weight_filler { type: "xavier" } bias_filler { type: "constant" } }
}
layer {
  name: "swish1" type: "Swish" bottom: "conv1" top: "conv1"
  swish_param { beta: 1.5 }
}
layer {
  name: "pool1" type: "Pooling" bottom: "conv1" top: "pool1"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 }
}
layer {
  name: "ip1" type: "InnerProduct" bottom: "pool1" top: "ip1"
  inner_product_param { num_output: 10 filler_seed: 22
    weight_filler { type: "xavier" } bias_filler { type: "constant" } }
}
layer {
  name: "loss" type: "SoftmaxWithLoss" bottom: "ip1" bottom: "label"
  top: "loss"
}
"""


def gradient_check_swish() -> None:
    from repro.framework.gradient_check import check_gradient
    from repro.testing import make_blob, spec
    layer = SwishLayer(spec("sw", "Swish", beta=1.5))
    check_gradient(layer, [make_blob((3, 4))], [Blob()])
    print("Swish gradient check: OK")


def analyzer_demo() -> None:
    """The static pass vouches for Swish — and catches a clone that
    forgot to declare its footprint."""
    from repro.analysis import analyze_layer_class
    from repro.framework.layer import SAMPLE_DISJOINT, UNKNOWN

    report = analyze_layer_class(SwishLayer)
    assert report.declared is not None
    assert report.inferred_forward == SAMPLE_DISJOINT, report
    print("analyzer on SwishLayer: clean "
          f"(forward={report.inferred_forward})")

    # The same code *without* the declaration is flagged: defining your
    # own chunk methods means vouching for their footprint yourself.
    class UndeclaredSwish(SwishLayer):
        def forward_chunk(self, bottom, top, lo, hi):
            SwishLayer.forward_chunk(self, bottom, top, lo, hi)

    report = analyze_layer_class(UndeclaredSwish)
    missing = [f for f in report.findings if f.rule == "FP001"]
    assert missing, "expected the missing-declaration lint to fire"
    print(f"analyzer on UndeclaredSwish: {missing[0].message}")


def main() -> None:
    register_default_sources()
    gradient_check_swish()
    analyzer_demo()

    def train(executor=None):
        net = Net(parse_prototxt(SWISH_NET))
        solver = SGDSolver(
            SolverParams(base_lr=0.01, momentum=0.9, max_iter=12),
            net, executor=executor,
        )
        solver.step(12)
        return solver.loss_history

    sequential = train()
    with ParallelExecutor(num_threads=4, reduction="blockwise") as executor:
        parallel = train(executor)

    print(f"sequential final loss: {sequential[-1]:.6f}")
    print(f"parallel   final loss: {parallel[-1]:.6f}")
    print("loss decreased:", sequential[-1] < sequential[0])
    print("parallel trajectory bitwise identical:", parallel == sequential)
    print("\nThe Swish layer was parallelized with ZERO parallelism-"
          "specific code\n(network-agnostic coarse-grain parallelism, "
          "paper Section 3.3).")


if __name__ == "__main__":
    main()
