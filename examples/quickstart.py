"""Quickstart: train LeNet with coarse-grain (batch-level) parallelism.

Builds the paper's MNIST network on the synthetic dataset, trains it
sequentially and with the batch-parallel executor, and shows the
convergence-invariance property: the two loss trajectories are
identical.

Run:  python examples/quickstart.py
"""

from repro.core import ParallelExecutor
from repro.zoo import build_solver

ITERATIONS = 15


def train(executor=None):
    solver = build_solver("lenet", max_iter=ITERATIONS, executor=executor)
    solver.step(ITERATIONS)
    return solver.loss_history


def main() -> None:
    print("Training LeNet sequentially ...")
    sequential = train()

    print("Training LeNet with 4 threads (blockwise reduction) ...")
    with ParallelExecutor(num_threads=4, reduction="blockwise") as executor:
        parallel = train(executor)

    print(f"\n{'iter':>5} {'sequential':>12} {'parallel(4T)':>13}")
    for i, (a, b) in enumerate(zip(sequential, parallel)):
        print(f"{i:>5} {a:>12.6f} {b:>13.6f}")

    if parallel == sequential:
        print("\nloss trajectories are BITWISE IDENTICAL "
              "(convergence invariance).")
    else:
        raise SystemExit("trajectories diverged — this is a bug")


if __name__ == "__main__":
    main()
