"""Figure 1: blob structure and data segments.

Regenerates the paper's layout example — a batch of 3-channel images
stored C-contiguously with the value at ``(n, k, h, w)`` living at flat
offset ``((n*K + k)*H + h)*W + w`` — and benchmarks the offset
computation against numpy's own indexing machinery.
"""

import numpy as np

from repro.bench import emit
from repro.framework.blob import Blob


def layout_table(n=2, k=3, h=4, w=4) -> str:
    blob = Blob((n, k, h, w), name="images")
    lines = [
        f"blob shape (N,K,H,W) = {blob.shape}; count = {blob.count}",
        "segment map (one (H,W) plane per channel per image):",
    ]
    for image in range(n):
        for channel in range(k):
            start = blob.offset((image, channel, 0, 0))
            stop = blob.offset((image, channel, h - 1, w - 1))
            lines.append(
                f"  image {image} channel {channel}: "
                f"flat [{start:4d}, {stop:4d}]"
            )
    return "\n".join(lines)


def test_fig1_offsets_match_paper_formula():
    blob = Blob((4, 3, 28, 28))
    for n in range(4):
        for ch in range(3):
            expected = ((n * 3 + ch) * 28 + 7) * 28 + 5
            assert blob.offset((n, ch, 7, 5)) == expected
    emit("fig1_blob_layout", layout_table())


def test_fig1_offset_benchmark(benchmark):
    blob = Blob((64, 3, 28, 28))
    indices = [(n % 64, n % 3, n % 28, (n * 7) % 28) for n in range(256)]

    def compute_offsets():
        return [blob.offset(idx) for idx in indices]

    offsets = benchmark(compute_offsets)
    expected = [int(np.ravel_multi_index(i, blob.shape)) for i in indices]
    assert offsets == expected
