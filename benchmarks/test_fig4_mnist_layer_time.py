"""Figure 4: MNIST per-layer absolute and relative CPU execution time.

Regenerates the figure's horizontal bars — per-layer-pass times (us) at
1/2/4/8/12/16 threads and each pass's share of the iteration — from the
machine model on the real LeNet shapes.  The benchmark times the real
sequential forward+backward iteration of the functional framework.
"""

from repro.bench import cifar_costs, emit, lenet_costs, models
from repro.simulator.report import (
    format_table,
    layer_time_table,
    relative_weights,
)
from repro.zoo import build_net

THREADS = (1, 2, 4, 8, 12, 16)


def build_figure() -> str:
    cpu = models()[0]
    costs = lenet_costs()
    keys, rows = layer_time_table(costs, cpu, THREADS)
    table_rows = [
        [f"{threads}T"] + row for threads, row in zip(THREADS, rows)
    ]
    absolute = format_table(["threads"] + keys, table_rows, width=11)
    weights = relative_weights(costs, cpu, 1)
    share_lines = ["", "serial relative weight per pass:"]
    for key in keys:
        share_lines.append(f"  {key:<12} {weights[key] * 100:6.2f}%")
    convpool = sum(v for k, v in weights.items()
                   if k.startswith(("conv", "pool")))
    share_lines.append(f"  conv+pool combined: {convpool * 100:.1f}% "
                       "(paper: ~80%)")
    return absolute + "\n" + "\n".join(share_lines)


def test_fig4_conv_pool_dominate():
    cpu = models()[0]
    weights = relative_weights(lenet_costs(), cpu, 1)
    convpool = sum(v for k, v in weights.items()
                   if k.startswith(("conv", "pool")))
    assert convpool > 0.7  # paper: ~80% at every thread count
    emit("fig4_mnist_layer_time", build_figure())


def test_fig4_center_layers_shrink():
    """The figure's center zone (pool2..loss) is small at every count."""
    cpu = models()[0]
    for threads in THREADS:
        times = cpu.layer_times(lenet_costs(), threads)
        total = sum(times.values())
        center = sum(times[k] for k in
                     ("ip2.fwd", "ip2.bwd", "loss.fwd", "loss.bwd",
                      "relu1.fwd", "relu1.bwd"))
        assert center / total < 0.15


def test_fig4_real_iteration_benchmark(benchmark):
    """Time one real (sequential) LeNet training iteration."""
    net = build_net("lenet")
    net.forward()  # shape + warm caches

    def iteration():
        net.clear_param_diffs()
        loss = net.forward()
        net.backward()
        return loss

    loss = benchmark(iteration)
    assert loss > 0
