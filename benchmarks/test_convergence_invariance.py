"""Convergence-invariance experiment (Sections 1 and 3.2.1).

Real execution (no simulation): the training loss trajectory of the
coarse-grain parallel run is compared against the sequential run for
every reduction mode.  With the blockwise reduction it is bitwise
identical at every thread count — the property the paper's ordered
construct exists to protect ("developers use the loss value to monitor
the correct evolution of the training process").
"""

import numpy as np

from repro.bench import emit
from repro.core import ParallelExecutor
from repro.zoo import build_solver

ITERS = 6


def trajectory(threads: int, mode: str):
    if threads == 0:
        solver = build_solver("lenet", max_iter=ITERS)
        solver.step(ITERS)
        return solver.loss_history
    with ParallelExecutor(num_threads=threads, reduction=mode) as executor:
        solver = build_solver("lenet", max_iter=ITERS, executor=executor)
        solver.step(ITERS)
    return solver.loss_history


def build_table() -> str:
    seq = trajectory(0, "blockwise")
    lines = [f"{'config':<22}" + "".join(f"iter{i:>2}     " for i in range(ITERS)),
             f"{'sequential':<22}" + "".join(f"{v:10.6f}" for v in seq)]
    for threads in (2, 4):
        for mode in ("blockwise", "ordered", "atomic"):
            traj = trajectory(threads, mode)
            tag = "bitwise" if traj == seq else (
                "close" if np.allclose(traj, seq, rtol=1e-3) else "DIVERGED"
            )
            lines.append(
                f"{f'{threads}T {mode}':<22}"
                + "".join(f"{v:10.6f}" for v in traj)
                + f"  [{tag}]"
            )
    return "\n".join(lines)


def test_blockwise_trajectory_bitwise_invariant():
    seq = trajectory(0, "blockwise")
    for threads in (2, 3, 4):
        assert trajectory(threads, "blockwise") == seq
    emit("convergence_invariance", build_table())


def test_ordered_trajectory_tracks_sequential():
    seq = np.array(trajectory(0, "ordered"))
    par = np.array(trajectory(4, "ordered"))
    assert np.allclose(seq, par, rtol=1e-3)


def test_convergence_invariance_benchmark(benchmark):
    """Time a full parallel training step under the blockwise mode."""
    with ParallelExecutor(num_threads=4, reduction="blockwise") as executor:
        solver = build_solver("lenet", max_iter=1000, executor=executor)
        solver.step(1)
        benchmark(solver.step, 1)
