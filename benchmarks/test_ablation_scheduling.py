"""Ablation: static vs dynamic vs guided loop scheduling.

The paper uses OpenMP's default static schedule (required for the
ordered reduction's determinism).  This ablation runs the *real*
thread-team runtime under each schedule on LeNet, verifying functional
equivalence and measuring chunk-count overheads.
"""

import numpy as np
import pytest

from repro.bench import emit
from repro.core import ParallelExecutor
from repro.core.scheduling import (
    DynamicSchedule,
    GuidedSchedule,
    StaticSchedule,
)
from repro.zoo import build_net

SCHEDULES = [
    ("static", StaticSchedule(), "ordered"),
    ("static,2", StaticSchedule(2), "ordered"),
    ("dynamic,1", DynamicSchedule(1), "atomic"),
    ("dynamic,4", DynamicSchedule(4), "atomic"),
    ("guided,1", GuidedSchedule(1), "atomic"),
]


def reference():
    net = build_net("lenet")
    state = net.state_dict()
    net.clear_param_diffs()
    loss = net.forward()
    net.backward()
    grads = np.concatenate([b.flat_diff.copy() for b in net.learnable_params])
    return state, loss, grads


def run_schedule(state, schedule, reduction, threads=4):
    net = build_net("lenet")
    net.load_state_dict(state)
    with ParallelExecutor(num_threads=threads, schedule=schedule,
                          reduction=reduction) as executor:
        net.clear_param_diffs()
        loss = executor.forward(net)
        executor.backward(net)
    grads = np.concatenate([b.flat_diff.copy() for b in net.learnable_params])
    return loss, grads


def chunk_count(schedule, space=1280, threads=4):
    if schedule.is_static:
        return sum(len(per) for per in schedule.plan(space, threads))
    server = schedule.chunk_server(space, threads)
    count = 0
    while server.next_chunk() is not None:
        count += 1
    return count


def build_table(results) -> str:
    lines = [f"{'schedule':<12}{'loss':>12}{'grads':>10}{'chunks(1280it)':>16}"]
    for name, schedule, _, loss_eq, grads_tag in results:
        lines.append(
            f"{name:<12}{'bitwise' if loss_eq else 'DIFFERS':>12}"
            f"{grads_tag:>10}{chunk_count(schedule):>16}"
        )
    return "\n".join(lines)


def test_all_schedules_functionally_equivalent():
    state, ref_loss, ref_grads = reference()
    results = []
    for name, schedule, reduction in SCHEDULES:
        loss, grads = run_schedule(state, schedule, reduction)
        loss_eq = loss == ref_loss
        grads_tag = "bitwise" if np.array_equal(grads, ref_grads) else (
            "close" if np.allclose(grads, ref_grads, rtol=1e-3, atol=1e-6)
            else "FAIL"
        )
        assert loss_eq, name
        assert grads_tag != "FAIL", name
        results.append((name, schedule, reduction, loss_eq, grads_tag))
    emit("ablation_scheduling", build_table(results))


def test_dynamic_produces_more_chunks():
    assert chunk_count(DynamicSchedule(1)) > chunk_count(StaticSchedule())
    assert chunk_count(GuidedSchedule(1)) < chunk_count(DynamicSchedule(1))


@pytest.mark.parametrize("name,schedule,reduction", SCHEDULES)
def test_schedule_forward_benchmark(benchmark, name, schedule, reduction):
    net = build_net("lenet")
    with ParallelExecutor(num_threads=4, schedule=schedule,
                          reduction=reduction) as executor:
        executor.forward(net)
        benchmark(executor.forward, net)
