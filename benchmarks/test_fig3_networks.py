"""Figure 3: the MNIST and CIFAR-10 network structures.

Prints both layer stacks with their blob shapes — the dimensionality
reduction the paper's parallelization analysis hinges on — and
benchmarks full net construction from prototxt.
"""

from repro.bench import emit
from repro.zoo import build_net


def stack_table(name: str) -> str:
    net = build_net(name)
    net.forward()
    lines = [f"{name}: {len(net.layers)} layers"]
    for layer, tops in zip(net.layers, net.tops):
        shapes = ", ".join(str(t.shape) for t in tops)
        params = sum(b.count for b in layer.blobs)
        suffix = f"  params={params}" if params else ""
        lines.append(f"  {layer.name:<8} {layer.type:<16} -> {shapes}{suffix}")
    return "\n".join(lines)


def test_fig3_mnist_structure():
    table = stack_table("lenet")
    assert "conv1" in table and "(64, 20, 24, 24)" in table
    emit("fig3_mnist_network", table)


def test_fig3_cifar_structure():
    table = stack_table("cifar10")
    assert "norm1" in table and "(100, 32, 16, 16)" in table
    emit("fig3_cifar_network", table)


def test_fig3_net_build_benchmark(benchmark):
    net = benchmark(build_net, "lenet")
    assert len(net.layers) == 9
