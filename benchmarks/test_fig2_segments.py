"""Figure 2: layer transformation over blob segments.

The paper's example: a pooling-style transformation where a group of
input segments produces one output segment (dimensionality reduction).
Regenerates the segment mapping for the LeNet pool1 layer and benchmarks
the real segment-wise pooling kernel.
"""

import numpy as np

from repro.bench import emit
from repro.framework.blob import Blob
from repro.framework.layer import create_layer
from repro.testing import make_blob, spec


def segment_table() -> str:
    """3x3 input segments -> 1 output segment, as in the figure (9:1)."""
    layer = create_layer(spec("pool", "Pooling", pool="AVE",
                              kernel_size=3, stride=3))
    bottom = [make_blob((1, 1, 9, 9))]
    top = [Blob()]
    layer.setup(bottom, top)
    layer.forward(bottom, top)
    lines = [
        "input blob: 1 segment grid of 9x9 (nine 3x3 patches)",
        f"output blob: {top[0].shape} (each cell <- one 3x3 patch)",
        "",
        "segment ratio: 9 input cells -> 1 output cell "
        "(the figure's 9:1 reduction)",
    ]
    return "\n".join(lines)


def test_fig2_nine_to_one_reduction():
    layer = create_layer(spec("pool", "Pooling", pool="AVE",
                              kernel_size=3, stride=3))
    values = np.arange(81, dtype=np.float32)
    bottom = [make_blob((1, 1, 9, 9), values=values)]
    top = [Blob()]
    layer.setup(bottom, top)
    layer.forward(bottom, top)
    assert top[0].shape == (1, 1, 3, 3)
    # each output cell is the mean of its 3x3 patch
    grid = values.reshape(9, 9)
    expected = grid.reshape(3, 3, 3, 3).mean(axis=(1, 3))
    assert np.allclose(top[0].data[0, 0], expected)
    emit("fig2_segments", segment_table())


def test_fig2_segment_kernel_benchmark(benchmark, rng):
    """Time the real per-segment transformation on LeNet pool1 shapes."""
    layer = create_layer(spec("pool", "Pooling", pool="MAX",
                              kernel_size=2, stride=2))
    bottom = [make_blob((64, 20, 24, 24), rng=rng)]
    top = [Blob()]
    layer.setup(bottom, top)

    benchmark(lambda: layer.forward_chunk(bottom, top, 0,
                                          layer.forward_space(bottom, top)))
