"""Ablation: gradient merge strategies (ordered / atomic / tree /
blockwise).

The paper contrasts the ordered merge (deterministic, "the value
obtained through the sequential execution") against the reduction-based
alternative (valid, but not the same value under any thread count); we
add the tree and blockwise extensions.  Real execution: determinism
class and merge-time cost of each mode on the LeNet backward pass.
"""

import numpy as np
import pytest

from repro.bench import emit
from repro.core import ParallelExecutor
from repro.zoo import build_net

MODES = ("ordered", "atomic", "tree", "blockwise")


def grads_for(state, mode, threads=4):
    net = build_net("lenet")
    net.load_state_dict(state)
    with ParallelExecutor(num_threads=threads, reduction=mode) as executor:
        net.clear_param_diffs()
        executor.forward(net)
        executor.backward(net)
    return np.concatenate([b.flat_diff.copy() for b in net.learnable_params])


def build_table(state, sequential) -> str:
    lines = [f"{'mode':<11}{'rerun@4T':>12}{'vs seq':>10}{'vs 2T':>10}"]
    for mode in MODES:
        a = grads_for(state, mode, 4)
        b = grads_for(state, mode, 4)
        c = grads_for(state, mode, 2)
        rerun = "bitwise" if np.array_equal(a, b) else "varies"
        vs_seq = "bitwise" if np.array_equal(a, sequential) else "close"
        vs_2t = "bitwise" if np.array_equal(a, c) else "close"
        lines.append(f"{mode:<11}{rerun:>12}{vs_seq:>10}{vs_2t:>10}")
    return "\n".join(lines)


@pytest.fixture(scope="module")
def state_and_seq():
    net = build_net("lenet")
    state = net.state_dict()
    net.clear_param_diffs()
    net.forward()
    net.backward()
    seq = np.concatenate([b.flat_diff.copy() for b in net.learnable_params])
    return state, seq


def test_determinism_classes(state_and_seq):
    state, sequential = state_and_seq
    # ordered & tree: deterministic per thread count
    for mode in ("ordered", "tree", "blockwise"):
        assert np.array_equal(grads_for(state, mode, 4),
                              grads_for(state, mode, 4)), mode
    # blockwise: additionally invariant ACROSS thread counts
    assert np.array_equal(grads_for(state, "blockwise", 4), sequential)
    assert np.array_equal(grads_for(state, "blockwise", 3), sequential)
    # ordered at >1 threads only tracks sequential to fp reassociation
    assert np.allclose(grads_for(state, "ordered", 4), sequential,
                       rtol=1e-3, atol=1e-6)
    emit("ablation_reduction", build_table(state, sequential))


def test_all_modes_agree_numerically(state_and_seq):
    state, sequential = state_and_seq
    for mode in MODES:
        assert np.allclose(grads_for(state, mode, 4), sequential,
                           rtol=1e-3, atol=1e-6), mode


@pytest.mark.parametrize("mode", MODES)
def test_reduction_backward_benchmark(benchmark, mode, state_and_seq):
    state, _ = state_and_seq
    net = build_net("lenet")
    net.load_state_dict(state)
    with ParallelExecutor(num_threads=4, reduction=mode) as executor:
        executor.forward(net)

        def backward():
            net.clear_param_diffs()
            executor.backward(net)

        benchmark(backward)
