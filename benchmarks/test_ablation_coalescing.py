"""Ablation: loop coalescing vs batch-only parallelization.

Section 3.2.1 motivates the coalescing transformation with work
imbalance: one batch iteration is a very heavy work unit, so thread
counts that do not divide the batch leave whole-iteration bubbles.
This ablation quantifies the imbalance and the resulting modelled
speedups with and without coalescing on the paper's layer shapes.
"""

import pytest

from repro.bench import emit, lenet_costs, models
from repro.core.coalesce import CoalescedSpace

# Representative coalescable nests from the two networks:
# (name, batch, inner dims coalesced by Algorithm 4)
NESTS = [
    ("lenet pool1 (S,C)", 64, (20,)),
    ("lenet pool2 (S,C)", 64, (50,)),
    ("cifar pool1 (S,C)", 100, (32,)),
    ("cifar relu1 (S,C,H,W)", 100, (32, 16, 16)),
]

THREADS = (2, 4, 8, 12, 16, 24)


def build_table() -> str:
    lines = [f"{'nest':<26}" + "".join(f"{t:>7}T" for t in THREADS)]
    for name, batch, inner in NESTS:
        batch_only = CoalescedSpace((batch,))
        coalesced = CoalescedSpace((batch,) + inner)
        row_a = "".join(
            f"{batch_only.imbalance(t) * 100:7.1f}%" for t in THREADS
        )
        row_b = "".join(
            f"{coalesced.imbalance(t) * 100:7.1f}%" for t in THREADS
        )
        lines.append(f"{name + ' [batch]':<26}" + row_a)
        lines.append(f"{name + ' [coal.]':<26}" + row_b)
    return "\n".join(lines)


def test_coalescing_reduces_imbalance_everywhere():
    for name, batch, inner in NESTS:
        batch_only = CoalescedSpace((batch,))
        coalesced = CoalescedSpace((batch,) + inner)
        for threads in THREADS:
            assert coalesced.imbalance(threads) <= \
                batch_only.imbalance(threads) + 1e-12, (name, threads)
    emit("ablation_coalescing", build_table())


def test_imbalance_material_at_odd_thread_counts():
    """batch 100 over 24 threads: batch-only wastes ~20%."""
    assert CoalescedSpace((100,)).imbalance(24) > 0.15
    assert CoalescedSpace((100, 32)).imbalance(24) < 0.01


def test_modelled_speedup_gain(benchmark):
    """Imbalance translates into modelled layer time: compare pool1 with
    its (S*C) space against an artificial batch-only variant."""
    import dataclasses
    cpu = models()[0]
    pool1 = next(c for c in lenet_costs() if c.key == "pool1.fwd")
    batch_only = dataclasses.replace(pool1, space=64)
    t_coalesced = cpu.layer_time(pool1, 24)
    t_batch = cpu.layer_time(batch_only, 24)
    assert t_coalesced <= t_batch * 1.001

    benchmark(lambda: [cpu.layer_time(pool1, t) for t in THREADS])
