"""Figure 9: CIFAR-10 overall speedups and per-layer GPU scalability.

Paper: OpenMP ~6x @ 8T and 8.83x @ 16T; plain-GPU ~6x (the coarse-grain
CPU version beats the native GPU port); cuDNN ~27x.  Per layer: plain
pooling ~110x and LRN ~40x while convolutions sit at 1.8-6x; cuDNN
convolutions reach ~50x, pool3 drops 42x -> 11.75x, pool1 improves
8.6x -> 20.9x.
"""

from repro.bench import cifar_costs, emit, models
from repro.core import ParallelExecutor
from repro.simulator.report import (
    format_table,
    gpu_layer_speedup_table,
    overall_speedup_table,
)
from repro.zoo import build_solver


def build_figure() -> str:
    cpu, plain, cudnn = models()
    overall = overall_speedup_table(cifar_costs(), cpu, plain, cudnn)
    left = "\n".join(f"  {k:<12} {v:6.2f}x" for k, v in overall.items())
    keys, plain_sp, cudnn_sp = gpu_layer_speedup_table(
        cifar_costs(), plain, cudnn
    )
    right = format_table(
        ["layer", "plain-GPU", "cuDNN-GPU"],
        [[k, p, c] for k, p, c in zip(keys, plain_sp, cudnn_sp)],
        width=12,
    )
    return "overall speedups (vs serial CPU):\n" + left + \
        "\n\nper-layer GPU speedups:\n" + right


def test_fig9_overall_crossover():
    cpu, plain, cudnn = models()
    costs = cifar_costs()
    omp16 = cpu.speedup(costs, 16)
    assert 7.5 < omp16 < 11.5        # paper 8.83x
    plain_sp = plain.speedup(costs)
    assert 3.0 < plain_sp < omp16    # paper: 6x, below OpenMP-16
    assert cudnn.speedup(costs) > 1.8 * omp16  # paper: 27x
    emit("fig9_cifar_overall", build_figure())


def test_fig9_gpu_layer_magnitudes():
    _, plain, cudnn = models()
    costs = cifar_costs()
    plain_sp = plain.layer_speedups(costs)
    cudnn_sp = cudnn.layer_speedups(costs)
    assert plain_sp["pool1.fwd"] > 60      # paper ~110x
    assert plain_sp["norm1.fwd"] > 20      # paper ~40x
    assert 1.5 < plain_sp["conv1.fwd"] < 8  # paper 1.8-6x
    assert cudnn_sp["conv2.fwd"] > 30      # paper ~50x
    assert cudnn_sp["pool3.fwd"] < plain_sp["pool3.fwd"] / 2  # 42 -> 11.75
    assert cudnn_sp["pool1.bwd"] > plain_sp["pool1.bwd"]      # 8.6 -> 20.9


def test_fig9_real_parallel_cifar_training_benchmark(benchmark):
    with ParallelExecutor(num_threads=4, reduction="ordered") as executor:
        solver = build_solver("cifar10", max_iter=1000, executor=executor)
        solver.step(1)
        benchmark(solver.step, 1)
    assert solver.loss_history
