"""Section 3.2.1 memory experiment: privatization overhead.

Paper: the per-thread privatized gradient storage is reused across
layers, so the extra memory is bounded by the largest reduction layer —
the convolutional layers — and stays a small fraction of the net's
total footprint (<=640 KB for MNIST, <=1250 KB for CIFAR-10 at 16
threads, ~5% of the 8 MB / 36 MB totals).

Our decomposition privatizes exactly the true reductions (conv weight
gradients; inner products use the row-parallel loops), measured on the
real pool high-water mark.
"""

from repro.bench import emit
from repro.core import ParallelExecutor
from repro.zoo import build_net


def measure(name: str, threads: int = 16):
    net = build_net(name)
    with ParallelExecutor(num_threads=threads, reduction="ordered") as ex:
        ex.forward(net)
        ex.backward(net)
        extra = ex.privatization_high_water_bytes
    total = net.memory_bytes()
    largest_conv = max(
        sum(b.count * 4 for b in layer.blobs)
        for layer in net.layers if layer.type == "Convolution"
    )
    return extra, total, largest_conv


def build_table() -> str:
    lines = [f"{'net':<10}{'threads':>8}{'extra KB':>10}{'total MB':>10}"
             f"{'overhead':>10}{'paper KB':>10}"]
    paper = {"lenet": 640, "cifar10": 1250}
    for name in ("lenet", "cifar10"):
        extra, total, _ = measure(name)
        lines.append(
            f"{name:<10}{16:>8}{extra / 1024:>10.0f}"
            f"{total / 1e6:>10.1f}{extra / total * 100:>9.1f}%"
            f"{paper[name]:>10}"
        )
    return "\n".join(lines)


def test_mem_extra_is_threads_times_largest_conv():
    for name in ("lenet", "cifar10"):
        extra, _, largest_conv = measure(name, threads=8)
        assert extra == 8 * largest_conv


def test_mem_overhead_small_fraction():
    """The paper's ~5% claim: ours stays the same order of magnitude."""
    for name in ("lenet", "cifar10"):
        extra, total, _ = measure(name, threads=16)
        assert extra / total < 0.25
    emit("mem_privatization", build_table())


def test_mem_pool_reused_across_layers():
    """Running backward twice allocates nothing new."""
    net = build_net("lenet")
    with ParallelExecutor(num_threads=4, reduction="ordered") as ex:
        ex.forward(net)
        ex.backward(net)
        first = ex.privatization_high_water_bytes
        ex.forward(net)
        ex.backward(net)
        assert ex.privatization_high_water_bytes == first


def test_mem_accounting_benchmark(benchmark):
    net = build_net("lenet")
    net.forward()
    assert benchmark(net.memory_bytes) > 0
