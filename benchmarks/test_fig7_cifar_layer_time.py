"""Figure 7: CIFAR-10 per-layer absolute and relative CPU time.

Paper: the convolutional, pooling and LRN layers account for ~85% of the
iteration at every thread count; the small layers (pool3/ip1/loss) never
matter for overall scalability.
"""

from repro.bench import cifar_costs, emit, models
from repro.simulator.report import (
    format_table,
    layer_time_table,
    relative_weights,
)
from repro.zoo import build_net

THREADS = (1, 2, 4, 8, 12, 16)


def build_figure() -> str:
    cpu = models()[0]
    costs = cifar_costs()
    keys, rows = layer_time_table(costs, cpu, THREADS)
    table_rows = [[f"{t}T"] + row for t, row in zip(THREADS, rows)]
    table = format_table(["threads"] + keys, table_rows, width=11)
    weights = relative_weights(costs, cpu, 1)
    dominant = sum(v for k, v in weights.items()
                   if k.startswith(("conv", "pool", "norm")))
    return table + (
        f"\n\nconv+pool+norm serial share: {dominant * 100:.1f}% "
        "(paper: ~85%)"
    )


def test_fig7_dominant_layers():
    cpu = models()[0]
    for threads in THREADS:
        times = cpu.layer_times(cifar_costs(), threads)
        total = sum(times.values())
        dominant = sum(v for k, v in times.items()
                       if k.startswith(("conv", "pool", "norm")))
        assert dominant / total > 0.75  # paper: ~85%, all thread counts
    emit("fig7_cifar_layer_time", build_figure())


def test_fig7_small_layers_irrelevant():
    cpu = models()[0]
    times = cpu.layer_times(cifar_costs(), 16)
    total = sum(times.values())
    small = sum(times[k] for k in ("ip1.fwd", "ip1.bwd",
                                   "loss.fwd", "loss.bwd"))
    assert small / total < 0.08


def test_fig7_real_cifar_iteration_benchmark(benchmark):
    net = build_net("cifar10")
    net.forward()

    def iteration():
        net.clear_param_diffs()
        loss = net.forward()
        net.backward()
        return loss

    assert benchmark(iteration) > 0
