"""Figure 4, measured variant: per-layer breakdown from real wall time.

The simulator-based ``test_fig4_mnist_layer_time.py`` regenerates the
paper's figure on the modelled testbed; this benchmark produces the same
breakdown from *measured* execution via the TracingExecutor — the path a
user on real multi-core hardware runs.  On this container the absolute
times reflect the Python/numpy substrate, but the structural claim
(convolutions dominate the iteration) is asserted on real measurements.
"""

from repro.bench import emit
from repro.core import TracingExecutor
from repro.framework.solvers.base import SequentialExecutor
from repro.zoo import build_net

ITERATIONS = 3


def traced_run():
    net = build_net("lenet")
    tracer = TracingExecutor(SequentialExecutor())
    for _ in range(ITERATIONS):
        net.clear_param_diffs()
        tracer.forward(net)
        tracer.backward(net)
    return tracer.trace


def test_fig4_measured_conv_dominates():
    trace = traced_run()
    shares = trace.shares()
    conv = sum(v for (layer, _), v in shares.items()
               if layer.startswith("conv"))
    convpool = conv + sum(v for (layer, _), v in shares.items()
                          if layer.startswith("pool"))
    assert convpool > 0.5  # the paper's dominant-layer claim, measured
    emit("fig4_measured_trace",
         f"real measured breakdown ({ITERATIONS} LeNet iterations, "
         f"this machine):\n{trace.table()}\n\n"
         f"conv+pool measured share: {convpool * 100:.1f}% "
         "(paper modelled: ~80%)")


def test_fig4_every_layer_traced():
    trace = traced_run()
    layers = {event.layer for event in trace.events}
    for name in ("conv1", "pool1", "conv2", "pool2", "ip1", "ip2", "loss"):
        assert name in layers


def test_fig4_trace_overhead_benchmark(benchmark):
    """Tracing cost: one traced iteration (overhead must stay small)."""
    net = build_net("lenet")
    tracer = TracingExecutor(SequentialExecutor())
    tracer.forward(net)

    def iteration():
        net.clear_param_diffs()
        tracer.forward(net)
        tracer.backward(net)

    benchmark(iteration)
