"""Figure 5: MNIST per-layer CPU scalability.

Regenerates the figure's clusters — per-layer-pass speedup over serial at
2/4/8/12/16 threads, with the u-shape (tiny center layers do not scale)
and the two behaviour classes the paper identifies: conv1/pool1/conv2
scale well; ip1/pool2 plateau near 8 threads.  The benchmark times the
real thread-team parallel forward on LeNet.
"""

from repro.bench import emit, lenet_costs, models
from repro.core import ParallelExecutor
from repro.simulator.report import format_table, layer_scalability_table
from repro.zoo import build_net

THREADS = (2, 4, 8, 12, 16)


def build_figure() -> str:
    cpu = models()[0]
    keys, rows = layer_scalability_table(lenet_costs(), cpu, THREADS)
    table_rows = [[f"{t}T"] + row for t, row in zip(THREADS, rows)]
    return format_table(["threads"] + keys, table_rows, width=11)


def test_fig5_u_shape_and_classes():
    cpu = models()[0]
    s8 = cpu.layer_speedups(lenet_costs(), 8)
    s16 = cpu.layer_speedups(lenet_costs(), 16)
    # class 1: small center layers do not scale
    assert s16["loss.fwd"] < 3.0 and s16["ip2.fwd"] < 6.0
    # class 2: ip1 plateaus (paper: 4.58x fwd @8T, flat beyond)
    assert 3.5 < s8["ip1.fwd"] < 6.5
    assert s16["ip1.fwd"] < 1.5 * s8["ip1.fwd"]
    # class 3: convolutions scale well
    assert s16["conv2.fwd"] > 8.0
    # conv1 trails conv2 (serial data layer locality, paper ~10%)
    assert s16["conv1.fwd"] < s16["conv2.fwd"]
    emit("fig5_mnist_layer_scalability", build_figure())


def test_fig5_real_parallel_forward_benchmark(benchmark):
    """Exercise the real batch-parallel forward (4 worker threads)."""
    net = build_net("lenet")
    with ParallelExecutor(num_threads=4) as executor:
        executor.forward(net)  # shapes/caches
        loss = benchmark(executor.forward, net)
    assert loss > 0
