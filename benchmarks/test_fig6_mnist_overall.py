"""Figure 6: MNIST overall speedups and per-layer GPU scalability.

Left panel: absolute speedups of OpenMP (2-16 threads) vs plain-GPU vs
cuDNN-GPU.  Paper: ~6x @ 8T, ~8x @ 16T, plain-GPU ~2x, cuDNN ~12x —
the coarse-grain CPU parallelization beating the native fine-grain GPU
port, cuDNN winning outright.

Right panel: per-layer GPU speedups (pooling 57-62x plain; convolutions
1.11x/1.63x plain vs 15-25x cuDNN; pool2 dropping 62x -> 27x under
cuDNN).
"""

from repro.bench import emit, lenet_costs, models
from repro.core import ParallelExecutor
from repro.simulator.report import (
    format_table,
    gpu_layer_speedup_table,
    overall_speedup_table,
)
from repro.zoo import build_solver


def build_figure() -> str:
    cpu, plain, cudnn = models()
    overall = overall_speedup_table(lenet_costs(), cpu, plain, cudnn)
    left = "\n".join(f"  {k:<12} {v:6.2f}x" for k, v in overall.items())
    keys, plain_sp, cudnn_sp = gpu_layer_speedup_table(
        lenet_costs(), plain, cudnn
    )
    right = format_table(
        ["layer", "plain-GPU", "cuDNN-GPU"],
        [[k, p, c] for k, p, c in zip(keys, plain_sp, cudnn_sp)],
        width=12,
    )
    return "overall speedups (vs serial CPU):\n" + left + \
        "\n\nper-layer GPU speedups:\n" + right


def test_fig6_overall_ordering():
    cpu, plain, cudnn = models()
    costs = lenet_costs()
    omp8 = cpu.speedup(costs, 8)
    omp16 = cpu.speedup(costs, 16)
    assert 5.0 < omp8 < 7.5          # paper ~6x
    assert 7.0 < omp16 < 9.5         # paper ~8x
    assert plain.speedup(costs) < omp16          # OpenMP beats plain GPU
    assert cudnn.speedup(costs) > omp16          # cuDNN beats OpenMP
    emit("fig6_mnist_overall", build_figure())


def test_fig6_gpu_layer_asymmetries():
    _, plain, cudnn = models()
    costs = lenet_costs()
    plain_sp = plain.layer_speedups(costs)
    cudnn_sp = cudnn.layer_speedups(costs)
    assert plain_sp["pool1.fwd"] > 25 and plain_sp["pool2.fwd"] > 25
    assert plain_sp["conv1.fwd"] < 3
    assert cudnn_sp["conv1.fwd"] > 5 * plain_sp["conv1.fwd"]
    assert cudnn_sp["pool2.fwd"] < plain_sp["pool2.fwd"]  # the regression


def test_fig6_real_parallel_training_benchmark(benchmark):
    """Time one real coarse-grain training step (ordered reduction)."""
    with ParallelExecutor(num_threads=4, reduction="ordered") as executor:
        solver = build_solver("lenet", max_iter=1000, executor=executor)
        solver.step(1)  # warm-up
        benchmark(solver.step, 1)
    assert solver.loss_history
