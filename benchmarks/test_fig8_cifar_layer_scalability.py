"""Figure 8: CIFAR-10 per-layer CPU scalability.

Paper's level-by-level analysis: conv1 5.87x @ 8T stalling near 9x @ 16T;
pool1/relu1 scaling to 11-13x (cache-resident streaming); norm1 4.6x ->
10.8x; the u-shape center (pool3/ip1/loss) flat.
"""

from repro.bench import cifar_costs, emit, models
from repro.core import ParallelExecutor
from repro.simulator.report import format_table, layer_scalability_table
from repro.zoo import build_net

THREADS = (2, 4, 8, 12, 16)


def build_figure() -> str:
    cpu = models()[0]
    keys, rows = layer_scalability_table(cifar_costs(), cpu, THREADS)
    table_rows = [[f"{t}T"] + row for t, row in zip(THREADS, rows)]
    return format_table(["threads"] + keys, table_rows, width=11)


def test_fig8_level1_behaviours():
    cpu = models()[0]
    s8 = cpu.layer_speedups(cifar_costs(), 8)
    s16 = cpu.layer_speedups(cifar_costs(), 16)
    assert 4.5 < s8["conv1.fwd"] < 8.5     # paper 5.87x
    assert 7.0 < s16["conv1.fwd"] < 12.5   # paper ~9x
    assert s16["pool1.fwd"] > 9.0          # paper 11x
    assert s16["relu1.fwd"] > 9.0          # paper 13x
    assert 7.5 < s16["norm1.fwd"] < 13.0   # paper 10.8x
    emit("fig8_cifar_layer_scalability", build_figure())


def test_fig8_center_layers_flat():
    cpu = models()[0]
    s16 = cpu.layer_speedups(cifar_costs(), 16)
    assert s16["loss.fwd"] < 4.0
    assert s16["ip1.fwd"] < 6.0


def test_fig8_backward_tracks_forward():
    """Paper: backward trends are similar, slightly less scalable."""
    cpu = models()[0]
    s16 = cpu.layer_speedups(cifar_costs(), 16)
    for name in ("conv1", "conv2", "conv3"):
        assert s16[f"{name}.bwd"] > 5.0
        # reductions keep backward within ~2x of forward scalability
        assert s16[f"{name}.bwd"] > s16[f"{name}.fwd"] / 2


def test_fig8_real_parallel_cifar_benchmark(benchmark):
    net = build_net("cifar10")
    with ParallelExecutor(num_threads=4) as executor:
        executor.forward(net)
        loss = benchmark(executor.forward, net)
    assert loss > 0
