"""Level-2 BLAS kernels: general matrix-vector product and rank-1 update."""

from __future__ import annotations

import numpy as np

from repro.blaslib.dispatch import backend_name, record_op


def gemv(
    trans: bool,
    alpha: float,
    a: np.ndarray,
    x: np.ndarray,
    beta: float,
    y: np.ndarray,
) -> np.ndarray:
    """``y = alpha * op(A) @ x + beta * y`` in place; returns ``y``.

    Parameters
    ----------
    trans:
        When true, ``op(A) = A.T``; otherwise ``op(A) = A``.
    a:
        2-D matrix of shape ``(m, n)``.
    x:
        Vector of length ``n`` (``m`` when transposed).
    y:
        Output vector of length ``m`` (``n`` when transposed).
    """
    if a.ndim != 2:
        raise ValueError(f"gemv expects a 2-D matrix, got shape {a.shape}")
    m, n = a.shape
    in_len, out_len = (m, n) if trans else (n, m)
    if x.shape != (in_len,):
        raise ValueError(f"gemv x has shape {x.shape}, expected ({in_len},)")
    if y.shape != (out_len,):
        raise ValueError(f"gemv y has shape {y.shape}, expected ({out_len},)")

    record_op("gemv", 2 * m * n, a.nbytes + x.nbytes + 2 * y.nbytes)
    if backend_name() == "reference":
        op_a = a.T if trans else a
        for i in range(out_len):
            acc = 0.0
            for j in range(in_len):
                acc += float(op_a[i, j]) * float(x[j])
            y[i] = alpha * acc + beta * y[i]
        return y

    op_a = a.T if trans else a
    if beta == 0.0:
        np.copyto(y, alpha * (op_a @ x))
    else:
        y *= beta
        y += alpha * (op_a @ x)
    return y


def ger(alpha: float, x: np.ndarray, y: np.ndarray, a: np.ndarray) -> np.ndarray:
    """Rank-1 update ``A += alpha * outer(x, y)`` in place; returns ``A``."""
    if a.ndim != 2:
        raise ValueError(f"ger expects a 2-D matrix, got shape {a.shape}")
    m, n = a.shape
    if x.shape != (m,):
        raise ValueError(f"ger x has shape {x.shape}, expected ({m},)")
    if y.shape != (n,):
        raise ValueError(f"ger y has shape {y.shape}, expected ({n},)")

    record_op("ger", 2 * m * n, x.nbytes + y.nbytes + 2 * a.nbytes)
    if backend_name() == "reference":
        for i in range(m):
            for j in range(n):
                a[i, j] = a[i, j] + alpha * float(x[i]) * float(y[j])
        return a
    a += alpha * np.outer(x, y)
    return a
