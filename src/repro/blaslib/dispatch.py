"""Backend dispatch and operation accounting for the BLAS substrate.

The dispatcher keeps a process-global current backend (``"numpy"`` or
``"reference"``) and a stack-based context manager to switch it, plus an
:class:`OpCounter` that tallies floating-point operations and bytes moved
per BLAS level.  The simulator uses these tallies to build its cost model
from *measured* call patterns instead of hand-derived formulas.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

_VALID_BACKENDS = ("numpy", "reference")

# Backend selection is thread-local so a worker thread running the reference
# backend (e.g. inside a test oracle) does not perturb concurrent workers.
_state = threading.local()


def _current() -> str:
    return getattr(_state, "backend", "numpy")


def backend_name() -> str:
    """Return the name of the active BLAS backend for this thread."""
    return _current()


def get_backend() -> str:
    """Alias of :func:`backend_name` kept for API symmetry."""
    return _current()


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Temporarily switch the BLAS backend for the calling thread.

    Parameters
    ----------
    name:
        ``"numpy"`` for the vectorized production backend or
        ``"reference"`` for the pure-Python oracle.
    """
    if name not in _VALID_BACKENDS:
        raise ValueError(
            f"unknown BLAS backend {name!r}; expected one of {_VALID_BACKENDS}"
        )
    previous = _current()
    _state.backend = name
    try:
        yield
    finally:
        _state.backend = previous


@dataclass
class OpCounter:
    """Tally of BLAS work, grouped by call kind.

    Attributes
    ----------
    flops:
        Floating point operations per call kind (multiply-add counted as 2).
    bytes_moved:
        Bytes read plus written per call kind, assuming each operand is
        touched once (the streaming lower bound the simulator needs).
    calls:
        Number of invocations per call kind.
    """

    flops: Dict[str, int] = field(default_factory=dict)
    bytes_moved: Dict[str, int] = field(default_factory=dict)
    calls: Dict[str, int] = field(default_factory=dict)

    def record(self, kind: str, flops: int, nbytes: int) -> None:
        self.flops[kind] = self.flops.get(kind, 0) + int(flops)
        self.bytes_moved[kind] = self.bytes_moved.get(kind, 0) + int(nbytes)
        self.calls[kind] = self.calls.get(kind, 0) + 1

    def total_flops(self) -> int:
        return sum(self.flops.values())

    def total_bytes(self) -> int:
        return sum(self.bytes_moved.values())

    def total_calls(self) -> int:
        return sum(self.calls.values())

    def merged_with(self, other: "OpCounter") -> "OpCounter":
        out = OpCounter()
        for src in (self, other):
            for kind, value in src.flops.items():
                out.flops[kind] = out.flops.get(kind, 0) + value
            for kind, value in src.bytes_moved.items():
                out.bytes_moved[kind] = out.bytes_moved.get(kind, 0) + value
            for kind, value in src.calls.items():
                out.calls[kind] = out.calls.get(kind, 0) + value
        return out

    def clear(self) -> None:
        self.flops.clear()
        self.bytes_moved.clear()
        self.calls.clear()


_counter_state = threading.local()


def _active_counter() -> OpCounter | None:
    return getattr(_counter_state, "counter", None)


@contextmanager
def op_counter() -> Iterator[OpCounter]:
    """Count BLAS work performed by the calling thread inside the block.

    Nested counters stack: the innermost active counter receives the
    records; on exit its totals are folded into the enclosing one so outer
    scopes still see the full tally.
    """
    counter = OpCounter()
    outer = _active_counter()
    _counter_state.counter = counter
    try:
        yield counter
    finally:
        _counter_state.counter = outer
        if outer is not None:
            merged = outer.merged_with(counter)
            outer.flops = merged.flops
            outer.bytes_moved = merged.bytes_moved
            outer.calls = merged.calls


def record_op(kind: str, flops: int, nbytes: int) -> None:
    """Internal hook used by the BLAS kernels to report their work."""
    counter = _active_counter()
    if counter is not None:
        counter.record(kind, flops, nbytes)
