"""Convolution lowering: ``im2col`` / ``col2im``.

Caffe implements convolution as ``im2col`` followed by a single ``gemm``
per image; the backward pass uses ``col2im`` to scatter gradients back.
These are the exact kernels the coarse-grain parallelization treats as the
per-sample unit of work inside the convolutional layers.

The column buffer layout matches Caffe: shape
``(channels * kernel_h * kernel_w, output_h * output_w)`` with the kernel
offsets varying slowest, so that ``weights @ col`` yields the convolution.
"""

from __future__ import annotations

import numpy as np

from repro.blaslib.dispatch import backend_name, record_op


def conv_out_size(in_size: int, kernel: int, pad: int, stride: int) -> int:
    """Spatial output extent of a convolution/pooling window sweep."""
    if kernel <= 0 or stride <= 0:
        raise ValueError(f"kernel ({kernel}) and stride ({stride}) must be positive")
    if pad < 0:
        raise ValueError(f"pad must be non-negative, got {pad}")
    out = (in_size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"window does not fit: in={in_size} kernel={kernel} "
            f"pad={pad} stride={stride}"
        )
    return out


def im2col(
    image: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    pad_h: int,
    pad_w: int,
    stride_h: int,
    stride_w: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Unfold one image ``(C, H, W)`` into a column matrix.

    Returns an array of shape
    ``(C * kernel_h * kernel_w, out_h * out_w)``; ``out`` may supply a
    preallocated destination of that shape.
    """
    if image.ndim != 3:
        raise ValueError(f"im2col expects (C, H, W), got shape {image.shape}")
    c, h, w = image.shape
    out_h = conv_out_size(h, kernel_h, pad_h, stride_h)
    out_w = conv_out_size(w, kernel_w, pad_w, stride_w)
    col_shape = (c * kernel_h * kernel_w, out_h * out_w)
    if out is None:
        out = np.empty(col_shape, dtype=image.dtype)
    elif out.shape != col_shape:
        raise ValueError(f"im2col out has shape {out.shape}, expected {col_shape}")

    record_op("im2col", 0, image.nbytes + out.nbytes)
    if backend_name() == "reference":
        _im2col_reference(
            image, kernel_h, kernel_w, pad_h, pad_w, stride_h, stride_w, out
        )
        return out

    if pad_h or pad_w:
        padded = np.zeros((c, h + 2 * pad_h, w + 2 * pad_w), dtype=image.dtype)
        padded[:, pad_h : pad_h + h, pad_w : pad_w + w] = image
    else:
        padded = image
    # Strided view: (C, kernel_h, kernel_w, out_h, out_w) without copying.
    sc, sh, sw = padded.strides
    view = np.lib.stride_tricks.as_strided(
        padded,
        shape=(c, kernel_h, kernel_w, out_h, out_w),
        strides=(sc, sh, sw, sh * stride_h, sw * stride_w),
        writeable=False,
    )
    np.copyto(out, view.reshape(col_shape))
    return out


def _im2col_reference(
    image: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    pad_h: int,
    pad_w: int,
    stride_h: int,
    stride_w: int,
    out: np.ndarray,
) -> None:
    c, h, w = image.shape
    out_h = conv_out_size(h, kernel_h, pad_h, stride_h)
    out_w = conv_out_size(w, kernel_w, pad_w, stride_w)
    row = 0
    for ch in range(c):
        for kh in range(kernel_h):
            for kw in range(kernel_w):
                col = 0
                for oh in range(out_h):
                    ih = oh * stride_h + kh - pad_h
                    for ow in range(out_w):
                        iw = ow * stride_w + kw - pad_w
                        if 0 <= ih < h and 0 <= iw < w:
                            out[row, col] = image[ch, ih, iw]
                        else:
                            out[row, col] = 0.0
                        col += 1
                row += 1


def col2im(
    col: np.ndarray,
    channels: int,
    height: int,
    width: int,
    kernel_h: int,
    kernel_w: int,
    pad_h: int,
    pad_w: int,
    stride_h: int,
    stride_w: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Fold a column matrix back into an image, summing overlaps.

    The adjoint of :func:`im2col`: entries of ``col`` that originated from
    the same image pixel are accumulated.  Returns an array of shape
    ``(channels, height, width)``.
    """
    out_h = conv_out_size(height, kernel_h, pad_h, stride_h)
    out_w = conv_out_size(width, kernel_w, pad_w, stride_w)
    expected = (channels * kernel_h * kernel_w, out_h * out_w)
    if col.shape != expected:
        raise ValueError(f"col2im col has shape {col.shape}, expected {expected}")
    if out is None:
        out = np.zeros((channels, height, width), dtype=col.dtype)
    else:
        if out.shape != (channels, height, width):
            raise ValueError(
                f"col2im out has shape {out.shape}, expected "
                f"({channels}, {height}, {width})"
            )
        out.fill(0.0)

    record_op("col2im", col.size, col.nbytes + out.nbytes)
    if backend_name() == "reference":
        _col2im_reference(
            col, channels, height, width, kernel_h, kernel_w,
            pad_h, pad_w, stride_h, stride_w, out,
        )
        return out

    padded = np.zeros(
        (channels, height + 2 * pad_h, width + 2 * pad_w), dtype=col.dtype
    )
    view = col.reshape(channels, kernel_h, kernel_w, out_h, out_w)
    for kh in range(kernel_h):
        h_stop = kh + stride_h * out_h
        for kw in range(kernel_w):
            w_stop = kw + stride_w * out_w
            padded[:, kh:h_stop:stride_h, kw:w_stop:stride_w] += view[:, kh, kw]
    np.copyto(out, padded[:, pad_h : pad_h + height, pad_w : pad_w + width])
    return out


def _col2im_reference(
    col: np.ndarray,
    channels: int,
    height: int,
    width: int,
    kernel_h: int,
    kernel_w: int,
    pad_h: int,
    pad_w: int,
    stride_h: int,
    stride_w: int,
    out: np.ndarray,
) -> None:
    out_h = conv_out_size(height, kernel_h, pad_h, stride_h)
    out_w = conv_out_size(width, kernel_w, pad_w, stride_w)
    row = 0
    for ch in range(channels):
        for kh in range(kernel_h):
            for kw in range(kernel_w):
                col_idx = 0
                for oh in range(out_h):
                    ih = oh * stride_h + kh - pad_h
                    for ow in range(out_w):
                        iw = ow * stride_w + kw - pad_w
                        if 0 <= ih < height and 0 <= iw < width:
                            out[ch, ih, iw] += col[row, col_idx]
                        col_idx += 1
                row += 1
