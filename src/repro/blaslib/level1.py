"""Level-1 BLAS kernels (vector-vector operations).

All kernels operate in place on the output operand where BLAS semantics
call for it, mirroring the `caffe_axpy` / `caffe_scal` / ... helpers that
Caffe's layers invoke.  Inputs are validated to be 1-D views of the same
length; callers pass ``blob.data.ravel()`` slices.
"""

from __future__ import annotations

import numpy as np

from repro.blaslib.dispatch import backend_name, record_op


def _check_vectors(*vecs: np.ndarray) -> int:
    n = None
    for v in vecs:
        if v.ndim != 1:
            raise ValueError(f"level-1 BLAS operand must be 1-D, got shape {v.shape}")
        if n is None:
            n = v.shape[0]
        elif v.shape[0] != n:
            raise ValueError(
                f"level-1 BLAS operand length mismatch: {v.shape[0]} vs {n}"
            )
    return 0 if n is None else n


def axpy(alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``y += alpha * x`` in place; returns ``y``."""
    n = _check_vectors(x, y)
    record_op("axpy", 2 * n, x.nbytes + 2 * y.nbytes)
    if backend_name() == "reference":
        for i in range(n):
            y[i] = y[i] + alpha * x[i]
        return y
    if alpha == 1.0:
        y += x
    else:
        y += alpha * x
    return y


def axpby(alpha: float, x: np.ndarray, beta: float, y: np.ndarray) -> np.ndarray:
    """``y = alpha * x + beta * y`` in place; returns ``y``."""
    n = _check_vectors(x, y)
    record_op("axpby", 3 * n, x.nbytes + 2 * y.nbytes)
    if backend_name() == "reference":
        for i in range(n):
            y[i] = alpha * x[i] + beta * y[i]
        return y
    y *= beta
    y += alpha * x
    return y


def scal(alpha: float, x: np.ndarray) -> np.ndarray:
    """``x *= alpha`` in place; returns ``x``."""
    n = _check_vectors(x)
    record_op("scal", n, 2 * x.nbytes)
    if backend_name() == "reference":
        for i in range(n):
            x[i] = alpha * x[i]
        return x
    x *= alpha
    return x


def set_scalar(alpha: float, x: np.ndarray) -> np.ndarray:
    """``x[:] = alpha`` (Caffe's ``caffe_set``); returns ``x``."""
    n = _check_vectors(x)
    record_op("set", 0, x.nbytes)
    if backend_name() == "reference":
        for i in range(n):
            x[i] = alpha
        return x
    x.fill(alpha)
    return x


def copy(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``y[:] = x`` (Caffe's ``caffe_copy``); returns ``y``."""
    n = _check_vectors(x, y)
    record_op("copy", 0, x.nbytes + y.nbytes)
    if backend_name() == "reference":
        for i in range(n):
            y[i] = x[i]
        return y
    np.copyto(y, x)
    return y


def dot(x: np.ndarray, y: np.ndarray) -> float:
    """Inner product ``x . y``."""
    n = _check_vectors(x, y)
    record_op("dot", 2 * n, x.nbytes + y.nbytes)
    if backend_name() == "reference":
        acc = 0.0
        for i in range(n):
            acc += float(x[i]) * float(y[i])
        return acc
    return float(np.dot(x, y))


def asum(x: np.ndarray) -> float:
    """Sum of absolute values (BLAS ``asum``)."""
    n = _check_vectors(x)
    record_op("asum", n, x.nbytes)
    if backend_name() == "reference":
        acc = 0.0
        for i in range(n):
            acc += abs(float(x[i]))
        return acc
    return float(np.sum(np.abs(x)))


def nrm2(x: np.ndarray) -> float:
    """Euclidean norm (BLAS ``nrm2``)."""
    n = _check_vectors(x)
    record_op("nrm2", 2 * n, x.nbytes)
    if backend_name() == "reference":
        acc = 0.0
        for i in range(n):
            acc += float(x[i]) * float(x[i])
        return acc ** 0.5
    return float(np.linalg.norm(x))
