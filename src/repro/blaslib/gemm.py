"""Level-3 BLAS kernel: general matrix-matrix product.

This is the workhorse behind Caffe's convolutional and inner-product
layers (``caffe_cpu_gemm``).  The coarse-grain parallelization treats a
``gemm`` call as an indivisible unit of work, which is why the simulator
tracks its flop count separately: convolutional layer time is dominated by
these calls.
"""

from __future__ import annotations

import numpy as np

from repro.blaslib.dispatch import backend_name, record_op


def gemm(
    trans_a: bool,
    trans_b: bool,
    alpha: float,
    a: np.ndarray,
    b: np.ndarray,
    beta: float,
    c: np.ndarray,
) -> np.ndarray:
    """``C = alpha * op(A) @ op(B) + beta * C`` in place; returns ``C``.

    ``op(X)`` is ``X.T`` when the corresponding ``trans_*`` flag is set.
    Shapes are validated against the output ``C`` of shape ``(m, n)``.
    """
    if a.ndim != 2 or b.ndim != 2 or c.ndim != 2:
        raise ValueError(
            "gemm expects 2-D operands, got shapes "
            f"{a.shape}, {b.shape}, {c.shape}"
        )
    op_a = a.T if trans_a else a
    op_b = b.T if trans_b else b
    m, k = op_a.shape
    k2, n = op_b.shape
    if k != k2:
        raise ValueError(
            f"gemm inner dimension mismatch: op(A) is {op_a.shape}, "
            f"op(B) is {op_b.shape}"
        )
    if c.shape != (m, n):
        raise ValueError(f"gemm C has shape {c.shape}, expected ({m}, {n})")

    record_op("gemm", 2 * m * n * k, a.nbytes + b.nbytes + 2 * c.nbytes)
    if backend_name() == "reference":
        for i in range(m):
            for j in range(n):
                acc = 0.0
                for p in range(k):
                    acc += float(op_a[i, p]) * float(op_b[p, j])
                c[i, j] = alpha * acc + beta * c[i, j]
        return c

    if beta == 0.0:
        if alpha == 1.0 and c.flags["C_CONTIGUOUS"]:
            np.matmul(op_a, op_b, out=c)
        else:
            np.copyto(c, alpha * (op_a @ op_b))
    else:
        c *= beta
        c += alpha * (op_a @ op_b)
    return c
