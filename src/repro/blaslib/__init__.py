"""BLAS substrate for the reproduction.

Caffe delegates the inner computation of every layer to a Basic Linear
Algebra Subprograms (BLAS) implementation (OpenBLAS in the paper's setup).
The coarse-grain parallelization deliberately *never* reaches inside a BLAS
call: a BLAS invocation on one blob segment is the unit of work.

This package provides that surface:

* Level 1: :func:`axpy`, :func:`axpby`, :func:`scal`, :func:`dot`,
  :func:`asum`, :func:`nrm2`, :func:`copy`, :func:`set_scalar`.
* Level 2: :func:`gemv`, :func:`ger`.
* Level 3: :func:`gemm`.
* Convolution lowering: :func:`im2col`, :func:`col2im`.

Two backends are registered:

* ``"numpy"`` (default) — vectorized, the production path.
* ``"reference"`` — pure-Python loops, used by tests as an independent
  oracle and to mirror Caffe's "native and limited BLAS implementation".

Every call is accounted in :class:`~repro.blaslib.dispatch.OpCounter` so the
performance simulator can derive operation counts from real executions.
"""

from repro.blaslib.dispatch import (
    OpCounter,
    backend_name,
    get_backend,
    op_counter,
    use_backend,
)
from repro.blaslib.level1 import (
    asum,
    axpby,
    axpy,
    copy,
    dot,
    nrm2,
    scal,
    set_scalar,
)
from repro.blaslib.gemv import gemv, ger
from repro.blaslib.gemm import gemm
from repro.blaslib.im2col import col2im, im2col

__all__ = [
    "OpCounter",
    "asum",
    "axpby",
    "axpy",
    "backend_name",
    "col2im",
    "copy",
    "dot",
    "gemm",
    "gemv",
    "ger",
    "get_backend",
    "im2col",
    "nrm2",
    "op_counter",
    "scal",
    "set_scalar",
    "use_backend",
]
