"""BLAS / NumPy thread pinning for reproducible wall-clock measurement.

Ambient BLAS threading is the single biggest source of variance in the
BENCH numbers: OpenBLAS (and MKL, BLIS, Accelerate) each spin up their
own thread pool sized from the environment, so a gemm timed on a laptop
with ``OMP_NUM_THREADS`` unset races the coarse-grain thread team the
runtime itself manages.  Every measuring entry point (``bench_plan``,
``bench_fuse``, ``profile``, the perfcheck calibration timer) calls
:func:`pin_blas_threads` *before importing numpy*, pinning the BLAS
pools to one thread so the only parallelism in a measurement is the one
the paper studies.

The knob: an explicitly-set environment variable wins — export
``OPENBLAS_NUM_THREADS=8`` (or any of :data:`BLAS_THREAD_VARS`) before
launching to override the pin; the value in effect is recorded in every
``BENCH_*.json`` timer config.  BLAS pools size themselves when the
library loads, so pinning is only fully effective before numpy's first
import; :func:`pin_blas_threads` reports whether it ran early enough and
the bench schema records that too (``pinned_before_numpy``).

This module deliberately imports nothing heavy — importing it must not
load numpy, or the pin would always come too late.
"""

from __future__ import annotations

import os
import sys
from typing import Dict

#: Environment variables that size a BLAS/SIMD thread pool.
BLAS_THREAD_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "BLIS_NUM_THREADS",
)


def pin_blas_threads(threads: int = 1) -> Dict[str, object]:
    """Pin every known BLAS thread-pool variable to ``threads``.

    Explicitly-set variables are left alone (the documented override
    knob).  Returns the timer-config fragment recorded in BENCH files:
    the value in effect per variable plus ``pinned_before_numpy`` —
    False means numpy (hence the BLAS pool) was already loaded and the
    pin may not take effect until the next process.
    """
    before_numpy = "numpy" not in sys.modules
    in_effect: Dict[str, object] = {}
    for var in BLAS_THREAD_VARS:
        if var not in os.environ:
            os.environ[var] = str(threads)
        in_effect[var] = os.environ[var]
    in_effect["pinned_before_numpy"] = before_numpy
    return in_effect
