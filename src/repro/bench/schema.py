"""The ``repro-bench/1`` envelope: one versioned schema for BENCH files.

``BENCH_plan.json`` (planner speedups), ``BENCH_fuse.json`` (compiler
speedups), ``BENCH_perf.json`` (cost-model calibration), and
``BENCH_serve.json`` (serving latency/throughput, healthy vs chaos)
form the repo's wall-clock regression trajectory — CI diffs successive runs, so
the files must say *where* and *how* they were measured, not just what.
Every file is one envelope::

    {
      "format":  "repro-bench/1",
      "kind":    "plan" | "fuse" | "perf" | "serve",
      "host":    {platform, machine, processor, python, numpy, cpus},
      "git_rev": "<short rev>" | null,
      "timer":   {iters, warmup, clock, blas: {<pin vars>,
                  pinned_before_numpy}},
      "nets":    {<net>: {..., "threads": {"<T>": <entry>}}}
    }

Numbers from different hosts are not comparable — the host fingerprint
is what lets a reader (or CI) refuse the comparison instead of drawing a
false regression.  :func:`validate_bench` checks the envelope and the
kind-specific per-``(net, T)`` entry keys; :func:`load_bench` is the
validating loader every consumer goes through.  Files written by the
pre-envelope tools (``repro-bench-plan/1`` / ``repro-bench-fuse/1``) are
rejected with a pointer to the regenerating tool: wrapping old numbers
in a fresh envelope would fabricate a host fingerprint.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from typing import Dict, Optional

BENCH_FORMAT = "repro-bench/1"

#: Legacy per-tool format strings, recognized only to give a precise
#: migration error.
_LEGACY_FORMATS = {
    "repro-bench-plan/1": "repro.tools.bench_plan",
    "repro-bench-fuse/1": "repro.tools.bench_fuse",
}

#: kind -> keys every per-(net, T) entry must carry.
_ENTRY_KEYS = {
    "plan": ("uniform_us_per_iter", "planned_us_per_iter", "bitwise_match"),
    "fuse": ("uniform_us_per_iter", "planned_us_per_iter",
             "fused_us_per_iter", "bitwise_match"),
    "perf": ("scale", "layers"),
    "serve": ("healthy", "chaos"),
}

#: Keys every per-regime serving record (kind == "serve") must carry.
_SERVE_REGIME_KEYS = (
    "requests", "lost", "duplicated", "statuses",
    "p50_ms", "p90_ms", "p99_ms", "throughput_rps",
)

#: Keys every per-layer calibration record (kind == "perf") must carry.
_PERF_LAYER_KEYS = ("measured_us", "predicted_us", "residual", "noisy")

_HOST_KEYS = ("platform", "machine", "python", "numpy", "cpus")


class BenchSchemaError(ValueError):
    """A BENCH document does not conform to ``repro-bench/1``."""


def host_fingerprint() -> Dict[str, object]:
    """Identify the measuring host (numbers are host-specific)."""
    import platform

    import numpy as np

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor() or None,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": __import__("os").cpu_count(),
    }


def git_rev() -> Optional[str]:
    """Short git revision of the measured tree, or None outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def envelope(kind: str, timer: Dict[str, object],
             nets: Dict[str, object]) -> Dict[str, object]:
    """Assemble a ``repro-bench/1`` document (validated before return)."""
    doc = {
        "format": BENCH_FORMAT,
        "kind": kind,
        "host": host_fingerprint(),
        "git_rev": git_rev(),
        "timer": timer,
        "nets": nets,
    }
    return validate_bench(doc)


def _fail(msg: str) -> None:
    raise BenchSchemaError(msg)


def validate_bench(doc: object) -> Dict[str, object]:
    """Validate a document against ``repro-bench/1``; return it."""
    if not isinstance(doc, dict):
        _fail(f"BENCH document must be a JSON object, got {type(doc).__name__}")
    fmt = doc.get("format")
    if fmt in _LEGACY_FORMATS:
        _fail(
            f"legacy format {fmt!r}: regenerate the file with "
            f"`python -m {_LEGACY_FORMATS[fmt]}` — old numbers cannot be "
            "wrapped in a new envelope without fabricating the host "
            "fingerprint"
        )
    if fmt != BENCH_FORMAT:
        _fail(f"format must be {BENCH_FORMAT!r}, got {fmt!r}")
    kind = doc.get("kind")
    if kind not in _ENTRY_KEYS:
        _fail(f"kind must be one of {sorted(_ENTRY_KEYS)}, got {kind!r}")
    host = doc.get("host")
    if not isinstance(host, dict):
        _fail("host fingerprint missing")
    for key in _HOST_KEYS:
        if key not in host:
            _fail(f"host fingerprint missing key {key!r}")
    if "git_rev" not in doc:
        _fail("git_rev missing (null is fine; absence is not)")
    timer = doc.get("timer")
    if not isinstance(timer, dict):
        _fail("timer config missing")
    for key in ("iters", "warmup", "clock", "blas"):
        if key not in timer:
            _fail(f"timer config missing key {key!r}")
    nets = doc.get("nets")
    if not isinstance(nets, dict) or not nets:
        _fail("nets must be a non-empty object")
    for net, data in nets.items():
        if not isinstance(data, dict):
            _fail(f"nets[{net!r}] must be an object")
        teams = data.get("threads")
        if not isinstance(teams, dict) or not teams:
            _fail(f"nets[{net!r}].threads must be a non-empty object")
        for team, entry in teams.items():
            where = f"nets[{net!r}].threads[{team!r}]"
            try:
                int(team)
            except ValueError:
                _fail(f"{where}: thread count must be an integer string")
            if not isinstance(entry, dict):
                _fail(f"{where} must be an object")
            for key in _ENTRY_KEYS[kind]:
                if key not in entry:
                    _fail(f"{where} missing key {key!r}")
            if kind == "serve":
                for regime in _ENTRY_KEYS["serve"]:
                    record = entry[regime]
                    if not isinstance(record, dict):
                        _fail(f"{where}.{regime} must be an object")
                    for key in _SERVE_REGIME_KEYS:
                        if key not in record:
                            _fail(f"{where}.{regime} missing key {key!r}")
            if kind == "perf":
                layers = entry["layers"]
                if not isinstance(layers, dict) or not layers:
                    _fail(f"{where}.layers must be a non-empty object")
                for lkey, record in layers.items():
                    if not isinstance(record, dict):
                        _fail(f"{where}.layers[{lkey!r}] must be an object")
                    for key in _PERF_LAYER_KEYS:
                        if key not in record:
                            _fail(f"{where}.layers[{lkey!r}] missing "
                                  f"key {key!r}")
    return doc


def load_bench(path) -> Dict[str, object]:
    """Load and validate one BENCH_*.json file."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchSchemaError(f"cannot read {path}: {exc}") from exc
    try:
        return validate_bench(doc)
    except BenchSchemaError as exc:
        raise BenchSchemaError(f"{path}: {exc}") from exc


def dump_bench(doc: Dict[str, object], path) -> None:
    """Validate and write one BENCH_*.json file (stable key order)."""
    validate_bench(doc)
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )
