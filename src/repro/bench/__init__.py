"""Benchmark harness utilities shared by the ``benchmarks/`` suite.

Each benchmark regenerates one of the paper's figures: it prints the
figure's rows/series (and saves them under ``benchmarks/out/``) from the
machine models driven by the real networks, and times a real code path
with pytest-benchmark so the functional runtime is exercised too.

The harness re-exports (``emit``, ``lenet_costs``, ...) load lazily:
importing ``repro.bench`` submodules must not pull numpy, because
:mod:`repro.bench.pinning` has to run *before* numpy loads for the BLAS
thread pin to take effect, and :mod:`repro.bench.schema` is imported by
CI validators that never touch the numeric stack.
"""

_HARNESS_EXPORTS = ("cifar_costs", "emit", "lenet_costs", "models",
                    "output_path")

__all__ = list(_HARNESS_EXPORTS)


def __getattr__(name):
    if name in _HARNESS_EXPORTS:
        from repro.bench import harness

        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
