"""Benchmark harness utilities shared by the ``benchmarks/`` suite.

Each benchmark regenerates one of the paper's figures: it prints the
figure's rows/series (and saves them under ``benchmarks/out/``) from the
machine models driven by the real networks, and times a real code path
with pytest-benchmark so the functional runtime is exercised too.
"""

from repro.bench.harness import (
    emit,
    lenet_costs,
    cifar_costs,
    models,
    output_path,
)

__all__ = ["cifar_costs", "emit", "lenet_costs", "models", "output_path"]
