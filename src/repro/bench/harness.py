"""Shared state and output helpers for the figure benchmarks."""

from __future__ import annotations

import os
from functools import lru_cache
from typing import List, Tuple

from repro.simulator import (
    CPUModel,
    GPUModel,
    K40_CUDNN,
    K40_PLAIN,
    net_costs,
)
from repro.simulator.cost_model import LayerCost
from repro.zoo import build_net

#: Where figure tables are written (next to the benchmarks).
OUT_DIR = os.environ.get(
    "REPRO_BENCH_OUT",
    os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))), "benchmarks", "out"),
)


@lru_cache(maxsize=None)
def lenet_costs() -> Tuple[LayerCost, ...]:
    net = build_net("lenet")
    net.forward()
    return tuple(net_costs(net))


@lru_cache(maxsize=None)
def cifar_costs() -> Tuple[LayerCost, ...]:
    net = build_net("cifar10")
    net.forward()
    return tuple(net_costs(net))


@lru_cache(maxsize=None)
def models() -> Tuple[CPUModel, GPUModel, GPUModel]:
    """(CPU, plain-GPU, cuDNN-GPU) models with a shared host."""
    cpu = CPUModel()
    return cpu, GPUModel(K40_PLAIN, host=cpu), GPUModel(K40_CUDNN, host=cpu)


def output_path(name: str) -> str:
    os.makedirs(OUT_DIR, exist_ok=True)
    return os.path.join(OUT_DIR, name)


def emit(figure: str, text: str) -> None:
    """Print a figure table and persist it under ``benchmarks/out/``."""
    banner = f"\n===== {figure} =====\n"
    print(banner + text)
    with open(output_path(f"{figure}.txt"), "w") as handle:
        handle.write(text + "\n")
