"""Fault-tolerant training runtime (PR 5).

Three pieces, certified by the ``rescheck`` analysis gate (RS codes):

* :mod:`repro.resilience.checkpoint` — crash-consistent checkpointing:
  atomic temp-file + ``os.replace`` writes inside a CRC-32-checksummed
  container, capturing the *complete* trajectory state (parameters,
  solver history, iteration, LR-policy identity, every declared layer
  RNG stream, and the batch-source cursor) so a resume-at-iter-k is
  bitwise identical to the uninterrupted run.
* :mod:`repro.resilience.guards` — per-iteration NaN/Inf sentinels over
  losses, activations, diffs and post-update parameters, with
  ``halt`` / ``skip-batch`` / ``rollback`` policies backed by a
  pre-iteration shadow copy; worker exceptions are contained so a crash
  mid-backward can never leave the net/solver torn.
* :mod:`repro.resilience.faults` — a deterministic fault-injection
  harness (seedable :class:`~repro.resilience.faults.FaultPlan`) so
  every recovery path is exercised by tests rather than hoped-for.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointCorrupt,
    CheckpointError,
    CheckpointFormatError,
    CheckpointMismatch,
    atomic_write_bytes,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.faults import (
    BarrierSkip,
    ChunkAbort,
    FaultPlan,
    InjectedFault,
    LayerRaise,
    LockOrderInversion,
    NaNBlob,
    PoisonSample,
    RequestStorm,
    SlowChunk,
    corrupt_checkpoint,
    inject,
    truncate_checkpoint,
)
from repro.resilience.guards import (
    GUARD_POLICIES,
    HALT,
    ROLLBACK,
    SKIP_BATCH,
    GuardEvent,
    HealthGuard,
    NumericFault,
)

__all__ = [
    "BarrierSkip",
    "CHECKPOINT_VERSION",
    "CheckpointCorrupt",
    "CheckpointError",
    "CheckpointFormatError",
    "CheckpointMismatch",
    "ChunkAbort",
    "LockOrderInversion",
    "PoisonSample",
    "RequestStorm",
    "SlowChunk",
    "FaultPlan",
    "GUARD_POLICIES",
    "GuardEvent",
    "HALT",
    "HealthGuard",
    "InjectedFault",
    "LayerRaise",
    "NaNBlob",
    "NumericFault",
    "ROLLBACK",
    "SKIP_BATCH",
    "atomic_write_bytes",
    "corrupt_checkpoint",
    "inject",
    "load_checkpoint",
    "save_checkpoint",
    "truncate_checkpoint",
]
