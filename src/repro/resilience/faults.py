"""Deterministic fault injection for the resilience test-bed.

Every recovery path in :mod:`repro.resilience` is exercised by tests,
not hoped-for.  A :class:`FaultPlan` lists faults to fire at exact
iterations; :func:`inject` installs the plan on a solver (wrapping its
executor and patching the targeted layer instances) and removes every
patch on exit, so the same solver/net can run clean afterwards.

Fault classes:

* :class:`NaNBlob` — overwrite a named activation blob with NaN right
  after the forward pass of iteration ``k`` (models a numeric blow-up;
  exercised against the :class:`~repro.resilience.guards.HealthGuard`
  sentinels and policies).
* :class:`LayerRaise` — raise :class:`InjectedFault` from a named
  layer's forward or backward at iteration ``k`` (models a layer bug /
  OOM; exercises exception containment).
* :class:`ChunkAbort` — raise from *one thread's chunk* of a named
  layer's forward inside the parallel region at iteration ``k`` (models
  a dying worker; exercises :class:`~repro.core.team.ThreadTeam` abort,
  barrier recovery, and team reuse).  Fires on the first worker-thread
  chunk when the team has workers, on the master's first chunk for a
  one-thread team; it never fires under a plain ``SequentialExecutor``
  (no parallel region exists to abort).
* :class:`LockOrderInversion` / :class:`BarrierSkip` — *schedule-level*
  defect descriptors consumed by the synccheck certifier
  (:mod:`repro.analysis.synccheck`), not by :func:`inject`: each one
  describes a known-bad synchronization program (threads nesting the
  critical and ordered constructs in opposite orders; one thread
  skipping a region barrier) that the interleaving model checker must
  rediscover as a deadlock with a replayable schedule.  They ride in a
  :class:`FaultPlan` so seeded-defect certification shares the one
  fault vocabulary, but :func:`inject` ignores them (there is no layer
  or iteration to patch).
* :class:`RequestStorm` / :class:`SlowChunk` / :class:`PoisonSample` —
  *serve-level* defect descriptors consumed by the servecheck chaos
  harness (:mod:`repro.serve.chaos`): an overload burst, a straggler
  chunk stall, and a NaN-poisoned client payload, replayed
  deterministically against the inference service.  Like the
  schedule-level descriptors they ride in a :class:`FaultPlan` (one
  fault vocabulary) and are ignored by :func:`inject`.
* :func:`corrupt_checkpoint` / :func:`truncate_checkpoint` — damage a
  checkpoint file deterministically (seeded byte flips / truncation) to
  exercise the CRC-32 and header verification paths.

Everything is deterministic: faults key on the solver's iteration
counter, and file damage is driven by ``random.Random(seed)``.
"""

from __future__ import annotations

import contextlib
import random
import threading
from dataclasses import dataclass
from typing import Iterator, List, Tuple


class InjectedFault(RuntimeError):
    """The sentinel exception raised by LayerRaise / ChunkAbort faults.

    Tests and the rescheck certifier match on this type to tell an
    injected failure from a genuine bug in the recovery machinery.
    """


# ---------------------------------------------------------------------------
# fault descriptors
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class NaNBlob:
    """Poison blob ``blob`` with NaN after forward of iteration ``iteration``."""

    blob: str
    iteration: int


@dataclass(frozen=True)
class LayerRaise:
    """Raise :class:`InjectedFault` inside layer ``layer`` at iteration
    ``iteration``, during ``phase`` ("forward" or "backward")."""

    layer: str
    iteration: int
    phase: str = "forward"

    def __post_init__(self) -> None:
        if self.phase not in ("forward", "backward"):
            raise ValueError(
                f"LayerRaise phase must be 'forward' or 'backward', "
                f"got {self.phase!r}"
            )


@dataclass(frozen=True)
class ChunkAbort:
    """Abort one thread's forward chunk of layer ``layer`` at iteration
    ``iteration`` (the first worker-thread chunk; the master's when the
    team is solo)."""

    layer: str
    iteration: int


@dataclass(frozen=True)
class RequestStorm:
    """Seeded *serve-level* defect descriptor: when trace replay reaches
    request index ``at_request``, submit ``count`` extra back-to-back
    requests (an overload burst).  Interpreted by the servecheck chaos
    harness (:mod:`repro.serve.chaos`), never by :func:`inject` — the
    certification gate requires every storm request to receive a coded
    shed/timeout/ok response, i.e. overload degrades loudly, not by
    dropping work on the floor."""

    at_request: int
    count: int = 8


@dataclass(frozen=True)
class SlowChunk:
    """Seeded serve-level defect descriptor: the first chunk of layer
    ``layer`` in served batch ``batch`` stalls for ``delay_s`` seconds
    (a straggler thread / cold page / noisy neighbour).  Interpreted by
    the servecheck chaos harness, which injects the stall through the
    serve runtime's *injected clock*, so certification replays it in
    virtual time.  Never consumed by :func:`inject`."""

    layer: str
    batch: int
    delay_s: float = 0.05


@dataclass(frozen=True)
class PoisonSample:
    """Seeded serve-level defect descriptor: the sample of trace request
    index ``request`` is replaced with NaNs before submission (a
    malformed client payload).  The serve runtime's admission sentinels
    must quarantine exactly that request with a coded response while the
    rest of its batch is served bit-exact.  Interpreted by the
    servecheck chaos harness, never by :func:`inject`."""

    request: int


@dataclass(frozen=True)
class LockOrderInversion:
    """Seeded synchronization defect: inside one parallel region, even
    threads run ``ordered(critical(...))`` while odd threads run
    ``critical(ordered(...))`` — a classic ABBA inversion between the
    team's ordered turn and its critical lock.  Interpreted by the
    synccheck model checker (never by :func:`inject`)."""

    threads: int = 2


@dataclass(frozen=True)
class BarrierSkip:
    """Seeded synchronization defect: thread ``skip_tid`` skips the
    first of two region barriers every other thread waits on — barrier
    divergence that strands the team.  Interpreted by the synccheck
    model checker (never by :func:`inject`)."""

    threads: int = 2
    skip_tid: int = 1


class FaultPlan:
    """An ordered, seeded collection of fault descriptors."""

    def __init__(self, *faults, seed: int = 0) -> None:
        for fault in faults:
            if not isinstance(fault, (NaNBlob, LayerRaise, ChunkAbort,
                                      LockOrderInversion, BarrierSkip,
                                      RequestStorm, SlowChunk,
                                      PoisonSample)):
                raise TypeError(
                    f"FaultPlan entries must be NaNBlob / LayerRaise / "
                    f"ChunkAbort / LockOrderInversion / BarrierSkip / "
                    f"RequestStorm / SlowChunk / PoisonSample, "
                    f"got {type(fault).__name__}"
                )
        self.faults: Tuple = faults
        self.seed = seed
        self.rng = random.Random(seed)

    def __iter__(self):
        return iter(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(repr(f) for f in self.faults)
        return f"FaultPlan({inner}, seed={self.seed})"


# ---------------------------------------------------------------------------
# the injector
# ---------------------------------------------------------------------------
class _ExecutorProxy:
    """Wraps the solver's executor; fault hooks key on solver.iteration."""

    def __init__(self, inner, injector: "_Injector") -> None:
        self._inner = inner
        self._injector = injector

    def forward(self, net) -> float:
        import numpy as np

        loss = self._inner.forward(net)
        if net is self._injector.solver.net:
            iteration = self._injector.solver.iteration
            for fault in self._injector.plan:
                if (isinstance(fault, NaNBlob)
                        and fault.iteration == iteration):
                    blob = net.blob(fault.blob)
                    blob.flat_data[:] = np.nan
                    blob.mark_host_data_dirty()
        return loss

    def backward(self, net) -> None:
        self._inner.backward(net)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class _Injector:
    """Installs/uninstalls a FaultPlan on one solver."""

    def __init__(self, solver, plan: FaultPlan) -> None:
        self.solver = solver
        self.plan = plan
        self._patched: List[Tuple[object, str]] = []
        self._abort_lock = threading.Lock()
        self._abort_fired = set()  # faults that already fired

    # -- install ---------------------------------------------------------
    def install(self) -> None:
        self._orig_executor = self.solver.executor
        self.solver.executor = _ExecutorProxy(self._orig_executor, self)
        # A one-thread *team* still runs chunks (on the master thread),
        # so the abort fires there; a plain SequentialExecutor has no
        # parallel region at all — the fault stays silent.
        num_threads = getattr(self._orig_executor, "num_threads", None)
        solo = num_threads is not None and num_threads <= 1
        for fault in self.plan:
            if isinstance(fault, LayerRaise):
                layer = self.solver.net.layer(fault.layer)
                if fault.phase == "forward":
                    self._patch_raise(layer, "forward", fault)
                    self._patch_raise(layer, "forward_chunk", fault)
                else:
                    self._patch_raise(layer, "backward", fault)
                    self._patch_raise(layer, "backward_loops", fault)
            elif isinstance(fault, ChunkAbort):
                layer = self.solver.net.layer(fault.layer)
                self._patch_chunk_abort(layer, fault, solo)

    def _patch_raise(self, layer, method: str, fault: LayerRaise) -> None:
        original = getattr(layer, method)
        injector = self

        def patched(*args, **kwargs):
            if injector.solver.iteration == fault.iteration:
                raise InjectedFault(
                    f"injected {fault.phase} failure in layer "
                    f"{fault.layer!r} at iteration {fault.iteration}"
                )
            return original(*args, **kwargs)

        setattr(layer, method, patched)
        self._patched.append((layer, method))

    def _patch_chunk_abort(self, layer, fault: ChunkAbort,
                           solo: bool) -> None:
        original = layer.forward_chunk
        injector = self

        def patched(bottom, top, lo, hi):
            if injector.solver.iteration == fault.iteration:
                on_worker = threading.current_thread().name.startswith(
                    "team-worker-"
                )
                if on_worker or solo:
                    with injector._abort_lock:
                        first = fault not in injector._abort_fired
                        if first:
                            injector._abort_fired.add(fault)
                    if first:
                        raise InjectedFault(
                            f"injected chunk abort in layer "
                            f"{fault.layer!r} [{lo}:{hi}] on "
                            f"{threading.current_thread().name} at "
                            f"iteration {fault.iteration}"
                        )
            return original(bottom, top, lo, hi)

        layer.forward_chunk = patched
        self._patched.append((layer, "forward_chunk"))

    # -- uninstall -------------------------------------------------------
    def uninstall(self) -> None:
        self.solver.executor = self._orig_executor
        for layer, method in self._patched:
            # The patch lives in the instance dict, shadowing the class
            # method; deleting it restores the original behaviour.
            layer.__dict__.pop(method, None)
        self._patched.clear()


@contextlib.contextmanager
def inject(solver, plan: FaultPlan) -> Iterator[_Injector]:
    """Context manager: arm ``plan`` on ``solver``, disarm on exit.

    While armed, the solver's executor is wrapped (for NaN injection)
    and each targeted layer instance carries patched methods.  On exit
    every patch is removed, so the solver runs clean again — injected
    state (a poisoned blob, half-run diffs) is the *recovery machinery's*
    problem, exactly as a real fault would be.
    """
    injector = _Injector(solver, plan)
    injector.install()
    try:
        yield injector
    finally:
        injector.uninstall()


# ---------------------------------------------------------------------------
# checkpoint-file damage
# ---------------------------------------------------------------------------
def corrupt_checkpoint(path: str, seed: int = 0, nbytes: int = 8) -> None:
    """Deterministically flip ``nbytes`` payload bytes of ``path``.

    Offsets are drawn from ``random.Random(seed)`` past the container
    header, so the damage lands in the checksummed payload and must be
    caught by CRC-32 verification (not by a lucky header check).
    """
    with open(path, "rb") as handle:
        blob = bytearray(handle.read())
    if not blob:
        raise ValueError(f"cannot corrupt empty file {path!r}")
    start = 18 if len(blob) > 18 else 0  # skip the RCKP header when present
    rng = random.Random(seed)
    for _ in range(max(1, nbytes)):
        offset = rng.randrange(start, len(blob))
        blob[offset] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(blob)


def truncate_checkpoint(path: str, fraction: float = 0.5) -> None:
    """Cut ``path`` down to ``fraction`` of its bytes (torn write /
    full-disk model).  ``fraction`` must be in [0, 1)."""
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    with open(path, "rb") as handle:
        blob = handle.read()
    with open(path, "wb") as handle:
        handle.write(blob[: int(len(blob) * fraction)])
