"""Crash-consistent checkpointing for the training runtime.

Two failure modes killed "resume" before this module existed: a crash
*during* the write tore the snapshot file (``np.savez`` writes in place,
so the previous good checkpoint was already gone), and a *successful*
write silently omitted trajectory state — the LR-policy identity, every
layer's RNG stream, and the data-source cursor — so the resumed run
forked from the certified trajectory without any error.

The fixes:

* **Atomic writes** — every snapshot goes to a temp file in the target
  directory, is flushed and fsynced, then ``os.replace``d over the
  destination.  A crash at any point leaves either the old file or the
  new one, never a torn hybrid (:func:`atomic_write_bytes`).
* **Checksummed container** — full checkpoints are wrapped in a small
  versioned header (magic ``RCKP``, format version, CRC-32, payload
  length) so corruption and truncation are detected *before* the
  payload is handed to ``np.load`` (:class:`CheckpointCorrupt` names
  the file and the expected/actual digest).  Pre-resilience ``.npz``
  snapshots are rejected with a versioned-header error instead of
  resuming with silently missing state (:class:`CheckpointFormatError`).
* **Complete state** — :func:`save_checkpoint` captures parameters,
  solver history, the iteration counter, the loss history, the
  LR-policy identity (verified on resume), every layer RNG stream
  declared capturable via :meth:`repro.framework.layer.Layer.rng_state`,
  and every batch source's cursor (``get_state``/``set_state``).
  :func:`load_checkpoint` refuses to restore when any of those would be
  lost (:class:`CheckpointMismatch`) — a resume either reproduces the
  trajectory bitwise or fails loudly.

Weights-only ``.npz`` files (``Net.save``) stay plain NumPy archives for
interchange, but are written atomically with an embedded ``__crc32__``
digest entry that :func:`load_npz_verified` checks.
"""

from __future__ import annotations

import io
import json
import os
import struct
import tempfile
import zipfile
import zlib
from typing import Dict, List, Optional

import numpy as np

#: Container magic + current checkpoint format version.
MAGIC = b"RCKP"
CHECKPOINT_VERSION = 1

#: Header layout: magic(4s) | version(u16) | crc32(u32) | payload_len(u64).
_HEADER = struct.Struct("<4sHIQ")

#: Digest entry embedded in weights-only archives.
DIGEST_KEY = "__crc32__"


class CheckpointError(RuntimeError):
    """Base class of every checkpoint failure."""


class CheckpointCorrupt(CheckpointError):
    """The file's bytes do not match its recorded digest (or cannot be
    parsed at all).  Carries the path and, when a digest comparison was
    possible, the expected/actual CRC-32 values."""

    def __init__(
        self,
        path: str,
        reason: str,
        expected: Optional[int] = None,
        actual: Optional[int] = None,
    ) -> None:
        detail = f"checkpoint {path!r} is corrupt: {reason}"
        if expected is not None and actual is not None:
            detail += (
                f" (expected CRC-32 {expected:#010x}, got {actual:#010x})"
            )
        super().__init__(detail)
        self.path = path
        self.expected = expected
        self.actual = actual


class CheckpointFormatError(CheckpointError):
    """The file is not a current-format checkpoint (alien file, or a
    pre-resilience snapshot missing RNG/cursor state)."""


class CheckpointMismatch(CheckpointError):
    """The checkpoint is intact but does not fit the target solver —
    restoring it would silently fork the certified trajectory."""


# ---------------------------------------------------------------------------
# atomic byte-level writer (the single state-write primitive)
# ---------------------------------------------------------------------------
def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` so a crash can never tear the file.

    The bytes go to a temp file in the same directory (same filesystem,
    so the final ``os.replace`` is atomic), are flushed and fsynced,
    then renamed over the destination.  Either the previous file or the
    complete new one survives any crash point.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".tmp."
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    try:  # best effort: persist the rename itself
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        pass


# ---------------------------------------------------------------------------
# checksummed container (full checkpoints)
# ---------------------------------------------------------------------------
def write_container(path: str, payload: bytes,
                    version: int = CHECKPOINT_VERSION) -> None:
    """Atomically write ``payload`` wrapped in the checksummed header."""
    header = _HEADER.pack(MAGIC, version, zlib.crc32(payload), len(payload))
    atomic_write_bytes(path, header + payload)


def read_container(path: str) -> bytes:
    """Read and verify a container file; returns the payload bytes.

    Verification order: magic/version first (so alien and old-format
    files get a :class:`CheckpointFormatError` naming the problem), then
    length, then the CRC-32 digest — all *before* the payload reaches
    any parser.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    if blob[:4] == b"PK\x03\x04":
        raise CheckpointFormatError(
            f"{path!r} is a pre-resilience (unversioned) .npz snapshot: it "
            "carries no checksum, no RNG streams and no data-source cursor, "
            "so resuming from it would silently fork the trajectory; "
            "re-create it with the current save_state/save_checkpoint"
        )
    if len(blob) < _HEADER.size:
        # Zero-length and header-truncated files must never surface as a
        # bare struct.error/EOFError from the unpack below: name the path
        # and the byte count so a torn write is diagnosable at a glance.
        raise CheckpointFormatError(
            f"{path!r} is truncated before the checkpoint header ends: the "
            f"file holds {len(blob)} byte(s) but the {MAGIC!r} versioned "
            f"header alone is {_HEADER.size} bytes"
        )
    if blob[:4] != MAGIC:
        raise CheckpointFormatError(
            f"{path!r} is not a checkpoint container (bad magic); expected "
            f"the {MAGIC!r} versioned header"
        )
    magic, version, crc, length = _HEADER.unpack_from(blob)
    if version > CHECKPOINT_VERSION:
        raise CheckpointFormatError(
            f"{path!r} has checkpoint format version {version}; this "
            f"runtime reads up to version {CHECKPOINT_VERSION}"
        )
    payload = blob[_HEADER.size:]
    if len(payload) != length:
        raise CheckpointCorrupt(
            path,
            f"truncated payload: header promises {length} bytes, "
            f"file holds {len(payload)}",
        )
    actual = zlib.crc32(payload)
    if actual != crc:
        raise CheckpointCorrupt(
            path, "payload bytes do not match the recorded digest",
            expected=crc, actual=actual,
        )
    return payload


def atomic_savez(path: str, arrays: Dict[str, np.ndarray]) -> None:
    """Serialize ``arrays`` to an npz payload inside the container."""
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    write_container(path, buffer.getvalue())


def checked_load(path: str) -> Dict[str, np.ndarray]:
    """Load a container written by :func:`atomic_savez`."""
    payload = read_container(path)
    try:
        with np.load(io.BytesIO(payload)) as archive:
            return {key: archive[key] for key in archive.files}
    except (zipfile.BadZipFile, OSError, ValueError, EOFError) as exc:
        # The digest matched, so this is a writer bug, not bit rot — but
        # still name the file rather than leaking a raw zipfile error.
        raise CheckpointCorrupt(
            path, f"digest-valid payload failed to parse: {exc}"
        ) from exc


# ---------------------------------------------------------------------------
# weights-only archives (Net.save interchange format)
# ---------------------------------------------------------------------------
def _digest_arrays(arrays: Dict[str, np.ndarray]) -> int:
    """CRC-32 over a canonical serialization of the array dict."""
    crc = 0
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        meta = f"{name}|{arr.dtype.str}|{arr.shape}".encode()
        crc = zlib.crc32(meta, crc)
        crc = zlib.crc32(arr.tobytes(), crc)
    return crc


def atomic_savez_with_digest(path: str, arrays: Dict[str, np.ndarray]) -> None:
    """Atomically write a plain ``.npz`` with an embedded CRC-32 entry.

    The file stays ``np.load``-compatible (the digest rides along as the
    ``__crc32__`` member) while :func:`load_npz_verified` can detect
    corruption of any member.
    """
    if DIGEST_KEY in arrays:
        raise ValueError(f"array name {DIGEST_KEY!r} is reserved")
    payload = dict(arrays)
    payload[DIGEST_KEY] = np.uint32(_digest_arrays(arrays))
    buffer = io.BytesIO()
    np.savez(buffer, **payload)
    atomic_write_bytes(path, buffer.getvalue())


def load_npz_verified(path: str) -> Dict[str, np.ndarray]:
    """Load a ``.npz``, verifying the embedded digest when present.

    Truncated or garbled archives raise :class:`CheckpointCorrupt`
    naming the file instead of a raw ``zipfile`` error; a digest
    mismatch reports the expected/actual CRC-32.
    """
    try:
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
    except (zipfile.BadZipFile, OSError, ValueError, EOFError) as exc:
        raise CheckpointCorrupt(
            path, f"unreadable archive ({exc}); the file is truncated or "
            "garbled"
        ) from exc
    digest = arrays.pop(DIGEST_KEY, None)
    if digest is not None:
        expected = int(digest)
        actual = _digest_arrays(arrays)
        if actual != expected:
            raise CheckpointCorrupt(
                path, "array bytes do not match the embedded digest",
                expected=expected, actual=actual,
            )
    return arrays


# ---------------------------------------------------------------------------
# full trajectory-state capture / restore
# ---------------------------------------------------------------------------
def _json_blob(value) -> np.ndarray:
    return np.frombuffer(json.dumps(value).encode(), dtype=np.uint8)


def _json_unblob(arr: np.ndarray):
    return json.loads(bytes(np.asarray(arr, dtype=np.uint8)).decode())


def _lr_policy_identity(params) -> dict:
    """The fields that determine the learning rate at every iteration.
    Checked on resume: a mismatch means the resumed trajectory could not
    match the original no matter what state was restored."""
    return {
        "lr_policy": params.lr_policy,
        "base_lr": params.base_lr,
        "gamma": params.gamma,
        "power": params.power,
        "stepsize": params.stepsize,
        "stepvalues": list(params.stepvalues),
        "max_iter": params.max_iter,
    }


def _rng_layers(net) -> Dict[str, object]:
    """Layers whose live RNG stream must ride in the checkpoint."""
    out = {}
    for layer in net.layers:
        state = layer.rng_state()
        if state is not None:
            out[layer.name] = state
    return out


def _source_layers(net) -> Dict[str, object]:
    """Data layers backed by a batch source with a capturable cursor."""
    out = {}
    for layer in net.layers:
        source = getattr(layer, "source", None)
        if source is not None and hasattr(source, "get_state"):
            out[layer.name] = source
    return out


def capture_state(solver) -> Dict[str, np.ndarray]:
    """Everything a bitwise resume needs, as an array dict."""
    net = solver.net
    meta = {
        "checkpoint_version": CHECKPOINT_VERSION,
        "iteration": solver.iteration,
        "solver_type": solver.params.type,
        "lr_policy": _lr_policy_identity(solver.params),
    }
    arrays: Dict[str, np.ndarray] = {"__meta__": _json_blob(meta)}
    for layer_name, layer_arrays in net.state_dict().items():
        for i, arr in enumerate(layer_arrays):
            arrays[f"param::{layer_name}::{i}"] = arr
    for i, history in enumerate(solver.history):
        arrays[f"history::{i}"] = history
    arrays["__loss_history__"] = np.asarray(
        solver.loss_history, dtype=np.float64
    )
    for name, state in _rng_layers(net).items():
        arrays[f"rng::{name}"] = _json_blob(state)
    for name, source in _source_layers(net).items():
        arrays[f"source::{name}"] = _json_blob(source.get_state())
    return arrays


def restore_state(solver, arrays: Dict[str, np.ndarray], path: str) -> None:
    """Restore a :func:`capture_state` dict into ``solver``, verifying
    that nothing is silently lost in either direction."""
    if "__meta__" not in arrays:
        raise CheckpointFormatError(
            f"{path!r} carries no checkpoint metadata; it is not a "
            "full-state checkpoint"
        )
    meta = _json_unblob(arrays["__meta__"])
    version = int(meta.get("checkpoint_version", 0))
    if version != CHECKPOINT_VERSION:
        raise CheckpointFormatError(
            f"{path!r} has state-layout version {version}; this runtime "
            f"restores version {CHECKPOINT_VERSION}"
        )
    if str(meta["solver_type"]).lower() != solver.params.type.lower():
        raise CheckpointMismatch(
            f"{path!r} was saved by a {meta['solver_type']!r} solver but "
            f"is being restored into a {solver.params.type!r} solver; the "
            "update rules differ, so the trajectories would fork"
        )
    saved_lr = meta["lr_policy"]
    live_lr = _lr_policy_identity(solver.params)
    diffs = [
        f"{key}: saved {saved_lr.get(key)!r} != live {live_lr[key]!r}"
        for key in live_lr if saved_lr.get(key) != live_lr[key]
    ]
    if diffs:
        raise CheckpointMismatch(
            f"{path!r} LR-policy state disagrees with the solver "
            f"({'; '.join(diffs)}); resuming would silently change the "
            "learning-rate schedule"
        )

    net = solver.net
    param_state: Dict[str, List] = {}
    history_seen = set()
    rng_states: Dict[str, object] = {}
    source_states: Dict[str, object] = {}
    for key, value in arrays.items():
        if key.startswith("param::"):
            _, layer_name, index = key.split("::")
            param_state.setdefault(layer_name, []).append((int(index), value))
        elif key.startswith("history::"):
            index = int(key.split("::")[1])
            if index >= len(solver.history):
                raise CheckpointMismatch(
                    f"{path!r} has solver-history slot {index} but the "
                    f"solver only has {len(solver.history)}"
                )
            history_seen.add(index)
        elif key.startswith("rng::"):
            rng_states[key.split("::", 1)[1]] = _json_unblob(value)
        elif key.startswith("source::"):
            source_states[key.split("::", 1)[1]] = _json_unblob(value)

    expected_params = set(net.state_dict())
    if set(param_state) != expected_params:
        missing = expected_params - set(param_state)
        extra = set(param_state) - expected_params
        raise CheckpointMismatch(
            f"{path!r} parameter layers do not match the net "
            f"(missing: {sorted(missing)}, unexpected: {sorted(extra)})"
        )
    if history_seen != set(range(len(solver.history))):
        raise CheckpointMismatch(
            f"{path!r} holds {len(history_seen)} solver-history slots, the "
            f"solver has {len(solver.history)}"
        )
    expected_rng = set(_rng_layers(net))
    if set(rng_states) != expected_rng:
        raise CheckpointMismatch(
            f"{path!r} RNG streams {sorted(rng_states)} do not match the "
            f"net's capturable streams {sorted(expected_rng)}; restoring "
            "would fork a random stream (e.g. Dropout's mask sequence)"
        )
    sources = _source_layers(net)
    if set(source_states) != set(sources):
        raise CheckpointMismatch(
            f"{path!r} data-source cursors {sorted(source_states)} do not "
            f"match the net's sources {sorted(sources)}; the resumed run "
            "would replay or skip batches"
        )

    # All checks passed — mutate the solver.
    solver.iteration = int(meta["iteration"])
    net.load_state_dict({
        name: [arr for _, arr in sorted(pairs)]
        for name, pairs in param_state.items()
    })
    for key, value in arrays.items():
        if key.startswith("history::"):
            solver.history[int(key.split("::")[1])][:] = value
    solver.loss_history = [
        float(v) for v in arrays.get("__loss_history__", ())
    ]
    for name, state in rng_states.items():
        net.layer(name).set_rng_state(state)
    for name, state in source_states.items():
        sources[name].set_state(state)


def save_checkpoint(solver, path: str) -> None:
    """Atomically write the solver's complete trajectory state."""
    atomic_savez(path, capture_state(solver))


def load_checkpoint(solver, path: str) -> None:
    """Verify and restore a :func:`save_checkpoint` file into ``solver``."""
    restore_state(solver, checked_load(path), path)
