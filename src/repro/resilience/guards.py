"""Numeric health guards: per-iteration NaN/Inf sentinels for training.

A long run dies in one of two ways: an exception tears the net mid
update, or the trajectory silently fills with NaN/Inf and every
subsequent iteration is wasted.  :class:`HealthGuard` wraps one solver
iteration with both defenses:

* **Sentinels** — after forward+backward it scans the loss, every
  activation blob, and every parameter diff; after ``apply_update`` it
  scans the post-update parameters.  The first non-finite value found
  becomes a :class:`GuardEvent`.
* **Shadow copy** — before the iteration it copies the parameters and
  the solver history (and nothing else: RNG streams and data cursors
  are deliberately *not* touched, so a rolled-back iteration consumes
  its batch and its random draws exactly once and the streams never
  fork).  The shadow backs three policies:

  - ``halt`` — restore the last good state, clear diffs, raise
    :class:`NumericFault`.  The solver is left checkpointable.
  - ``skip-batch`` — a poisoned batch detected *before* the update is
    simply not applied; the iteration still counts (LR schedule and
    loss history stay aligned).  Corruption detected *after* the update
    escalates to halt — an applied update cannot be "skipped".
  - ``rollback`` — any detection restores the shadow and training
    continues on the next batch.

  An exception escaping forward/backward (e.g. a
  :class:`~repro.core.team.WorkerError` from an aborted parallel
  region) is always contained the same way regardless of policy: shadow
  restored, diffs cleared, then re-raised — the solver can never be
  left torn.

On a healthy iteration the guard performs exactly the operations of the
unguarded path in the same order (the scans are read-only), so guarded
and unguarded runs are bitwise identical until the first fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

#: Recognised policy names (CLI spelling).
HALT = "halt"
SKIP_BATCH = "skip-batch"
ROLLBACK = "rollback"
GUARD_POLICIES = (HALT, SKIP_BATCH, ROLLBACK)


@dataclass(frozen=True)
class GuardEvent:
    """One sentinel detection (or contained exception)."""

    iteration: int
    stage: str  #: "loss" | "activation" | "diff" | "param" | "exception"
    detail: str  #: what was non-finite (blob name, loss value, ...)
    policy: str
    action: str  #: "halt" | "skip-batch" | "rollback" | "contain"

    def __str__(self) -> str:
        return (
            f"iteration {self.iteration}: non-finite {self.stage} "
            f"({self.detail}) -> {self.action}"
        )


class NumericFault(ArithmeticError):
    """Raised by the ``halt`` policy (and post-update ``skip-batch``
    escalation); carries the triggering :class:`GuardEvent`."""

    def __init__(self, event: GuardEvent) -> None:
        super().__init__(
            f"numeric fault at {event}; parameters and solver history were "
            "restored to the last healthy iteration"
        )
        self.event = event


@dataclass
class _Shadow:
    """Pre-iteration copy of everything ``apply_update`` mutates."""

    params: List[np.ndarray] = field(default_factory=list)
    history: List[np.ndarray] = field(default_factory=list)


class HealthGuard:
    """Per-iteration NaN/Inf sentinel with a recovery policy.

    Install on a solver (``solver.guard = HealthGuard(...)``); the
    solver then routes every iteration of :meth:`Solver.step
    <repro.framework.solvers.base.Solver.step>` through
    :meth:`step`.

    Parameters
    ----------
    policy:
        One of :data:`GUARD_POLICIES`.
    check_activations:
        Scan every net blob's data after forward+backward (default on;
        turn off to check only loss / diffs / params).
    """

    def __init__(self, policy: str = HALT,
                 check_activations: bool = True) -> None:
        if policy not in GUARD_POLICIES:
            raise ValueError(
                f"unknown guard policy {policy!r}; expected one of "
                f"{GUARD_POLICIES}"
            )
        self.policy = policy
        self.check_activations = check_activations
        #: Every detection / containment, in order.
        self.events: List[GuardEvent] = []

    # ------------------------------------------------------------------
    # the guarded iteration
    # ------------------------------------------------------------------
    def step(self, solver) -> float:
        """Run one guarded training iteration; returns the loss."""
        solver._maybe_test()
        shadow = self._snapshot(solver)
        try:
            loss = solver._forward_backward()
        except BaseException:
            # Containment: whatever blew up mid-pass (worker abort,
            # layer exception, keyboard interrupt), the solver must not
            # be left with half-accumulated diffs or torn parameters.
            self._restore(solver, shadow)
            solver.net.clear_param_diffs()
            self.events.append(GuardEvent(
                solver.iteration, "exception",
                "exception escaped forward/backward; state restored",
                self.policy, "contain",
            ))
            raise

        event = self._scan_pre_update(solver, loss)
        if event is None:
            solver.apply_update()
            event = self._scan_params(solver)
            if event is None:
                return solver._finish_iteration(loss)
            # The update itself produced non-finite parameters.  Only
            # rollback can recover; skip-batch has nothing left to skip.
            self._restore(solver, shadow)
            solver.net.clear_param_diffs()
            if self.policy == ROLLBACK:
                self.events.append(event)
                return solver._finish_iteration(loss)
            halted = GuardEvent(
                event.iteration, event.stage, event.detail,
                self.policy, "halt",
            )
            self.events.append(halted)
            raise NumericFault(halted)

        # Poison detected before the update was applied.
        if self.policy == HALT:
            solver.net.clear_param_diffs()
            self.events.append(event)
            raise NumericFault(event)
        # skip-batch and rollback agree here: the update is discarded,
        # the iteration still counts (LR schedule stays aligned), and
        # neither the RNG streams nor the batch cursor are rewound.
        solver.net.clear_param_diffs()
        if self.policy == ROLLBACK:
            self._restore(solver, shadow)
        self.events.append(event)
        return solver._finish_iteration(loss)

    # ------------------------------------------------------------------
    # sentinels (read-only scans)
    # ------------------------------------------------------------------
    def _scan_pre_update(self, solver, loss: float) -> Optional[GuardEvent]:
        action = HALT if self.policy == HALT else self.policy
        if not np.isfinite(loss):
            return GuardEvent(
                solver.iteration, "loss", f"loss={loss!r}",
                self.policy, action,
            )
        if self.check_activations:
            for name, blob in solver.net.blob_map.items():
                if not np.all(np.isfinite(blob.flat_data)):
                    return GuardEvent(
                        solver.iteration, "activation", f"blob {name!r}",
                        self.policy, action,
                    )
        for blob, owner in zip(solver.net.learnable_params,
                               solver.net.param_owners):
            if not np.all(np.isfinite(blob.flat_diff)):
                return GuardEvent(
                    solver.iteration, "diff", f"layer {owner!r}",
                    self.policy, action,
                )
        return None

    def _scan_params(self, solver) -> Optional[GuardEvent]:
        for blob, owner in zip(solver.net.learnable_params,
                               solver.net.param_owners):
            if not np.all(np.isfinite(blob.flat_data)):
                return GuardEvent(
                    solver.iteration, "param", f"layer {owner!r}",
                    self.policy,
                    ROLLBACK if self.policy == ROLLBACK else "halt",
                )
        return None

    # ------------------------------------------------------------------
    # shadow copy
    # ------------------------------------------------------------------
    @staticmethod
    def _snapshot(solver) -> _Shadow:
        return _Shadow(
            params=[blob.flat_data.copy()
                    for blob in solver.net.learnable_params],
            history=[h.copy() for h in solver.history],
        )

    @staticmethod
    def _restore(solver, shadow: _Shadow) -> None:
        for blob, saved in zip(solver.net.learnable_params, shadow.params):
            blob.flat_data[:] = saved
            blob.mark_host_data_dirty()
        for live, saved in zip(solver.history, shadow.history):
            live[:] = saved
