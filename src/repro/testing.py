"""Test utilities for downstream layer/net development.

Exposed as library API (like Caffe's ``test/test_gradient_check_util``)
so users writing new layers can build blobs and specs tersely and reuse
the gradient checker.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.framework.blob import Blob
from repro.framework.gradient_check import check_gradient  # noqa: F401
from repro.framework.net_spec import LayerSpec

__all__ = ["Blob", "check_gradient", "make_blob", "spec"]


def make_blob(
    shape: Sequence[int],
    values=None,
    name: str = "b",
    rng: Optional[np.random.Generator] = None,
) -> Blob:
    """A blob with the given data (default: seeded standard-normal)."""
    blob = Blob(shape, name=name)
    if values is None:
        rng = rng or np.random.default_rng(0)
        values = rng.standard_normal(blob.count)
    blob.set_data(np.asarray(values, dtype=np.float32).ravel())
    return blob


def spec(name: str, type_: str, **params) -> LayerSpec:
    """Shorthand :class:`LayerSpec` builder."""
    return LayerSpec(name=name, type=type_, bottoms=[], tops=[], params=params)
