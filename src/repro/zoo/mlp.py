"""A multi-layer perceptron for MNIST — the zoo's generality witness.

Not from the paper: a fully-connected Sigmoid/Dropout network with no
convolutions at all, included to demonstrate the network-agnostic
property on a topology whose layers differ completely from the two CNNs
(and to exercise Dropout and Sigmoid through the full training path).
"""

from __future__ import annotations

from repro.framework.net_spec import NetSpec
from repro.framework.prototxt import parse_prototxt
from repro.framework.solvers import SolverParams

MLP_PROTOTXT = """
name: "MNIST_MLP"
layer {
  name: "mnist"
  type: "Data"
  top: "data"
  top: "label"
  include { phase: TRAIN }
  data_param {
    source: "synth_mnist_train"
    batch_size: 64
  }
}
layer {
  name: "mnist"
  type: "Data"
  top: "data"
  top: "label"
  include { phase: TEST }
  data_param {
    source: "synth_mnist_test"
    batch_size: 100
  }
}
layer {
  name: "flatten"
  type: "Flatten"
  bottom: "data"
  top: "flat"
}
layer {
  name: "fc1"
  type: "InnerProduct"
  bottom: "flat"
  top: "fc1"
  param { lr_mult: 1 }
  param { lr_mult: 2 }
  inner_product_param {
    num_output: 128
    filler_seed: 301
    weight_filler { type: "xavier" }
    bias_filler { type: "constant" }
  }
}
layer {
  name: "sig1"
  type: "Sigmoid"
  bottom: "fc1"
  top: "fc1"
}
layer {
  name: "drop1"
  type: "Dropout"
  bottom: "fc1"
  top: "fc1"
  dropout_param { dropout_ratio: 0.2 seed: 77 }
}
layer {
  name: "fc2"
  type: "InnerProduct"
  bottom: "fc1"
  top: "fc2"
  param { lr_mult: 1 }
  param { lr_mult: 2 }
  inner_product_param {
    num_output: 10
    filler_seed: 302
    weight_filler { type: "xavier" }
    bias_filler { type: "constant" }
  }
}
layer {
  name: "accuracy"
  type: "Accuracy"
  bottom: "fc2"
  bottom: "label"
  top: "accuracy"
  include { phase: TEST }
}
layer {
  name: "loss"
  type: "SoftmaxWithLoss"
  bottom: "fc2"
  bottom: "label"
  top: "loss"
}
"""


def mlp_spec() -> NetSpec:
    """Parse the MLP prototxt into a :class:`NetSpec`."""
    return parse_prototxt(MLP_PROTOTXT)


def mlp_solver_params(max_iter: int = 100) -> SolverParams:
    return SolverParams(
        type="SGD",
        base_lr=0.1,
        momentum=0.9,
        weight_decay=0.0005,
        lr_policy="fixed",
        max_iter=max_iter,
        test_iter=4,
    )
