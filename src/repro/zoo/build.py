"""Convenience builders: prototxt name -> runnable Net / Solver."""

from __future__ import annotations

from typing import Optional

from repro.data import register_default_sources
from repro.framework.net import Net
from repro.framework.solvers import SolverParams, create_solver
from repro.zoo.cifar10 import cifar10_solver_params, cifar10_spec
from repro.zoo.lenet import lenet_solver_params, lenet_spec
from repro.zoo.mlp import mlp_solver_params, mlp_spec

_SPECS = {
    "lenet": (lenet_spec, lenet_solver_params),
    "cifar10": (cifar10_spec, cifar10_solver_params),
    "mlp": (mlp_spec, mlp_solver_params),
}


def build_net(name: str, phase: str = "TRAIN") -> Net:
    """Build a zoo network wired to the synthetic data sources.

    ``name`` is ``"lenet"``, ``"cifar10"`` or ``"mlp"``.
    """
    if name not in _SPECS:
        raise KeyError(f"unknown zoo network {name!r}; have {sorted(_SPECS)}")
    register_default_sources()
    spec_fn, _ = _SPECS[name]
    return Net(spec_fn(), phase=phase)


def build_solver(
    name: str,
    max_iter: int = 100,
    with_test_net: bool = False,
    executor=None,
    params: Optional[SolverParams] = None,
):
    """Build a ready-to-run solver for a zoo network."""
    if name not in _SPECS:
        raise KeyError(f"unknown zoo network {name!r}; have {sorted(_SPECS)}")
    register_default_sources()
    spec_fn, params_fn = _SPECS[name]
    solver_params = params or params_fn(max_iter=max_iter)
    train_net = Net(spec_fn(), phase="TRAIN")
    test_net = Net(spec_fn(), phase="TEST") if with_test_net else None
    solver = create_solver(solver_params, train_net, test_net=test_net)
    if executor is not None:
        solver.executor = executor
    if test_net is not None:
        solver.share_test_net_params()
    return solver
