"""The CIFAR-10 "full" network from the Caffe distribution.

14 layers (paper Figure 3, bottom), organized in three levels:

* level 1 — data, conv1, pool1 (MAX), relu1, norm1 (LRN);
* level 2 — conv2, relu2, pool2 (AVE), norm2 (LRN);
* level 3 — conv3, relu3, pool3 (AVE), then ip1 and loss.

This is the layer ordering Section 4.2.1 walks through (pooling before
ReLU in level 1; AVE pooling after ReLU in levels 2 and 3).
"""

from __future__ import annotations

from repro.framework.net_spec import NetSpec
from repro.framework.prototxt import parse_prototxt
from repro.framework.solvers import SolverParams

CIFAR10_PROTOTXT = """
name: "CIFAR10_full"
layer {
  name: "cifar"
  type: "Data"
  top: "data"
  top: "label"
  include { phase: TRAIN }
  # Caffe's CIFAR pipeline subtracts the dataset mean from raw 0-255
  # pixels, feeding values in roughly [-128, 128]; the synthetic images
  # are in [0, 1], so recentre and rescale to the same range (without
  # this, the std=0.0001 conv1 initializer starves the whole stack).
  transform_param { mean_value: 0.5 scale: 255.0 }
  data_param {
    source: "synth_cifar_train"
    batch_size: 100
  }
}
layer {
  name: "cifar"
  type: "Data"
  top: "data"
  top: "label"
  include { phase: TEST }
  transform_param { mean_value: 0.5 scale: 255.0 }
  data_param {
    source: "synth_cifar_test"
    batch_size: 100
  }
}
layer {
  name: "conv1"
  type: "Convolution"
  bottom: "data"
  top: "conv1"
  param { lr_mult: 1 }
  param { lr_mult: 2 }
  convolution_param {
    num_output: 32
    pad: 2
    kernel_size: 5
    stride: 1
    filler_seed: 201
    weight_filler { type: "gaussian" std: 0.0001 }
    bias_filler { type: "constant" }
  }
}
layer {
  name: "pool1"
  type: "Pooling"
  bottom: "conv1"
  top: "pool1"
  pooling_param {
    pool: MAX
    kernel_size: 3
    stride: 2
  }
}
layer {
  name: "relu1"
  type: "ReLU"
  bottom: "pool1"
  top: "pool1"
}
layer {
  name: "norm1"
  type: "LRN"
  bottom: "pool1"
  top: "norm1"
  lrn_param {
    local_size: 3
    alpha: 0.00005
    beta: 0.75
  }
}
layer {
  name: "conv2"
  type: "Convolution"
  bottom: "norm1"
  top: "conv2"
  param { lr_mult: 1 }
  param { lr_mult: 2 }
  convolution_param {
    num_output: 32
    pad: 2
    kernel_size: 5
    stride: 1
    filler_seed: 202
    weight_filler { type: "gaussian" std: 0.01 }
    bias_filler { type: "constant" }
  }
}
layer {
  name: "relu2"
  type: "ReLU"
  bottom: "conv2"
  top: "conv2"
}
layer {
  name: "pool2"
  type: "Pooling"
  bottom: "conv2"
  top: "pool2"
  pooling_param {
    pool: AVE
    kernel_size: 3
    stride: 2
  }
}
layer {
  name: "norm2"
  type: "LRN"
  bottom: "pool2"
  top: "norm2"
  lrn_param {
    local_size: 3
    alpha: 0.00005
    beta: 0.75
  }
}
layer {
  name: "conv3"
  type: "Convolution"
  bottom: "norm2"
  top: "conv3"
  convolution_param {
    num_output: 64
    pad: 2
    kernel_size: 5
    stride: 1
    filler_seed: 203
    weight_filler { type: "gaussian" std: 0.01 }
    bias_filler { type: "constant" }
  }
}
layer {
  name: "relu3"
  type: "ReLU"
  bottom: "conv3"
  top: "conv3"
}
layer {
  name: "pool3"
  type: "Pooling"
  bottom: "conv3"
  top: "pool3"
  pooling_param {
    pool: AVE
    kernel_size: 3
    stride: 2
  }
}
layer {
  name: "ip1"
  type: "InnerProduct"
  bottom: "pool3"
  top: "ip1"
  param { lr_mult: 1 decay_mult: 250 }
  param { lr_mult: 2 decay_mult: 0 }
  inner_product_param {
    num_output: 10
    filler_seed: 204
    weight_filler { type: "gaussian" std: 0.01 }
    bias_filler { type: "constant" }
  }
}
layer {
  name: "accuracy"
  type: "Accuracy"
  bottom: "ip1"
  bottom: "label"
  top: "accuracy"
  include { phase: TEST }
}
layer {
  name: "loss"
  type: "SoftmaxWithLoss"
  bottom: "ip1"
  bottom: "label"
  top: "loss"
}
"""


def cifar10_spec() -> NetSpec:
    """Parse the CIFAR-10 full prototxt into a :class:`NetSpec`."""
    return parse_prototxt(CIFAR10_PROTOTXT)


def cifar10_solver_params(max_iter: int = 100) -> SolverParams:
    """The Caffe ``cifar10_full_solver.prototxt`` hyper-parameters."""
    return SolverParams(
        type="SGD",
        base_lr=0.001,
        momentum=0.9,
        weight_decay=0.004,
        lr_policy="fixed",
        max_iter=max_iter,
        test_interval=0,
        test_iter=4,
    )
