"""Network zoo: the paper's two evaluation networks.

* :func:`lenet_spec` — the Caffe LeNet for MNIST (paper Figure 3, top):
  data, conv1, pool1, conv2, pool2, ip1, relu1, ip2, loss — 9 layers.
* :func:`cifar10_spec` — the Caffe CIFAR-10 "full" network (Figure 3,
  bottom): data, conv1, pool1, relu1, norm1, conv2, relu2, pool2, norm2,
  conv3, relu3, pool3, ip1, loss — 14 layers, including the two LRN
  layers the paper's Section 4.2 analyzes.

Both are stored as prototxt text (parsed through the real parser, so the
zoo also exercises that substrate) and wired to the synthetic data
sources.
"""

from repro.zoo.lenet import LENET_PROTOTXT, lenet_solver_params, lenet_spec
from repro.zoo.cifar10 import (
    CIFAR10_PROTOTXT,
    cifar10_solver_params,
    cifar10_spec,
)
from repro.zoo.mlp import MLP_PROTOTXT, mlp_solver_params, mlp_spec
from repro.zoo.build import build_net, build_solver

__all__ = [
    "CIFAR10_PROTOTXT",
    "LENET_PROTOTXT",
    "MLP_PROTOTXT",
    "mlp_solver_params",
    "mlp_spec",
    "build_net",
    "build_solver",
    "cifar10_solver_params",
    "cifar10_spec",
    "lenet_solver_params",
    "lenet_spec",
]
