"""LeNet for MNIST, as shipped with Caffe (paper Section 2.2).

The prototxt matches ``examples/mnist/lenet_train_test.prototxt`` of the
Caffe distribution, with the LMDB sources replaced by the synthetic
dataset registrations and explicit filler seeds so network initialization
is reproducible.
"""

from __future__ import annotations

from repro.framework.net_spec import NetSpec
from repro.framework.prototxt import parse_prototxt
from repro.framework.solvers import SolverParams

LENET_PROTOTXT = """
name: "LeNet"
layer {
  name: "mnist"
  type: "Data"
  top: "data"
  top: "label"
  include { phase: TRAIN }
  transform_param { scale: 1.0 }
  data_param {
    source: "synth_mnist_train"
    batch_size: 64
  }
}
layer {
  name: "mnist"
  type: "Data"
  top: "data"
  top: "label"
  include { phase: TEST }
  transform_param { scale: 1.0 }
  data_param {
    source: "synth_mnist_test"
    batch_size: 100
  }
}
layer {
  name: "conv1"
  type: "Convolution"
  bottom: "data"
  top: "conv1"
  param { lr_mult: 1 }
  param { lr_mult: 2 }
  convolution_param {
    num_output: 20
    kernel_size: 5
    stride: 1
    filler_seed: 101
    weight_filler { type: "xavier" }
    bias_filler { type: "constant" }
  }
}
layer {
  name: "pool1"
  type: "Pooling"
  bottom: "conv1"
  top: "pool1"
  pooling_param {
    pool: MAX
    kernel_size: 2
    stride: 2
  }
}
layer {
  name: "conv2"
  type: "Convolution"
  bottom: "pool1"
  top: "conv2"
  param { lr_mult: 1 }
  param { lr_mult: 2 }
  convolution_param {
    num_output: 50
    kernel_size: 5
    stride: 1
    filler_seed: 102
    weight_filler { type: "xavier" }
    bias_filler { type: "constant" }
  }
}
layer {
  name: "pool2"
  type: "Pooling"
  bottom: "conv2"
  top: "pool2"
  pooling_param {
    pool: MAX
    kernel_size: 2
    stride: 2
  }
}
layer {
  name: "ip1"
  type: "InnerProduct"
  bottom: "pool2"
  top: "ip1"
  param { lr_mult: 1 }
  param { lr_mult: 2 }
  inner_product_param {
    num_output: 500
    filler_seed: 103
    weight_filler { type: "xavier" }
    bias_filler { type: "constant" }
  }
}
layer {
  name: "relu1"
  type: "ReLU"
  bottom: "ip1"
  top: "ip1"
}
layer {
  name: "ip2"
  type: "InnerProduct"
  bottom: "ip1"
  top: "ip2"
  param { lr_mult: 1 }
  param { lr_mult: 2 }
  inner_product_param {
    num_output: 10
    filler_seed: 104
    weight_filler { type: "xavier" }
    bias_filler { type: "constant" }
  }
}
layer {
  name: "accuracy"
  type: "Accuracy"
  bottom: "ip2"
  bottom: "label"
  top: "accuracy"
  include { phase: TEST }
}
layer {
  name: "loss"
  type: "SoftmaxWithLoss"
  bottom: "ip2"
  bottom: "label"
  top: "loss"
}
"""


def lenet_spec() -> NetSpec:
    """Parse the LeNet prototxt into a :class:`NetSpec`."""
    return parse_prototxt(LENET_PROTOTXT)


def lenet_solver_params(max_iter: int = 100) -> SolverParams:
    """The Caffe ``lenet_solver.prototxt`` hyper-parameters."""
    return SolverParams(
        type="SGD",
        base_lr=0.01,
        momentum=0.9,
        weight_decay=0.0005,
        lr_policy="inv",
        gamma=0.0001,
        power=0.75,
        max_iter=max_iter,
        test_interval=0,
        test_iter=4,
    )
