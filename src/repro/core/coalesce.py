"""Loop coalescing: flattening nested loops into one induction variable.

The paper's Algorithm 4 collapses the outermost ``k`` loops of a layer's
nest ``(S, D1, ..., DN)`` into a single loop over
``civ in [0, S * D1 * ... * Dk)`` and recovers the original indices with
per-dimension functions ``f_s, f_1, ..., f_k``.  :class:`CoalescedSpace`
implements that bijection (row-major, matching the blob layout, so
consecutive ``civ`` values touch consecutive memory) plus the inverse.

The point of the transformation — explained in Section 3.2.1 — is work
distribution: under a static schedule the minimal unit of distribution is
one iteration, so coalescing multiplies the iteration count and shrinks
the work per iteration, letting the scheduler balance threads whose
counts do not divide the batch size.  :meth:`CoalescedSpace.imbalance`
quantifies exactly that effect and is used by the coalescing ablation
benchmark.
"""

from __future__ import annotations

from typing import Sequence, Tuple


class CoalescedSpace:
    """Bijection between ``civ`` and the coalesced loop indices.

    Parameters
    ----------
    dims:
        Extents of the coalesced loops, outermost first — e.g.
        ``(S, D1, D2)`` for a coalesce depth of 3.
    """

    def __init__(self, dims: Sequence[int]) -> None:
        dims = tuple(int(d) for d in dims)
        if not dims:
            raise ValueError("coalesced space needs at least one dimension")
        for d in dims:
            if d <= 0:
                raise ValueError(f"coalesced dimensions must be positive: {dims}")
        self.dims = dims
        self._strides = []
        stride = 1
        for d in reversed(dims):
            self._strides.append(stride)
            stride *= d
        self._strides.reverse()
        self.size = stride

    def indices(self, civ: int) -> Tuple[int, ...]:
        """The original loop indices of iteration ``civ`` (the paper's
        ``f_s(civ), f_1(civ), ...``)."""
        if not 0 <= civ < self.size:
            raise IndexError(f"civ {civ} out of range [0, {self.size})")
        out = []
        remainder = civ
        for stride in self._strides:
            out.append(remainder // stride)
            remainder %= stride
        return tuple(out)

    def civ(self, indices: Sequence[int]) -> int:
        """Inverse map: loop indices -> coalesced induction variable."""
        if len(indices) != len(self.dims):
            raise ValueError(
                f"{len(indices)} indices for {len(self.dims)} dimensions"
            )
        total = 0
        for idx, extent, stride in zip(indices, self.dims, self._strides):
            if not 0 <= idx < extent:
                raise IndexError(
                    f"index {idx} out of range for extent {extent}"
                )
            total += idx * stride
        return total

    def outer_extent(self) -> int:
        """Extent of the outermost (batch) loop alone."""
        return self.dims[0]

    def imbalance(self, num_threads: int) -> float:
        """Static-schedule load imbalance of this space.

        Ratio of the largest per-thread iteration count to the ideal
        (``size / num_threads``), minus 1 — zero means perfect balance.
        A batch-only loop (no coalescing) with ``S`` slightly above a
        multiple of the thread count shows the large imbalance the paper's
        "work unbalance" paragraph describes.
        """
        if num_threads <= 0:
            raise ValueError(f"num_threads must be positive: {num_threads}")
        ideal = self.size / num_threads
        largest = -(-self.size // num_threads)  # ceil division
        return largest / ideal - 1.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CoalescedSpace(dims={self.dims}, size={self.size})"
