"""Per-layer execution plans: the runtime artifact behind plancheck.

The paper parallelizes every layer identically — one global thread
count, schedule and reduction mode.  An :class:`ExecutionPlan` lifts
those choices to *per-layer* resolution: for each layer it records how
many threads to use, which prefix of the coalesced dims to distribute
(the rest are folded into a chunk *granularity*), which loop schedule to
run, and which reduction mode to merge gradients with.  Plans are plain
data — JSON-serializable, diffable, lintable (see
:mod:`repro.analysis.plancheck` for the PL lint family) — and the
:class:`~repro.core.parallel_net.ParallelExecutor` consumes them
directly.

Two runtime pieces live here because the core must not depend on the
analysis package:

* :class:`PlannedSchedule` — adapts a per-layer ``(schedule, threads,
  granularity)`` choice to the team-wide :class:`Schedule` protocol.
  A layer planned at ``t`` threads on a ``T``-thread team yields chunk
  plans in which only ``t`` threads receive work; chunk boundaries are
  multiples of the granularity, so coalescing a dim *prefix* keeps every
  chunk a whole number of inner iteration blocks.
* :func:`plan_drift` — load-time validation of a plan against the live
  net it is about to drive (the PL101+ codes).  Static lint runs at plan
  *construction* time in the analysis package; drift checks run at plan
  *use* time, because the net in front of the executor may not be the
  net the plan was derived from.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.reduction import (
    BITWISE_INVARIANT,
    REDUCTION_MODES,
    TIER_ORDER,
    invariance_tier,
)
from repro.core.scheduling import Chunk, ChunkServer, Schedule, make_schedule

PLAN_FORMAT = "repro-plan/1"


@dataclass(frozen=True)
class LayerPlan:
    """Execution strategy for one layer.

    ``dims`` is the layer's coalesced iteration-space factorization as
    ``(name, extent)`` pairs, e.g. ``(("sample", 64), ("channel", 20))``;
    ``coalesced`` says how many *leading* dims are distributed over
    threads.  The trailing dims are folded into ``granularity`` — the
    number of native civ iterations per distributable unit — so chunk
    boundaries always fall on whole inner blocks.  ``space`` records the
    coalesced forward space the plan was derived from; the executor uses
    it to detect drift (PL102) and to decide whether the granularity is
    safe to apply.
    """

    layer: str
    threads: int
    granularity: int = 1
    schedule: str = "static"
    reduction: Optional[str] = None  # None -> executor's global mode
    space: int = 0
    dims: Tuple[Tuple[str, int], ...] = ()
    coalesced: int = 0

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ValueError(
                f"layer {self.layer!r}: plan threads must be >= 1, "
                f"got {self.threads}"
            )
        if self.granularity < 1:
            raise ValueError(
                f"layer {self.layer!r}: granularity must be >= 1, "
                f"got {self.granularity}"
            )
        if self.reduction is not None and self.reduction not in REDUCTION_MODES:
            raise ValueError(
                f"layer {self.layer!r}: unknown reduction "
                f"{self.reduction!r}; expected one of {REDUCTION_MODES}"
            )

    def tier(self, base_mode: str, base_static: bool) -> str:
        """Invariance tier this layer's strategy delivers.

        A single-thread layer executes inline on the master — bitwise
        equal to the sequential pass regardless of merge mode.
        """
        if self.threads <= 1:
            return BITWISE_INVARIANT
        mode = self.reduction if self.reduction is not None else base_mode
        static = make_schedule(self.schedule).is_static
        return invariance_tier(mode, static)

    def to_json(self) -> Dict:
        return {
            "layer": self.layer,
            "threads": self.threads,
            "granularity": self.granularity,
            "schedule": self.schedule,
            "reduction": self.reduction,
            "space": self.space,
            "dims": [[name, extent] for name, extent in self.dims],
            "coalesced": self.coalesced,
        }

    @classmethod
    def from_json(cls, data: Dict) -> "LayerPlan":
        return cls(
            layer=data["layer"],
            threads=int(data["threads"]),
            granularity=int(data.get("granularity", 1)),
            schedule=data.get("schedule", "static"),
            reduction=data.get("reduction"),
            space=int(data.get("space", 0)),
            dims=tuple(
                (str(name), int(extent))
                for name, extent in data.get("dims", [])
            ),
            coalesced=int(data.get("coalesced", 0)),
        )


@dataclass
class ExecutionPlan:
    """A complete per-layer strategy for one net at one team size."""

    net: str
    batch: int
    team_threads: int
    tier: str  # claimed invariance tier for the whole planned run
    phase: str = "TRAIN"
    layers: Dict[str, LayerPlan] = field(default_factory=dict)
    predicted_us: float = 0.0  # cost-model time for this plan
    uniform_us: float = 0.0  # cost-model time for the uniform baseline

    def for_layer(self, name: str) -> Optional[LayerPlan]:
        return self.layers.get(name)

    def add(self, layer_plan: LayerPlan) -> None:
        self.layers[layer_plan.layer] = layer_plan

    def with_layer(self, layer_plan: LayerPlan) -> "ExecutionPlan":
        """Copy of this plan with one layer's entry replaced (tests)."""
        layers = dict(self.layers)
        layers[layer_plan.layer] = layer_plan
        return replace(self, layers=layers)

    @property
    def claimed_tier_rank(self) -> int:
        return TIER_ORDER[self.tier]

    def to_json(self) -> Dict:
        return {
            "format": PLAN_FORMAT,
            "net": self.net,
            "batch": self.batch,
            "phase": self.phase,
            "team_threads": self.team_threads,
            "tier": self.tier,
            "predicted_us": self.predicted_us,
            "uniform_us": self.uniform_us,
            "layers": [
                self.layers[name].to_json() for name in self.layers
            ],
        }

    @classmethod
    def from_json(cls, data: Dict) -> "ExecutionPlan":
        fmt = data.get("format")
        if fmt != PLAN_FORMAT:
            raise ValueError(
                f"not an execution plan (format {fmt!r}, "
                f"expected {PLAN_FORMAT!r})"
            )
        plan = cls(
            net=data["net"],
            batch=int(data["batch"]),
            phase=data.get("phase", "TRAIN"),
            team_threads=int(data["team_threads"]),
            tier=data["tier"],
            predicted_us=float(data.get("predicted_us", 0.0)),
            uniform_us=float(data.get("uniform_us", 0.0)),
        )
        for entry in data.get("layers", []):
            plan.add(LayerPlan.from_json(entry))
        return plan

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "ExecutionPlan":
        with open(path) as handle:
            return cls.from_json(json.load(handle))

    def summary_lines(self) -> List[str]:
        lines = [
            f"plan for {self.net} (batch {self.batch}, "
            f"{self.team_threads}-thread team, tier {self.tier})",
            f"  predicted {self.predicted_us:.1f}us vs uniform "
            f"{self.uniform_us:.1f}us",
        ]
        for name, lp in self.layers.items():
            dims = "x".join(f"{n}:{e}" for n, e in lp.dims) or "?"
            mode = lp.reduction or "-"
            lines.append(
                f"  {name:<12} t={lp.threads} g={lp.granularity} "
                f"{lp.schedule} {mode} [{dims}|{lp.coalesced}]"
            )
        return lines


class PlannedSchedule(Schedule):
    """Adapter: run one layer's plan on the full team.

    Wraps a base schedule with a thread limit and a chunk granularity.
    The distributable space is ``ceil(space / granularity)`` *units*;
    the base schedule partitions units over ``min(threads, team)``
    threads, and unit chunks are scaled back to native iterations
    (clamped at ``space`` for the ragged tail).  Team threads beyond the
    limit receive empty chunk lists — they still join barriers and
    ordered turns, so the team protocol is undisturbed.
    """

    def __init__(
        self, base: Schedule, threads: int, granularity: int = 1
    ) -> None:
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        if granularity < 1:
            raise ValueError(f"granularity must be >= 1, got {granularity}")
        self.base = base
        self.threads = threads
        self.granularity = granularity
        self.is_static = base.is_static

    def _units(self, space: int) -> int:
        return -(-space // self.granularity)

    def _scale(self, chunk: Chunk, space: int) -> Chunk:
        g = self.granularity
        return (chunk[0] * g, min(chunk[1] * g, space))

    def plan(self, space: int, num_threads: int) -> List[List[Chunk]]:
        active = min(self.threads, num_threads)
        base_plan = self.base.plan(self._units(space), active)
        scaled = [
            [self._scale(chunk, space) for chunk in chunks]
            for chunks in base_plan
        ]
        scaled.extend([] for _ in range(num_threads - active))
        return scaled

    def chunk_server(self, space: int, num_threads: int) -> ChunkServer:
        active = min(self.threads, num_threads)
        server = self.base.chunk_server(self._units(space), active)

        def chunks():
            while (chunk := server.next_chunk()) is not None:
                yield self._scale(chunk, space)

        return ChunkServer(chunks())

    def describe(self) -> str:
        return (
            f"planned({self.base.describe()},t={self.threads},"
            f"g={self.granularity})"
        )


def plan_schedule_for(layer_plan: LayerPlan, space: int) -> PlannedSchedule:
    """Build the runtime schedule for one layer.

    The granularity is only meaningful against the iteration space the
    plan was derived from; if the live space differs (drift — flagged as
    PL102 by :func:`plan_drift`) the granularity falls back to 1 so the
    run stays correct even when the plan is stale.
    """
    granularity = (
        layer_plan.granularity if layer_plan.space == space else 1
    )
    return PlannedSchedule(
        make_schedule(layer_plan.schedule), layer_plan.threads, granularity
    )


def plan_drift(
    plan: ExecutionPlan, net, num_threads: int
) -> List[Tuple[str, str, str]]:
    """Validate a plan against the live net it is about to drive.

    Returns ``(code, layer, message)`` tuples; the analysis package wraps
    them into :class:`~repro.analysis.report.Finding` objects.  Codes:

    * ``PL101`` — plan was derived for a different net.
    * ``PL102`` — a layer's recorded iteration space drifted from the
      live layer's actual coalesced forward space.
    * ``PL103`` — a layer plan wants more threads than the team has.
    * ``PL104`` — a parallelizable live layer has no plan entry and will
      fall back to the executor's uniform strategy.
    """
    issues: List[Tuple[str, str, str]] = []
    net_name = getattr(net, "name", "")
    if plan.net and net_name and plan.net != net_name:
        issues.append((
            "PL101", "",
            f"plan was derived for net {plan.net!r} but is loaded "
            f"against {net_name!r}",
        ))
    live_names = set()
    for layer, bottom, top in zip(net.layers, net.bottoms, net.tops):
        live_names.add(layer.name)
        lp = plan.for_layer(layer.name)
        layer.reshape(bottom, top)
        space = layer.forward_space(bottom, top)
        if lp is None:
            if space > 1:
                issues.append((
                    "PL104", layer.name,
                    f"parallelizable layer (space {space}) has no plan "
                    "entry; it will run with the uniform strategy",
                ))
            continue
        if lp.space and lp.space != space:
            issues.append((
                "PL102", layer.name,
                f"plan recorded iteration space {lp.space} but the live "
                f"layer coalesces to {space}; granularity "
                f"{lp.granularity} will be ignored",
            ))
        if lp.threads > num_threads:
            issues.append((
                "PL103", layer.name,
                f"plan wants {lp.threads} threads but the executor team "
                f"has {num_threads}",
            ))
    for name in plan.layers:
        if name not in live_names:
            issues.append((
                "PL101", name,
                f"plan entry {name!r} matches no layer in net "
                f"{net_name!r}",
            ))
    return issues


def uniform_plan(
    net_name: str,
    batch: int,
    threads: int,
    reduction: str,
    layer_spaces: Sequence[Tuple[str, int]],
    schedule: str = "static",
    phase: str = "TRAIN",
) -> ExecutionPlan:
    """The paper's one-global-choice strategy expressed as a plan.

    Used as the search baseline (PL005 compares against it) and handy in
    tests; every layer gets the same threads/schedule/reduction.
    """
    static = make_schedule(schedule).is_static
    tier = (
        BITWISE_INVARIANT if threads <= 1
        else invariance_tier(reduction, static)
    )
    plan = ExecutionPlan(
        net=net_name, batch=batch, team_threads=threads, tier=tier,
        phase=phase,
    )
    for name, space in layer_spaces:
        plan.add(LayerPlan(
            layer=name, threads=threads, granularity=1,
            schedule=schedule, reduction=reduction, space=space,
            dims=(("iteration", space),), coalesced=1,
        ))
    return plan
