"""Execution tracing: real per-layer timing of the parallel runtime.

The paper's Figures 4 and 7 are per-layer execution-time breakdowns.
On real multi-core hardware this module produces the same breakdown from
*measured* wall time: a :class:`TracingExecutor` wraps any executor-like
object and records one event per layer pass (name, pass, duration,
thread count), aggregating across iterations.

On the single-core evaluation container the absolute numbers carry no
scaling information, but the breakdown is still faithful to the real
Python/numpy execution and the tracer is what a user on a real 16-core
machine runs to regenerate Figure 4 from measurements rather than from
the model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.framework.net import Net


@dataclass
class TraceEvent:
    """One timed layer pass."""

    layer: str
    pass_: str  # "forward" or "backward"
    seconds: float
    threads: int


@dataclass
class Trace:
    """Aggregated timing of a traced run."""

    events: List[TraceEvent] = field(default_factory=list)

    def record(self, layer: str, pass_: str, seconds: float,
               threads: int) -> None:
        self.events.append(TraceEvent(layer, pass_, seconds, threads))

    def totals(self) -> Dict[Tuple[str, str], float]:
        """Total seconds per (layer, pass)."""
        out: Dict[Tuple[str, str], float] = {}
        for event in self.events:
            key = (event.layer, event.pass_)
            out[key] = out.get(key, 0.0) + event.seconds
        return out

    def shares(self) -> Dict[Tuple[str, str], float]:
        """Fraction of total time per (layer, pass) — the relative
        weights of Figures 4/7."""
        totals = self.totals()
        overall = sum(totals.values())
        if overall <= 0:
            return {key: 0.0 for key in totals}
        return {key: value / overall for key, value in totals.items()}

    def table(self) -> str:
        """Figure-4-style text table (microseconds and shares)."""
        totals = self.totals()
        overall = sum(totals.values()) or 1.0
        lines = [f"{'layer':<12}{'pass':<10}{'time (us)':>12}{'share':>8}"]
        for (layer, pass_), seconds in sorted(
            totals.items(), key=lambda item: -item[1]
        ):
            lines.append(
                f"{layer:<12}{pass_:<10}{seconds * 1e6:>12.1f}"
                f"{seconds / overall * 100:>7.1f}%"
            )
        return "\n".join(lines)

    def clear(self) -> None:
        self.events.clear()


class TracingExecutor:
    """Wraps an executor and times each layer pass.

    Works with both the sequential path (pass any object with
    ``forward(net)``/``backward(net)``) and :class:`ParallelExecutor`.
    The wrapped executor's layer loop is re-driven here so each layer
    gets its own timestamp; semantics are unchanged (same chunking,
    same reductions) because the underlying executor's own per-layer
    machinery is reused.
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.trace = Trace()

    @property
    def _threads(self) -> int:
        return getattr(self.inner, "num_threads", 1)

    def forward(self, net: Net) -> float:
        total = 0.0
        for i, layer in enumerate(net.layers):
            bottom, top = net.bottoms[i], net.tops[i]
            start = time.perf_counter()
            total += self._forward_layer(layer, bottom, top)
            self.trace.record(layer.name, "forward",
                              time.perf_counter() - start, self._threads)
        return total

    def _forward_layer(self, layer, bottom, top) -> float:
        if hasattr(self.inner, "team"):
            layer.reshape(bottom, top)
            space = layer.forward_space(bottom, top)
            self.inner.team.parallel_for(
                space,
                lambda lo, hi, tid: layer.forward_chunk(bottom, top, lo, hi),
                self.inner.schedule,
            )
            layer.forward_finalize(bottom, top)
            loss = 0.0
            for top_blob, weight in zip(top, layer.loss_weights):
                if weight:
                    loss += weight * float(top_blob.flat_data[0])
            return loss
        return layer.forward(bottom, top)

    def backward(self, net: Net) -> None:
        net._seed_loss_diffs()
        for i in range(len(net.layers) - 1, -1, -1):
            layer = net.layers[i]
            if not any(net.bottom_need_backward[i]) and not layer.blobs:
                continue
            start = time.perf_counter()
            self._backward_layer(net, i)
            self.trace.record(layer.name, "backward",
                              time.perf_counter() - start, self._threads)

    def _backward_layer(self, net: Net, index: int) -> None:
        layer = net.layers[index]
        if hasattr(self.inner, "_run_backward_loop"):
            for loop in layer.backward_loops(
                net.tops[index], net.bottom_need_backward[index],
                net.bottoms[index],
            ):
                self.inner._run_backward_loop(loop)
        else:
            layer.backward(net.tops[index],
                           net.bottom_need_backward[index],
                           net.bottoms[index])
