"""Loop schedules: OpenMP's ``schedule(static|dynamic|guided[, chunk])``.

A schedule answers one question: which contiguous iteration ranges does
each thread execute, and in what order?  Static schedules are computed up
front (deterministic — required for the paper's ordered-reduction
determinism argument); dynamic and guided schedules hand out chunks from
a shared counter at run time.

All schedules partition ``[0, space)`` exactly: the union of all chunks
is the full range with no overlap (property-tested).
"""

from __future__ import annotations

import threading
from typing import Iterator, List, Optional, Tuple

Chunk = Tuple[int, int]  # [lo, hi)


class Schedule:
    """Base class.  Subclasses implement :meth:`plan` (static family) or
    :meth:`chunk_server` (dynamic family)."""

    #: True when every thread's chunk list is known before execution.
    is_static = True

    def plan(self, space: int, num_threads: int) -> List[List[Chunk]]:
        """Per-thread chunk lists for a ``space``-iteration loop."""
        raise NotImplementedError

    def chunk_server(self, space: int, num_threads: int) -> "ChunkServer":
        """Shared chunk dispenser (used when :attr:`is_static` is False)."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class StaticSchedule(Schedule):
    """OpenMP ``static`` / ``static, chunk``.

    Without a chunk size, iterations are divided into at most one
    contiguous block per thread (OpenMP's default): thread ``t`` gets
    ``ceil(space / T)`` iterations until the space runs out.  With a chunk
    size, fixed-size chunks are dealt round-robin.
    """

    def __init__(self, chunk: Optional[int] = None) -> None:
        if chunk is not None and chunk <= 0:
            raise ValueError(f"chunk must be positive, got {chunk}")
        self.chunk = chunk

    def plan(self, space: int, num_threads: int) -> List[List[Chunk]]:
        if space < 0:
            raise ValueError(f"space must be non-negative, got {space}")
        if num_threads <= 0:
            raise ValueError(f"num_threads must be positive, got {num_threads}")
        chunks: List[List[Chunk]] = [[] for _ in range(num_threads)]
        if space == 0:
            return chunks
        if self.chunk is None:
            per = -(-space // num_threads)  # ceil
            lo = 0
            for tid in range(num_threads):
                hi = min(lo + per, space)
                if lo < hi:
                    chunks[tid].append((lo, hi))
                lo = hi
        else:
            lo = 0
            index = 0
            while lo < space:
                hi = min(lo + self.chunk, space)
                chunks[index % num_threads].append((lo, hi))
                lo = hi
                index += 1
        return chunks

    def describe(self) -> str:
        return "static" if self.chunk is None else f"static,{self.chunk}"


class ChunkServer:
    """Thread-safe dispenser of contiguous chunks for dynamic schedules."""

    def __init__(self, chunk_iter: Iterator[Chunk]) -> None:
        self._iter = chunk_iter
        self._lock = threading.Lock()

    def next_chunk(self) -> Optional[Chunk]:
        with self._lock:
            return next(self._iter, None)


class DynamicSchedule(Schedule):
    """OpenMP ``dynamic, chunk``: fixed-size chunks claimed on demand."""

    is_static = False

    def __init__(self, chunk: int = 1) -> None:
        if chunk <= 0:
            raise ValueError(f"chunk must be positive, got {chunk}")
        self.chunk = chunk

    def chunk_server(self, space: int, num_threads: int) -> ChunkServer:
        def chunks() -> Iterator[Chunk]:
            lo = 0
            while lo < space:
                hi = min(lo + self.chunk, space)
                yield (lo, hi)
                lo = hi

        return ChunkServer(chunks())

    def describe(self) -> str:
        return f"dynamic,{self.chunk}"


class GuidedSchedule(Schedule):
    """OpenMP ``guided, chunk``: chunk size proportional to the remaining
    iterations divided by the thread count, floored at ``chunk``."""

    is_static = False

    def __init__(self, chunk: int = 1) -> None:
        if chunk <= 0:
            raise ValueError(f"chunk must be positive, got {chunk}")
        self.chunk = chunk

    def chunk_server(self, space: int, num_threads: int) -> ChunkServer:
        def chunks() -> Iterator[Chunk]:
            lo = 0
            while lo < space:
                remaining = space - lo
                size = max(remaining // (2 * num_threads), self.chunk)
                hi = min(lo + size, space)
                yield (lo, hi)
                lo = hi

        return ChunkServer(chunks())

    def describe(self) -> str:
        return f"guided,{self.chunk}"


def make_schedule(name: str) -> Schedule:
    """Parse an OpenMP-style schedule string, e.g. ``"static"``,
    ``"static,4"``, ``"dynamic,2"``, ``"guided"``."""
    parts = [p.strip() for p in name.split(",")]
    kind = parts[0].lower()
    chunk = int(parts[1]) if len(parts) > 1 else None
    if kind == "static":
        return StaticSchedule(chunk)
    if kind == "dynamic":
        return DynamicSchedule(chunk or 1)
    if kind == "guided":
        return GuidedSchedule(chunk or 1)
    raise ValueError(f"unknown schedule {name!r}")
