"""The paper's contribution: coarse-grain (batch-level) parallel runtime.

This package is an OpenMP-like runtime plus the batch-parallel drivers
built on it:

* :mod:`repro.core.coalesce` — loop coalescing: the bijection between the
  single coalesced induction variable ``civ`` and the outer loop indices
  ``(s, d1, ..., dk)`` of Algorithms 4/5.
* :mod:`repro.core.scheduling` — static / static-chunked / dynamic /
  guided loop schedules (OpenMP ``schedule`` clauses).
* :mod:`repro.core.team` — :class:`ThreadTeam`: persistent worker
  threads, parallel regions, barriers, critical sections and the
  ``ordered`` construct.
* :mod:`repro.core.privatization` — per-thread private gradient storage,
  reused across layers (paper Section 3.2.1's memory accounting).
* :mod:`repro.core.reduction` — gradient merge strategies: ``ordered``
  (the paper's deterministic choice), ``atomic`` (the "reduction-based
  solution"), and ``blockwise`` (an extension that is bitwise invariant
  across thread counts).
* :mod:`repro.core.plan` — :class:`ExecutionPlan`: per-layer execution
  strategies (threads / coalesce granularity / schedule / reduction) as
  a serializable runtime artifact, produced by the ``plancheck``
  analysis pass and consumed by the executor.
* :mod:`repro.core.parallel_net` — :class:`ParallelExecutor`: drives any
  framework Net's forward/backward with batch-level parallelism;
  plugs into the solvers as their executor (network-agnostic by
  construction: it only uses the generic chunk protocol).
"""

from repro.core.coalesce import CoalescedSpace
from repro.core.plan import (
    ExecutionPlan,
    LayerPlan,
    PlannedSchedule,
    plan_drift,
    uniform_plan,
)
from repro.core.scheduling import (
    DynamicSchedule,
    GuidedSchedule,
    Schedule,
    StaticSchedule,
    make_schedule,
)
from repro.core.team import ThreadTeam, WorkerError
from repro.core.privatization import PrivatePool
from repro.core.reduction import REDUCTION_MODES
from repro.core.parallel_net import ParallelExecutor
from repro.core.data_parallel import DataParallelSolver
from repro.core.trace import Trace, TracingExecutor

__all__ = [
    "DataParallelSolver",
    "Trace",
    "TracingExecutor",
    "CoalescedSpace",
    "DynamicSchedule",
    "ExecutionPlan",
    "GuidedSchedule",
    "LayerPlan",
    "ParallelExecutor",
    "PlannedSchedule",
    "PrivatePool",
    "plan_drift",
    "uniform_plan",
    "REDUCTION_MODES",
    "Schedule",
    "StaticSchedule",
    "ThreadTeam",
    "WorkerError",
    "make_schedule",
]
