"""ThreadTeam: an OpenMP-like thread team on Python threads.

A team owns ``num_threads - 1`` persistent worker threads (the calling
thread acts as thread 0, as in OpenMP).  ``parallel(fn)`` opens a parallel
region: every thread runs ``fn(ctx)`` with a :class:`RegionContext` giving
its thread id and the synchronization primitives of the paper's
Algorithms 4/5 — ``barrier()``, ``critical()`` and ``ordered()``.

Python's GIL means pure-Python sections do not overlap, but the numpy /
BLAS kernels each chunk executes release the GIL, so chunks genuinely
interleave — the runtime exercises real concurrency (races in a wrongly
privatized layer *will* manifest), even though single-core wall-clock
speedup is not observable in this container.

Worker exceptions are captured and re-raised in the caller as
:class:`WorkerError` with the originating thread id.
"""

from __future__ import annotations

import threading
import traceback
from typing import Callable, List, Optional

from repro.core.scheduling import Schedule, StaticSchedule


class _RegionAborted(Exception):
    """Internal: a peer thread failed; unblock and unwind this one."""


class WorkerError(RuntimeError):
    """An exception escaped a parallel region on some thread.

    ``original`` is the root-cause exception; ``peer_errors`` lists the
    other threads' failures from the same region (usually abort-induced
    secondaries: :class:`_RegionAborted` from peers waiting on the
    failed thread's ordered turn, ``BrokenBarrierError`` from peers
    parked at a barrier the abort broke).  ``layer`` / ``phase`` are
    annotated by the executor when the failing chunk is known.
    """

    def __init__(self, thread_id: int, original: BaseException, tb: str) -> None:
        super().__init__(
            f"worker thread {thread_id} raised "
            f"{type(original).__name__}: {original}\n{tb}"
        )
        self.thread_id = thread_id
        self.original = original
        self.peer_errors: List["WorkerError"] = []
        self.layer: Optional[str] = None
        self.phase: Optional[str] = None


class RegionContext:
    """Per-thread view of a parallel region (what ``omp_get_thread_num``
    and friends expose)."""

    def __init__(self, team: "ThreadTeam", thread_id: int) -> None:
        self._team = team
        self.thread_id = thread_id
        self.num_threads = team.num_threads

    def barrier(self) -> None:
        """Wait until every team thread reaches this point."""
        self._team._barrier.wait()

    def critical(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` under the team-wide mutual exclusion lock."""
        with self._team._critical_lock:
            fn()

    def ordered(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` when it is this thread's turn, in thread-id order.

        This is the construct of Algorithm 5 lines 22-24: each thread
        incorporates its privatized gradients into the shared blob only
        after all lower-numbered threads have done so, reproducing the
        sequential accumulation order.
        """
        turn = self._team._ordered_turn
        with turn["cond"]:
            while turn["next"] != self.thread_id and not turn["aborted"]:
                turn["cond"].wait()
            if turn["aborted"]:
                raise _RegionAborted()
        try:
            fn()
        finally:
            with turn["cond"]:
                turn["next"] += 1
                turn["cond"].notify_all()


class ThreadTeam:
    """Persistent OpenMP-like thread team.

    Parameters
    ----------
    num_threads:
        Team size, including the calling (master) thread.  ``1`` runs
        everything inline.

    Use as a context manager, or call :meth:`shutdown` explicitly.
    """

    def __init__(self, num_threads: int) -> None:
        if num_threads <= 0:
            raise ValueError(f"num_threads must be positive, got {num_threads}")
        self.num_threads = num_threads
        self._barrier = threading.Barrier(num_threads)
        self._critical_lock = threading.Lock()
        self._ordered_turn = {
            "cond": threading.Condition(), "next": 0, "aborted": False,
        }
        self._region_fn: Optional[Callable[[RegionContext], None]] = None
        self._errors: List[Optional[WorkerError]] = [None] * num_threads
        self._start = threading.Barrier(num_threads)
        self._finish = threading.Barrier(num_threads)
        self._shutdown = False
        self._workers: List[threading.Thread] = []
        for tid in range(1, num_threads):
            worker = threading.Thread(
                target=self._worker_loop, args=(tid,),
                name=f"team-worker-{tid}", daemon=True,
            )
            worker.start()
            self._workers.append(worker)

    # ------------------------------------------------------------------
    # region execution
    # ------------------------------------------------------------------
    def _worker_loop(self, thread_id: int) -> None:
        while True:
            self._start.wait()
            if self._shutdown:
                return
            fn = self._region_fn
            assert fn is not None
            try:
                fn(RegionContext(self, thread_id))
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                self._errors[thread_id] = WorkerError(
                    thread_id, exc, traceback.format_exc()
                )
                self._abort_region()
            self._finish.wait()

    def _abort_region(self) -> None:
        """A failed thread must not deadlock peers waiting on its turn or
        at a barrier: mark the region aborted and break the barrier."""
        turn = self._ordered_turn
        with turn["cond"]:
            turn["aborted"] = True
            turn["cond"].notify_all()
        self._barrier.abort()

    def parallel(self, fn: Callable[[RegionContext], None]) -> None:
        """Run ``fn(ctx)`` on every team thread; the caller is thread 0.

        Blocks until the region completes on all threads; re-raises the
        lowest-numbered thread's :class:`WorkerError` if any failed.
        """
        if self._shutdown:
            raise RuntimeError("thread team is shut down")
        if self.num_threads == 1:
            fn(RegionContext(self, 0))
            self._reset_region_state()
            return
        self._region_fn = fn
        self._errors = [None] * self.num_threads
        self._start.wait()
        try:
            fn(RegionContext(self, 0))
        except BaseException as exc:  # noqa: BLE001 - reported below
            self._errors[0] = WorkerError(0, exc, traceback.format_exc())
            self._abort_region()
        self._finish.wait()
        self._region_fn = None
        errors = [e for e in self._errors if e is not None]
        self._reset_region_state()
        if errors:
            # Prefer the root cause over abort-induced secondary errors:
            # peers unwound with _RegionAborted (ordered-turn abort) or
            # BrokenBarrierError (the abort broke the barrier they were
            # parked at) did not fail on their own.
            def _secondary(e: WorkerError) -> bool:
                return isinstance(
                    e.original,
                    (_RegionAborted, threading.BrokenBarrierError),
                )

            root = next((e for e in errors if not _secondary(e)), errors[0])
            root.peer_errors = [e for e in errors if e is not root]
            raise root

    def _reset_region_state(self) -> None:
        self._ordered_turn["next"] = 0
        if self._ordered_turn["aborted"]:
            self._ordered_turn["aborted"] = False
            self._barrier.reset()

    # ------------------------------------------------------------------
    # worksharing helper
    # ------------------------------------------------------------------
    def parallel_for(
        self,
        space: int,
        body: Callable[[int, int, int], None],
        schedule: Optional[Schedule] = None,
    ) -> None:
        """Worksharing loop: ``body(lo, hi, thread_id)`` per chunk.

        ``schedule`` defaults to plain static (the paper's choice).  An
        implicit barrier ends the loop, as in OpenMP.
        """
        schedule = schedule or StaticSchedule()
        if space <= 0:
            return
        if self.num_threads == 1 or space == 1:
            if schedule.is_static:
                for lo, hi in [
                    c for per in schedule.plan(space, 1) for c in per
                ]:
                    body(lo, hi, 0)
            else:
                server = schedule.chunk_server(space, 1)
                while (chunk := server.next_chunk()) is not None:
                    body(chunk[0], chunk[1], 0)
            return

        if schedule.is_static:
            plan = schedule.plan(space, self.num_threads)

            def region(ctx: RegionContext) -> None:
                for lo, hi in plan[ctx.thread_id]:
                    body(lo, hi, ctx.thread_id)

        else:
            server = schedule.chunk_server(space, self.num_threads)

            def region(ctx: RegionContext) -> None:
                while (chunk := server.next_chunk()) is not None:
                    body(chunk[0], chunk[1], ctx.thread_id)

        self.parallel(region)

    def parallel_for_nest(
        self,
        dims,
        body: Callable[..., None],
        schedule: Optional[Schedule] = None,
        collapse: Optional[int] = None,
    ) -> None:
        """Worksharing over a loop nest — Algorithm 4 as a literal API.

        The outermost ``collapse`` loops of the nest ``dims`` (all of
        them by default, like OpenMP's ``collapse(n)`` on a perfect
        nest) are coalesced into one induction variable and distributed;
        ``body(*indices, thread_id=...)`` runs once per iteration of the
        coalesced space with the original indices recovered through the
        ``f_s, f_1, ..., f_k`` maps.

        For vectorizable work prefer :meth:`parallel_for` over a layer's
        chunk protocol; this entry point exists for the per-iteration
        style of the paper's pseudo-code and for irregular bodies.
        """
        from repro.core.coalesce import CoalescedSpace

        dims = tuple(int(d) for d in dims)
        depth = len(dims) if collapse is None else int(collapse)
        if not 1 <= depth <= len(dims):
            raise ValueError(
                f"collapse depth {depth} invalid for {len(dims)} loops"
            )
        outer = CoalescedSpace(dims[:depth])
        inner_dims = dims[depth:]

        def chunk_body(lo: int, hi: int, tid: int) -> None:
            import itertools
            for civ in range(lo, hi):
                indices = outer.indices(civ)
                if inner_dims:
                    for rest in itertools.product(
                        *(range(d) for d in inner_dims)
                    ):
                        body(*indices, *rest, thread_id=tid)
                else:
                    body(*indices, thread_id=tid)

        self.parallel_for(outer.size, chunk_body, schedule)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop and join the worker threads (idempotent)."""
        if self._shutdown or self.num_threads == 1:
            self._shutdown = True
            return
        self._shutdown = True
        self._start.wait()
        for worker in self._workers:
            worker.join(timeout=10.0)
        self._workers.clear()

    def __enter__(self) -> "ThreadTeam":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            if not self._shutdown and self._workers:
                self.shutdown()
        except Exception:
            pass
