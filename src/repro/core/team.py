"""ThreadTeam: an OpenMP-like thread team on Python threads.

A team owns ``num_threads - 1`` persistent worker threads (the calling
thread acts as thread 0, as in OpenMP).  ``parallel(fn)`` opens a parallel
region: every thread runs ``fn(ctx)`` with a :class:`RegionContext` giving
its thread id and the synchronization primitives of the paper's
Algorithms 4/5 — ``barrier()``, ``critical()`` and ``ordered()``.

Python's GIL means pure-Python sections do not overlap, but the numpy /
BLAS kernels each chunk executes release the GIL, so chunks genuinely
interleave — the runtime exercises real concurrency (races in a wrongly
privatized layer *will* manifest), even though single-core wall-clock
speedup is not observable in this container.

Worker exceptions are captured and re-raised in the caller as
:class:`WorkerError` with the originating thread id.

Sync-point API
--------------
Every blocking synchronization operation the team performs funnels
through one :class:`TeamSync` backend (barrier waits, the critical lock,
the ordered turn, worker joins, chunk boundaries).  The default backend
executes the real :mod:`threading` primitives; the synccheck model
checker (:mod:`repro.analysis.interleave`) substitutes a cooperative
scheduler that virtualizes every primitive and explores thread
interleavings deterministically.  The backend also gives the team a
single choke point for the deadlock watchdog: pass ``watchdog=<seconds>``
(or set ``REPRO_TEAM_WATCHDOG``) and any barrier / ordered-turn /
critical-lock wait that exceeds the timeout raises :class:`TeamDeadlock`
with a per-thread stack dump and each thread's last sync point, instead
of hanging CI forever.
"""

from __future__ import annotations

import os
import sys
import threading
import traceback
from typing import Callable, List, Optional

from repro.core.scheduling import Schedule, StaticSchedule


class _RegionAborted(Exception):
    """Internal: a peer thread failed; unblock and unwind this one."""


class TeamDeadlock(RuntimeError):
    """The watchdog verdict: a synchronization wait exceeded the timeout.

    Raised instead of hanging when ``watchdog`` is configured on the
    team and a barrier / ordered-turn / critical-lock wait times out.
    Carries ``point`` (the sync point that timed out), ``last_sync``
    (each thread's most recent sync point) and the formatted per-thread
    stack dump in the message.
    """

    def __init__(self, message: str, point: str,
                 last_sync: List[Optional[str]]) -> None:
        super().__init__(message)
        self.point = point
        self.last_sync = list(last_sync)


class WorkerError(RuntimeError):
    """An exception escaped a parallel region on some thread.

    ``original`` is the root-cause exception; ``peer_errors`` lists the
    other threads' failures from the same region (usually abort-induced
    secondaries: :class:`_RegionAborted` from peers waiting on the
    failed thread's ordered turn, ``BrokenBarrierError`` from peers
    parked at a barrier the abort broke).  ``layer`` / ``phase`` are
    annotated by the executor when the failing chunk is known.
    """

    def __init__(self, thread_id: int, original: BaseException, tb: str) -> None:
        super().__init__(
            f"worker thread {thread_id} raised "
            f"{type(original).__name__}: {original}\n{tb}"
        )
        self.thread_id = thread_id
        self.original = original
        self.peer_errors: List["WorkerError"] = []
        self.layer: Optional[str] = None
        self.phase: Optional[str] = None


class TeamSync:
    """The team's sync-point API, backed by real threading primitives.

    Subclass and pass ``sync=`` to :class:`ThreadTeam` to intercept or
    virtualize every synchronization operation.  Methods receive the
    team and the calling thread's id, so one backend instance can serve
    any number of teams.
    """

    #: When True, the executor emits :meth:`chunk_point` before every
    #: dispatched chunk (the model checker's preemption points).  The
    #: default backend never observes chunks, keeping the uninstrumented
    #: hot path free of per-chunk calls.
    observes_chunks = False

    # -- barriers ------------------------------------------------------
    def barrier_wait(self, team: "ThreadTeam", tid: int, point: str) -> None:
        """Wait at one of the team's barriers (``start``/``finish``/
        ``region``), applying the watchdog when configured.

        Only *region* barriers are watchdogged: workers park at the
        start barrier indefinitely between regions, and the finish
        barrier collects threads that are guaranteed to arrive (every
        in-region blocking point is either abort-broken or watchdogged
        itself), so timing either out would break the lifecycle
        rendezvous instead of catching a protocol deadlock."""
        team._note_sync(tid, f"{point}-barrier")
        barrier = team._barrier_of(point)
        if team.watchdog is None or point != "region":
            barrier.wait()
            return
        try:
            barrier.wait(timeout=team.watchdog)
        except threading.BrokenBarrierError:
            if team._ordered_turn["aborted"]:
                # A region abort broke the barrier on purpose; the
                # caller classifies this as a secondary failure.
                raise
            raise team._deadlock_error(tid, f"{point}-barrier") from None

    # -- critical ------------------------------------------------------
    def critical(self, team: "ThreadTeam", tid: int,
                 fn: Callable[[], None]) -> None:
        team._note_sync(tid, "critical")
        lock = team._critical_lock
        if team.watchdog is None:
            acquired = lock.acquire()
        else:
            acquired = lock.acquire(timeout=team.watchdog)
        if not acquired:
            raise team._deadlock_error(tid, "critical")
        try:
            fn()
        finally:
            lock.release()

    # -- ordered turn --------------------------------------------------
    def ordered(self, team: "ThreadTeam", tid: int,
                fn: Callable[[], None]) -> None:
        team._note_sync(tid, "ordered")
        turn = team._ordered_turn
        with turn["cond"]:
            while turn["next"] != tid and not turn["aborted"]:
                if not turn["cond"].wait(timeout=team.watchdog):
                    raise team._deadlock_error(tid, "ordered")
            if turn["aborted"]:
                raise _RegionAborted()
        try:
            fn()
        finally:
            with turn["cond"]:
                turn["next"] += 1
                turn["cond"].notify_all()

    # -- abort / reset -------------------------------------------------
    def abort(self, team: "ThreadTeam") -> None:
        """A failed thread must not deadlock peers waiting on its turn
        or at a barrier: mark the region aborted and break the barrier."""
        turn = team._ordered_turn
        with turn["cond"]:
            turn["aborted"] = True
            turn["cond"].notify_all()
        team._barrier.abort()

    def reset(self, team: "ThreadTeam") -> None:
        team._ordered_turn["next"] = 0
        if team._ordered_turn["aborted"]:
            team._ordered_turn["aborted"] = False
            team._barrier.reset()

    # -- chunk boundaries / lifecycle ---------------------------------
    def chunk_point(self, team: "ThreadTeam", tid: int, layer: str,
                    phase: str, lo: int, hi: int) -> None:
        """Called before each dispatched chunk when
        :attr:`observes_chunks` is True; a no-op otherwise."""

    def join_worker(self, team: "ThreadTeam", tid: int,
                    worker: threading.Thread) -> None:
        worker.join(timeout=10.0)

    def thread_exit(self, team: "ThreadTeam", tid: int) -> None:
        """A worker thread is about to return from its loop."""


#: Shared default backend (stateless: all state lives on the team).
_REAL_SYNC = TeamSync()


def _default_watchdog() -> Optional[float]:
    raw = os.environ.get("REPRO_TEAM_WATCHDOG", "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


class RegionContext:
    """Per-thread view of a parallel region (what ``omp_get_thread_num``
    and friends expose)."""

    def __init__(self, team: "ThreadTeam", thread_id: int) -> None:
        self._team = team
        self.thread_id = thread_id
        self.num_threads = team.num_threads

    def barrier(self) -> None:
        """Wait until every team thread reaches this point."""
        self._team.sync.barrier_wait(self._team, self.thread_id, "region")

    def critical(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` under the team-wide mutual exclusion lock."""
        self._team.sync.critical(self._team, self.thread_id, fn)

    def ordered(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` when it is this thread's turn, in thread-id order.

        This is the construct of Algorithm 5 lines 22-24: each thread
        incorporates its privatized gradients into the shared blob only
        after all lower-numbered threads have done so, reproducing the
        sequential accumulation order.
        """
        self._team.sync.ordered(self._team, self.thread_id, fn)


class ThreadTeam:
    """Persistent OpenMP-like thread team.

    Parameters
    ----------
    num_threads:
        Team size, including the calling (master) thread.  ``1`` runs
        everything inline.
    sync:
        Optional :class:`TeamSync` backend; defaults to the real
        threading primitives.
    watchdog:
        Deadlock watchdog timeout in seconds for every synchronization
        wait.  ``None`` (the default) waits forever; the
        ``REPRO_TEAM_WATCHDOG`` environment variable supplies a global
        default.  On expiry a :class:`TeamDeadlock` is raised carrying
        each thread's last sync point and stack.

    Use as a context manager, or call :meth:`shutdown` explicitly.
    """

    def __init__(self, num_threads: int, sync: Optional[TeamSync] = None,
                 watchdog: Optional[float] = None) -> None:
        if num_threads <= 0:
            raise ValueError(f"num_threads must be positive, got {num_threads}")
        if watchdog is not None and watchdog <= 0:
            raise ValueError(f"watchdog must be positive, got {watchdog}")
        self.num_threads = num_threads
        self.sync = sync if sync is not None else _REAL_SYNC
        self.watchdog = watchdog if watchdog is not None else _default_watchdog()
        self._barrier = threading.Barrier(num_threads)
        self._critical_lock = threading.Lock()
        self._ordered_turn = {
            "cond": threading.Condition(), "next": 0, "aborted": False,
        }
        self._region_fn: Optional[Callable[[RegionContext], None]] = None
        self._errors: List[Optional[WorkerError]] = [None] * num_threads
        self._start = threading.Barrier(num_threads)
        self._finish = threading.Barrier(num_threads)
        self._shutdown = False
        self._last_sync: List[Optional[str]] = [None] * num_threads
        self._master_ident: Optional[int] = threading.get_ident()
        # Guards the shutdown/restart lifecycle transitions only; never
        # held across a barrier wait or a join (those block), so the
        # watchdog thread can call shutdown() without deadlocking the
        # team it is supervising.
        self._lifecycle_lock = threading.Lock()
        self._workers: List[threading.Thread] = []
        self._spawn_workers()

    def _spawn_workers(self) -> None:
        for tid in range(1, self.num_threads):
            worker = threading.Thread(
                target=self._worker_loop, args=(tid,),
                name=f"team-worker-{tid}", daemon=True,
            )
            worker.start()
            self._workers.append(worker)

    # ------------------------------------------------------------------
    # sync bookkeeping
    # ------------------------------------------------------------------
    def _barrier_of(self, point: str) -> threading.Barrier:
        if point == "region":
            return self._barrier
        if point == "start":
            return self._start
        if point == "finish":
            return self._finish
        raise ValueError(f"unknown barrier point {point!r}")

    def _note_sync(self, tid: int, label: str) -> None:
        self._last_sync[tid] = label

    def _deadlock_error(self, tid: int, point: str) -> TeamDeadlock:
        """Build the watchdog report: per-thread last sync point + stack."""
        frames = sys._current_frames()
        idents = {0: self._master_ident}
        for wid, worker in enumerate(self._workers, start=1):
            idents[wid] = worker.ident
        lines = [
            f"team watchdog: thread {tid} waited longer than "
            f"{self.watchdog:.3g}s at sync point {point!r} "
            f"({self.num_threads} threads)"
        ]
        for t in range(self.num_threads):
            lines.append(
                f"  thread {t}: last sync point = {self._last_sync[t]!r}"
            )
            frame = frames.get(idents.get(t) or -1)
            if frame is None:
                lines.append("    <no live stack>")
            else:
                for entry in traceback.format_stack(frame):
                    lines.extend(
                        "    " + ln for ln in entry.rstrip().splitlines()
                    )
        return TeamDeadlock("\n".join(lines), point, self._last_sync)

    # ------------------------------------------------------------------
    # region execution
    # ------------------------------------------------------------------
    def _worker_loop(self, thread_id: int) -> None:
        try:
            while True:
                self.sync.barrier_wait(self, thread_id, "start")
                if self._shutdown:
                    return
                fn = self._region_fn
                assert fn is not None
                try:
                    fn(RegionContext(self, thread_id))
                except BaseException as exc:  # noqa: BLE001 - reported to caller
                    self._errors[thread_id] = WorkerError(
                        thread_id, exc, traceback.format_exc()
                    )
                    self._abort_region()
                self.sync.barrier_wait(self, thread_id, "finish")
        except SystemExit:
            return  # a checker sync backend abandoned the run: die quietly
        finally:
            self.sync.thread_exit(self, thread_id)

    def _abort_region(self) -> None:
        self.sync.abort(self)

    def parallel(self, fn: Callable[[RegionContext], None]) -> None:
        """Run ``fn(ctx)`` on every team thread; the caller is thread 0.

        Blocks until the region completes on all threads; re-raises the
        lowest-numbered thread's :class:`WorkerError` if any failed.
        """
        if self._shutdown:
            raise RuntimeError("thread team is shut down")
        if self.num_threads == 1:
            fn(RegionContext(self, 0))
            self._reset_region_state()
            return
        self._region_fn = fn
        self._errors = [None] * self.num_threads
        self._master_ident = threading.get_ident()
        self.sync.barrier_wait(self, 0, "start")
        try:
            fn(RegionContext(self, 0))
        except BaseException as exc:  # noqa: BLE001 - reported below
            self._errors[0] = WorkerError(0, exc, traceback.format_exc())
            self._abort_region()
        self.sync.barrier_wait(self, 0, "finish")
        self._region_fn = None
        errors = [e for e in self._errors if e is not None]
        self._reset_region_state()
        if errors:
            # Prefer the root cause over abort-induced secondary errors:
            # peers unwound with _RegionAborted (ordered-turn abort) or
            # BrokenBarrierError (the abort broke the barrier they were
            # parked at) did not fail on their own.
            def _secondary(e: WorkerError) -> bool:
                return isinstance(
                    e.original,
                    (_RegionAborted, threading.BrokenBarrierError),
                )

            root = next((e for e in errors if not _secondary(e)), errors[0])
            root.peer_errors = [e for e in errors if e is not root]
            raise root

    def _reset_region_state(self) -> None:
        self.sync.reset(self)

    # ------------------------------------------------------------------
    # worksharing helper
    # ------------------------------------------------------------------
    def parallel_for(
        self,
        space: int,
        body: Callable[[int, int, int], None],
        schedule: Optional[Schedule] = None,
    ) -> None:
        """Worksharing loop: ``body(lo, hi, thread_id)`` per chunk.

        ``schedule`` defaults to plain static (the paper's choice).  An
        implicit barrier ends the loop, as in OpenMP.
        """
        schedule = schedule or StaticSchedule()
        if space <= 0:
            return
        if self.num_threads == 1 or space == 1:
            if schedule.is_static:
                for lo, hi in [
                    c for per in schedule.plan(space, 1) for c in per
                ]:
                    body(lo, hi, 0)
            else:
                server = schedule.chunk_server(space, 1)
                while (chunk := server.next_chunk()) is not None:
                    body(chunk[0], chunk[1], 0)
            return

        if schedule.is_static:
            plan = schedule.plan(space, self.num_threads)

            def region(ctx: RegionContext) -> None:
                for lo, hi in plan[ctx.thread_id]:
                    body(lo, hi, ctx.thread_id)

        else:
            server = schedule.chunk_server(space, self.num_threads)

            def region(ctx: RegionContext) -> None:
                while (chunk := server.next_chunk()) is not None:
                    body(chunk[0], chunk[1], ctx.thread_id)

        self.parallel(region)

    def parallel_for_nest(
        self,
        dims,
        body: Callable[..., None],
        schedule: Optional[Schedule] = None,
        collapse: Optional[int] = None,
    ) -> None:
        """Worksharing over a loop nest — Algorithm 4 as a literal API.

        The outermost ``collapse`` loops of the nest ``dims`` (all of
        them by default, like OpenMP's ``collapse(n)`` on a perfect
        nest) are coalesced into one induction variable and distributed;
        ``body(*indices, thread_id=...)`` runs once per iteration of the
        coalesced space with the original indices recovered through the
        ``f_s, f_1, ..., f_k`` maps.

        For vectorizable work prefer :meth:`parallel_for` over a layer's
        chunk protocol; this entry point exists for the per-iteration
        style of the paper's pseudo-code and for irregular bodies.
        """
        from repro.core.coalesce import CoalescedSpace

        dims = tuple(int(d) for d in dims)
        depth = len(dims) if collapse is None else int(collapse)
        if not 1 <= depth <= len(dims):
            raise ValueError(
                f"collapse depth {depth} invalid for {len(dims)} loops"
            )
        outer = CoalescedSpace(dims[:depth])
        inner_dims = dims[depth:]

        def chunk_body(lo: int, hi: int, tid: int) -> None:
            import itertools
            for civ in range(lo, hi):
                indices = outer.indices(civ)
                if inner_dims:
                    for rest in itertools.product(
                        *(range(d) for d in inner_dims)
                    ):
                        body(*indices, *rest, thread_id=tid)
                else:
                    body(*indices, thread_id=tid)

        self.parallel_for(outer.size, chunk_body, schedule)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop and join the worker threads.

        Idempotent and safe to call from a thread other than the master
        (e.g. a supervisor/watchdog thread reacting to an aborted
        region): the lifecycle transition is claimed under a lock, so a
        second concurrent call returns immediately instead of double-
        releasing the start barrier; the barrier wait and the joins
        themselves happen outside the lock.
        """
        with self._lifecycle_lock:
            already_down = self._shutdown
            self._shutdown = True
            workers, self._workers = self._workers, []
        if already_down or not workers:
            self._release_dead_pool_states()
            return
        self.sync.barrier_wait(self, 0, "start")
        for tid, worker in enumerate(workers, start=1):
            self.sync.join_worker(self, tid, worker)
        self._release_dead_pool_states()

    def restart(self) -> None:
        """Shut down (if still running) and respawn a fresh worker pool.

        Reuses the team's configuration (size, sync backend, watchdog)
        but replaces every synchronization primitive, so a team whose
        region aborted — even one whose barriers were broken — comes
        back ready for :meth:`parallel`.  This is the supervisor hook:
        after a worker crash the serve runtime calls ``restart()`` and
        replays the in-flight batch on the new pool.
        """
        self.shutdown()
        with self._lifecycle_lock:
            if not self._shutdown:
                return  # a concurrent restart already won the race
            self._barrier = threading.Barrier(self.num_threads)
            self._start = threading.Barrier(self.num_threads)
            self._finish = threading.Barrier(self.num_threads)
            self._critical_lock = threading.Lock()
            self._ordered_turn = {
                "cond": threading.Condition(), "next": 0, "aborted": False,
            }
            self._region_fn = None
            self._errors = [None] * self.num_threads
            self._last_sync = [None] * self.num_threads
            self._master_ident = threading.get_ident()
            self._shutdown = False
            self._spawn_workers()

    @staticmethod
    def _release_dead_pool_states() -> None:
        # Long-lived processes cycle many teams; retiring the dead
        # workers' scratch-pool slabs here keeps the registry bounded.
        # Lazy via sys.modules: never *imports* the compiler package,
        # only pokes it when someone else already has.
        scratch = sys.modules.get("repro.compiler.scratch")
        if scratch is not None:
            scratch.release_dead_states()

    def __enter__(self) -> "ThreadTeam":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            if not self._shutdown and self._workers:
                self.shutdown()
        except BaseException:
            # BaseException: a checker-abandoned team's sync backend
            # raises SystemExit from shutdown(); GC must stay silent.
            pass
