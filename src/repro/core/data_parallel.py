"""Multi-device data parallelism on top of the coarse-grain runtime.

The paper's introduction argues that batch-level parallelism "is
compatible with multi-GPU execution without altering the algorithm
convergence rate" — in contrast to the then-common practice of shrinking
the batch to fit one GPU, which changes a training hyper-parameter.

This module implements that claim as an executable system: the batch is
*sharded* (not shrunk) across ``R`` model replicas; each replica runs
the coarse-grain forward/backward on its shard; shard gradients are
all-reduced in fixed replica order and every replica applies the same
update.  Because

* the global batch size is unchanged,
* every sample's gradient contribution is computed exactly as in the
  single-device run, and
* the all-reduce folds shard sums in a fixed order,

the combined gradient is deterministic, and training behaves like the
single-device run with the same batch — the convergence-invariance
property lifted to the multi-device level (tested in
``tests/core/test_data_parallel.py``).

Devices are simulated by replicas within the process (each may own a
thread team); on real hardware the same structure maps onto one process
per GPU with an MPI/NCCL all-reduce in place of :func:`_allreduce`.
"""

from __future__ import annotations

import copy as _copy
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.parallel_net import ParallelExecutor
from repro.framework.blob import DTYPE
from repro.framework.net import Net
from repro.framework.net_spec import NetSpec
from repro.framework.solvers import SolverParams, create_solver


class ShardSource:
    """Serves one replica's shard of every global batch.

    All replicas share one underlying source; batches are drawn once per
    step (by replica 0) and sliced deterministically, so the union of
    the shards is exactly the batch the single-device run would see.
    """

    def __init__(self, parent: "DataParallelSolver", replica: int) -> None:
        self._parent = parent
        self._replica = replica

    @property
    def shape(self):
        return self._parent.base_source.shape

    def next_batch(self, batch_size: int):
        images, labels = self._parent.current_shards[self._replica]
        if images.shape[0] != batch_size:
            raise ValueError(
                f"replica {self._replica}: shard size {images.shape[0]} "
                f"!= expected {batch_size}"
            )
        return images, labels


class DataParallelSolver:
    """Synchronous data-parallel training over ``replicas`` devices.

    Parameters
    ----------
    spec:
        Network definition.  Its (train-phase) data layer defines the
        *global* batch size, which must be divisible by ``replicas``.
    params:
        Solver hyper-parameters (applied identically on every replica).
    replicas:
        Number of simulated devices.
    source:
        The global batch source (e.g. an
        :class:`~repro.data.ArrayBatchSource`).
    threads_per_replica:
        Coarse-grain threads inside each replica (the paper's two-level
        parallelism: batch-level across and within devices).
    reduction:
        Reduction mode for the within-replica executors.
    """

    def __init__(
        self,
        spec: NetSpec,
        params: SolverParams,
        source,
        replicas: int = 2,
        threads_per_replica: int = 1,
        reduction: str = "blockwise",
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self.base_source = source
        self.current_shards: List = [None] * replicas

        data_spec = next(
            layer for layer in spec.layers_for_phase("TRAIN")
            if layer.type.lower() in ("data", "memorydata")
        )
        self.global_batch = int(data_spec.require("batch_size"))
        if self.global_batch % replicas:
            raise ValueError(
                f"global batch {self.global_batch} is not divisible by "
                f"{replicas} replicas"
            )
        self.shard_size = self.global_batch // replicas

        self.nets: List[Net] = []
        self.executors: List[ParallelExecutor] = []
        self.solvers = []
        for replica in range(replicas):
            replica_spec = _copy.deepcopy(spec)
            shard_spec = next(
                layer for layer in replica_spec.layers_for_phase("TRAIN")
                if layer.type.lower() in ("data", "memorydata")
            )
            shard_spec.params["batch_size"] = self.shard_size
            shard_spec.params["source_object"] = ShardSource(self, replica)
            net = Net(replica_spec, phase="TRAIN")
            executor = ParallelExecutor(
                num_threads=threads_per_replica, reduction=reduction
            )
            self.nets.append(net)
            self.executors.append(executor)
            self.solvers.append(create_solver(params, net))
            self.solvers[-1].executor = executor

        # All replicas start from replica 0's parameters.
        reference = self.nets[0].state_dict()
        for net in self.nets[1:]:
            net.load_state_dict(reference)
        self.iteration = 0
        self.loss_history: List[float] = []

    # ------------------------------------------------------------------
    # the synchronous step
    # ------------------------------------------------------------------
    def _draw_shards(self) -> None:
        images, labels = self.base_source.next_batch(self.global_batch)
        self.current_shards = [
            (images[r * self.shard_size : (r + 1) * self.shard_size],
             labels[r * self.shard_size : (r + 1) * self.shard_size])
            for r in range(self.replicas)
        ]

    def _allreduce(self) -> None:
        """Sum shard gradients in fixed replica order; broadcast.

        Each replica's loss layer normalized by the *shard* size, so the
        shard gradient is ``(1/shard) * sum over shard``.  Averaging the
        replica gradients yields ``(1/global) * sum over batch`` — the
        exact single-device gradient.
        """
        scale = DTYPE(1.0 / self.replicas)
        for param_index in range(len(self.nets[0].learnable_params)):
            total = self.nets[0].learnable_params[param_index].flat_diff
            for net in self.nets[1:]:  # fixed order: deterministic
                total += net.learnable_params[param_index].flat_diff
            total *= scale
            for net in self.nets[1:]:
                np.copyto(net.learnable_params[param_index].flat_diff, total)
                net.learnable_params[param_index].mark_host_diff_dirty()

    def step(self, iters: int) -> float:
        last = 0.0
        for _ in range(iters):
            self._draw_shards()
            losses = []
            for net, executor in zip(self.nets, self.executors):
                net.clear_param_diffs()
                loss = executor.forward(net)
                executor.backward(net)
                losses.append(loss)
            self._allreduce()
            # identical update on every replica (same diffs, same state)
            for solver in self.solvers:
                solver.apply_update()
                solver.iteration += 1
            last = float(np.mean(losses))
            self.loss_history.append(last)
            self.iteration += 1
        return last

    # ------------------------------------------------------------------
    # invariants & lifecycle
    # ------------------------------------------------------------------
    def replicas_in_sync(self) -> bool:
        """All replicas hold bitwise-identical parameters."""
        reference = self.nets[0].learnable_params
        for net in self.nets[1:]:
            for a, b in zip(reference, net.learnable_params):
                if not np.array_equal(a.flat_data, b.flat_data):
                    return False
        return True

    def state_dict(self) -> Dict[str, List[np.ndarray]]:
        return self.nets[0].state_dict()

    def close(self) -> None:
        for executor in self.executors:
            executor.close()

    def __enter__(self) -> "DataParallelSolver":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
