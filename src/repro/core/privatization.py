"""Per-thread private gradient storage (Algorithm 5's object privatization).

Each thread of the team needs zeroed scratch to accumulate its share of a
layer's coefficient gradients.  As Section 3.2.1 observes, this memory
never crosses layer boundaries, so one pool is reused across all layers;
the total extra memory of the parallelization is the pool's high-water
mark — ``num_threads x (largest reduction layer's coefficient bytes)`` —
which the memory experiment compares against the paper's 640 KB (MNIST)
and 1250 KB (CIFAR-10) figures.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.framework.blob import DTYPE


class PrivatePool:
    """Reusable pool of per-slot flat scratch buffers.

    Slots are small integers (thread ids, or window-block indices in the
    blockwise reduction).  A slot's buffer grows monotonically to the
    largest request seen, so repeated layer traversals allocate nothing.
    """

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[int, int], np.ndarray] = {}
        self._high_water = 0

    def request(self, slot: int, sizes: Sequence[int]) -> List[np.ndarray]:
        """Zeroed flat float32 buffers for ``slot``, one per size."""
        out: List[np.ndarray] = []
        for index, size in enumerate(sizes):
            size = int(size)
            if size < 0:
                raise ValueError(f"buffer size must be non-negative: {size}")
            key = (slot, index)
            buffer = self._buffers.get(key)
            if buffer is None or buffer.size < size:
                buffer = np.zeros(size, dtype=DTYPE)
                self._buffers[key] = buffer
            view = buffer[:size]
            view.fill(0.0)
            out.append(view)
        self._update_high_water()
        return out

    def _update_high_water(self) -> None:
        total = sum(b.nbytes for b in self._buffers.values())
        if total > self._high_water:
            self._high_water = total

    @property
    def high_water_bytes(self) -> int:
        """Largest total pool footprint observed (the paper's "additional
        memory" metric)."""
        return self._high_water

    @property
    def current_bytes(self) -> int:
        return sum(b.nbytes for b in self._buffers.values())

    def clear(self) -> None:
        self._buffers.clear()
