"""Gradient merge strategies for the privatized backward pass.

The paper (Section 3.2.1) discusses two: the **ordered** merge — every
thread adds its private gradients to the shared blob in thread-id order,
reproducing a deterministic accumulation ("only the ordered execution
will produce the value obtained through the sequential execution") — and
the **atomic** alternative ("a reduction-based solution would also be
valid, but would not ensure the same update value with any number of
threads"), where threads merge under mutual exclusion in completion
order.

We add two extensions:

* **tree** — lock-free pairwise combination of the private buffers by the
  master thread; deterministic per thread count, ``log2(T)`` depth.
* **blockwise** — implemented by the executor (see
  :mod:`repro.core.parallel_net`): gradients are accumulated in fixed
  sample blocks whose boundaries do not depend on the thread count and
  merged in block order, making the merged value *bitwise identical for
  every thread count*.  This is the strongest form of the paper's
  convergence-invariance property and the mode its tests use.

Merge helpers here operate on flat float32 arrays.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

REDUCTION_MODES = ("ordered", "atomic", "tree", "blockwise")

# ---------------------------------------------------------------------------
# invariance tiers (what each merge mode can promise; see DESIGN.md 5d)
# ---------------------------------------------------------------------------
#: The merged value is bitwise identical for every thread count (and equal
#: to the sequential accumulation) — the strongest reading of the paper's
#: convergence-invariance claim.
BITWISE_INVARIANT = "bitwise_invariant"
#: The merged value is bitwise reproducible for a *fixed* thread count but
#: its rounding differs across thread counts (per-thread partial sums are
#: re-associated differently).
DETERMINISTIC_PER_T = "deterministic_per_t"
#: The merge order depends on thread completion order; two runs of the same
#: configuration may differ ("would not ensure the same update value").
NONDETERMINISTIC = "nondeterministic"

#: Tier strength, weakest to strongest; used to compare claims to promises.
TIER_ORDER = {NONDETERMINISTIC: 0, DETERMINISTIC_PER_T: 1, BITWISE_INVARIANT: 2}

#: What each reduction mode promises under a static schedule.  The
#: determinism certifier (``repro.analysis.detcheck``) statically rejects
#: configurations claiming more than this and dynamically verifies that
#: each mode actually delivers it.
REDUCTION_TIERS = {
    "blockwise": BITWISE_INVARIANT,
    "ordered": DETERMINISTIC_PER_T,
    "tree": DETERMINISTIC_PER_T,
    "atomic": NONDETERMINISTIC,
}


def invariance_tier(mode: str, static_schedule: bool = True) -> str:
    """Invariance tier a reduction mode delivers.

    ``ordered`` and ``tree`` owe their per-thread-count determinism to the
    static chunk plan: under a dynamic/guided schedule the chunks a thread
    accumulates depend on timing, so their tier degrades to
    :data:`NONDETERMINISTIC`.  ``blockwise`` is schedule-independent —
    block boundaries and the merge order are fixed regardless of which
    thread computes which block.
    """
    if mode not in REDUCTION_TIERS:
        raise ValueError(
            f"unknown reduction mode {mode!r}; expected one of "
            f"{REDUCTION_MODES}"
        )
    if not static_schedule and mode in ("ordered", "tree"):
        return NONDETERMINISTIC
    return REDUCTION_TIERS[mode]


def add_into(targets: Sequence[np.ndarray], partials: Sequence[np.ndarray]) -> None:
    """``targets[i] += partials[i]`` element-wise."""
    if len(targets) != len(partials):
        raise ValueError(
            f"{len(partials)} partial buffers for {len(targets)} targets"
        )
    for target, partial in zip(targets, partials):
        if target.shape != partial.shape:
            raise ValueError(
                f"partial shape {partial.shape} != target {target.shape}"
            )
        target += partial


def tree_combine(per_thread: List[List[np.ndarray]]) -> List[np.ndarray]:
    """Pairwise-combine per-thread partial lists; returns the root list.

    Combination order is a fixed balanced binary tree over thread ids, so
    the result is deterministic for a given thread count.  The input
    buffers are consumed (partials are accumulated in place into the
    lower-id sibling).
    """
    if not per_thread:
        raise ValueError("tree_combine needs at least one partial list")
    nodes = list(per_thread)
    while len(nodes) > 1:
        next_level = []
        for i in range(0, len(nodes) - 1, 2):
            left, right = nodes[i], nodes[i + 1]
            for dst, src in zip(left, right):
                dst += src
            next_level.append(left)
        if len(nodes) % 2:
            next_level.append(nodes[-1])
        nodes = next_level
    return nodes[0]
