"""ParallelExecutor: coarse-grain parallel forward/backward for any Net.

This is the paper's transformation applied end to end.  The executor
walks the net layer by layer (the passes themselves are inherently
sequential — Algorithm 1); *within* each layer it distributes the
coalesced iteration space over the thread team (Algorithm 4 for forward,
Algorithm 5 for backward).  It is **network-agnostic**: it only touches
the generic chunk protocol every layer inherits, never the layer's
computation.

Gradient reductions honour the configured mode:

* ``"ordered"`` (paper default) — one private buffer per thread, merged
  via the team's ordered construct in thread-id order.  Deterministic for
  a fixed thread count; bitwise equal to the sequential pass at 1 thread.
* ``"atomic"`` — merged under the critical lock in completion order
  (the paper's "reduction-based solution": values agree only up to
  floating-point reassociation).
* ``"tree"`` — per-thread buffers combined pairwise by the master after
  the loop; deterministic per thread count.
* ``"blockwise"`` — accumulation in fixed sample blocks, merged in block
  order through a bounded window of block buffers; **bitwise identical
  for every thread count**, which makes the whole training trajectory
  thread-count invariant (the strongest reading of the paper's
  convergence-invariance claim; see DESIGN.md).

Usage::

    executor = ParallelExecutor(num_threads=8, reduction="ordered")
    solver = SGDSolver(params, net, executor=executor)
    solver.step(100)
    executor.close()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.plan import (
    ExecutionPlan,
    LayerPlan,
    PlannedSchedule,
    plan_schedule_for,
)
from repro.core.privatization import PrivatePool
from repro.core.reduction import (
    REDUCTION_MODES,
    TIER_ORDER,
    add_into,
    invariance_tier,
    tree_combine,
)
from repro.core.scheduling import Schedule, StaticSchedule, make_schedule
from repro.core.team import RegionContext, ThreadTeam, WorkerError
from repro.framework.layer import LoopSpec
from repro.framework.net import Net


def iteration_owners(
    space: int, num_threads: int, schedule: Optional[Schedule] = None
) -> np.ndarray:
    """Owner thread of every coalesced iteration, ``shape (space,)``.

    For static schedules this is exactly the runtime's chunk plan.  For
    dynamic/guided schedules real ownership depends on timing; the
    returned tagging is the *simulated* one used by the race detector —
    chunks are dealt to threads round-robin in dispatch order, which is a
    legal (and for overlap purposes representative) assignment.
    """
    if space < 0:
        raise ValueError(f"space must be non-negative, got {space}")
    if num_threads < 1:
        raise ValueError(f"num_threads must be >= 1, got {num_threads}")
    schedule = schedule or StaticSchedule()
    owners = np.full(space, -1, dtype=np.int32)
    if schedule.is_static:
        for tid, chunks in enumerate(schedule.plan(space, num_threads)):
            for lo, hi in chunks:
                owners[lo:hi] = tid
    else:
        server = schedule.chunk_server(space, num_threads)
        index = 0
        while (chunk := server.next_chunk()) is not None:
            owners[chunk[0]:chunk[1]] = index % num_threads
            index += 1
    return owners


@dataclass(frozen=True)
class ChunkRecord:
    """One dispatched chunk, recorded when instrumentation is enabled."""

    layer: str
    phase: str  # "forward" or "backward"
    lo: int
    hi: int
    thread_id: int
    reduction: bool = False


class ParallelExecutor:
    """Drives a framework :class:`~repro.framework.net.Net` with
    batch-level parallelism.

    Parameters
    ----------
    num_threads:
        Team size (1 = sequential semantics through the same code path).
    schedule:
        Loop schedule; defaults to OpenMP static, the paper's choice.
    reduction:
        One of :data:`~repro.core.reduction.REDUCTION_MODES`.
    block_window:
        For ``"blockwise"``: number of block buffers alive at once
        (bounds the extra memory to ``window x largest layer``).
    team:
        Optionally share an existing :class:`ThreadTeam`.
    instrument:
        When True, every dispatched chunk is recorded in
        :attr:`ownership_log` as a :class:`ChunkRecord` (used by the
        parallel-safety analyzer and tests).  Default off: the execution
        paths are then byte-for-byte the uninstrumented ones.
    plan:
        Optional per-layer :class:`~repro.core.plan.ExecutionPlan`
        (typically produced by ``repro.analysis plancheck``).  Layers
        with a plan entry run with their own thread count, chunk
        granularity, schedule and reduction mode; a single-thread entry
        executes inline on the master with no parallel region (bitwise
        equal to the sequential pass).  Layers without an entry fall
        back to the executor-wide settings above.
    """

    def __init__(
        self,
        num_threads: int = 1,
        schedule: Optional[Schedule] = None,
        reduction: str = "ordered",
        block_window: int = 8,
        team: Optional[ThreadTeam] = None,
        instrument: bool = False,
        plan: Optional[ExecutionPlan] = None,
    ) -> None:
        if team is None and num_threads < 1:
            raise ValueError(
                f"ParallelExecutor needs num_threads >= 1, got {num_threads} "
                "(a team of zero threads cannot execute any chunk)"
            )
        if reduction not in REDUCTION_MODES:
            raise ValueError(
                f"unknown reduction mode {reduction!r}; expected one of "
                f"{REDUCTION_MODES}"
            )
        if block_window <= 0:
            raise ValueError(f"block_window must be positive: {block_window}")
        if reduction == "ordered" and schedule is not None and not schedule.is_static:
            raise ValueError(
                "the ordered reduction requires a static schedule to be "
                "deterministic; use reduction='atomic' with dynamic/guided"
            )
        self.schedule = schedule or StaticSchedule()
        self.reduction = reduction
        self.block_window = block_window
        self._own_team = team is None
        self.team = team or ThreadTeam(num_threads)
        self.pool = PrivatePool()
        self.instrument = instrument
        self.plan = plan
        self.ownership_log: List[ChunkRecord] = []

    @property
    def num_threads(self) -> int:
        return self.team.num_threads

    @property
    def invariance_tier(self) -> str:
        """Strongest invariance tier this configuration can promise
        (see :mod:`repro.core.reduction`); the determinism certifier
        verifies the promise dynamically.

        With a per-layer plan the promise is the weakest tier across
        the executor-wide settings and every planned layer (layers
        without a plan entry run with the executor-wide settings, so
        those stay in the minimum).
        """
        base = invariance_tier(self.reduction, self.schedule.is_static)
        if self.plan is None:
            return base
        rank = TIER_ORDER[base]
        for layer_plan in self.plan.layers.values():
            layer_tier = layer_plan.tier(
                self.reduction, self.schedule.is_static
            )
            rank = min(rank, TIER_ORDER[layer_tier])
        by_rank = {v: k for k, v in TIER_ORDER.items()}
        return by_rank[rank]

    def _layer_plan(self, layer_name: str) -> Optional[LayerPlan]:
        if self.plan is None:
            return None
        return self.plan.for_layer(layer_name)

    def _record(
        self, layer: str, phase: str, lo: int, hi: int, tid: int,
        reduction: bool = False,
    ) -> None:
        # list.append is atomic under the GIL, so worker threads may call
        # this concurrently without a lock.
        self.ownership_log.append(
            ChunkRecord(layer, phase, lo, hi, tid, reduction)
        )

    # ------------------------------------------------------------------
    # forward (Algorithm 4 per layer)
    # ------------------------------------------------------------------
    def forward(self, net: Net) -> float:
        total = 0.0
        for layer, bottom, top in zip(net.layers, net.bottoms, net.tops):
            layer.reshape(bottom, top)  # sequential, as in Caffe
            space = layer.forward_space(bottom, top)
            if space <= 0:
                raise ValueError(
                    f"layer {layer.name!r} ({type(layer).__name__}) has an "
                    f"empty coalesced forward space ({space}); check its "
                    "batch size / bottom shapes"
                )
            if self.instrument:
                name = layer.name

                def body(lo: int, hi: int, tid: int,
                         layer=layer, bottom=bottom, top=top,
                         name=name) -> None:
                    self._record(name, "forward", lo, hi, tid)
                    layer.forward_chunk(bottom, top, lo, hi)
            else:
                body = lambda lo, hi, tid: layer.forward_chunk(
                    bottom, top, lo, hi
                )
            sync = self.team.sync
            if sync.observes_chunks:
                inner = body

                def body(lo: int, hi: int, tid: int,
                         inner=inner, name=layer.name) -> None:
                    sync.chunk_point(self.team, tid, name, "forward", lo, hi)
                    inner(lo, hi, tid)
            layer_plan = self._layer_plan(layer.name)
            try:
                if layer_plan is not None and layer_plan.threads <= 1:
                    # Planned single-thread layer: run inline on the
                    # master, no parallel region (bitwise equal to the
                    # sequential pass, no fork/join overhead).
                    body(0, space, 0)
                else:
                    self.team.parallel_for(
                        space,
                        body,
                        self.schedule if layer_plan is None
                        else plan_schedule_for(layer_plan, space),
                    )
            except WorkerError as exc:
                # Chunk-failure reporting: name the layer/phase whose
                # region failed before the error unwinds to the solver.
                exc.layer = layer.name
                exc.phase = "forward"
                raise
            layer.forward_finalize(bottom, top)
            for top_blob, weight in zip(top, layer.loss_weights):
                if weight:
                    total += weight * float(top_blob.flat_data[0])
        return total

    # ------------------------------------------------------------------
    # backward (Algorithm 5 per layer)
    # ------------------------------------------------------------------
    def backward(self, net: Net) -> None:
        net._seed_loss_diffs()
        for i in range(len(net.layers) - 1, -1, -1):
            layer = net.layers[i]
            if not any(net.bottom_need_backward[i]) and not layer.blobs:
                continue
            loops = layer.backward_loops(
                net.tops[i], net.bottom_need_backward[i], net.bottoms[i]
            )
            try:
                for loop in loops:
                    self._run_backward_loop(loop, layer.name)
            except WorkerError as exc:
                exc.layer = layer.name
                exc.phase = "backward"
                raise

    def _run_backward_loop(self, loop: LoopSpec, layer_name: str = "?") -> None:
        if loop.space <= 0:
            raise ValueError(
                f"layer {layer_name!r} produced a backward loop with an "
                f"empty iteration space ({loop.space}); a LoopSpec must "
                "cover at least one coalesced iteration"
            )
        layer_plan = self._layer_plan(layer_name)
        mode = self.reduction
        inline = False
        if layer_plan is not None:
            if layer_plan.reduction is not None:
                mode = layer_plan.reduction
            inline = layer_plan.threads <= 1
        if not loop.reduction:
            if inline:
                if self.instrument:
                    self._record(layer_name, "backward", 0, loop.space, 0)
                loop.body(0, loop.space, loop.grad_targets)
                return
            if self.instrument:
                def plain_body(lo: int, hi: int, tid: int) -> None:
                    self._record(layer_name, "backward", lo, hi, tid)
                    loop.body(lo, hi, loop.grad_targets)
            else:
                plain_body = lambda lo, hi, tid: loop.body(
                    lo, hi, loop.grad_targets
                )
            sync = self.team.sync
            if sync.observes_chunks:
                inner = plain_body

                def plain_body(lo: int, hi: int, tid: int,
                               inner=inner) -> None:
                    sync.chunk_point(
                        self.team, tid, layer_name, "backward", lo, hi
                    )
                    inner(lo, hi, tid)
            self.team.parallel_for(
                loop.space, plain_body,
                self.schedule if layer_plan is None
                else plan_schedule_for(layer_plan, loop.space),
            )
            return
        if inline:
            # Planned single-thread reduction: accumulate straight into
            # the shared targets, exactly like the sequential pass.
            if self.instrument:
                self._record(layer_name, "backward", 0, loop.space, 0, True)
            loop.body(0, loop.space, loop.grad_targets)
            return
        schedule = (
            self.schedule if layer_plan is None
            else plan_schedule_for(layer_plan, loop.space)
        )
        if mode == "blockwise":
            # The blockwise window loop iterates over *block indices*,
            # not civ iterations, so a plan's civ granularity must not
            # rescale its chunks — keep the thread limit only.
            block_schedule = (
                self.schedule if layer_plan is None
                else PlannedSchedule(
                    make_schedule(layer_plan.schedule),
                    layer_plan.threads,
                )
            )
            self._blockwise_loop(loop, layer_name, schedule=block_schedule)
        elif mode in ("ordered", "atomic"):
            self._privatized_loop(
                loop, ordered=mode == "ordered",
                layer_name=layer_name, schedule=schedule,
            )
        else:  # tree
            self._tree_loop(loop, layer_name, schedule=schedule)

    def _privatized_loop(
        self, loop: LoopSpec, ordered: bool, layer_name: str = "?",
        schedule: Optional[Schedule] = None,
    ) -> None:
        """Algorithm 5: privatized accumulation + ordered/atomic merge."""
        team = self.team
        sched = schedule or self.schedule
        sizes = [t.size for t in loop.grad_targets]
        if team.num_threads == 1:
            if self.instrument:
                self._record(layer_name, "backward", 0, loop.space, 0, True)
            loop.body(0, loop.space, loop.grad_targets)
            return
        plan = (
            sched.plan(loop.space, team.num_threads)
            if sched.is_static else None
        )
        server = (
            None if plan is not None
            else sched.chunk_server(loop.space, team.num_threads)
        )
        instrument = self.instrument
        observe = team.sync.observes_chunks

        def region(ctx: RegionContext) -> None:
            grads = self.pool.request(ctx.thread_id, sizes)
            if plan is not None:
                for lo, hi in plan[ctx.thread_id]:
                    if instrument:
                        self._record(
                            layer_name, "backward", lo, hi, ctx.thread_id, True
                        )
                    if observe:
                        team.sync.chunk_point(
                            team, ctx.thread_id, layer_name, "backward", lo, hi
                        )
                    loop.body(lo, hi, grads)
            else:
                while (chunk := server.next_chunk()) is not None:
                    if instrument:
                        self._record(
                            layer_name, "backward", chunk[0], chunk[1],
                            ctx.thread_id, True,
                        )
                    if observe:
                        team.sync.chunk_point(
                            team, ctx.thread_id, layer_name, "backward",
                            chunk[0], chunk[1],
                        )
                    loop.body(chunk[0], chunk[1], grads)
            merge = lambda: add_into(loop.grad_targets, grads)
            if ordered:
                ctx.ordered(merge)
            else:
                ctx.critical(merge)

        team.parallel(region)

    def _tree_loop(
        self, loop: LoopSpec, layer_name: str = "?",
        schedule: Optional[Schedule] = None,
    ) -> None:
        team = self.team
        sched = schedule or self.schedule
        sizes = [t.size for t in loop.grad_targets]
        if team.num_threads == 1:
            if self.instrument:
                self._record(layer_name, "backward", 0, loop.space, 0, True)
            loop.body(0, loop.space, loop.grad_targets)
            return
        plan = sched.plan(loop.space, team.num_threads) \
            if sched.is_static else None
        server = None if plan is not None else \
            sched.chunk_server(loop.space, team.num_threads)
        per_thread: List[List[np.ndarray]] = [None] * team.num_threads  # type: ignore
        instrument = self.instrument
        observe = team.sync.observes_chunks

        def region(ctx: RegionContext) -> None:
            grads = self.pool.request(ctx.thread_id, sizes)
            per_thread[ctx.thread_id] = grads
            if plan is not None:
                for lo, hi in plan[ctx.thread_id]:
                    if instrument:
                        self._record(
                            layer_name, "backward", lo, hi, ctx.thread_id, True
                        )
                    if observe:
                        team.sync.chunk_point(
                            team, ctx.thread_id, layer_name, "backward", lo, hi
                        )
                    loop.body(lo, hi, grads)
            else:
                while (chunk := server.next_chunk()) is not None:
                    if instrument:
                        self._record(
                            layer_name, "backward", chunk[0], chunk[1],
                            ctx.thread_id, True,
                        )
                    if observe:
                        team.sync.chunk_point(
                            team, ctx.thread_id, layer_name, "backward",
                            chunk[0], chunk[1],
                        )
                    loop.body(chunk[0], chunk[1], grads)

        team.parallel(region)
        combined = tree_combine([g for g in per_thread if g is not None])
        add_into(loop.grad_targets, combined)

    def _blockwise_loop(
        self, loop: LoopSpec, layer_name: str = "?",
        schedule: Optional[Schedule] = None,
    ) -> None:
        """Fixed-block accumulation: bitwise thread-count invariant.

        The space is cut at multiples of ``loop.block`` (block boundaries
        never depend on the thread count); a window of blocks is computed
        in parallel — one private buffer per block — then merged in block
        order by the master.  Memory is bounded by
        ``block_window x sum(target sizes)``.
        """
        sched = schedule or self.schedule
        block = max(loop.block, 1)
        nblocks = -(-loop.space // block)
        sizes = [t.size for t in loop.grad_targets]
        window = self.block_window
        for first in range(0, nblocks, window):
            count = min(window, nblocks - first)
            buffers = [self.pool.request(slot, sizes) for slot in range(count)]

            def window_body(b_lo: int, b_hi: int, tid: int) -> None:
                for rel in range(b_lo, b_hi):
                    block_index = first + rel
                    lo = block_index * block
                    hi = min(lo + block, loop.space)
                    if self.instrument:
                        self._record(layer_name, "backward", lo, hi, tid, True)
                    if self.team.sync.observes_chunks:
                        self.team.sync.chunk_point(
                            self.team, tid, layer_name, "backward", lo, hi
                        )
                    loop.body(lo, hi, buffers[rel])

            self.team.parallel_for(count, window_body, sched)
            for rel in range(count):  # fixed block order
                add_into(loop.grad_targets, buffers[rel])

    # ------------------------------------------------------------------
    # memory accounting & lifecycle
    # ------------------------------------------------------------------
    @property
    def privatization_high_water_bytes(self) -> int:
        """Extra memory attributable to privatization (Section 3.2.1)."""
        return self.pool.high_water_bytes

    def close(self) -> None:
        """Shut the thread team down (if owned) and drop pool storage."""
        if self._own_team:
            self.team.shutdown()
        self.pool.clear()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
