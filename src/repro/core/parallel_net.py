"""ParallelExecutor: coarse-grain parallel forward/backward for any Net.

This is the paper's transformation applied end to end.  The executor
walks the net layer by layer (the passes themselves are inherently
sequential — Algorithm 1); *within* each layer it distributes the
coalesced iteration space over the thread team (Algorithm 4 for forward,
Algorithm 5 for backward).  It is **network-agnostic**: it only touches
the generic chunk protocol every layer inherits, never the layer's
computation.

Gradient reductions honour the configured mode:

* ``"ordered"`` (paper default) — one private buffer per thread, merged
  via the team's ordered construct in thread-id order.  Deterministic for
  a fixed thread count; bitwise equal to the sequential pass at 1 thread.
* ``"atomic"`` — merged under the critical lock in completion order
  (the paper's "reduction-based solution": values agree only up to
  floating-point reassociation).
* ``"tree"`` — per-thread buffers combined pairwise by the master after
  the loop; deterministic per thread count.
* ``"blockwise"`` — accumulation in fixed sample blocks, merged in block
  order through a bounded window of block buffers; **bitwise identical
  for every thread count**, which makes the whole training trajectory
  thread-count invariant (the strongest reading of the paper's
  convergence-invariance claim; see DESIGN.md).

Usage::

    executor = ParallelExecutor(num_threads=8, reduction="ordered")
    solver = SGDSolver(params, net, executor=executor)
    solver.step(100)
    executor.close()
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.privatization import PrivatePool
from repro.core.reduction import REDUCTION_MODES, add_into, tree_combine
from repro.core.scheduling import Schedule, StaticSchedule
from repro.core.team import RegionContext, ThreadTeam
from repro.framework.layer import LoopSpec
from repro.framework.net import Net


class ParallelExecutor:
    """Drives a framework :class:`~repro.framework.net.Net` with
    batch-level parallelism.

    Parameters
    ----------
    num_threads:
        Team size (1 = sequential semantics through the same code path).
    schedule:
        Loop schedule; defaults to OpenMP static, the paper's choice.
    reduction:
        One of :data:`~repro.core.reduction.REDUCTION_MODES`.
    block_window:
        For ``"blockwise"``: number of block buffers alive at once
        (bounds the extra memory to ``window x largest layer``).
    team:
        Optionally share an existing :class:`ThreadTeam`.
    """

    def __init__(
        self,
        num_threads: int = 1,
        schedule: Optional[Schedule] = None,
        reduction: str = "ordered",
        block_window: int = 8,
        team: Optional[ThreadTeam] = None,
    ) -> None:
        if reduction not in REDUCTION_MODES:
            raise ValueError(
                f"unknown reduction mode {reduction!r}; expected one of "
                f"{REDUCTION_MODES}"
            )
        if block_window <= 0:
            raise ValueError(f"block_window must be positive: {block_window}")
        if reduction == "ordered" and schedule is not None and not schedule.is_static:
            raise ValueError(
                "the ordered reduction requires a static schedule to be "
                "deterministic; use reduction='atomic' with dynamic/guided"
            )
        self.schedule = schedule or StaticSchedule()
        self.reduction = reduction
        self.block_window = block_window
        self._own_team = team is None
        self.team = team or ThreadTeam(num_threads)
        self.pool = PrivatePool()

    @property
    def num_threads(self) -> int:
        return self.team.num_threads

    # ------------------------------------------------------------------
    # forward (Algorithm 4 per layer)
    # ------------------------------------------------------------------
    def forward(self, net: Net) -> float:
        total = 0.0
        for layer, bottom, top in zip(net.layers, net.bottoms, net.tops):
            layer.reshape(bottom, top)  # sequential, as in Caffe
            space = layer.forward_space(bottom, top)
            self.team.parallel_for(
                space,
                lambda lo, hi, tid: layer.forward_chunk(bottom, top, lo, hi),
                self.schedule,
            )
            layer.forward_finalize(bottom, top)
            for top_blob, weight in zip(top, layer.loss_weights):
                if weight:
                    total += weight * float(top_blob.flat_data[0])
        return total

    # ------------------------------------------------------------------
    # backward (Algorithm 5 per layer)
    # ------------------------------------------------------------------
    def backward(self, net: Net) -> None:
        net._seed_loss_diffs()
        for i in range(len(net.layers) - 1, -1, -1):
            layer = net.layers[i]
            if not any(net.bottom_need_backward[i]) and not layer.blobs:
                continue
            loops = layer.backward_loops(
                net.tops[i], net.bottom_need_backward[i], net.bottoms[i]
            )
            for loop in loops:
                self._run_backward_loop(loop)

    def _run_backward_loop(self, loop: LoopSpec) -> None:
        if not loop.reduction:
            self.team.parallel_for(
                loop.space,
                lambda lo, hi, tid: loop.body(lo, hi, loop.grad_targets),
                self.schedule,
            )
            return
        if loop.space <= 0:
            return
        if self.reduction == "blockwise":
            self._blockwise_loop(loop)
        elif self.reduction in ("ordered", "atomic"):
            self._privatized_loop(loop, ordered=self.reduction == "ordered")
        else:  # tree
            self._tree_loop(loop)

    def _privatized_loop(self, loop: LoopSpec, ordered: bool) -> None:
        """Algorithm 5: privatized accumulation + ordered/atomic merge."""
        team = self.team
        sizes = [t.size for t in loop.grad_targets]
        if team.num_threads == 1:
            loop.body(0, loop.space, loop.grad_targets)
            return
        plan = (
            self.schedule.plan(loop.space, team.num_threads)
            if self.schedule.is_static else None
        )
        server = (
            None if plan is not None
            else self.schedule.chunk_server(loop.space, team.num_threads)
        )

        def region(ctx: RegionContext) -> None:
            grads = self.pool.request(ctx.thread_id, sizes)
            if plan is not None:
                for lo, hi in plan[ctx.thread_id]:
                    loop.body(lo, hi, grads)
            else:
                while (chunk := server.next_chunk()) is not None:
                    loop.body(chunk[0], chunk[1], grads)
            merge = lambda: add_into(loop.grad_targets, grads)
            if ordered:
                ctx.ordered(merge)
            else:
                ctx.critical(merge)

        team.parallel(region)

    def _tree_loop(self, loop: LoopSpec) -> None:
        team = self.team
        sizes = [t.size for t in loop.grad_targets]
        if team.num_threads == 1:
            loop.body(0, loop.space, loop.grad_targets)
            return
        plan = self.schedule.plan(loop.space, team.num_threads) \
            if self.schedule.is_static else None
        server = None if plan is not None else \
            self.schedule.chunk_server(loop.space, team.num_threads)
        per_thread: List[List[np.ndarray]] = [None] * team.num_threads  # type: ignore

        def region(ctx: RegionContext) -> None:
            grads = self.pool.request(ctx.thread_id, sizes)
            per_thread[ctx.thread_id] = grads
            if plan is not None:
                for lo, hi in plan[ctx.thread_id]:
                    loop.body(lo, hi, grads)
            else:
                while (chunk := server.next_chunk()) is not None:
                    loop.body(chunk[0], chunk[1], grads)

        team.parallel(region)
        combined = tree_combine([g for g in per_thread if g is not None])
        add_into(loop.grad_targets, combined)

    def _blockwise_loop(self, loop: LoopSpec) -> None:
        """Fixed-block accumulation: bitwise thread-count invariant.

        The space is cut at multiples of ``loop.block`` (block boundaries
        never depend on the thread count); a window of blocks is computed
        in parallel — one private buffer per block — then merged in block
        order by the master.  Memory is bounded by
        ``block_window x sum(target sizes)``.
        """
        block = max(loop.block, 1)
        nblocks = -(-loop.space // block)
        sizes = [t.size for t in loop.grad_targets]
        window = self.block_window
        for first in range(0, nblocks, window):
            count = min(window, nblocks - first)
            buffers = [self.pool.request(slot, sizes) for slot in range(count)]

            def window_body(b_lo: int, b_hi: int, tid: int) -> None:
                for rel in range(b_lo, b_hi):
                    block_index = first + rel
                    lo = block_index * block
                    hi = min(lo + block, loop.space)
                    loop.body(lo, hi, buffers[rel])

            self.team.parallel_for(count, window_body, self.schedule)
            for rel in range(count):  # fixed block order
                add_into(loop.grad_targets, buffers[rel])

    # ------------------------------------------------------------------
    # memory accounting & lifecycle
    # ------------------------------------------------------------------
    @property
    def privatization_high_water_bytes(self) -> int:
        """Extra memory attributable to privatization (Section 3.2.1)."""
        return self.pool.high_water_bytes

    def close(self) -> None:
        """Shut the thread team down (if owned) and drop pool storage."""
        if self._own_team:
            self.team.shutdown()
        self.pool.clear()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
