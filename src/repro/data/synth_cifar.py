"""Synthetic CIFAR-10: 32x32x3 color images with per-class signatures.

Each of the ten classes combines a characteristic hue, an oriented
texture (sinusoidal grating at a class-specific angle and frequency) and
a geometric mask (disc, bar, ring, corner wedge, ...).  Samples draw the
class signature with randomized phase, position and lighting plus pixel
noise, giving a dataset whose classes require spatial feature learning
(the gratings defeat a pure color histogram) but that a small CNN learns
quickly — the same role CIFAR-10 plays in the paper's evaluation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

SIZE = 32

# Per-class (hue RGB, grating angle, grating frequency, shape id).
_CLASS_SIGNATURES = [
    ((0.9, 0.2, 0.2), 0.0, 3.0, 0),
    ((0.2, 0.9, 0.2), 0.6, 4.0, 1),
    ((0.2, 0.3, 0.9), 1.2, 5.0, 2),
    ((0.9, 0.8, 0.1), 1.8, 3.5, 3),
    ((0.8, 0.2, 0.8), 2.4, 4.5, 0),
    ((0.1, 0.8, 0.8), 0.3, 6.0, 1),
    ((0.9, 0.5, 0.1), 0.9, 2.5, 2),
    ((0.5, 0.5, 0.9), 1.5, 5.5, 3),
    ((0.6, 0.9, 0.4), 2.1, 3.0, 0),
    ((0.9, 0.4, 0.6), 2.7, 4.0, 1),
]


def _shape_mask(shape_id: int, cx: float, cy: float) -> np.ndarray:
    ys, xs = np.mgrid[0:SIZE, 0:SIZE].astype(np.float64)
    if shape_id == 0:  # disc
        return ((xs - cx) ** 2 + (ys - cy) ** 2 < (SIZE * 0.3) ** 2).astype(float)
    if shape_id == 1:  # horizontal bar
        return (np.abs(ys - cy) < SIZE * 0.15).astype(float)
    if shape_id == 2:  # ring
        r2 = (xs - cx) ** 2 + (ys - cy) ** 2
        return (
            (r2 < (SIZE * 0.38) ** 2) & (r2 > (SIZE * 0.2) ** 2)
        ).astype(float)
    # corner wedge
    return ((xs + ys) < (cx + cy)).astype(float)


class SyntheticCIFAR10:
    """Deterministic synthetic CIFAR-10-like dataset.

    Parameters mirror :class:`~repro.data.synth_mnist.SyntheticMNIST`.
    """

    def __init__(
        self, n_samples: int = 1024, seed: int = 0, noise: float = 0.05
    ) -> None:
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {n_samples}")
        rng = np.random.default_rng(seed)
        images = np.zeros((n_samples, 3, SIZE, SIZE), dtype=np.float32)
        labels = rng.integers(0, 10, n_samples)
        ys, xs = np.mgrid[0:SIZE, 0:SIZE].astype(np.float64)
        for i in range(n_samples):
            hue, angle, freq, shape_id = _CLASS_SIGNATURES[int(labels[i])]
            angle = angle + rng.normal(0.0, 0.08)
            phase = rng.uniform(0.0, 2.0 * np.pi)
            coord = xs * np.cos(angle) + ys * np.sin(angle)
            grating = 0.5 + 0.5 * np.sin(
                2.0 * np.pi * freq * coord / SIZE + phase
            )
            cx = SIZE / 2 + rng.normal(0.0, 2.5)
            cy = SIZE / 2 + rng.normal(0.0, 2.5)
            mask = _shape_mask(shape_id, cx, cy)
            lighting = rng.uniform(0.7, 1.0)
            base = grating * (0.35 + 0.65 * mask) * lighting
            for channel in range(3):
                plane = hue[channel] * base
                plane = plane + rng.normal(0.0, noise, plane.shape)
                images[i, channel] = np.clip(plane, 0.0, 1.0)
        self.images = images
        self.labels = labels.astype(np.int64)

    @property
    def shape(self) -> Tuple[int, int, int]:
        return (3, SIZE, SIZE)
