"""Dataset substrate: deterministic synthetic stand-ins for MNIST/CIFAR-10.

The evaluation container is offline, so the real datasets are replaced by
procedural generators with the same shapes and a learnable class
structure:

* :class:`~repro.data.synth_mnist.SyntheticMNIST` — 28x28x1 grayscale
  "digits" rendered from per-class stroke skeletons with random jitter,
  translation and noise.
* :class:`~repro.data.synth_cifar.SyntheticCIFAR10` — 32x32x3 color images
  with per-class texture/shape signatures.

Both are exposed through :class:`~repro.data.batch_source.ArrayBatchSource`
(the LMDB-reader substitute that the framework's Data layer consumes) and
registered under the names the zoo prototxts reference.
"""

from repro.data.batch_source import ArrayBatchSource, BatchSource
from repro.data.synth_mnist import SyntheticMNIST
from repro.data.synth_cifar import SyntheticCIFAR10
from repro.data.registry import register_default_sources

__all__ = [
    "ArrayBatchSource",
    "BatchSource",
    "SyntheticCIFAR10",
    "SyntheticMNIST",
    "register_default_sources",
]
