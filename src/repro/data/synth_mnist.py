"""Synthetic MNIST: procedurally rendered 28x28 grayscale digits.

Each class 0-9 has a stroke skeleton (a polyline on a 28x28 canvas, drawn
from the seven-segment-style geometry of the digit).  A sample is rendered
by jittering the skeleton's control points, rasterizing the strokes with a
soft brush, translating the result by a small random offset, and adding
pixel noise.  The resulting classes are linearly *non*-trivial but easily
separable by a small CNN — enough signal for the convergence experiments
(loss decreases, accuracy far above the 10% chance level) while remaining
fully offline and deterministic per seed.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

SIZE = 28

# Control polylines per digit on a [0, 1]^2 canvas (x right, y down).
# Geometry loosely follows seven-segment renderings with diagonals for
# 2, 4 and 7 so classes differ in stroke topology, not just position.
_DIGIT_STROKES: Dict[int, List[Sequence[Tuple[float, float]]]] = {
    0: [[(0.3, 0.2), (0.7, 0.2), (0.7, 0.8), (0.3, 0.8), (0.3, 0.2)]],
    1: [[(0.5, 0.15), (0.5, 0.85)], [(0.38, 0.28), (0.5, 0.15)]],
    2: [[(0.3, 0.25), (0.5, 0.15), (0.7, 0.3), (0.3, 0.8), (0.7, 0.8)]],
    3: [[(0.3, 0.2), (0.7, 0.2), (0.5, 0.5), (0.7, 0.65), (0.5, 0.85),
         (0.3, 0.8)]],
    4: [[(0.65, 0.85), (0.65, 0.15), (0.3, 0.6), (0.75, 0.6)]],
    5: [[(0.7, 0.2), (0.3, 0.2), (0.3, 0.5), (0.65, 0.5), (0.65, 0.8),
         (0.3, 0.8)]],
    6: [[(0.65, 0.2), (0.35, 0.4), (0.3, 0.7), (0.5, 0.85), (0.68, 0.7),
         (0.6, 0.52), (0.34, 0.58)]],
    7: [[(0.3, 0.2), (0.7, 0.2), (0.45, 0.85)]],
    8: [[(0.5, 0.15), (0.32, 0.3), (0.5, 0.48), (0.68, 0.3), (0.5, 0.15)],
        [(0.5, 0.48), (0.3, 0.68), (0.5, 0.86), (0.7, 0.68), (0.5, 0.48)]],
    9: [[(0.66, 0.42), (0.46, 0.5), (0.34, 0.34), (0.48, 0.16),
         (0.66, 0.28), (0.66, 0.42), (0.6, 0.85)]],
}


def _rasterize(
    strokes: Sequence[Sequence[Tuple[float, float]]],
    jitter: np.ndarray,
    brush_sigma: float,
) -> np.ndarray:
    """Draw jittered polylines with a Gaussian brush on a SIZE x SIZE canvas."""
    canvas = np.zeros((SIZE, SIZE), dtype=np.float64)
    ys, xs = np.mgrid[0:SIZE, 0:SIZE]
    point_index = 0
    for stroke in strokes:
        pts = np.asarray(stroke, dtype=np.float64)
        pts = pts + jitter[point_index : point_index + len(pts)]
        point_index += len(pts)
        for (x0, y0), (x1, y1) in zip(pts[:-1], pts[1:]):
            length = max(abs(x1 - x0), abs(y1 - y0))
            steps = max(int(length * SIZE * 2), 2)
            ts = np.linspace(0.0, 1.0, steps)
            px = (x0 + ts * (x1 - x0)) * (SIZE - 1)
            py = (y0 + ts * (y1 - y0)) * (SIZE - 1)
            for cx, cy in zip(px, py):
                dist2 = (xs - cx) ** 2 + (ys - cy) ** 2
                canvas += np.exp(-dist2 / (2.0 * brush_sigma**2))
    peak = canvas.max()
    if peak > 0:
        canvas = np.minimum(canvas / (0.6 * peak), 1.0)
    return canvas


def _points_in(digit: int) -> int:
    return sum(len(s) for s in _DIGIT_STROKES[digit])


class SyntheticMNIST:
    """Deterministic synthetic MNIST-like dataset.

    Parameters
    ----------
    n_samples:
        Number of images to generate.
    seed:
        Generator seed; two instances with the same seed produce identical
        data.
    jitter:
        Standard deviation of the control-point perturbation (canvas units).
    noise:
        Standard deviation of additive pixel noise.
    """

    def __init__(
        self,
        n_samples: int = 1024,
        seed: int = 0,
        jitter: float = 0.02,
        noise: float = 0.05,
    ) -> None:
        if n_samples <= 0:
            raise ValueError(f"n_samples must be positive, got {n_samples}")
        rng = np.random.default_rng(seed)
        images = np.zeros((n_samples, 1, SIZE, SIZE), dtype=np.float32)
        labels = rng.integers(0, 10, n_samples)
        for i in range(n_samples):
            digit = int(labels[i])
            pts = _points_in(digit)
            point_jitter = rng.normal(0.0, jitter, (pts, 2))
            canvas = _rasterize(
                _DIGIT_STROKES[digit], point_jitter,
                brush_sigma=rng.uniform(0.8, 1.2),
            )
            shift = rng.integers(-2, 3, 2)
            canvas = np.roll(canvas, shift, axis=(0, 1))
            canvas += rng.normal(0.0, noise, canvas.shape)
            images[i, 0] = np.clip(canvas, 0.0, 1.0)
        self.images = images
        self.labels = labels.astype(np.int64)

    @property
    def shape(self) -> Tuple[int, int, int]:
        return (1, SIZE, SIZE)
