"""Batch sources: the LMDB-reader substitute feeding the Data layer.

A batch source exposes one sample shape and an infinite stream of batches
(wrapping around the underlying dataset, as Caffe's DB readers do).  The
stream order is deterministic for a given seed, which the reproduction's
convergence-invariance experiments rely on.
"""

from __future__ import annotations

from typing import Protocol, Tuple

import numpy as np


class BatchSource(Protocol):
    """Protocol consumed by :class:`repro.framework.layers.data.DataLayer`."""

    @property
    def shape(self) -> Tuple[int, int, int]:
        """``(channels, height, width)`` of one sample."""
        ...

    def next_batch(self, batch_size: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(images, labels)`` with ``images`` of shape
        ``(batch_size, C, H, W)`` and integer ``labels`` of shape
        ``(batch_size,)``."""
        ...


class ArrayBatchSource:
    """Serves batches from in-memory arrays, with optional shuffling.

    Parameters
    ----------
    images:
        Array of shape ``(n, C, H, W)``.
    labels:
        Integer array of shape ``(n,)``.
    shuffle:
        Re-permute the epoch order each wrap-around.
    seed:
        Seed for the shuffling stream (ignored when ``shuffle`` is False).
    """

    def __init__(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        shuffle: bool = False,
        seed: int = 0,
    ) -> None:
        images = np.asarray(images, dtype=np.float32)
        labels = np.asarray(labels)
        if images.ndim != 4:
            raise ValueError(f"images must be (n, C, H, W), got {images.shape}")
        if labels.shape != (images.shape[0],):
            raise ValueError(
                f"labels shape {labels.shape} does not match "
                f"{images.shape[0]} images"
            )
        if images.shape[0] == 0:
            raise ValueError("batch source needs at least one sample")
        self._images = images
        self._labels = labels
        self._shuffle = shuffle
        self._rng = np.random.default_rng(seed)
        self._order = np.arange(images.shape[0])
        if shuffle:
            self._rng.shuffle(self._order)
        self._cursor = 0
        self.epochs_completed = 0

    @property
    def shape(self) -> Tuple[int, int, int]:
        return tuple(self._images.shape[1:])  # type: ignore[return-value]

    @property
    def size(self) -> int:
        return self._images.shape[0]

    def next_batch(self, batch_size: int) -> Tuple[np.ndarray, np.ndarray]:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        picks = np.empty(batch_size, dtype=np.int64)
        filled = 0
        while filled < batch_size:
            take = min(batch_size - filled, self.size - self._cursor)
            picks[filled : filled + take] = self._order[
                self._cursor : self._cursor + take
            ]
            self._cursor += take
            filled += take
            if self._cursor == self.size:
                self._cursor = 0
                self.epochs_completed += 1
                if self._shuffle:
                    self._rng.shuffle(self._order)
        return self._images[picks], self._labels[picks]

    def reset(self) -> None:
        """Rewind to the start of the (current) epoch order."""
        self._cursor = 0

    # ------------------------------------------------------------------
    # cursor capture (checkpoint / resume)
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """JSON-serializable stream position: cursor, epoch count, the
        current epoch's permutation, and the shuffle RNG state.  A resume
        that restores this replays the exact remaining batch sequence;
        omitting it would re-serve samples the run already consumed."""
        return {
            "cursor": int(self._cursor),
            "epochs_completed": int(self.epochs_completed),
            "order": [int(i) for i in self._order],
            "rng": self._rng.bit_generator.state,
            "shuffle": bool(self._shuffle),
        }

    def set_state(self, state: dict) -> None:
        """Restore a :meth:`get_state` capture."""
        order = np.asarray(state["order"], dtype=self._order.dtype)
        if order.shape != self._order.shape:
            raise ValueError(
                f"source state has {order.size} samples, this source has "
                f"{self.size}"
            )
        if bool(state["shuffle"]) != self._shuffle:
            raise ValueError(
                f"source state was captured with shuffle="
                f"{state['shuffle']}, this source has shuffle="
                f"{self._shuffle}"
            )
        self._order = order
        self._cursor = int(state["cursor"])
        self.epochs_completed = int(state["epochs_completed"])
        self._rng.bit_generator.state = state["rng"]
