"""Default data-source registrations for the zoo prototxts.

The zoo network definitions reference sources by name (e.g.
``source: "synth_mnist_train"``), just as Caffe's reference prototxts
point at LMDB paths.  Calling :func:`register_default_sources` installs
factories for all of them.  Dataset construction is cached so repeated
net builds do not re-render the synthetic images.
"""

from __future__ import annotations

from functools import lru_cache

from repro.data.batch_source import ArrayBatchSource
from repro.data.synth_cifar import SyntheticCIFAR10
from repro.data.synth_mnist import SyntheticMNIST
from repro.framework.layers.data import register_source

#: Sample counts for the default synthetic datasets.  Small enough to
#: render quickly, large enough to show convergence.
TRAIN_SAMPLES = 2048
TEST_SAMPLES = 512

#: Declared per-sample geometry, letting static shape inference resolve
#: the zoo data layers without rendering a single synthetic image.
MNIST_SAMPLE_SHAPE = (1, 28, 28)
CIFAR_SAMPLE_SHAPE = (3, 32, 32)


@lru_cache(maxsize=None)
def _mnist(split: str) -> SyntheticMNIST:
    if split == "train":
        return SyntheticMNIST(n_samples=TRAIN_SAMPLES, seed=1)
    return SyntheticMNIST(n_samples=TEST_SAMPLES, seed=2)


@lru_cache(maxsize=None)
def _cifar(split: str) -> SyntheticCIFAR10:
    if split == "train":
        return SyntheticCIFAR10(n_samples=TRAIN_SAMPLES, seed=3)
    return SyntheticCIFAR10(n_samples=TEST_SAMPLES, seed=4)


def register_default_sources() -> None:
    """Register the four named sources the zoo prototxts use.

    Sources are created fresh per call (so each net gets an independent
    cursor), but the underlying datasets are cached.
    """
    register_source(
        "synth_mnist_train",
        lambda: ArrayBatchSource(
            _mnist("train").images, _mnist("train").labels, shuffle=False
        ),
        shape=MNIST_SAMPLE_SHAPE,
    )
    register_source(
        "synth_mnist_test",
        lambda: ArrayBatchSource(
            _mnist("test").images, _mnist("test").labels, shuffle=False
        ),
        shape=MNIST_SAMPLE_SHAPE,
    )
    register_source(
        "synth_cifar_train",
        lambda: ArrayBatchSource(
            _cifar("train").images, _cifar("train").labels, shuffle=False
        ),
        shape=CIFAR_SAMPLE_SHAPE,
    )
    register_source(
        "synth_cifar_test",
        lambda: ArrayBatchSource(
            _cifar("test").images, _cifar("test").labels, shuffle=False
        ),
        shape=CIFAR_SAMPLE_SHAPE,
    )
