"""Per-thread scratch-buffer pool for chunk-local work arrays.

Layers that need a temporary array inside ``forward_chunk`` /
``backward_chunk`` (the im2col column buffer is the big one) used to
``np.empty`` it on every chunk call.  Under the coarse-grain executor
that is one multi-megabyte allocation per chunk per iteration — pure
allocator churn that never survives the call.  This module replaces it
with a keyed pool:

* **per-thread** — the pool lives in ``threading.local`` storage, so
  two worker threads never hand out the same buffer and no locking sits
  on the chunk hot path;
* **keyed by (tag, shape, dtype)** — a layer asks for
  ``scratch_buffer("conv.col", self._col_shape)`` and gets the same
  array back on every subsequent call with that geometry.  Distinct
  tags never alias, so a chunk may hold several live buffers at once
  (``conv.col`` and ``conv.dcol`` in the conv backward pass);
* **uninitialised** — buffers come from ``np.empty`` and are *not*
  cleared between calls.  Callers must fully overwrite the region they
  read (``im2col`` overwrites its whole output; ``col2im`` starts with
  ``out.fill(0.0)``), which the pooled call sites already do.

``pool_stats()`` aggregates hit/miss counters across every thread that
ever touched the pool; the zero-allocation regression test resets the
counters after warmup and asserts the steady state never misses.

The registry tracks ``(thread, state)`` pairs so that states belonging
to threads that have exited can be retired: their slabs are dropped
(the memory is what matters) while their hit/miss counters fold into a
retired-totals accumulator, keeping ``pool_stats()`` aggregates stable
across ThreadTeam lifetimes.  ``ThreadTeam.shutdown`` calls
:func:`release_dead_states`; long-lived processes cycling many teams
therefore never accumulate dead slab entries under ``_STATES_LOCK``.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Sequence, Tuple

import numpy as np

_Key = Tuple[str, Tuple[int, ...], str]


class _PoolState:
    """One thread's buffers plus its share of the global counters."""

    __slots__ = ("buffers", "hits", "misses")

    def __init__(self) -> None:
        self.buffers: Dict[_Key, np.ndarray] = {}
        self.hits = 0
        self.misses = 0


_TLS = threading.local()
#: (owning thread, its _PoolState) for every live thread that touched
#: the pool — kept pruned of dead threads by release_dead_states().
_STATES: List[Tuple[threading.Thread, _PoolState]] = []
_STATES_LOCK = threading.Lock()
#: hit/miss totals inherited from retired (dead-thread) states, so the
#: aggregate counters survive pruning.
_RETIRED = {"hits": 0, "misses": 0}


def _retire_dead_locked() -> None:
    """Drop dead threads' states; fold their counters into _RETIRED.

    Caller must hold ``_STATES_LOCK``.
    """
    live: List[Tuple[threading.Thread, _PoolState]] = []
    for thread, state in _STATES:
        if thread.is_alive():
            live.append((thread, state))
        else:
            _RETIRED["hits"] += state.hits
            _RETIRED["misses"] += state.misses
            state.buffers.clear()
    _STATES[:] = live


def release_dead_states() -> int:
    """Retire pool states whose owning threads have exited.

    Returns the number of states released.  Safe to call from any
    thread at any time; ``ThreadTeam.shutdown`` invokes it so worker
    slabs are reclaimed when a team is torn down.
    """
    with _STATES_LOCK:
        before = len(_STATES)
        _retire_dead_locked()
        return before - len(_STATES)


def _state() -> _PoolState:
    state = getattr(_TLS, "state", None)
    if state is None:
        state = _PoolState()
        with _STATES_LOCK:
            _retire_dead_locked()
            _STATES.append((threading.current_thread(), state))
        _TLS.state = state
    return state


def scratch_buffer(tag: str, shape: Sequence[int],
                   dtype=np.float32) -> np.ndarray:
    """Return this thread's pooled work array for ``(tag, shape, dtype)``.

    The first request with a given key allocates; every later request
    from the same thread returns the identical array object.  Contents
    are unspecified on entry — callers overwrite before reading.
    """
    state = _state()
    dt = np.dtype(dtype)
    key = (tag, tuple(int(d) for d in shape), dt.str)
    buf = state.buffers.get(key)
    if buf is None:
        buf = np.empty(key[1], dtype=dt)
        state.buffers[key] = buf
        state.misses += 1
    else:
        state.hits += 1
    return buf


def pool_stats() -> Dict[str, int]:
    """Aggregate counters across every thread that used the pool.

    Retired (dead-thread) states keep contributing their hit/miss
    counts; their buffers are gone, so ``buffers``/``bytes`` only cover
    live threads.
    """
    with _STATES_LOCK:
        _retire_dead_locked()
        states = [s for _, s in _STATES]
        hits = _RETIRED["hits"]
        misses = _RETIRED["misses"]
    return {
        "hits": hits + sum(s.hits for s in states),
        "misses": misses + sum(s.misses for s in states),
        "buffers": sum(len(s.buffers) for s in states),
        "bytes": sum(b.nbytes for s in states for b in s.buffers.values()),
    }


def reset_pool_stats() -> None:
    """Zero the hit/miss counters everywhere; keep the buffers warm."""
    with _STATES_LOCK:
        _RETIRED["hits"] = 0
        _RETIRED["misses"] = 0
        states = [s for _, s in _STATES]
    for state in states:
        state.hits = 0
        state.misses = 0


def clear_pool() -> None:
    """Drop every cached buffer (and the counters) in every thread.

    Buffers handed out earlier stay valid — the pool merely forgets
    them, so the next request reallocates.  Test isolation helper.
    """
    with _STATES_LOCK:
        _RETIRED["hits"] = 0
        _RETIRED["misses"] = 0
        _retire_dead_locked()
        states = [s for _, s in _STATES]
    for state in states:
        state.buffers.clear()
        state.hits = 0
        state.misses = 0
