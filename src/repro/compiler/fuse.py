"""Operator fusion over a :class:`~repro.framework.net_spec.NetSpec`.

:func:`fuse_spec` is a spec-to-spec transform: it detects elementwise
chains —

* ``Convolution -> [Bias | Scale] -> ReLU`` (middle optional),
* ``InnerProduct -> ReLU``,
* ``Eltwise -> ReLU``,
* ``Scale -> Bias``,

— and collapses each into one of the fused layer types registered in
:mod:`repro.framework.layers.fused`, then (optionally) rewrites
remaining elementwise layers (slope-0 ReLU, Dropout) to run in place on
their bottom blob where the dataflow allows.

Legality is deliberately conservative; a chain fuses only when

* every link is a *single-consumer* production — the absorbed layer is
  the only reader of that version of the blob, in **every** phase whose
  layer list contains the primary (a TEST-only reader of an
  intermediate blob vetoes the chain);
* all members share the primary's ``phase`` and carry no
  ``loss_weight``;
* an absorbed ReLU has slope 0 (so its backward mask ``y > 0`` equals
  the standalone ``x > 0`` bitwise);
* an absorbed Bias/Scale middle works on axis 1, and a Scale (middle
  *or* ``Scale -> Bias`` primary) is not already in place — its
  coefficient gradient reads the pre-scale values, which only exist to
  stash when the original graph materialized them.

The in-place rewriter's legality mirrors the same discipline: the
candidate's bottom must come from a producer whose backward never reads
its own top data (pooling reads its argmax, conv reads bottom + diff,
…), the bottom production must have no other reader, and the retargeted
top name must be produced exactly once.  LRN, Sigmoid, TanH, Softmax
and friends are excluded as producers because their backward passes
*do* read their top data.

Everything returned is certified downstream: ``python -m repro.analysis
fusecheck`` replays the fused net against the unfused sequential
baseline and demands bitwise equality.
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.framework.net_spec import BlobLrSpec, LayerSpec, NetSpec

PHASES = ("TRAIN", "TEST")

# Elementwise layers eligible for the in-place rewrite.  Slope-0 ReLU's
# backward mask is identical either way; Dropout's backward reads only
# its private mask.
_INPLACE_CANDIDATES = {"relu", "dropout"}

# Producers whose top may be overwritten by an in-place consumer: their
# backward pass never reads its own top *data*.  Deliberately absent:
# lrn / sigmoid / tanh / exp / bnll / softmax / power / log / absval
# (top-reading backwards) and every fused type (the fused ReLU mask
# reads the fused top).
_INPLACE_PRODUCERS = {
    "convolution", "innerproduct", "pooling", "eltwise", "bias", "scale",
    "concat", "flatten", "split", "data", "input", "memorydata",
    "dropout", "relu",
}


class FusionError(RuntimeError):
    """The fusion pass produced an inconsistent spec (internal error)."""


@dataclass
class FusionDecision:
    """One chain collapsed into a fused layer."""

    primary: str
    fused_type: str
    absorbed: List[str]
    phase: Optional[str] = None


@dataclass
class InplaceRewrite:
    """One elementwise layer retargeted onto its bottom blob."""

    layer: str
    old_top: str
    new_top: str


@dataclass
class FusionReport:
    """What :func:`fuse_spec` did, for humans and for JSON."""

    net: str = ""
    fused: List[FusionDecision] = field(default_factory=list)
    rewrites: List[InplaceRewrite] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "format": "repro-fuse-report/1",
            "net": self.net,
            "fused": [dataclasses.asdict(d) for d in self.fused],
            "rewrites": [dataclasses.asdict(r) for r in self.rewrites],
            "notes": list(self.notes),
        }

    def summary_lines(self) -> List[str]:
        lines = [
            f"fuse[{self.net or 'net'}]: {len(self.fused)} chain(s) fused, "
            f"{len(self.rewrites)} in-place rewrite(s)"
        ]
        for d in self.fused:
            lines.append(
                f"  {d.primary} <- {' + '.join(d.absorbed)} ({d.fused_type})"
            )
        for r in self.rewrites:
            lines.append(
                f"  in-place: {r.layer} now writes {r.new_top} "
                f"(was {r.old_top})"
            )
        lines.extend(f"  note: {n}" for n in self.notes)
        return lines


# ---------------------------------------------------------------------------
# chain detection
# ---------------------------------------------------------------------------
def _is_plain_relu(spec: LayerSpec) -> bool:
    return (
        spec.type.lower() == "relu"
        and not spec.param("negative_slope", 0)
    )


def _middle_ok(spec: LayerSpec) -> bool:
    kind = spec.type.lower()
    if kind not in ("bias", "scale"):
        return False
    if int(spec.param("axis", 1)) != 1:
        return False
    if kind == "scale" and spec.tops and spec.bottoms \
            and spec.tops[0] == spec.bottoms[0]:
        # In-place Scale: its coefficient gradient would have read the
        # *post*-scale values; the fused stash holds pre-scale ones.
        return False
    return True


def _single_consumer(layers: Sequence[LayerSpec], i: int) -> Optional[int]:
    """Index of the sole consumer of ``layers[i]``'s one top, if that
    consumer is a one-bottom/one-top layer; else ``None``."""
    spec = layers[i]
    if len(spec.tops) != 1:
        return None
    name = spec.tops[0]
    consumers = []
    for j in range(i + 1, len(layers)):
        if name in layers[j].bottoms:
            consumers.append(j)
        if name in layers[j].tops:
            break  # the blob is re-produced; later readers see that one
    if len(consumers) != 1:
        return None
    j = consumers[0]
    if len(layers[j].bottoms) != 1 or len(layers[j].tops) != 1:
        return None
    return j


def _absorbable(member: LayerSpec, primary: LayerSpec) -> bool:
    return member.phase == primary.phase and not member.loss_weight


def _chain_at(
    layers: Sequence[LayerSpec], i: int
) -> Optional[Tuple[str, Optional[LayerSpec], Optional[LayerSpec]]]:
    """Detect a chain with primary ``layers[i]``.

    Returns ``(fused_type, middle, relu)`` or ``None``.
    """
    primary = layers[i]
    kind = primary.type.lower()
    if primary.loss_weight:
        return None

    if kind == "convolution":
        j = _single_consumer(layers, i)
        if j is None:
            return None
        middle = None
        if layers[j].type.lower() in ("bias", "scale"):
            if not _middle_ok(layers[j]) or not _absorbable(layers[j], primary):
                return None
            middle = layers[j]
            j = _single_consumer(layers, j)
            if j is None:
                return None
        tail = layers[j]
        if not _is_plain_relu(tail) or not _absorbable(tail, primary):
            return None
        return ("FusedConv", middle, tail)

    if kind in ("innerproduct", "eltwise"):
        j = _single_consumer(layers, i)
        if j is None:
            return None
        tail = layers[j]
        if not _is_plain_relu(tail) or not _absorbable(tail, primary):
            return None
        fused = ("FusedInnerProductReLU" if kind == "innerproduct"
                 else "FusedEltwiseReLU")
        return (fused, None, tail)

    if kind == "scale":
        if primary.tops and primary.bottoms \
                and primary.tops[0] == primary.bottoms[0]:
            return None  # in-place primary: pre-scale values unavailable
        j = _single_consumer(layers, i)
        if j is None:
            return None
        middle = layers[j]
        if middle.type.lower() != "bias" or not _middle_ok(middle) \
                or not _absorbable(middle, primary):
            return None
        return ("FusedScaleBias", middle, None)

    return None


def _static_param_count(spec: LayerSpec) -> int:
    kind = spec.type.lower()
    if kind == "convolution":
        return 2 if spec.param("bias_term", True) else 1
    if kind == "scale":
        return 2 if spec.param("bias_term", False) else 1
    return 0


def _build_fused(
    primary: LayerSpec,
    fused_type: str,
    middle: Optional[LayerSpec],
    relu: Optional[LayerSpec],
) -> LayerSpec:
    last = relu if relu is not None else middle
    absorbed = [m.name for m in (middle, relu) if m is not None]
    params = copy.deepcopy(primary.params)
    params["fused"] = absorbed
    if relu is not None:
        params["fused_relu"] = True
    if middle is not None:
        params["fused_middle"] = {
            "name": middle.name,
            "type": middle.type,
            "params": copy.deepcopy(middle.params),
        }
    param_specs = list(primary.param_specs)
    if middle is not None:
        primary_blobs = _static_param_count(primary)
        while len(param_specs) < primary_blobs:
            param_specs.append(BlobLrSpec())
        param_specs.extend(middle.param_specs)
    return LayerSpec(
        name=primary.name,
        type=fused_type,
        bottoms=list(primary.bottoms),
        tops=list(last.tops),
        params=params,
        phase=primary.phase,
        param_specs=param_specs,
        loss_weight=primary.loss_weight,
    )


# ---------------------------------------------------------------------------
# in-place rewriting
# ---------------------------------------------------------------------------
def _find_one_inplace(spec: NetSpec):
    """First legal in-place rewrite, as ``(candidate, bottom, old_top,
    rename_ids)``; ``None`` when the spec is fully rewritten."""
    produced = {}
    for layer in spec.layers:
        for name in layer.tops:
            produced[name] = produced.get(name, 0) + 1

    for cand in spec.layers:
        kind = cand.type.lower()
        if kind not in _INPLACE_CANDIDATES:
            continue
        if kind == "relu" and cand.param("negative_slope", 0):
            continue
        if len(cand.bottoms) != 1 or len(cand.tops) != 1:
            continue
        bottom, old_top = cand.bottoms[0], cand.tops[0]
        if bottom == old_top or cand.loss_weight:
            continue
        if produced.get(old_top, 0) != 1:
            continue

        legal = True
        present = False
        rename_ids = set()
        for phase in PHASES:
            phase_layers = spec.layers_for_phase(phase)
            ci = next(
                (k for k, x in enumerate(phase_layers) if x is cand), None)
            if ci is None:
                continue
            present = True

            # Producer of the bottom blob must tolerate its top being
            # overwritten after the forward pass.
            prod_idx = next(
                (k for k in range(ci - 1, -1, -1)
                 if bottom in phase_layers[k].tops),
                None,
            )
            if prod_idx is None:
                if bottom not in spec.inputs:
                    legal = False
                    break
            elif phase_layers[prod_idx].type.lower() not in _INPLACE_PRODUCERS:
                legal = False
                break

            # That production must feed the candidate and nothing else,
            # and the bottom must never be re-produced afterwards.
            consumers = []
            start = 0 if prod_idx is None else prod_idx + 1
            for j in range(start, len(phase_layers)):
                if bottom in phase_layers[j].bottoms:
                    consumers.append(phase_layers[j])
                if bottom in phase_layers[j].tops:
                    legal = False
                    break
            if not legal or consumers != [cand]:
                legal = False
                break

            for j in range(ci + 1, len(phase_layers)):
                if old_top in phase_layers[j].tops:
                    legal = False
                    break
                if old_top in phase_layers[j].bottoms:
                    rename_ids.add(id(phase_layers[j]))
            if not legal:
                break

        if legal and present:
            return cand, bottom, old_top, rename_ids
    return None


def rewrite_inplace(spec: NetSpec) -> Tuple[NetSpec, List[InplaceRewrite]]:
    """Retarget legal elementwise layers onto their bottom blobs.

    Returns a new spec (untouched layers are shared, modified ones are
    shallow copies) plus the list of rewrites applied.  Bitwise-neutral
    by construction — only blob *names* move; every value computed is
    identical.
    """
    rewrites: List[InplaceRewrite] = []
    while True:
        found = _find_one_inplace(spec)
        if found is None:
            break
        cand, bottom, old_top, rename_ids = found
        new_layers = []
        for layer in spec.layers:
            if layer is cand:
                new_layers.append(
                    dataclasses.replace(layer, bottoms=[bottom],
                                        tops=[bottom]))
            elif id(layer) in rename_ids:
                new_layers.append(dataclasses.replace(
                    layer,
                    bottoms=[bottom if b == old_top else b
                             for b in layer.bottoms],
                ))
            else:
                new_layers.append(layer)
        spec = NetSpec(
            name=spec.name,
            layers=new_layers,
            inputs=list(spec.inputs),
            input_shapes=list(spec.input_shapes),
        )
        rewrites.append(
            InplaceRewrite(layer=cand.name, old_top=old_top, new_top=bottom))
    return spec, rewrites


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------
def fuse_spec(
    spec: NetSpec, phase: str = "TRAIN", inplace: bool = True
) -> Tuple[NetSpec, FusionReport]:
    """Fuse elementwise chains in ``spec`` and (optionally) rewrite
    in-place opportunities; returns ``(fused_spec, report)``.

    The input spec is never mutated.  ``phase`` is advisory (reports
    only) — chains are required to be consistent across *all* phases,
    so the transformed spec is valid for both.
    """
    per_phase = {}
    for ph in PHASES:
        phase_layers = spec.layers_for_phase(ph)
        chains = {}
        for i in range(len(phase_layers)):
            chain = _chain_at(phase_layers, i)
            if chain is not None:
                fused_type, middle, relu = chain
                chains[id(phase_layers[i])] = (
                    fused_type,
                    None if middle is None else id(middle),
                    None if relu is None else id(relu),
                    middle,
                    relu,
                )
        per_phase[ph] = (phase_layers, chains)

    # A chain survives only if every phase containing its primary
    # detects the identical one.
    accepted = []  # (primary, fused_type, middle, relu)
    seen = set()
    for ph in PHASES:
        phase_layers, chains = per_phase[ph]
        for layer in phase_layers:
            key = id(layer)
            if key in seen or key not in chains:
                continue
            seen.add(key)
            fused_type, mid_id, relu_id, middle, relu = chains[key]
            consistent = True
            for other in PHASES:
                other_layers, other_chains = per_phase[other]
                if not any(x is layer for x in other_layers):
                    continue
                got = other_chains.get(key)
                if got is None or got[:3] != (fused_type, mid_id, relu_id):
                    consistent = False
                    break
            if consistent:
                accepted.append((layer, fused_type, middle, relu))

    report = FusionReport(net=spec.name)
    absorbed_ids: set = set()
    fused_by_primary = {}
    for primary, fused_type, middle, relu in accepted:
        if id(primary) in absorbed_ids:
            continue
        member_ids = {id(m) for m in (middle, relu) if m is not None}
        if member_ids & absorbed_ids:
            continue
        fused_by_primary[id(primary)] = _build_fused(
            primary, fused_type, middle, relu)
        absorbed_ids |= member_ids
        report.fused.append(FusionDecision(
            primary=primary.name,
            fused_type=fused_type,
            absorbed=[m.name for m in (middle, relu) if m is not None],
            phase=primary.phase,
        ))

    new_layers = []
    for layer in spec.layers:
        if id(layer) in absorbed_ids:
            continue
        new_layers.append(fused_by_primary.get(id(layer), layer))

    out = NetSpec(
        name=spec.name,
        layers=new_layers,
        inputs=list(spec.inputs),
        input_shapes=list(spec.input_shapes),
    )
    if inplace:
        out, rewrites = rewrite_inplace(out)
        report.rewrites = rewrites
    if not report.fused and not report.rewrites:
        report.notes.append("no fusable chains or in-place opportunities")

    try:
        out.validate()
    except Exception as exc:  # pragma: no cover - internal invariant
        raise FusionError(
            f"fusion produced an invalid spec for net {spec.name!r}: {exc}"
        ) from exc
    return out, report
