"""Static memory arena: liveness-driven offset assignment for a net's
activation blobs.

:func:`plan_arena` computes, from a built :class:`~repro.framework.net.Net`,
a placement of every activation blob into two shared slabs:

* **data slab** — resident, sequential offsets, no reuse.  A TRAIN
  backward pass reads bottom activations (conv's im2col of ``x``, the
  fused ReLU masks, …) *after* the forward pass finished, so every
  activation's data is live across the forward/backward turnaround and
  no two may alias.
* **diff slab** — offsets reused across liveness-disjoint blobs.  A
  blob's diff is written by its consumers' backward and read by its
  producer's backward; on the backward pass's reversed timeline the
  wall-clock live range of ``d(b)`` is exactly the *reverse* of ``b``'s
  forward layer-index interval ``[first_use, last_use]``.  Two blobs
  whose index intervals are disjoint therefore never hold live diffs at
  the same time, and first-fit packs them into shared storage.

Reuse is bitwise-safe because every bottom-diff writer in the layer zoo
overwrites before it reads (``np.copyto`` / ``out=`` / explicit
``fill(0.0)`` before accumulation / BLAS with ``beta=0``) — stale bytes
from the previous tenant are never observed.  Loss-top diffs are
seeded at the start of the backward pass, so their intervals extend to
the last layer.

:func:`apply_arena` rebinds each blob's backing storage to its slab
slice.  ``Blob`` hands out ``data``/``diff`` as fresh views of the
backing array on every access, so rebinding is transparent to layers;
capacities are sized to the blob's *allocated* capacity so later
same-shape reshapes never reallocate away from the slab.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.framework.blob import DTYPE, Blob
from repro.framework.net import Net

_ITEM = np.dtype(DTYPE).itemsize


@dataclass
class BlobPlacement:
    """Where one activation blob lives inside the arena (element units)."""

    name: str
    count: int           # logical element count at plan time
    capacity: int        # backing capacity reserved in the slabs
    first: int           # first layer index touching the blob
    last: int            # last layer index touching the blob
    data_offset: int
    diff_offset: int

    @property
    def bytes(self) -> int:
        return self.capacity * _ITEM


@dataclass
class ArenaReport:
    """The computed arena layout plus the accounting around it."""

    net: str = ""
    placements: List[BlobPlacement] = field(default_factory=list)
    data_slab_elems: int = 0
    diff_slab_elems: int = 0
    baseline_bytes: int = 0      # data+diff as individually allocated
    skipped: List[str] = field(default_factory=list)
    applied: bool = False

    @property
    def arena_bytes(self) -> int:
        return (self.data_slab_elems + self.diff_slab_elems) * _ITEM

    @property
    def saved_bytes(self) -> int:
        return self.baseline_bytes - self.arena_bytes

    def overlap_violations(self) -> List[Tuple[str, str]]:
        """Pairs of placements that alias while simultaneously live.

        Data regions may never alias at all; diff regions may alias only
        when the liveness intervals are disjoint.  An empty list is the
        arena's core invariant.
        """
        bad: List[Tuple[str, str]] = []
        ps = self.placements
        for i in range(len(ps)):
            for j in range(i + 1, len(ps)):
                a, b = ps[i], ps[j]
                data_alias = (a.data_offset < b.data_offset + b.capacity
                              and b.data_offset < a.data_offset + a.capacity)
                if data_alias:
                    bad.append((a.name, b.name))
                    continue
                live_overlap = not (a.last < b.first or b.last < a.first)
                diff_alias = (a.diff_offset < b.diff_offset + b.capacity
                              and b.diff_offset < a.diff_offset + a.capacity)
                if live_overlap and diff_alias:
                    bad.append((a.name, b.name))
        return bad

    def to_json(self) -> dict:
        return {
            "format": "repro-arena-report/1",
            "net": self.net,
            "baseline_bytes": self.baseline_bytes,
            "arena_bytes": self.arena_bytes,
            "saved_bytes": self.saved_bytes,
            "data_slab_bytes": self.data_slab_elems * _ITEM,
            "diff_slab_bytes": self.diff_slab_elems * _ITEM,
            "skipped": list(self.skipped),
            "placements": [dataclasses.asdict(p) for p in self.placements],
        }

    def summary_lines(self) -> List[str]:
        lines = [
            f"arena[{self.net or 'net'}]: {len(self.placements)} blob(s), "
            f"{self.baseline_bytes} B separate -> {self.arena_bytes} B "
            f"arena ({self.saved_bytes} B saved)"
        ]
        for name in self.skipped:
            lines.append(f"  skipped: {name}")
        return lines


def _liveness(net: Net):
    """Per unique activation blob: (blob, first, last) over layer indices.

    Loss-weighted tops extend to the final layer: their diffs are seeded
    before the first backward step runs.
    """
    last_index = len(net.layers) - 1
    intervals = {}  # id(blob) -> [blob, first, last]
    order: List[int] = []

    def touch(blob: Blob, idx: int) -> None:
        key = id(blob)
        entry = intervals.get(key)
        if entry is None:
            intervals[key] = [blob, idx, idx]
            order.append(key)
        else:
            entry[1] = min(entry[1], idx)
            entry[2] = max(entry[2], idx)

    for blob in net.blob_map.values():
        # net inputs exist before layer 0
        if not any(any(t is blob for t in tops) for tops in net.tops):
            touch(blob, 0)
    for idx, (layer, bottoms, tops) in enumerate(
            zip(net.layers, net.bottoms, net.tops)):
        for blob in bottoms:
            touch(blob, idx)
        for blob, weight in zip(tops, layer.loss_weights):
            touch(blob, idx)
            if weight:
                touch(blob, last_index)
    return [tuple(intervals[key]) for key in order]


def _first_fit(placed, capacity: int, first: int, last: int) -> int:
    """Lowest diff-slab offset where ``capacity`` elements fit without
    aliasing any live-overlapping prior placement."""
    conflicts = sorted(
        (p.diff_offset, p.capacity)
        for p in placed
        if not (p.last < first or last < p.first)
    )
    cursor = 0
    for offset, cap in conflicts:
        if offset - cursor >= capacity:
            return cursor
        cursor = max(cursor, offset + cap)
    return cursor


def plan_arena(net: Net) -> ArenaReport:
    """Compute (but do not apply) the arena layout for ``net``."""
    report = ArenaReport(net=net.name)
    data_cursor = 0
    diff_top = 0
    for blob, first, last in _liveness(net):
        capacity = max(int(blob._flat_data.size),
                       int(blob._flat_diff.size), int(blob.count))
        if capacity == 0:
            report.skipped.append(f"{blob.name} (empty)")
            continue
        if blob._flat_data.base is not None or blob._flat_diff.base is not None:
            # Already a view of someone else's storage — leave it alone.
            report.skipped.append(f"{blob.name} (shared storage)")
            continue
        report.baseline_bytes += (
            blob._flat_data.size + blob._flat_diff.size) * _ITEM
        diff_offset = _first_fit(report.placements, capacity, first, last)
        report.placements.append(BlobPlacement(
            name=blob.name,
            count=int(blob.count),
            capacity=capacity,
            first=first,
            last=last,
            data_offset=data_cursor,
            diff_offset=diff_offset,
        ))
        data_cursor += capacity
        diff_top = max(diff_top, diff_offset + capacity)
    report.data_slab_elems = data_cursor
    report.diff_slab_elems = diff_top
    return report


def apply_arena(net: Net, report: Optional[ArenaReport] = None) -> ArenaReport:
    """Rebind ``net``'s activation blobs onto shared arena slabs.

    Existing contents are preserved (copied into the slab), so applying
    after warm-up iterations is safe.  Idempotent per net.
    """
    existing = getattr(net, "_arena_report", None)
    if existing is not None:
        return existing
    if report is None:
        report = plan_arena(net)
    by_name = {p.name: p for p in report.placements}
    data_slab = np.zeros(report.data_slab_elems, dtype=DTYPE)
    diff_slab = np.zeros(report.diff_slab_elems, dtype=DTYPE)

    seen = set()
    for blob in net.blob_map.values():
        if id(blob) in seen:
            continue
        seen.add(id(blob))
        placement = by_name.get(blob.name)
        if placement is None:
            continue
        lo, hi = placement.data_offset, placement.data_offset + placement.capacity
        new_data = data_slab[lo:hi]
        new_data[: blob._flat_data.size] = blob._flat_data
        blob._flat_data = new_data
        lo, hi = placement.diff_offset, placement.diff_offset + placement.capacity
        new_diff = diff_slab[lo:hi]
        new_diff[: blob._flat_diff.size] = blob._flat_diff
        blob._flat_diff = new_diff

    report.applied = True
    net._arena_report = report
    net._arena_slabs = (data_slab, diff_slab)
    return report
