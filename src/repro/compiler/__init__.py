"""Graph compiler: spec-to-spec transforms certified by the analyzers.

The packages below *rewrite* nets rather than merely linting them, in
three independent pieces:

* :mod:`repro.compiler.fuse` — operator fusion over a
  :class:`~repro.framework.net_spec.NetSpec`: elementwise chains
  (Conv→Bias/Scale→ReLU, InnerProduct→ReLU, Eltwise→ReLU, Scale→Bias)
  collapse into single fused layers that make one pass over the
  coalesced iteration space, plus in-place rewriting of elementwise
  layers where the DAG allows.
* :mod:`repro.compiler.arena` — static memory arena: planner-derived
  offset assignment of activation storage into shared slabs, reusing a
  region whenever liveness proves two blobs never coexist.
* :mod:`repro.compiler.scratch` — the per-thread scratch-buffer pool
  chunk code draws work arrays from (im2col column buffers).

Every transform is checked by the existing gates — netcheck shape
parity, the FP footprint lint, and bitwise replay against the unfused
sequential baseline — via ``python -m repro.analysis fusecheck``.

``fuse``/``arena`` import the framework, and the framework's conv layer
imports :mod:`repro.compiler.scratch`; to keep that cycle open this
package only loads the heavy modules lazily.
"""

from __future__ import annotations

import importlib

from repro.compiler.scratch import (  # noqa: F401  (re-export)
    clear_pool,
    pool_stats,
    reset_pool_stats,
    scratch_buffer,
)

_LAZY = {
    "fuse_spec": "fuse",
    "rewrite_inplace": "fuse",
    "FusionReport": "fuse",
    "FusionError": "fuse",
    "plan_arena": "arena",
    "apply_arena": "arena",
    "ArenaReport": "arena",
    "BlobPlacement": "arena",
}

__all__ = sorted([
    "scratch_buffer", "pool_stats", "reset_pool_stats", "clear_pool",
    *_LAZY,
])


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    return getattr(importlib.import_module(f"repro.compiler.{module}"), name)
