"""Static nondeterminism lint: the DC0xx half of the determinism certifier.

Convergence invariance (paper Section 3.2.1) is only as strong as the
weakest random stream in the pipeline.  A single ``hash()``-salted seed,
one RNG constructed without a seed, or a random draw whose order depends
on how samples were chunked across threads silently breaks the property
the runtime works so hard to deliver.  This module finds those hazards
from the source, before anything runs:

* **Source scan** (:func:`lint_sources`) — every file of
  ``repro.core``, ``repro.framework`` and ``repro.data`` is parsed and
  checked for: unseeded RNG construction (DC001), process-salted seeds
  derived from ``hash()``/``id()`` (DC002), wall-clock/OS-entropy values
  flowing into RNG state (DC003), and use of the legacy global numpy
  stream (DC005).
* **Layer-class scan** (:func:`analyze_layer_rng`) — every registered
  layer class is checked against its declared
  :class:`~repro.framework.layer.RNGDecl`: draws inside chunk-parallel
  methods are flagged unconditionally (DC004 — the draw order would
  depend on the schedule), a class constructing an RNG without a
  declaration is flagged (DC006), and declarations are verified against
  the code — seed parameters actually read, the ``stable_seed`` fallback
  actually present, draws happening where the declaration says (DC007).

Like the footprint pass (FP codes) and netcheck (NG codes), findings are
coded and stable; ``--gate`` fails on any ERROR.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.footprint import _parse_function
from repro.analysis.report import ERROR, Finding

#: Constructors that create an independent RNG stream.
_RNG_CONSTRUCTORS = {"default_rng", "RandomState"}

#: Generator draw methods (new-style ``np.random.Generator`` API).
_DRAW_METHODS = {
    "random", "normal", "uniform", "integers", "standard_normal",
    "choice", "shuffle", "permutation", "permuted", "exponential",
    "poisson", "binomial", "beta", "gamma", "bytes",
}

#: Legacy module-level numpy RNG entry points (the hidden global stream).
_LEGACY_GLOBAL_DRAWS = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "seed", "get_state", "set_state",
}

#: OS-entropy sources: nondeterministic anywhere in the numeric pipeline.
_ENTROPY_CALLS = {
    ("os", "urandom"), ("os", "getrandom"),
    ("uuid", "uuid1"), ("uuid", "uuid4"),
    ("secrets", "token_bytes"), ("secrets", "token_hex"),
    ("secrets", "randbelow"), ("secrets", "randbits"),
}

#: Wall-clock reads: legitimate for instrumentation (``core/trace.py``
#: times layers), a hazard only when the value feeds RNG state — flagged
#: when found inside an RNG constructor's seed expression.
_WALLCLOCK_CALLS = {
    ("time", "time"), ("time", "time_ns"), ("time", "monotonic"),
    ("time", "monotonic_ns"), ("time", "perf_counter"),
    ("time", "perf_counter_ns"), ("datetime", "now"),
    ("datetime", "utcnow"), ("os", "getpid"),
}

#: Methods whose own def makes a layer "chunk code": draws inside them
#: execute under the thread team, so their order depends on the schedule.
_CHUNK_METHOD_PREFIXES = ("_backward", "_forward")
_CHUNK_METHOD_NAMES = {"forward_chunk", "backward_chunk"}


def _dotted(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` attribute chain as a name tuple, or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _terminal_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_rng_construction(call: ast.Call) -> bool:
    return _terminal_name(call.func) in _RNG_CONSTRUCTORS


def _is_unseeded(call: ast.Call) -> bool:
    if call.args:
        return False
    return not any(kw.arg == "seed" for kw in call.keywords)


def _call_matches(call: ast.Call, table) -> bool:
    chain = _dotted(call.func)
    if chain is None or len(chain) < 2:
        return False
    # match on the last two links so `datetime.datetime.now` hits
    # ("datetime", "now") and `time.time` hits ("time", "time").
    return (chain[-2], chain[-1]) in table


def _is_legacy_global_draw(call: ast.Call) -> bool:
    chain = _dotted(call.func)
    if chain is None or len(chain) != 3:
        return False
    module, group, attr = chain
    return (module in ("np", "numpy") and group == "random"
            and attr in _LEGACY_GLOBAL_DRAWS)


def _is_rng_draw(call: ast.Call) -> bool:
    """A draw off something that is recognizably a generator object."""
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in _DRAW_METHODS:
        return False
    receiver = func.value
    if isinstance(receiver, ast.Name):
        return "rng" in receiver.id.lower()
    if isinstance(receiver, ast.Attribute):
        return "rng" in receiver.attr.lower()
    return False


def _scan_tree(tree: ast.AST, where: str, path: str) -> List[Finding]:
    """DC001/DC002/DC003/DC005 over one parsed module or function."""
    findings: List[Finding] = []
    seen = set()

    def emit(rule: str, lineno: int, message: str) -> None:
        # A hash() inside a seed expression is visited twice by ast.walk
        # (once via the seed walk, once as a bare call) — report it once.
        if (rule, lineno) in seen:
            return
        seen.add((rule, lineno))
        findings.append(Finding(
            rule=rule, severity=ERROR, layer=where, message=message,
            location=f"{path}:{lineno}",
        ))

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _terminal_name(node.func)
        if _is_rng_construction(node):
            if _is_unseeded(node):
                emit("DC001", node.lineno,
                     f"{name}() constructed without a seed draws its "
                     "state from OS entropy; every process gets a "
                     "different stream")
            else:
                # DC002/DC003 inside the seed expression.
                for arg in list(node.args) + [kw.value for kw in
                                              node.keywords]:
                    for sub in ast.walk(arg):
                        if not isinstance(sub, ast.Call):
                            continue
                        sub_name = _terminal_name(sub.func)
                        if (isinstance(sub.func, ast.Name)
                                and sub_name in ("hash", "id")):
                            emit("DC002", sub.lineno,
                                 f"seed derived from {sub_name}(): salted "
                                 "per process under hash randomization "
                                 "(PYTHONHASHSEED); use a stable digest "
                                 "(repro.framework.fillers.stable_seed)")
                        elif (_call_matches(sub, _WALLCLOCK_CALLS)
                              or _call_matches(sub, _ENTROPY_CALLS)):
                            emit("DC003", sub.lineno,
                                 "seed derived from a wall-clock/entropy "
                                 f"source ({'.'.join(_dotted(sub.func))}); "
                                 "two runs can never replay each other")
        elif isinstance(node.func, ast.Name) and name == "hash":
            # Bare id() is fine as an identity-map key (net.py does this);
            # it is only a hazard when it feeds a seed, which the
            # seed-expression walk above catches.
            emit("DC002", node.lineno,
                 "hash() produces process-salted values; any seed or "
                 "ordering derived from it differs across interpreter "
                 "processes")
        elif _call_matches(node, _ENTROPY_CALLS):
            emit("DC003", node.lineno,
                 f"OS-entropy source {'.'.join(_dotted(node.func))} in "
                 "deterministic-pipeline code")
        elif _is_legacy_global_draw(node):
            emit("DC005", node.lineno,
                 f"legacy global numpy RNG (np.random.{name}): the hidden "
                 "shared stream couples draw order across unrelated call "
                 "sites; construct an explicit seeded Generator instead")
    return findings


def default_lint_roots() -> List[Path]:
    """The packages whose determinism the certifier vouches for."""
    import repro.compiler
    import repro.core
    import repro.data
    import repro.framework

    return [Path(pkg.__file__).parent
            for pkg in (repro.core, repro.framework, repro.data,
                        repro.compiler)]


def lint_sources(roots: Optional[Iterable[Path]] = None) -> List[Finding]:
    """Run the DC0xx source scan over every ``.py`` file under ``roots``."""
    findings: List[Finding] = []
    for root in (roots if roots is not None else default_lint_roots()):
        root = Path(root)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            where = f"<{path.stem}>"
            try:
                tree = ast.parse(path.read_text())
            except (OSError, SyntaxError) as exc:
                findings.append(Finding(
                    rule="DC001", severity=ERROR, layer=where,
                    message=f"cannot parse {path}: {exc}",
                ))
                continue
            findings.extend(_scan_tree(tree, where, str(path)))
    return findings


# ---------------------------------------------------------------------------
# layer-class provenance check (DC004 / DC006 / DC007)
# ---------------------------------------------------------------------------
def _own_method_trees(cls) -> Dict[str, ast.FunctionDef]:
    """Parsed ASTs of every function defined in the class's own __dict__."""
    trees: Dict[str, ast.FunctionDef] = {}
    for name, obj in cls.__dict__.items():
        if not callable(obj) or isinstance(obj, type):
            continue
        func = getattr(obj, "__func__", obj)  # unwrap staticmethod et al.
        node = _parse_function(func)
        if node is not None:
            trees[name] = node
    return trees


def _is_chunk_method(name: str) -> bool:
    return (name in _CHUNK_METHOD_NAMES
            or name.startswith(_CHUNK_METHOD_PREFIXES))


def _string_constants(trees: Dict[str, ast.FunctionDef]) -> set:
    consts = set()
    for node in trees.values():
        for sub in ast.walk(node):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                consts.add(sub.value)
    return consts


def _calls_name(trees: Dict[str, ast.FunctionDef], name: str) -> bool:
    for node in trees.values():
        for sub in ast.walk(node):
            if (isinstance(sub, ast.Call)
                    and _terminal_name(sub.func) == name):
                return True
    return False


def class_constructs_rng(cls) -> bool:
    """Does any method defined by this class construct an RNG stream?"""
    for node in _own_method_trees(cls).values():
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and _is_rng_construction(sub):
                return True
    return False


def analyze_layer_rng(cls) -> List[Finding]:
    """DC004/DC006/DC007 over one layer class."""
    findings: List[Finding] = []
    trees = _own_method_trees(cls)
    cls_name = cls.__name__

    construction_sites: List[Tuple[str, int]] = []
    draw_sites: Dict[str, List[int]] = {}
    for method, node in trees.items():
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            if _is_rng_construction(sub):
                construction_sites.append((method, sub.lineno))
            if _is_rng_draw(sub) or _is_legacy_global_draw(sub):
                draw_sites.setdefault(method, []).append(sub.lineno)

    # DC004: draws (or constructions) inside chunk-parallel code.
    for method, lines in sorted(draw_sites.items()):
        if _is_chunk_method(method):
            findings.append(Finding(
                rule="DC004", severity=ERROR, layer=cls_name,
                message=(
                    f"RNG draw inside chunk method {method} (line "
                    f"{lines[0]}): the draw count and order depend on how "
                    "iterations are chunked across threads, so no two "
                    "schedules replay the same stream; draw in the "
                    "sequential reshape() prologue instead"
                ),
            ))
    for method, lineno in construction_sites:
        if _is_chunk_method(method):
            findings.append(Finding(
                rule="DC004", severity=ERROR, layer=cls_name,
                message=(
                    f"RNG constructed inside chunk method {method} (line "
                    f"{lineno}); per-chunk generators make the stream a "
                    "function of the schedule"
                ),
            ))

    decl = cls.__dict__.get("rng_provenance")
    if construction_sites and decl is None:
        # An inherited declaration vouches only for inherited code; a
        # class writing its own RNG construction must declare its own
        # provenance (mirrors FP001 for footprints).
        findings.append(Finding(
            rule="DC006", severity=ERROR, layer=cls_name,
            message=(
                "constructs an RNG in "
                f"{', '.join(sorted({m for m, _ in construction_sites}))} "
                "but declares no rng_provenance; detcheck cannot certify "
                "where the seed comes from or when draws happen"
            ),
        ))

    if decl is not None:
        consts = _string_constants(trees)
        for param in decl.seed_params:
            if param not in consts:
                findings.append(Finding(
                    rule="DC007", severity=ERROR, layer=cls_name,
                    message=(
                        f"rng_provenance names seed param {param!r} but "
                        "the layer source never reads it"
                    ),
                ))
        if decl.fallback == "stable_digest" and not _calls_name(
                trees, "stable_seed"):
            findings.append(Finding(
                rule="DC007", severity=ERROR, layer=cls_name,
                message=(
                    "rng_provenance declares fallback='stable_digest' but "
                    "the layer source never calls stable_seed"
                ),
            ))
        from repro.framework.layer import RNG_SETUP

        if decl.draws == RNG_SETUP:
            offenders = [m for m in draw_sites if m == "reshape"]
            if offenders:
                findings.append(Finding(
                    rule="DC007", severity=ERROR, layer=cls_name,
                    message=(
                        "rng_provenance declares draws='setup' but "
                        "reshape() draws from the generator each forward "
                        "pass; declare draws='per_forward'"
                    ),
                ))
    return findings


def analyze_layer_classes_rng(
    classes: Optional[Sequence[type]] = None,
) -> List[Finding]:
    """DC004/DC006/DC007 over every registered (or given) layer class."""
    if classes is None:
        from repro.analysis.footprint import builtin_layer_classes

        classes = list(builtin_layer_classes().values())
    findings: List[Finding] = []
    for cls in classes:
        findings.extend(analyze_layer_rng(cls))
    return findings


def lint_rng() -> List[Finding]:
    """The full static DC0xx pass: source scan + layer provenance check."""
    return lint_sources() + analyze_layer_classes_rng()
