"""Determinism certifier: configuration tier rules + bitwise replay.

The paper's convergence-invariance claim (Section 4.3) is a statement
about *trajectories*: swapping the sequential executor for the parallel
one must not change the training parameters.  PR 1 certified the memory
model (no races) and PR 2 the graph (shapes/DAG); this pass certifies
the *numerics*.  It has three parts:

1. the static RNG lint (:mod:`repro.analysis.rng_lint`, DC001-DC007),
2. configuration tier rules (:func:`classify_config`, DC101-DC104) that
   reject a (net, solver, reduction-mode, threads) tuple claiming an
   invariance tier its reduction mode cannot deliver, and
3. the dynamic replay certifier (:func:`certify_mode`), which actually
   trains each zoo net for a few iterations at several thread counts
   and diffs the full trajectory — loss, per-parameter update values,
   and parameters — bitwise and in ULPs against the sequential run.

The tiers (:mod:`repro.core.reduction`) order the guarantees:

* ``bitwise_invariant`` — the trajectory is byte-identical at every
  thread count (``blockwise``, and every mode at T=1);
* ``deterministic_per_t`` — two runs at the same T are byte-identical,
  but different T reassociate the gradient sums (``ordered``/``tree``);
* ``nondeterministic`` — the merge order depends on thread completion
  (``atomic``), so not even replay is guaranteed.

A tier violation observed dynamically is DC201 (bitwise promised,
divergence found) or DC202 (replay at fixed T diverged).  Divergence
*within* the declared tier is reported as DC203 (info) with the first
diverging iteration, site, and owning layer — the certifier's answer to
"where does atomic first leave the sequential trajectory?".
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.codes import CODE_CATALOGUE
from repro.analysis.report import ERROR, INFO, WARNING, Finding
from repro.analysis.rng_lint import class_constructs_rng, lint_rng
from repro.core.reduction import (
    BITWISE_INVARIANT,
    DETERMINISTIC_PER_T,
    NONDETERMINISTIC,
    REDUCTION_MODES,
    TIER_ORDER,
    invariance_tier,
)

#: Solver types the certifier has exercised; others run fine but get a
#: DC104 warning because no replay evidence backs them.
_CERTIFIED_SOLVERS = {"sgd", "adagrad", "nesterov"}

#: Reduction modes exercised by default (atomic is opt-in: its tier
#: promises nothing a gate could enforce).
DEFAULT_MODES = ("blockwise", "ordered", "tree")
DEFAULT_THREADS = (1, 2, 8)


# ---------------------------------------------------------------------------
# ULP distance
# ---------------------------------------------------------------------------
def _ulp_keys32(values: np.ndarray) -> np.ndarray:
    """Monotone integer key per float32: |key(a)-key(b)| == ULP distance."""
    u = np.ascontiguousarray(values, dtype=np.float32).view(np.uint32)
    u = u.astype(np.int64)
    return np.where(u < 2**31, u + 2**31, 2**32 - u)


def ulp_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Max ULP distance between two equal-shape float32 arrays."""
    if a.size == 0:
        return 0
    return int(np.abs(_ulp_keys32(a) - _ulp_keys32(b)).max())


def _ulp_key64(value: float) -> int:
    (u,) = struct.unpack("<Q", struct.pack("<d", value))
    return u + 2**63 if u < 2**63 else 2**64 - u


def ulp_distance_scalar(a: float, b: float) -> int:
    """ULP distance between two float64 scalars (e.g. loss values)."""
    return abs(_ulp_key64(a) - _ulp_key64(b))


# ---------------------------------------------------------------------------
# trajectory capture
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class IterationSnapshot:
    """Bitwise record of one solver step."""

    loss: float
    updates: Tuple[np.ndarray, ...]   # blob.flat_diff after apply_update
    params: Tuple[np.ndarray, ...]    # blob.flat_data after apply_update


@dataclass(frozen=True)
class Trajectory:
    param_names: Tuple[str, ...]
    param_owners: Tuple[str, ...]
    snapshots: Tuple[IterationSnapshot, ...]


def _build_solver(name: str, iters: int, batch: Optional[int], executor,
                  spec_transform=None, post_build=None):
    from repro.data import register_default_sources
    from repro.framework.net import Net
    from repro.framework.solvers import create_solver
    from repro.zoo.build import _SPECS

    register_default_sources()
    if name not in _SPECS:
        raise SystemExit(
            f"unknown zoo net {name!r}; available: "
            f"{', '.join(sorted(_SPECS))}"
        )
    spec_fn, params_fn = _SPECS[name]
    spec = spec_fn()
    if batch is not None:
        for layer_spec in spec.layers:
            if "batch_size" in layer_spec.params:
                layer_spec.params["batch_size"] = batch
    if spec_transform is not None:
        spec = spec_transform(spec)
    net = Net(spec, phase="TRAIN")
    if post_build is not None:
        post_build(net)
    solver = create_solver(params_fn(max_iter=iters), net)
    if executor is not None:
        solver.executor = executor
    return solver


def capture_trajectory(
    name: str,
    iters: int,
    batch: Optional[int] = None,
    threads: int = 0,
    mode: str = "blockwise",
    plan=None,
    spec_transform=None,
    post_build=None,
) -> Trajectory:
    """Train ``name`` for ``iters`` steps and snapshot every step bitwise.

    ``threads == 0`` is the plain sequential baseline (no executor
    machinery at all); otherwise a :class:`ParallelExecutor` with
    ``threads`` threads and reduction ``mode`` drives the net.  ``plan``
    optionally supplies a per-layer
    :class:`~repro.core.plan.ExecutionPlan` (plancheck's tier
    certification replays planned configurations through this path).
    ``spec_transform`` rewrites the zoo spec before the net is built and
    ``post_build`` mutates the built net (fusecheck certifies the graph
    compiler by replaying fused+arena nets through these hooks).
    """
    from repro.core import ParallelExecutor

    def run(executor) -> Trajectory:
        solver = _build_solver(name, iters, batch, executor,
                               spec_transform=spec_transform,
                               post_build=post_build)
        net = solver.net
        snapshots = []
        for _ in range(iters):
            solver.step(1)
            snapshots.append(IterationSnapshot(
                loss=solver.loss_history[-1],
                updates=tuple(b.flat_diff.copy()
                              for b in net.learnable_params),
                params=tuple(b.flat_data.copy()
                             for b in net.learnable_params),
            ))
        return Trajectory(
            param_names=tuple(b.name for b in net.learnable_params),
            param_owners=tuple(net.param_owners),
            snapshots=tuple(snapshots),
        )

    if threads == 0:
        return run(None)
    with ParallelExecutor(
        num_threads=threads, reduction=mode, plan=plan
    ) as executor:
        return run(executor)


# ---------------------------------------------------------------------------
# trajectory comparison
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Divergence:
    """First chronological point where two trajectories differ."""

    iteration: int
    site: str        # "loss", "update:<blob>", or "param:<blob>"
    layer: str       # owning layer instance name ("" for the loss)
    max_ulps: int
    max_abs: float
    count: int       # differing scalar positions at the site

    def describe(self) -> str:
        where = f"layer {self.layer!r}, " if self.layer else ""
        return (
            f"iteration {self.iteration}, {where}site {self.site}: "
            f"{self.count} value(s) differ, max {self.max_ulps} ULPs "
            f"(max abs diff {self.max_abs:.3e})"
        )

    def to_json(self) -> dict:
        return {
            "iteration": self.iteration,
            "site": self.site,
            "layer": self.layer,
            "max_ulps": self.max_ulps,
            "max_abs": self.max_abs,
            "count": self.count,
        }


def _array_divergence(a: np.ndarray, b: np.ndarray):
    if a.shape != b.shape:
        return len(a) or 1, float("inf"), max(len(a), len(b))
    neq = a != b
    # NaNs compare unequal to themselves; treat equal-bit NaNs as equal.
    both_nan = np.isnan(a) & np.isnan(b)
    neq &= ~(both_nan & (a.view(np.uint32) == b.view(np.uint32)))
    if not neq.any():
        return None
    return (
        ulp_distance(a[neq], b[neq]),
        float(np.abs(a[neq].astype(np.float64)
                     - b[neq].astype(np.float64)).max()),
        int(neq.sum()),
    )


def first_divergence(a: Trajectory, b: Trajectory) -> Optional[Divergence]:
    """Scan two trajectories in chronological order.

    Within one iteration the forward pass (loss) happens first, then the
    backward pass computes update values in *reverse* layer order, then
    ``apply_update`` writes the parameters — the scan follows that order
    so the reported site is the earliest computation that differed,
    i.e. the layer where the numerics first fork.
    """
    names, owners = a.param_names, a.param_owners
    for i, (sa, sb) in enumerate(zip(a.snapshots, b.snapshots)):
        if struct.pack("<d", sa.loss) != struct.pack("<d", sb.loss):
            return Divergence(
                iteration=i, site="loss", layer="",
                max_ulps=ulp_distance_scalar(sa.loss, sb.loss),
                max_abs=abs(sa.loss - sb.loss), count=1,
            )
        for idx in reversed(range(len(names))):
            diff = _array_divergence(sa.updates[idx], sb.updates[idx])
            if diff is not None:
                ulps, max_abs, count = diff
                return Divergence(
                    iteration=i, site=f"update:{names[idx]}",
                    layer=owners[idx], max_ulps=ulps, max_abs=max_abs,
                    count=count,
                )
        for idx in range(len(names)):
            diff = _array_divergence(sa.params[idx], sb.params[idx])
            if diff is not None:
                ulps, max_abs, count = diff
                return Divergence(
                    iteration=i, site=f"param:{names[idx]}",
                    layer=owners[idx], max_ulps=ulps, max_abs=max_abs,
                    count=count,
                )
    return None


# ---------------------------------------------------------------------------
# configuration tier rules (DC101-DC104)
# ---------------------------------------------------------------------------
def classify_config(
    net: str,
    mode: str,
    threads: Sequence[int],
    spec=None,
    solver_type: Optional[str] = None,
    claim: Optional[str] = None,
    schedule_static: bool = True,
) -> List[Finding]:
    """Static lint of one (net, solver, reduction-mode, threads) tuple."""
    where = f"<config:{net}/{mode}>"
    findings: List[Finding] = []
    if mode not in REDUCTION_MODES:
        return [Finding(
            rule="DC101", severity=ERROR, layer=where,
            message=f"unknown reduction mode {mode!r}; "
                    f"have {REDUCTION_MODES}",
        )]
    tier = invariance_tier(mode, schedule_static)
    if not schedule_static and mode in ("ordered", "tree"):
        findings.append(Finding(
            rule="DC102", severity=ERROR, layer=where,
            message=(
                f"{mode} reduction under a dynamic/guided schedule "
                "degrades to nondeterministic: chunk ownership varies "
                "per run, so the merge order does too; use a static "
                "schedule or the blockwise reduction"
            ),
        ))
    if claim is not None:
        if claim not in TIER_ORDER:
            findings.append(Finding(
                rule="DC101", severity=ERROR, layer=where,
                message=f"unknown invariance tier {claim!r}; "
                        f"have {sorted(TIER_ORDER)}",
            ))
        elif (TIER_ORDER[claim] > TIER_ORDER[tier]
              and max(threads, default=1) > 1):
            # At T=1 every mode short-circuits to the sequential loop,
            # so any claim is trivially met.
            findings.append(Finding(
                rule="DC101", severity=ERROR, layer=where,
                message=(
                    f"configuration claims tier {claim!r} but the "
                    f"{mode} reduction guarantees at most {tier!r} at "
                    f"T > 1; no run can certify this claim"
                ),
            ))
    if spec is not None:
        findings.extend(_check_spec_rng(net, spec))
    if solver_type is not None and (
            solver_type.lower() not in _CERTIFIED_SOLVERS):
        findings.append(Finding(
            rule="DC104", severity=WARNING, layer=where,
            message=(
                f"solver type {solver_type!r} is outside the "
                "deterministic-certified set "
                f"{sorted(_CERTIFIED_SOLVERS)}; no replay evidence "
                "backs its update rule"
            ),
        ))
    return findings


def _check_spec_rng(net: str, spec) -> List[Finding]:
    """DC103: every stochastic layer in the net must carry a provenance
    declaration, else the certificate would vouch for a stream nobody
    described."""
    from repro.framework.layer import _REGISTRY

    findings: List[Finding] = []
    try:
        layer_specs = spec.layers_for_phase("TRAIN")
    except AttributeError:
        layer_specs = spec.layers
    for layer_spec in layer_specs:
        cls = _REGISTRY.get(layer_spec.type.lower())
        if cls is None:
            continue  # NG007's problem, not ours
        constructs = any(class_constructs_rng(c) for c in cls.__mro__
                        if c is not object)
        if constructs and getattr(cls, "rng_provenance", None) is None:
            findings.append(Finding(
                rule="DC103", severity=ERROR,
                layer=f"{net}/{layer_spec.name}",
                message=(
                    f"stochastic layer {layer_spec.name!r} "
                    f"({layer_spec.type}) constructs an RNG but its class "
                    f"{cls.__name__} declares no rng_provenance; the "
                    "configuration cannot be certified"
                ),
            ))
    return findings


# ---------------------------------------------------------------------------
# dynamic replay certification (DC201-DC203)
# ---------------------------------------------------------------------------
@dataclass
class ModeCertificate:
    """Replay evidence for one (net, reduction mode) pair."""

    net: str
    mode: str
    promised_tier: str
    observed_tier: str = NONDETERMINISTIC
    threads: List[int] = field(default_factory=list)
    iters: int = 0
    bitwise_vs_sequential: Dict[int, bool] = field(default_factory=dict)
    replay_deterministic: Dict[int, bool] = field(default_factory=dict)
    first_divergence: Dict[int, Optional[Divergence]] = field(
        default_factory=dict)
    findings: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(f.severity == ERROR for f in self.findings)

    def to_json(self) -> dict:
        return {
            "net": self.net,
            "mode": self.mode,
            "promised_tier": self.promised_tier,
            "observed_tier": self.observed_tier,
            "threads": list(self.threads),
            "iters": self.iters,
            "ok": self.ok,
            "bitwise_vs_sequential": {
                str(t): v for t, v in self.bitwise_vs_sequential.items()},
            "replay_deterministic": {
                str(t): v for t, v in self.replay_deterministic.items()},
            "first_divergence": {
                str(t): None if d is None else d.to_json()
                for t, d in self.first_divergence.items()},
            "findings": [f.to_json() for f in self.findings],
        }


def certify_mode(
    net: str,
    mode: str,
    threads: Sequence[int],
    iters: int = 2,
    batch: Optional[int] = 4,
    sequential: Optional[Trajectory] = None,
) -> ModeCertificate:
    """Train ``net`` under ``mode`` at each thread count and certify."""
    promised = invariance_tier(mode)
    cert = ModeCertificate(
        net=net, mode=mode, promised_tier=promised,
        threads=sorted(set(threads)), iters=iters,
    )
    if sequential is None:
        sequential = capture_trajectory(net, iters, batch)

    for t in cert.threads:
        run1 = capture_trajectory(net, iters, batch, threads=t, mode=mode)
        div = first_divergence(sequential, run1)
        cert.bitwise_vs_sequential[t] = div is None
        cert.first_divergence[t] = div
        if t > 1:
            run2 = capture_trajectory(net, iters, batch, threads=t,
                                      mode=mode)
            cert.replay_deterministic[t] = (
                first_divergence(run1, run2) is None)

        where = f"{net}/{mode}@T={t}"
        must_be_bitwise = t == 1 or promised == BITWISE_INVARIANT
        if must_be_bitwise and div is not None:
            cert.findings.append(Finding(
                rule="DC201", severity=ERROR, layer=where,
                message=(
                    f"tier {promised!r} promises a bitwise-identical "
                    f"trajectory but the parallel run diverged: "
                    f"{div.describe()}"
                ),
            ))
        elif (t > 1 and promised == DETERMINISTIC_PER_T
              and not cert.replay_deterministic[t]):
            cert.findings.append(Finding(
                rule="DC202", severity=ERROR, layer=where,
                message=(
                    f"tier {promised!r} promises replay determinism at "
                    f"fixed T but two runs at T={t} diverged"
                ),
            ))
        elif div is not None:
            cert.findings.append(Finding(
                rule="DC203", severity=INFO, layer=where,
                message=(
                    "diverges from the sequential trajectory within its "
                    f"tier ({promised!r}): {div.describe()}"
                ),
            ))

    if all(cert.bitwise_vs_sequential.values()):
        cert.observed_tier = BITWISE_INVARIANT
    elif all(cert.replay_deterministic.values()):
        cert.observed_tier = DETERMINISTIC_PER_T
    else:
        cert.observed_tier = NONDETERMINISTIC
    return cert


# ---------------------------------------------------------------------------
# top-level report
# ---------------------------------------------------------------------------
@dataclass
class DetcheckReport:
    """Static lint + configuration rules + replay certificates."""

    static_findings: List[Finding] = field(default_factory=list)
    config_findings: List[Finding] = field(default_factory=list)
    certificates: List[ModeCertificate] = field(default_factory=list)

    @property
    def findings(self) -> List[Finding]:
        out = self.static_findings + self.config_findings
        for cert in self.certificates:
            out.extend(cert.findings)
        return out

    @property
    def ok(self) -> bool:
        return not any(f.severity == ERROR for f in self.findings)

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "static_findings": [f.to_json() for f in self.static_findings],
            "config_findings": [f.to_json() for f in self.config_findings],
            "certificates": [c.to_json() for c in self.certificates],
        }

    def summary_lines(self) -> List[str]:
        def count(findings, severity):
            return sum(1 for f in findings if f.severity == severity)

        lines = [
            f"detcheck static: {count(self.static_findings, ERROR)} "
            f"error(s), {count(self.static_findings, WARNING)} warning(s) "
            "from the RNG/nondeterminism lint"
        ]
        for f in self.static_findings:
            lines.append(f"  [{f.rule}/{f.severity}] {f.layer}: {f.message}")
        if self.config_findings:
            lines.append(
                f"detcheck config: {count(self.config_findings, ERROR)} "
                f"error(s), {count(self.config_findings, WARNING)} "
                "warning(s)")
            for f in self.config_findings:
                lines.append(
                    f"  [{f.rule}/{f.severity}] {f.layer}: {f.message}")
        for cert in self.certificates:
            bits = ",".join(
                f"T={t}:{'=' if ok else '!='}"
                for t, ok in sorted(cert.bitwise_vs_sequential.items()))
            lines.append(
                f"certificate: net={cert.net} mode={cert.mode} "
                f"promised={cert.promised_tier} observed="
                f"{cert.observed_tier} vs-sequential[{bits}] -> "
                f"{'OK' if cert.ok else 'VIOLATION'}")
            for f in cert.findings:
                lines.append(
                    f"  [{f.rule}/{f.severity}] {f.layer}: {f.message}")
        lines.append(
            "verdict: " + ("CERTIFIED" if self.ok else "VIOLATIONS FOUND"))
        return lines


def run_detcheck(
    nets: Iterable[str] = ("lenet", "cifar10", "mlp"),
    modes: Iterable[str] = DEFAULT_MODES,
    threads: Sequence[int] = DEFAULT_THREADS,
    iters: int = 2,
    batch: Optional[int] = 4,
    claim: Optional[str] = None,
    static_only: bool = False,
) -> DetcheckReport:
    """The full determinism-certification pass.

    Static half always runs (source lint + layer provenance + config
    rules); the dynamic half trains every requested zoo net under every
    reduction mode at every thread count unless ``static_only``.
    """
    from repro.zoo.build import _SPECS

    assert all(code in CODE_CATALOGUE
               for code in ("DC001", "DC101", "DC201"))
    report = DetcheckReport(static_findings=lint_rng())

    nets = list(nets)
    modes = list(modes)
    for name in nets:
        if name not in _SPECS:
            raise SystemExit(
                f"unknown zoo net {name!r}; available: "
                f"{', '.join(sorted(_SPECS))}"
            )
        spec_fn, params_fn = _SPECS[name]
        spec = spec_fn()
        solver_type = params_fn(max_iter=1).type
        for mode in modes:
            report.config_findings.extend(classify_config(
                name, mode, threads, spec=spec, solver_type=solver_type,
                claim=claim,
            ))
    # One spec-level DC103 sweep per net is enough; drop per-mode repeats.
    seen = set()
    deduped = []
    for f in report.config_findings:
        key = (f.rule, f.layer, f.message)
        if key not in seen:
            seen.add(key)
            deduped.append(f)
    report.config_findings = deduped

    if not static_only:
        for name in nets:
            sequential = capture_trajectory(name, iters, batch)
            for mode in modes:
                report.certificates.append(certify_mode(
                    name, mode, threads, iters=iters, batch=batch,
                    sequential=sequential,
                ))
    return report
