"""The coded-finding catalogue of the analysis suite.

Nine passes, ten code families, one place that names them all:

* **FP/RT** — parallel-safety analyzer (PR 1): write-footprint
  classification and runtime-invariant lint.
* **NG** — net-graph static checker (PR 2): spec/DAG lint.
* **DC** — determinism certifier (PR 3): static nondeterminism lint,
  configuration invariance-tier rules, and dynamic replay certification.
* **RS** — resilience certifier (PR 5): unguarded-state-write lint,
  checkpoint/resume bitwise certification, and fault-injection
  recovery certification.
* **PL** — auto-parallelization planner (PR 6): per-layer execution-plan
  lint, load-time executor/plan drift checks, and planned-run tier
  certification.
* **FU** — graph compiler (PR 7): operator-fusion / memory-arena
  transform checks (shape and cost parity, arena aliasing) and
  fused-vs-unfused bitwise replay certification.
* **SY** — concurrency certifier (PR 8): lock-order / barrier-protocol
  static lint over the runtime sources, deterministic bounded model
  checking of the thread team under interleaving (deadlock, exception,
  digest divergence), and seeded-defect certification of the checker
  itself.
* **PE** — performance certifier (PR 9): static performance-bug lint
  over the layer chunk code (float64 upcasts, hot-loop allocations,
  implicit copies, iteration-space Python loops) gated by per-layer
  ``PerfDecl`` allow-lists, a roofline classifier over the cost model,
  and wall-clock calibration of ``CPUModel.layer_time`` against traced
  zoo runs.
* **SV** — serving certifier (PR 10): static robustness lint over the
  ``repro.serve`` path (bounded-queue discipline, unbounded waits,
  wall-clock reads outside the injected clock, swallowed exceptions,
  synccheck's lock rules re-applied) and dynamic chaos certification —
  a recorded request trace replayed in virtual time under injected
  worker crashes, straggler chunks, poisoned samples and request
  storms, gating on zero lost/duplicated responses and bitwise parity
  of every served output against sequential ``Net.forward``.

``python -m repro.analysis --list-codes`` prints this table.  Codes are
stable identifiers: CI configs and suppression lists may reference them,
so a code is never renumbered or reused once released.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: code -> (pass, default severity, one-line description).
CODE_CATALOGUE: Dict[str, Tuple[str, str, str]] = {
    # ---- parallel-safety analyzer: static footprint pass ----
    "FP001": ("footprint", "error",
              "layer defines its own chunk method(s) without declaring "
              "write_footprint"),
    "FP002": ("footprint", "error",
              "inferred write classification contradicts the declared "
              "footprint"),
    "FP003": ("footprint", "error",
              "parameter gradients bypass the privatized param_grads "
              "buffers (or reduction_params understate the accumulated "
              "indices)"),
    "FP004": ("footprint", "error",
              "chunk code writes undeclared or non-chunk-bounded layer "
              "state (scratch)"),
    "FP005": ("footprint", "error",
              "forward_chunk writes outside the chunk bounds without "
              "forward=SEQUENTIAL"),
    "FP006": ("footprint", "warning",
              "a write the analyzer cannot resolve; footprint downgraded "
              "to unknown"),
    # ---- parallel-safety analyzer: runtime-invariant lint ----
    "RT001": ("runtime", "error",
              "add_into inside a parallel region without "
              "ctx.ordered/ctx.critical protection"),
    # ---- net-graph static checker ----
    "NG001": ("netcheck", "error",
              "bottom shapes incompatible with the layer's parameters"),
    "NG002": ("netcheck", "error",
              "in-place top violates the chunk-write protocol"),
    "NG003": ("netcheck", "warning",
              "dead blob: produced but never consumed"),
    "NG004": ("netcheck", "error",
              "duplicate producers: a later layer silently shadows a blob"),
    "NG005": ("netcheck", "warning",
              "conv/pool pad-stride geometry drops or skips pixels"),
    "NG006": ("netcheck", "error",
              "net input declared without an input shape"),
    "NG007": ("netcheck", "error",
              "unknown layer type (no registered inference rule)"),
    "NG008": ("netcheck", "error",
              "dangling bottom: consumed but never produced"),
    "NG009": ("netcheck", "error",
              "duplicate layer name within one phase"),
    # ---- determinism certifier: static RNG / nondeterminism lint ----
    "DC001": ("detcheck", "error",
              "unseeded RNG construction (np.random.default_rng() / "
              "RandomState() with no seed draws from OS entropy)"),
    "DC002": ("detcheck", "error",
              "process-salted seed: hash()/id() derived values differ "
              "across interpreter processes (PYTHONHASHSEED)"),
    "DC003": ("detcheck", "error",
              "wall-clock or OS-entropy value feeding RNG state "
              "(time.*, os.urandom, uuid, secrets inside a seed)"),
    "DC004": ("detcheck", "error",
              "RNG draw inside chunk-parallel code: the draw count/order "
              "depends on the chunk schedule and thread count"),
    "DC005": ("detcheck", "error",
              "legacy global numpy RNG stream (np.random.rand/seed/...): "
              "draw order couples unrelated call sites"),
    "DC006": ("detcheck", "error",
              "layer constructs an RNG but declares no rng_provenance"),
    "DC007": ("detcheck", "error",
              "rng_provenance declaration inconsistent with the layer "
              "source (seed params never read, wrong draw site, or "
              "missing stable_seed fallback)"),
    # ---- determinism certifier: configuration tier rules ----
    "DC101": ("detcheck", "error",
              "configuration claims an invariance tier its reduction "
              "mode cannot deliver (e.g. atomic claiming bitwise)"),
    "DC102": ("detcheck", "error",
              "ordered/tree reduction under a dynamic or guided schedule "
              "degrades to nondeterministic"),
    "DC103": ("detcheck", "error",
              "stochastic layer with undeclared RNG provenance in a "
              "certified configuration"),
    "DC104": ("detcheck", "warning",
              "solver type outside the deterministic-certified set"),
    # ---- determinism certifier: dynamic replay certification ----
    "DC201": ("detcheck", "error",
              "bitwise invariance violated: parallel replay diverges from "
              "the sequential trajectory where the tier promises equality"),
    "DC202": ("detcheck", "error",
              "per-thread-count determinism violated: two runs of the "
              "same configuration diverge"),
    "DC203": ("detcheck", "info",
              "divergence observed within the declared tier (first "
              "diverging layer/iteration and ULP distance reported)"),
    # ---- resilience certifier: static state-safety lint ----
    "RS001": ("rescheck", "error",
              "state written in place (np.savez/np.save outside the "
              "atomic checkpoint writer): a crash mid-save destroys the "
              "previous snapshot"),
    "RS002": ("rescheck", "error",
              "state read without digest verification (np.load outside "
              "the verified loaders): corruption surfaces as a raw "
              "zipfile error instead of a coded rejection"),
    "RS003": ("rescheck", "error",
              "per-forward RNG stream not checkpoint-capturable (layer "
              "never stores its generator in self._rng)"),
    "RS004": ("rescheck", "error",
              "batch source without get_state/set_state: the stream "
              "cursor is trajectory state and would be lost on resume"),
    # ---- resilience certifier: checkpoint/resume certification ----
    "RS101": ("rescheck", "error",
              "resume divergence: the trajectory resumed from a "
              "mid-run checkpoint is not bitwise equal to the "
              "uninterrupted run at the same (net, mode, threads)"),
    "RS102": ("rescheck", "error",
              "state loss on roundtrip: save -> load -> save is not "
              "bitwise stable"),
    # ---- resilience certifier: fault-injection certification ----
    "RS201": ("rescheck", "error",
              "fault containment failure: an injected fault hung the "
              "runtime, masked its root cause, left the thread team "
              "unusable, or left torn state"),
    "RS202": ("rescheck", "error",
              "post-crash resume divergence: recovery from the last "
              "pre-crash checkpoint does not rejoin the reference "
              "trajectory bitwise"),
    "RS203": ("rescheck", "error",
              "guard policy not honoured: halt/skip-batch/rollback did "
              "not deliver its promised recovery behaviour on an "
              "injected NaN"),
    "RS204": ("rescheck", "error",
              "damaged checkpoint accepted: a corrupt, truncated, or "
              "pre-resilience snapshot must be rejected with a coded "
              "CheckpointCorrupt/CheckpointFormatError"),
    # ---- auto-parallelization planner: static plan lint ----
    "PL001": ("plancheck", "error",
              "plan references an unknown layer (or the net cannot be "
              "planned: unregistered layer type / shape error)"),
    "PL002": ("plancheck", "error",
              "coalesced dims inconsistent with the layer's iteration "
              "space (dims product, coalesce depth, or granularity "
              "mismatch)"),
    "PL003": ("plancheck", "error",
              "thread count exceeds the chunkable extent (more threads "
              "than schedulable units at the plan's granularity)"),
    "PL004": ("plancheck", "error",
              "a layer's reduction mode / schedule delivers a weaker "
              "invariance tier than the plan claims"),
    "PL005": ("plancheck", "warning",
              "plan predicted slower than the uniform baseline (the "
              "uniform strategy is always in the search space, so this "
              "flags a planner regression)"),
    "PL006": ("plancheck", "info",
              "predicted static-schedule imbalance exceeds 20% for a "
              "layer (busiest thread vs ideal split)"),
    # ---- auto-parallelization planner: executor/plan drift at load ----
    "PL101": ("plancheck", "error",
              "plan/net mismatch at load time (derived for a different "
              "net, or a plan entry matches no live layer)"),
    "PL102": ("plancheck", "error",
              "a layer's recorded iteration space drifted from the live "
              "net's actual coalesced space (granularity is ignored)"),
    "PL103": ("plancheck", "error",
              "a layer plan wants more threads than the executor team "
              "has"),
    "PL104": ("plancheck", "warning",
              "parallelizable live layer has no plan entry; it falls "
              "back to the executor-wide uniform strategy"),
    # ---- auto-parallelization planner: dynamic tier certification ----
    "PL201": ("plancheck", "error",
              "planned run violates the plan's claimed invariance tier "
              "(trajectory diverges where the tier promises equality)"),
    "PL202": ("plancheck", "info",
              "planned-run divergence within the claimed tier (first "
              "diverging site and ULP distance reported)"),
    # ---- graph compiler: fusion / arena transform checks ----
    "FU001": ("fusecheck", "error",
              "fusion pass failed (invalid transformed spec, or the "
              "fused net cannot be built)"),
    "FU002": ("fusecheck", "error",
              "fused shape parity violated: the fused spec's inferred "
              "blob shapes differ from the unfused net's at a surviving "
              "blob (or the fused spec fails netcheck)"),
    "FU003": ("fusecheck", "error",
              "arena aliasing: two simultaneously-live blobs were "
              "assigned overlapping arena storage"),
    "FU004": ("fusecheck", "error",
              "fused cost parity broken: spec_costs and net_costs "
              "disagree on a fused layer's work descriptor"),
    "FU005": ("fusecheck", "info",
              "no fusable chains or in-place opportunities in the net"),
    # ---- graph compiler: dynamic replay certification ----
    "FU201": ("fusecheck", "error",
              "fused+arena replay diverges bitwise from the unfused "
              "sequential baseline trajectory"),
    "FU202": ("fusecheck", "info",
              "fused+arena replay certified bitwise-identical to the "
              "unfused sequential baseline"),
    # ---- concurrency certifier: static sync-protocol lint ----
    "SY001": ("synccheck", "error",
              "lock-order cycle: two locks are acquired in opposite "
              "nesting orders on different code paths (ABBA deadlock)"),
    "SY002": ("synccheck", "error",
              "lock held across a barrier, ordered turn, condition "
              "wait, or blocking call (join/parallel region)"),
    "SY003": ("synccheck", "error",
              "Condition.wait outside a predicate re-check loop "
              "(missed/spurious wakeups go unnoticed)"),
    "SY004": ("synccheck", "error",
              "module-level mutable state written without holding a "
              "lock in a threading-aware module"),
    "SY005": ("synccheck", "error",
              "barrier divergence: non-exempt code paths through a "
              "function hit a team barrier a different number of times"),
    "SY006": ("synccheck", "error",
              "re-acquisition of a held non-reentrant lock "
              "(self-deadlock)"),
    # ---- concurrency certifier: interleaving model checker ----
    "SY101": ("synccheck", "error",
              "deadlock under some explored interleaving (every live "
              "thread blocked; pending ops and replayable schedule "
              "reported)"),
    "SY102": ("synccheck", "error",
              "exception raised under some explored interleaving that "
              "the canonical schedule does not raise"),
    "SY103": ("synccheck", "error",
              "schedule-dependent output: a configuration whose "
              "invariance tier promises determinism produced different "
              "output bits under two interleavings"),
    "SY104": ("synccheck", "warning",
              "exploration truncated at the run budget before "
              "exhausting the preemption-bounded schedule space"),
    # ---- concurrency certifier: seeded-defect certification ----
    "SY201": ("synccheck", "error",
              "seeded synchronization defect NOT rediscovered: the "
              "model checker missed a planted lock-order inversion or "
              "barrier skip (checker regression)"),
    "SY202": ("synccheck", "info",
              "seeded defect rediscovered as a deadlock and its "
              "recorded schedule replayed faithfully"),
    # ---- performance certifier: static performance-bug lint ----
    "PE001": ("perfcheck", "error",
              "undeclared float64 upcast in chunk-reachable code "
              "(astype/dtype=/np.float64 outside the layer's PerfDecl "
              "allow-list): silently doubles bandwidth per element"),
    "PE002": ("perfcheck", "error",
              "undeclared array allocation in chunk-reachable code "
              "(np.zeros/empty/... per chunk instead of the scratch "
              "pool): allocator traffic scales with the thread count"),
    "PE003": ("perfcheck", "warning",
              "undeclared implicit copy in chunk-reachable code "
              "(ascontiguousarray / flatten / ravel of a strided view "
              "materializes a hidden temporary)"),
    "PE004": ("perfcheck", "warning",
              "undeclared Python-level loop over an iteration-space-"
              "sized range in chunk-reachable code (interpreter "
              "dispatch per element instead of a vectorized op)"),
    "PE005": ("perfcheck", "error",
              "PerfDecl drift: an allowance names an unknown or "
              "non-chunk-reachable method, or vouches for a hazard the "
              "method no longer contains (stale declaration)"),
    # ---- performance certifier: roofline classifier ----
    "PE101": ("perfcheck", "info",
              "planned thread width exceeds the modelled DRAM "
              "bandwidth saturation width for a bandwidth-bound layer "
              "(extra threads buy <10% marginal bandwidth)"),
    "PE102": ("perfcheck", "info",
              "dispatch/fork-join overhead exceeds half the modelled "
              "layer time at the planned width (layer too small to "
              "parallelize profitably)"),
    # ---- performance certifier: calibration certification ----
    "PE201": ("perfcheck", "error",
              "cost-model drift: a (layer type, pass) geometric-mean "
              "residual of measured vs predicted time falls outside "
              "the calibration tolerance band after per-run scale "
              "normalization"),
    "PE202": ("perfcheck", "info",
              "calibration fit summary (per-run scale factors and the "
              "per-type residual spread actually observed)"),
    "PE203": ("perfcheck", "warning",
              "noisy timing sample (MAD/median above threshold or "
              "below the timer noise floor); layer excluded from the "
              "calibration fit"),
    # ---- serving certifier: static serve-path lint ----
    "SV001": ("servecheck", "error",
              "bounded-queue discipline violated in the serve path: a "
              "queue.Queue (unbounded growth) or deque(maxlen=...) "
              "(silent far-end drops) constructed instead of the "
              "reject-loudly BoundedDeque"),
    "SV002": ("servecheck", "error",
              "unbounded blocking call in the serve path (.wait()/"
              ".join() with no timeout): a stalled peer freezes the "
              "serving thread forever"),
    "SV003": ("servecheck", "error",
              "synccheck lock-discipline violation in the serve path "
              "(the SY001-SY006 static rules re-applied to repro.serve; "
              "the original SY code is named in the message)"),
    "SV004": ("servecheck", "error",
              "wall-clock read outside the injected-clock module: "
              "time/datetime used directly, so deadlines cannot be "
              "replayed in virtual time"),
    "SV005": ("servecheck", "error",
              "exception swallowed silently in the serve path (bare "
              "except, or a handler that only passes): a fault must "
              "become a coded response, not vanish"),
    # ---- serving certifier: dynamic chaos certification ----
    "SV101": ("servecheck", "error",
              "lost response: a submitted request finished the trace "
              "replay with no delivered response"),
    "SV102": ("servecheck", "error",
              "duplicated response: more than one response reached the "
              "client for a single request id (idempotent delivery "
              "broken, e.g. by a crash-replay)"),
    "SV103": ("servecheck", "error",
              "served output differs bitwise from direct sequential "
              "Net.forward on the identical staged batch"),
    "SV104": ("servecheck", "error",
              "deadline/degradation violation: a healthy-regime replay "
              "produced non-ok responses, or an 'ok' response was "
              "delivered after its request's deadline"),
    "SV105": ("servecheck", "info",
              "chaos certification summary (responses by status, team "
              "restarts, reloads, sheds, duplicates suppressed)"),
}


def source_code_references() -> Dict[str, List[str]]:
    """Scan the analysis package sources for finding-code mentions.

    Returns ``code -> [filenames]`` for every ``XX###`` token in any
    module of this package except the catalogue itself.  Both emission
    sites (``Finding(rule="SY101", ...)``) and documentation mentions
    count as references — the drift check wants the catalogue and the
    sources to agree, whichever direction a code travels.
    """
    import os
    import re

    pattern = re.compile(r"\b(?:FP|RT|NG|DC|RS|PL|FU|SY|PE|SV)\d{3}\b")
    pkg = os.path.dirname(os.path.abspath(__file__))
    refs: Dict[str, List[str]] = {}
    for fname in sorted(os.listdir(pkg)):
        if not fname.endswith(".py") or fname == "codes.py":
            continue
        with open(os.path.join(pkg, fname), encoding="utf-8") as fh:
            text = fh.read()
        for code in sorted(set(pattern.findall(text))):
            refs.setdefault(code, []).append(fname)
    return refs


def check_code_drift() -> Tuple[List[str], List[str]]:
    """Catalogue/source consistency: returns (unregistered, unreferenced).

    *unregistered* — codes the analyzer sources mention but the
    catalogue does not define (an analyzer emitting an undocumented
    code).  *unreferenced* — catalogue entries no analyzer source
    mentions (a dead registration).  CI fails on either.
    """
    refs = source_code_references()
    unregistered = sorted(c for c in refs if c not in CODE_CATALOGUE)
    unreferenced = sorted(c for c in CODE_CATALOGUE if c not in refs)
    return unregistered, unreferenced


def catalogue_lines() -> List[str]:
    """Human-readable rendering of the full code catalogue."""
    lines = [f"{len(CODE_CATALOGUE)} finding codes "
             "(FP/RT: parallel-safety, NG: netcheck, DC: detcheck, "
             "RS: rescheck, PL: plancheck, FU: fusecheck, "
             "SY: synccheck, PE: perfcheck, SV: servecheck)"]
    for code, (pass_name, severity, desc) in sorted(CODE_CATALOGUE.items()):
        lines.append(f"  {code}  {pass_name:<10} {severity:<8} {desc}")
    return lines
