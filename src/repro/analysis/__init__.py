"""Parallel-safety analyzer for the coarse-grain runtime.

Two cooperating passes:

* **static** (:mod:`repro.analysis.footprint`, :mod:`repro.analysis.lint`)
  — AST classification of each layer's chunk-loop write footprint
  (``sample_disjoint`` / ``reduction`` / ``sequential`` / ``unsafe``)
  checked against its :class:`~repro.framework.layer.FootprintDecl`,
  plus runtime-invariant lint (ordered-merge discipline).
* **dynamic** (:mod:`repro.analysis.shadow`, :mod:`repro.analysis.race`)
  — shadow-memory race detection: replay each layer's chunk schedule
  per simulated thread, diff the write sets, and report cross-thread
  overlaps not routed through privatization.

Entry points: :func:`analyze_layer_class` for one class,
:func:`run_static` / :func:`run_dynamic` / :func:`run_analysis` for
whole nets, and ``python -m repro.analysis`` for the CLI.
"""

from repro.analysis.footprint import (
    analyze_classes,
    analyze_layer_class,
    builtin_layer_classes,
)
from repro.analysis.lint import lint_runtime
from repro.analysis.race import run_analysis, run_dynamic, run_static
from repro.analysis.report import (
    ERROR,
    WARNING,
    AnalysisReport,
    DynamicReport,
    Finding,
    LayerReport,
    Race,
    StaticReport,
)

__all__ = [
    "ERROR",
    "WARNING",
    "AnalysisReport",
    "DynamicReport",
    "Finding",
    "LayerReport",
    "Race",
    "StaticReport",
    "analyze_classes",
    "analyze_layer_class",
    "builtin_layer_classes",
    "lint_runtime",
    "run_analysis",
    "run_dynamic",
    "run_static",
]
