"""Parallel-safety analyzer for the coarse-grain runtime.

Two cooperating passes:

* **static** (:mod:`repro.analysis.footprint`, :mod:`repro.analysis.lint`)
  — AST classification of each layer's chunk-loop write footprint
  (``sample_disjoint`` / ``reduction`` / ``sequential`` / ``unsafe``)
  checked against its :class:`~repro.framework.layer.FootprintDecl`,
  plus runtime-invariant lint (ordered-merge discipline).
* **dynamic** (:mod:`repro.analysis.shadow`, :mod:`repro.analysis.race`)
  — shadow-memory race detection: replay each layer's chunk schedule
  per simulated thread, diff the write sets, and report cross-thread
  overlaps not routed through privatization.

A third pass certifies determinism (:mod:`repro.analysis.rng_lint`,
:mod:`repro.analysis.detcheck`): static nondeterminism lint (DC001-
DC007), configuration invariance-tier rules (DC101-DC104), and bitwise
replay certification of the paper's convergence-invariance property
(DC201-DC203).

A performance pass (:mod:`repro.analysis.perflint`,
:mod:`repro.analysis.perfcheck`) lints chunk-reachable layer code for
performance bugs against per-layer ``PerfDecl`` allow-lists
(PE001-PE005), classifies every layer pass on the cost model's
roofline (PE101/PE102), and calibrates ``CPUModel.layer_time`` against
traced wall-clock runs (PE201-PE203).  :mod:`repro.analysis.codes`
names every FP/RT/NG/DC/RS/PL/FU/SY/PE code in one catalogue.

Entry points: :func:`analyze_layer_class` for one class,
:func:`run_static` / :func:`run_dynamic` / :func:`run_analysis` for
whole nets, :func:`run_detcheck` / :func:`certify_mode` for the
determinism certifier, :func:`lint_perf` / :func:`run_perfcheck` for
the performance certifier, and ``python -m repro.analysis`` for the
CLI.
"""

from repro.analysis.footprint import (
    analyze_classes,
    analyze_layer_class,
    builtin_layer_classes,
)
from repro.analysis.codes import CODE_CATALOGUE, catalogue_lines
from repro.analysis.detcheck import (
    DetcheckReport,
    Divergence,
    ModeCertificate,
    Trajectory,
    capture_trajectory,
    certify_mode,
    classify_config,
    first_divergence,
    run_detcheck,
    ulp_distance,
)
from repro.analysis.lint import lint_runtime
from repro.analysis.perfcheck import PerfReport, run_perfcheck
from repro.analysis.perflint import (
    analyze_layer_perf,
    lint_perf,
    lint_sources_perf,
)
from repro.analysis.race import run_analysis, run_dynamic, run_static
from repro.analysis.report import (
    ERROR,
    INFO,
    WARNING,
    AnalysisReport,
    DynamicReport,
    Finding,
    LayerReport,
    Race,
    StaticReport,
)
from repro.analysis.rng_lint import (
    analyze_layer_rng,
    lint_rng,
    lint_sources,
)

__all__ = [
    "CODE_CATALOGUE",
    "ERROR",
    "INFO",
    "WARNING",
    "AnalysisReport",
    "DetcheckReport",
    "Divergence",
    "DynamicReport",
    "Finding",
    "LayerReport",
    "ModeCertificate",
    "PerfReport",
    "Race",
    "StaticReport",
    "Trajectory",
    "analyze_classes",
    "analyze_layer_class",
    "analyze_layer_perf",
    "analyze_layer_rng",
    "builtin_layer_classes",
    "capture_trajectory",
    "catalogue_lines",
    "certify_mode",
    "classify_config",
    "first_divergence",
    "lint_perf",
    "lint_rng",
    "lint_runtime",
    "lint_sources",
    "lint_sources_perf",
    "run_analysis",
    "run_detcheck",
    "run_dynamic",
    "run_perfcheck",
    "run_static",
    "ulp_distance",
]
