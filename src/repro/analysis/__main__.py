"""CLI for the parallel-safety analyzer and the net-graph checker.

Flag mode (parallel-safety analysis, the original interface)::

    python -m repro.analysis --net lenet --net cifar10 --threads 1,2,8
    python -m repro.analysis --prototxt my_net.prototxt --gate
    python -m repro.analysis --static-only --json

Both passes run by default: the static write-footprint classification
over every registered layer class (plus the runtime-invariant lint),
and the dynamic shadow-memory race detection over each requested net at
each simulated thread count.  ``--gate`` exits nonzero when any ERROR
finding or race is present, for use in CI.

Subcommand mode (net-graph static checker)::

    python -m repro.analysis netcheck --net lenet --net cifar10 --gate
    python -m repro.analysis netcheck --prototxt my_net.prototxt --json
    python -m repro.analysis netcheck --batch 32 --threads 1,2,8

``netcheck`` lints a net spec (coded findings NG001-NG009), infers every
blob shape symbolically, and emits the static schedule / memory / FLOP
plan — all without instantiating a single layer.  With no ``--net`` or
``--prototxt`` it checks every zoo net.

Subcommand mode (determinism certifier)::

    python -m repro.analysis detcheck --net lenet --threads 1,2,8 --gate
    python -m repro.analysis detcheck --mode blockwise --mode atomic --json
    python -m repro.analysis detcheck --static-only

``detcheck`` runs the static nondeterminism lint (DC001-DC007), the
configuration invariance-tier rules (DC101-DC104), and — unless
``--static-only`` — the bitwise replay certifier (DC201-DC203), which
trains every requested zoo net a few iterations at each thread count
under each reduction mode and diffs the trajectories bitwise and in
ULPs against the sequential run.

Subcommand mode (resilience certifier)::

    python -m repro.analysis rescheck --net lenet --threads 1,2,8 --gate
    python -m repro.analysis rescheck --mode blockwise --json
    python -m repro.analysis rescheck --static-only

``rescheck`` runs the static state-safety lint (RS001-RS004: raw
serialization outside the atomic checkpoint writer, uncapturable RNG
streams, cursorless batch sources), then — unless ``--static-only`` —
certifies per net x reduction mode x thread count that a mid-run
checkpoint + fresh-solver resume is bitwise identical to the
uninterrupted run (RS101/RS102), and fires the deterministic
fault-injection harness (RS201-RS204): chunk aborts, in-layer
exceptions, NaN injection under every guard policy, and corrupt /
truncated / old-format checkpoint files.  ``--skip-faults`` certifies
resume only.

Subcommand mode (auto-parallelization planner)::

    python -m repro.analysis plancheck --net lenet --threads 8 --gate
    python -m repro.analysis plancheck --threads 1,2,8 --json
    python -m repro.analysis plancheck --net lenet --threads 8 \\
        --emit-plan lenet.plan.json
    python -m repro.analysis plancheck --net lenet --certify

``plancheck`` statically searches a per-layer execution strategy
(coalesce depth, thread count, schedule, reduction mode) for each
requested team size, priced by the simulator's cost model, and lints
the resulting plan (PL001-PL006).  ``--emit-plan`` writes the
serialized :class:`~repro.core.plan.ExecutionPlan` for
``repro.tools.train --plan``; ``--certify`` additionally replays the
planned configuration and certifies its claimed invariance tier
bitwise (PL201/PL202).  ``--gate`` fails on any ERROR or on a plan
predicted slower than the uniform baseline (PL005).

Subcommand mode (graph compiler certifier)::

    python -m repro.analysis fusecheck --net lenet --threads 1,2,8 --gate
    python -m repro.analysis fusecheck --certify --json
    python -m repro.analysis fusecheck --prototxt my_net.prototxt

``fusecheck`` runs every requested net through the graph compiler
(:mod:`repro.compiler`): operator fusion + in-place rewriting, then the
static memory arena.  The transformed net is held to the existing
gates — netcheck shape parity and footprint lint (FU002 + absorbed FP
codes), arena aliasing audit (FU003), spec/net cost-model parity
(FU004), and plancheck's plan lint — and ``--certify`` replays the
fused+arena net under the planner's plan at each team size, requiring
bitwise identity with the unfused sequential baseline (FU201/FU202).

Subcommand mode (concurrency certifier)::

    python -m repro.analysis synccheck --net lenet --threads 1,2,8 --gate
    python -m repro.analysis synccheck --preemptions 3 --json
    python -m repro.analysis synccheck --static-only
    python -m repro.analysis synccheck --trace traces.json
    python -m repro.analysis synccheck --replay traces.json

``synccheck`` runs the lock-order / barrier-protocol static lint over
the runtime sources (SY001-SY006), certifies the interleaving model
checker against seeded defects — a planted lock-order inversion and
barrier skip must be rediscovered as deadlocks with faithfully
replaying schedules (SY201/SY202) — and then model-checks each
requested zoo net's training iteration at each team size under a
CHESS-style preemption bound (SY101-SY104): every synchronization
operation is virtualized, the threads fully serialized, and the
bounded schedule space explored for deadlocks, interleaving-dependent
exceptions, and schedule-dependent output bits.  ``--trace`` writes
every verdict's schedule as a replayable JSON trace; ``--replay``
re-executes previously recorded traces deterministically.

Subcommand mode (performance certifier)::

    python -m repro.analysis perfcheck --gate --static-only
    python -m repro.analysis perfcheck --net lenet --threads 1,2,8 --gate
    python -m repro.analysis perfcheck --timing-warn-only \\
        --bench-out BENCH_perf.json
    python -m repro.analysis perfcheck --iters 5 --tolerance 8 --json

``perfcheck`` runs the static performance-bug lint over the layer
chunk code and the core/compiler sources (PE001-PE005: undeclared
float64 upcasts, hot-loop allocations, implicit copies,
iteration-space Python loops, and stale ``PerfDecl`` allowances), the
roofline classifier (PE101/PE102: per-layer arithmetic intensity,
compute- vs bandwidth-bound at each planned width, DRAM saturation),
and — unless ``--static-only`` — the cost-model calibration certifier
(PE201-PE203): every zoo layer is timed fwd/bwd through the tracing
executor at each team size with BLAS pools pinned, compared against
``CPUModel.layer_times``, and gated on per-layer-type residual drift.
``--timing-warn-only`` demotes PE201 to WARNING for hosts where
wall-clock gating would flake; ``--bench-out`` writes the calibration
run as ``BENCH_perf.json`` in the ``repro-bench/1`` envelope.

Subcommand mode (serving certifier)::

    python -m repro.analysis servecheck --net lenet --threads 1,2 --gate
    python -m repro.analysis servecheck --static-only --json
    python -m repro.analysis servecheck --requests 200 \\
        --trace-out serve_trace.json

``servecheck`` runs the static serve-path lint over
:mod:`repro.serve` (SV001-SV005: unbounded queues, unbounded waits,
synccheck's lock rules re-applied, wall-clock reads outside the clock
module, swallowed exceptions), then — unless ``--static-only`` —
replays a deterministic request trace per (net, team width) on a
virtual clock, twice: healthy (every request must come back ``ok``
and bitwise equal to sequential ``Net.forward`` of the identical
staged batch) and under chaos (an injected worker crash, straggler
chunk, poisoned NaN sample, request storm past admission capacity,
and a mid-trace hot reload), gating on zero lost (SV101), zero
duplicated (SV102) responses, bitwise output parity (SV103), and the
degradation protocol (SV104: quarantined poison, no late ``ok``,
restart exercised).

``--list-codes`` (any mode) prints the full
FP/RT/NG/DC/RS/PL/FU/SY/PE/SV catalogue; ``--check-codes`` (any mode)
fails when the catalogue and the analyzer sources disagree about which
codes exist.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, List, Tuple

from repro.analysis.race import run_analysis


def _parse_threads(text: str) -> List[int]:
    try:
        threads = [int(tok) for tok in text.split(",") if tok.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--threads wants a comma-separated list of ints, got {text!r}"
        )
    if not threads or any(t < 1 for t in threads):
        raise argparse.ArgumentTypeError(
            f"thread counts must be >= 1, got {text!r}"
        )
    return threads


def _load_specs(net_names, prototxt_paths):
    """Resolve CLI net selectors into (label, NetSpec) pairs."""
    from repro.data import register_default_sources
    from repro.framework.prototxt import parse_prototxt
    from repro.zoo.build import _SPECS

    register_default_sources()
    specs = []
    names = list(net_names)
    if not names and not prototxt_paths:
        names = sorted(_SPECS)
    for name in names:
        if name not in _SPECS:
            raise SystemExit(
                f"unknown zoo net {name!r}; available: "
                f"{', '.join(sorted(_SPECS))}"
            )
        specs.append((name, _SPECS[name][0]()))
    for path in prototxt_paths:
        with open(path) as fh:
            text = fh.read()
        try:
            spec = parse_prototxt(text, validate=False)
        except ValueError as exc:
            raise SystemExit(f"{path}: {exc}")
        specs.append((path, spec))
    return specs


def netcheck_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis netcheck",
        description="Static net-graph checker: symbolic shape inference, "
                    "DAG lint (NG001-NG009), and the static schedule / "
                    "memory / FLOP plan.",
    )
    parser.add_argument(
        "--net", action="append", default=[], metavar="NAME",
        help="zoo network to check (repeatable; default: all zoo nets "
             "when no --prototxt is given)",
    )
    parser.add_argument(
        "--prototxt", action="append", default=[], metavar="FILE",
        help="user prototxt to check (repeatable; parsed without "
             "validation so broken graphs lint instead of crashing)",
    )
    parser.add_argument(
        "--phase", choices=["TRAIN", "TEST", "both"], default="both",
        help="phase graph(s) to check (default: both)",
    )
    parser.add_argument(
        "--threads", type=_parse_threads, default=[1, 2, 8],
        metavar="N,N,...",
        help="thread counts to plan static chunking for (default: 1,2,8)",
    )
    parser.add_argument(
        "--batch", type=int, default=None, metavar="N",
        help="override every feeder's batch size before planning",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the full machine-readable reports as JSON",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="exit nonzero if any net has an ERROR finding",
    )
    args = parser.parse_args(argv)

    if args.batch is not None and args.batch < 1:
        parser.error(f"--batch must be >= 1, got {args.batch}")

    from repro.analysis.netcheck import check_spec

    phases = ["TRAIN", "TEST"] if args.phase == "both" else [args.phase]
    reports = []
    for label, spec in _load_specs(args.net, args.prototxt):
        for phase in phases:
            report = check_spec(
                spec, phase=phase, threads=args.threads, batch=args.batch,
            )
            if not report.net:
                report.net = label
            reports.append(report)

    if args.as_json:
        print(json.dumps([r.to_json() for r in reports], indent=2))
    else:
        for report in reports:
            for line in report.summary_lines():
                print(line)

    if args.gate and not all(r.ok for r in reports):
        return 1
    return 0


def detcheck_main(argv) -> int:
    from repro.analysis.detcheck import (
        DEFAULT_MODES,
        DEFAULT_THREADS,
        run_detcheck,
    )
    from repro.core.reduction import REDUCTION_MODES, TIER_ORDER

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis detcheck",
        description="Determinism certifier: static nondeterminism lint "
                    "(DC001-DC007), configuration invariance-tier rules "
                    "(DC101-DC104), and bitwise replay certification of "
                    "convergence invariance (DC201-DC203).",
    )
    parser.add_argument(
        "--net", action="append", default=[], metavar="NAME",
        help="zoo network to certify (repeatable; default: all zoo nets)",
    )
    parser.add_argument(
        "--mode", action="append", default=[], metavar="MODE",
        choices=list(REDUCTION_MODES),
        help="reduction mode to certify (repeatable; default: "
             f"{','.join(DEFAULT_MODES)}; atomic is opt-in — its tier "
             "promises nothing a gate could enforce)",
    )
    parser.add_argument(
        "--threads", type=_parse_threads,
        default=list(DEFAULT_THREADS), metavar="N,N,...",
        help="thread counts to replay at (default: "
             f"{','.join(map(str, DEFAULT_THREADS))})",
    )
    parser.add_argument(
        "--iters", type=int, default=2, metavar="N",
        help="training iterations per replay (default: 2)",
    )
    parser.add_argument(
        "--batch", type=int, default=4, metavar="N",
        help="shrink data-layer batch sizes to N for the replays "
             "(default: 4)",
    )
    parser.add_argument(
        "--claim", choices=sorted(TIER_ORDER), default=None,
        help="invariance tier the configuration claims; rejected "
             "(DC101) when the reduction mode cannot deliver it",
    )
    parser.add_argument(
        "--static-only", action="store_true",
        help="skip the dynamic replay certification",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the full machine-readable report as JSON",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="exit nonzero if any ERROR finding is present",
    )
    args = parser.parse_args(argv)

    if args.iters < 1:
        parser.error(f"--iters must be >= 1, got {args.iters}")
    if args.batch < 1:
        parser.error(f"--batch must be >= 1, got {args.batch}")

    report = run_detcheck(
        nets=args.net or ("lenet", "cifar10", "mlp"),
        modes=args.mode or DEFAULT_MODES,
        threads=args.threads,
        iters=args.iters,
        batch=args.batch,
        claim=args.claim,
        static_only=args.static_only,
    )

    if args.as_json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        for line in report.summary_lines():
            print(line)

    if args.gate and not report.ok:
        return 1
    return 0


def rescheck_main(argv) -> int:
    from repro.analysis.rescheck import (
        DEFAULT_MODES,
        DEFAULT_THREADS,
        run_rescheck,
    )
    from repro.core.reduction import REDUCTION_MODES

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis rescheck",
        description="Resilience certifier: static state-safety lint "
                    "(RS001-RS004), bitwise checkpoint/resume "
                    "certification (RS101-RS102), and fault-injection "
                    "recovery certification (RS201-RS204).",
    )
    parser.add_argument(
        "--net", action="append", default=[], metavar="NAME",
        help="zoo network to certify (repeatable; default: all zoo nets)",
    )
    parser.add_argument(
        "--mode", action="append", default=[], metavar="MODE",
        choices=list(REDUCTION_MODES),
        help="reduction mode to certify resume under (repeatable; "
             f"default: {','.join(DEFAULT_MODES)}; atomic is opt-in — "
             "its tier promises nothing bitwise a resume could be "
             "checked against)",
    )
    parser.add_argument(
        "--threads", type=_parse_threads,
        default=list(DEFAULT_THREADS), metavar="N,N,...",
        help="thread counts to certify at (default: "
             f"{','.join(map(str, DEFAULT_THREADS))}; faults fire at "
             "the highest count)",
    )
    parser.add_argument(
        "--iters", type=int, default=2, metavar="N",
        help="training iterations per certification run (default: 2; "
             "the checkpoint lands at the midpoint)",
    )
    parser.add_argument(
        "--batch", type=int, default=4, metavar="N",
        help="shrink data-layer batch sizes to N for the runs "
             "(default: 4)",
    )
    parser.add_argument(
        "--static-only", action="store_true",
        help="run only the static state-safety lint",
    )
    parser.add_argument(
        "--skip-faults", action="store_true",
        help="certify checkpoint/resume but skip the fault-injection "
             "harness",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the full machine-readable report as JSON",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="exit nonzero if any ERROR finding is present",
    )
    args = parser.parse_args(argv)

    if args.iters < 1:
        parser.error(f"--iters must be >= 1, got {args.iters}")
    if args.batch < 1:
        parser.error(f"--batch must be >= 1, got {args.batch}")

    report = run_rescheck(
        nets=args.net or ("lenet", "cifar10", "mlp"),
        modes=args.mode or DEFAULT_MODES,
        threads=args.threads,
        iters=args.iters,
        batch=args.batch,
        static_only=args.static_only,
        skip_faults=args.skip_faults,
    )

    if args.as_json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        for line in report.summary_lines():
            print(line)

    if args.gate and not report.ok:
        return 1
    return 0


def plancheck_main(argv) -> int:
    from repro.analysis.plancheck import (
        PlancheckReport,
        certify_plan,
        plan_spec,
    )
    from repro.core.reduction import BITWISE_INVARIANT, TIER_ORDER

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis plancheck",
        description="Static per-layer auto-parallelization planner: "
                    "searches coalesce depth / thread count / schedule / "
                    "reduction mode per layer against the simulator's "
                    "cost model, lints the plan (PL001-PL006), and "
                    "optionally certifies its invariance tier "
                    "(PL201/PL202).",
    )
    parser.add_argument(
        "--net", action="append", default=[], metavar="NAME",
        help="zoo network to plan (repeatable; default: all zoo nets "
             "when no --prototxt is given)",
    )
    parser.add_argument(
        "--prototxt", action="append", default=[], metavar="FILE",
        help="user prototxt to plan (repeatable)",
    )
    parser.add_argument(
        "--threads", type=_parse_threads, default=[1, 2, 8],
        metavar="N,N,...",
        help="team sizes to plan for (default: 1,2,8)",
    )
    parser.add_argument(
        "--batch", type=int, default=None, metavar="N",
        help="override every feeder's batch size before planning",
    )
    parser.add_argument(
        "--claim", choices=sorted(TIER_ORDER), default=BITWISE_INVARIANT,
        help="invariance tier the plan must preserve; restricts the "
             "reduction modes the search may pick (default: "
             f"{BITWISE_INVARIANT})",
    )
    parser.add_argument(
        "--emit-plan", default=None, metavar="PATH",
        help="write the serialized ExecutionPlan to PATH (requires "
             "exactly one net and one team size)",
    )
    parser.add_argument(
        "--certify", action="store_true",
        help="replay each planned configuration (team sizes > 1) and "
             "certify the claimed tier bitwise (zoo nets only)",
    )
    parser.add_argument(
        "--certify-iters", type=int, default=2, metavar="N",
        help="training iterations per certification replay (default: 2)",
    )
    parser.add_argument(
        "--certify-batch", type=int, default=4, metavar="N",
        help="batch size for the certification replays (default: 4)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the full machine-readable report as JSON",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="exit nonzero on any ERROR finding or a plan predicted "
             "slower than the uniform baseline (PL005)",
    )
    args = parser.parse_args(argv)

    if args.batch is not None and args.batch < 1:
        parser.error(f"--batch must be >= 1, got {args.batch}")
    if args.certify_iters < 1:
        parser.error(f"--certify-iters must be >= 1, "
                     f"got {args.certify_iters}")
    if args.certify_batch < 1:
        parser.error(f"--certify-batch must be >= 1, "
                     f"got {args.certify_batch}")

    specs = _load_specs(args.net, args.prototxt)
    if args.emit_plan and (len(specs) != 1 or len(args.threads) != 1):
        parser.error("--emit-plan requires exactly one net and one "
                     "team size (--threads N)")

    from repro.zoo.build import _SPECS

    report = PlancheckReport()
    for label, spec in specs:
        for team in args.threads:
            net_report = plan_spec(
                spec, net_name=label, threads=team, batch=args.batch,
                claim=args.claim,
            )
            if args.certify and team > 1 and label in _SPECS:
                certify_findings, _ = certify_plan(
                    label, threads=team, claim=args.claim,
                    iters=args.certify_iters, batch=args.certify_batch,
                )
                net_report.findings.extend(certify_findings)
            report.reports.append(net_report)

    if args.emit_plan:
        only = report.reports[0]
        if only.plan is None:
            print(f"cannot emit plan: planning {only.net!r} failed",
                  file=sys.stderr)
            return 1
        only.plan.save(args.emit_plan)
        print(f"plan written to {args.emit_plan}")

    if args.as_json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        for line in report.summary_lines():
            print(line)

    if args.gate and not report.ok:
        return 1
    return 0


def fusecheck_main(argv) -> int:
    from repro.analysis.fusecheck import (
        FusecheckReport,
        certify_fuse,
        check_fuse,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis fusecheck",
        description="Graph-compiler certifier: fuses each net's "
                    "elementwise chains, plans the static memory arena, "
                    "and holds the transformed net to the existing "
                    "gates (FU001-FU005); --certify replays the "
                    "fused+arena net and requires bitwise identity "
                    "with the unfused sequential baseline "
                    "(FU201/FU202).",
    )
    parser.add_argument(
        "--net", action="append", default=[], metavar="NAME",
        help="zoo network to compile (repeatable; default: all zoo nets "
             "when no --prototxt is given)",
    )
    parser.add_argument(
        "--prototxt", action="append", default=[], metavar="FILE",
        help="user prototxt to compile (repeatable)",
    )
    parser.add_argument(
        "--threads", type=_parse_threads, default=[1, 2, 8],
        metavar="N,N,...",
        help="team sizes to check/certify at (default: 1,2,8)",
    )
    parser.add_argument(
        "--batch", type=int, default=None, metavar="N",
        help="override every feeder's batch size before compiling",
    )
    parser.add_argument(
        "--certify", action="store_true",
        help="replay the fused+arena net at each team size and require "
             "bitwise identity with the unfused sequential baseline "
             "(zoo nets only)",
    )
    parser.add_argument(
        "--certify-iters", type=int, default=2, metavar="N",
        help="training iterations per certification replay (default: 2)",
    )
    parser.add_argument(
        "--certify-batch", type=int, default=4, metavar="N",
        help="batch size for the certification replays (default: 4)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the full machine-readable report as JSON",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="exit nonzero on any ERROR finding",
    )
    args = parser.parse_args(argv)

    if args.batch is not None and args.batch < 1:
        parser.error(f"--batch must be >= 1, got {args.batch}")
    if args.certify_iters < 1:
        parser.error(f"--certify-iters must be >= 1, "
                     f"got {args.certify_iters}")
    if args.certify_batch < 1:
        parser.error(f"--certify-batch must be >= 1, "
                     f"got {args.certify_batch}")

    specs = _load_specs(args.net, args.prototxt)

    from repro.zoo.build import _SPECS

    report = FusecheckReport()
    for label, spec in specs:
        for team in args.threads:
            net_report = check_fuse(
                spec, net_name=label, threads=team, batch=args.batch)
            if args.certify and label in _SPECS:
                certify_findings, _ = certify_fuse(
                    label, threads=team,
                    iters=args.certify_iters, batch=args.certify_batch,
                )
                net_report.findings.extend(certify_findings)
            report.reports.append(net_report)

    if args.as_json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        for line in report.summary_lines():
            print(line)

    if args.gate and not report.ok:
        return 1
    return 0


def synccheck_main(argv) -> int:
    from repro.analysis.synccheck import (
        DEFAULT_MAX_RUNS,
        DEFAULT_MODE,
        DEFAULT_NETS,
        replay_trace,
        run_synccheck,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis synccheck",
        description="Concurrency certifier: lock-order / "
                    "barrier-protocol static lint (SY001-SY006), "
                    "seeded-defect certification of the interleaving "
                    "model checker (SY201/SY202), and CHESS-style "
                    "bounded model checking of each zoo net's training "
                    "iteration (SY101-SY104).",
    )
    parser.add_argument(
        "--net", action="append", default=[], metavar="NAME",
        help="zoo network to model-check (repeatable; default: "
             f"{', '.join(DEFAULT_NETS)})",
    )
    parser.add_argument(
        "--threads", type=_parse_threads, default=[1, 2, 8],
        metavar="N,N,...",
        help="team sizes to model-check at (default: 1,2,8)",
    )
    parser.add_argument(
        "--mode", default=DEFAULT_MODE, metavar="MODE",
        help="reduction mode for the model-checked configurations "
             f"(default: {DEFAULT_MODE})",
    )
    parser.add_argument(
        "--batch", type=int, default=4, metavar="N",
        help="batch size for the model-checked training iteration "
             "(default: 4)",
    )
    parser.add_argument(
        "--iters", type=int, default=1, metavar="N",
        help="training iterations per explored schedule (default: 1)",
    )
    parser.add_argument(
        "--preemptions", type=int, default=2, metavar="N",
        help="CHESS preemption bound (default: 2)",
    )
    parser.add_argument(
        "--max-runs", type=int, default=DEFAULT_MAX_RUNS, metavar="N",
        help="schedule budget per configuration; exceeding it is the "
             f"SY104 warning (default: {DEFAULT_MAX_RUNS})",
    )
    parser.add_argument(
        "--static-only", action="store_true",
        help="run only the static sync-protocol lint (SY001-SY006)",
    )
    parser.add_argument(
        "--skip-certify", action="store_true",
        help="skip the seeded-defect certification (SY201/SY202)",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write every dynamic verdict's replayable schedule trace "
             "to FILE as JSON",
    )
    parser.add_argument(
        "--replay", metavar="FILE", default=None,
        help="re-execute the schedule traces in FILE deterministically "
             "and report faithfulness (no exploration)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the full machine-readable report as JSON",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="exit nonzero on any ERROR finding",
    )
    args = parser.parse_args(argv)

    if args.batch < 1:
        parser.error(f"--batch must be >= 1, got {args.batch}")
    if args.iters < 1:
        parser.error(f"--iters must be >= 1, got {args.iters}")
    if args.preemptions < 0:
        parser.error(
            f"--preemptions must be >= 0, got {args.preemptions}"
        )
    if args.max_runs < 1:
        parser.error(f"--max-runs must be >= 1, got {args.max_runs}")

    if args.replay:
        with open(args.replay, encoding="utf-8") as fh:
            payload = json.load(fh)
        traces = payload.get("traces", [payload])
        ok = True
        results = []
        for i, trace in enumerate(traces):
            faithful, record = replay_trace(trace)
            ok = ok and faithful
            results.append({
                "trace": i, "faithful": faithful,
                "status": record.status,
                "steps": len(record.schedule),
            })
            if not args.as_json:
                print(f"trace {i}: {record.status} after "
                      f"{len(record.schedule)} steps, replay "
                      f"{'faithful' if faithful else 'BROKEN'}")
        if args.as_json:
            print(json.dumps({"ok": ok, "replays": results}, indent=2))
        return 0 if ok or not args.gate else 1

    report = run_synccheck(
        nets=args.net or list(DEFAULT_NETS),
        threads=args.threads,
        mode=args.mode,
        batch=args.batch,
        iters=args.iters,
        preemptions=args.preemptions,
        max_runs=args.max_runs,
        static_only=args.static_only,
        certify=not args.skip_certify,
    )

    if args.trace:
        with open(args.trace, "w", encoding="utf-8") as fh:
            json.dump({"traces": report.traces}, fh, indent=2)

    if args.as_json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        for line in report.summary_lines():
            print(line)

    if args.gate and not report.ok:
        return 1
    return 0


def perfcheck_main(argv) -> int:
    from repro.analysis.perfcheck import (
        DEFAULT_ITERS,
        DEFAULT_NETS,
        DEFAULT_THREADS,
        DEFAULT_TOLERANCE,
        DEFAULT_WARMUP,
        run_perfcheck,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis perfcheck",
        description="Performance certifier: static performance-bug "
                    "lint over chunk-reachable layer code and the "
                    "core/compiler sources (PE001-PE005), roofline "
                    "classification against the cost model "
                    "(PE101/PE102), and wall-clock calibration of "
                    "CPUModel.layer_time with a per-layer-type "
                    "residual gate (PE201-PE203).",
    )
    parser.add_argument(
        "--net", action="append", default=[], metavar="NAME",
        help="zoo network to certify (repeatable; default: "
             f"{', '.join(DEFAULT_NETS)})",
    )
    parser.add_argument(
        "--threads", type=_parse_threads,
        default=list(DEFAULT_THREADS), metavar="N,N,...",
        help="team sizes to classify and calibrate at (default: "
             f"{','.join(map(str, DEFAULT_THREADS))})",
    )
    parser.add_argument(
        "--iters", type=int, default=DEFAULT_ITERS, metavar="N",
        help="timed iterations per (net, team) for the median "
             f"(default: {DEFAULT_ITERS})",
    )
    parser.add_argument(
        "--warmup", type=int, default=DEFAULT_WARMUP, metavar="N",
        help="untimed warmup iterations per configuration "
             f"(default: {DEFAULT_WARMUP})",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        metavar="X",
        help="PE201 band half-width: a per-(type, pass) geomean "
             "residual outside [1/X, X] after scale normalization "
             f"fails the gate (default: {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--static-only", action="store_true",
        help="run the PE lint and roofline classifier but skip the "
             "wall-clock calibration",
    )
    parser.add_argument(
        "--timing-warn-only", action="store_true",
        help="demote PE201 calibration drift to WARNING (for hosts "
             "where wall-clock gating would flake)",
    )
    parser.add_argument(
        "--bench-out", default=None, metavar="PATH",
        help="write the calibration run as a repro-bench/1 envelope "
             "(e.g. BENCH_perf.json); requires the timing pass",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the full machine-readable report as JSON",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="exit nonzero if any ERROR finding is present",
    )
    args = parser.parse_args(argv)

    if args.iters < 1:
        parser.error(f"--iters must be >= 1, got {args.iters}")
    if args.warmup < 0:
        parser.error(f"--warmup must be >= 0, got {args.warmup}")
    if args.tolerance <= 1.0:
        parser.error(f"--tolerance must be > 1, got {args.tolerance}")
    if args.bench_out and args.static_only:
        parser.error("--bench-out needs the timing pass; drop "
                     "--static-only")

    report = run_perfcheck(
        nets=args.net or DEFAULT_NETS,
        threads=args.threads,
        iters=args.iters,
        warmup=args.warmup,
        tolerance=args.tolerance,
        static_only=args.static_only,
        timing_warn_only=args.timing_warn_only,
        log=lambda msg: print(msg, file=sys.stderr),
    )

    if args.bench_out and report.timing_ran:
        from repro.bench.schema import dump_bench, envelope

        doc = envelope(kind="perf", timer=report.timer,
                       nets=report.bench_nets)
        dump_bench(doc, args.bench_out)
        print(f"calibration written to {args.bench_out}",
              file=sys.stderr)

    if args.as_json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        for line in report.summary_lines():
            print(line)

    if args.gate and not report.ok:
        return 1
    return 0


def servecheck_main(argv) -> int:
    from repro.analysis.servecheck import (
        DEFAULT_NETS,
        DEFAULT_REQUESTS,
        DEFAULT_THREADS,
        run_servecheck,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis servecheck",
        description="Serving certifier: static serve-path lint "
                    "(SV001-SV005) plus deterministic healthy + chaos "
                    "trace replays per (net, team width) gating on zero "
                    "lost / zero duplicated responses, bitwise output "
                    "parity with sequential Net.forward, and the coded "
                    "degradation protocol (SV101-SV105).",
    )
    parser.add_argument(
        "--net", action="append", default=[], metavar="NAME",
        help="zoo network to certify serving for (repeatable; default: "
             f"{', '.join(DEFAULT_NETS)})",
    )
    parser.add_argument(
        "--threads", type=_parse_threads,
        default=list(DEFAULT_THREADS), metavar="N,N,...",
        help="team widths to certify at (default: "
             f"{','.join(map(str, DEFAULT_THREADS))})",
    )
    parser.add_argument(
        "--requests", type=int, default=DEFAULT_REQUESTS, metavar="N",
        help="trace length per replay (default: "
             f"{DEFAULT_REQUESTS}; the chaos storm adds more)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="trace seed (default: 0)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="save the generated request trace as repro-trace/1 JSON",
    )
    parser.add_argument(
        "--static-only", action="store_true",
        help="run only the static serve-path lint (SV001-SV005)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the full machine-readable report as JSON",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="exit nonzero on any ERROR finding",
    )
    args = parser.parse_args(argv)

    if args.requests < 3:
        parser.error(f"--requests must be >= 3, got {args.requests}")

    report = run_servecheck(
        nets=args.net or DEFAULT_NETS,
        threads=args.threads,
        requests=args.requests,
        seed=args.seed,
        static_only=args.static_only,
        trace_out=args.trace_out,
    )

    if args.as_json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        for line in report.summary_lines():
            print(line)

    if args.gate and not report.ok:
        return 1
    return 0


def _zoo_factory(name: str, batch: int) -> Callable[[], object]:
    def build():
        from repro.data import register_default_sources
        from repro.framework.net import Net
        from repro.zoo.build import _SPECS

        register_default_sources()
        if name not in _SPECS:
            raise SystemExit(
                f"unknown zoo net {name!r}; available: "
                f"{', '.join(sorted(_SPECS))}"
            )
        spec = _SPECS[name][0]()
        for layer_spec in spec.layers:
            if "batch_size" in layer_spec.params:
                layer_spec.params["batch_size"] = batch
        return Net(spec, phase="TRAIN")
    return build


def _prototxt_factory(path: str) -> Callable[[], object]:
    def build():
        from repro.data import register_default_sources
        from repro.framework.net import Net
        from repro.framework.prototxt import parse_prototxt

        register_default_sources()
        with open(path) as fh:
            return Net(parse_prototxt(fh.read()), phase="TRAIN")
    return build


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if "--list-codes" in argv:
        from repro.analysis.codes import catalogue_lines

        for line in catalogue_lines():
            print(line)
        return 0
    if argv and argv[0] == "netcheck":
        return netcheck_main(argv[1:])
    if argv and argv[0] == "detcheck":
        return detcheck_main(argv[1:])
    if argv and argv[0] == "rescheck":
        return rescheck_main(argv[1:])
    if argv and argv[0] == "plancheck":
        return plancheck_main(argv[1:])
    if "--check-codes" in argv:
        from repro.analysis.codes import check_code_drift

        unregistered, unreferenced = check_code_drift()
        for code in unregistered:
            print(f"DRIFT {code}: emitted by an analyzer but missing "
                  "from the catalogue")
        for code in unreferenced:
            print(f"DRIFT {code}: registered in the catalogue but no "
                  "analyzer source mentions it")
        if unregistered or unreferenced:
            return 1
        print("codes: catalogue and analyzer sources agree")
        return 0
    if argv and argv[0] == "fusecheck":
        return fusecheck_main(argv[1:])
    if argv and argv[0] == "synccheck":
        return synccheck_main(argv[1:])
    if argv and argv[0] == "perfcheck":
        return perfcheck_main(argv[1:])
    if argv and argv[0] == "servecheck":
        return servecheck_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static + dynamic parallel-safety analysis of the "
                    "coarse-grain runtime and its layers.",
    )
    parser.add_argument(
        "--net", action="append", default=[], metavar="NAME",
        help="zoo network to race-check (repeatable; e.g. lenet, cifar10)",
    )
    parser.add_argument(
        "--prototxt", action="append", default=[], metavar="FILE",
        help="user prototxt to race-check (repeatable)",
    )
    parser.add_argument(
        "--threads", type=_parse_threads, default=[1, 2, 8],
        metavar="N,N,...",
        help="simulated thread counts for the dynamic pass "
             "(default: 1,2,8)",
    )
    parser.add_argument(
        "--batch", type=int, default=4, metavar="N",
        help="shrink data-layer batch sizes to N for the dynamic replay "
             "(default: 4; the race check is batch-size independent)",
    )
    parser.add_argument(
        "--static-only", action="store_true",
        help="skip the dynamic pass entirely",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the full machine-readable report as JSON",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="exit nonzero if any ERROR finding or race was detected",
    )
    args = parser.parse_args(argv)

    if args.batch < 1:
        parser.error(f"--batch must be >= 1, got {args.batch}")

    nets: List[Tuple[str, Callable[[], object]]] = []
    if not args.static_only:
        names = args.net or ([] if args.prototxt else ["lenet"])
        for name in names:
            nets.append((name, _zoo_factory(name, args.batch)))
        for path in args.prototxt:
            nets.append((path, _prototxt_factory(path)))

    report = run_analysis(nets=nets, threads=args.threads)

    if args.as_json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        for line in report.summary_lines():
            print(line)

    if args.gate and not report.ok:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
