"""Serving certifier: static serve-path lint + dynamic chaos replay.

The tenth analyzer family (SV codes) certifies :mod:`repro.serve` the
house way — a static pass that must hold for *all* inputs, and a
dynamic pass that replays concrete chaos and demands exact outcomes.

**Static (SV001-SV005)** — an AST lint over the serve package:

* SV001  bounded-queue discipline: the only sanctioned queue is
  :class:`repro.serve.admission.BoundedDeque` (rejects loudly at
  capacity).  ``queue.Queue`` (grows without bound) and
  ``deque(maxlen=...)`` (drops silently from the far end) are flagged;
  a bare ``deque()`` is allowed only inside BoundedDeque itself.
* SV002  unbounded blocking: ``.wait()`` / ``.join()`` calls with no
  timeout argument.
* SV003  synccheck's SY001-SY006 lock rules re-applied to the serve
  sources (:func:`repro.analysis.synclint.lint_sync` with the serve
  package as the corpus root).
* SV004  wall-clock reads (``time`` / ``datetime``) anywhere except
  ``clock.py`` — the detcheck DC discipline applied to serving:
  deadlines must replay in virtual time.
* SV005  swallowed exceptions: bare ``except:`` or a handler whose
  body is a lone ``pass`` — a fault must become a coded response.

**Dynamic (SV101-SV105)** — a deterministic trace replayed twice per
(net, team-width) configuration on a :class:`ManualClock`:

* *healthy* — no faults; every request must come back ``ok`` (SV104
  guards the declared deadline budget) and every output must equal the
  direct sequential ``Net.forward`` of the identical staged batch,
  bitwise (SV103).
* *chaos* — a :class:`FaultPlan` injects a worker crash
  (:class:`ChunkAbort`), a straggler (:class:`SlowChunk`), a poisoned
  NaN sample (:class:`PoisonSample`) and an overload burst
  (:class:`RequestStorm`), plus a mid-trace hot reload from a
  checkpoint of the same weights.  The gate: zero lost (SV101), zero
  duplicated (SV102) responses; the poisoned request quarantined with a
  code while its batch-mates stay bit-exact; at least one team
  restart actually exercised.

CLI: ``python -m repro.analysis servecheck --net lenet --threads 1,2
--gate`` (also ``--json``, ``--static-only``, ``--requests N``,
``--trace-out FILE`` to save the replayed trace).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.codes import CODE_CATALOGUE
from repro.analysis.report import ERROR, Finding
from repro.analysis.synclint import lint_sync

DEFAULT_NETS = ("lenet", "mlp")
DEFAULT_THREADS = (1, 2, 8)
#: Requests per certification replay (CI default; the acceptance-level
#: 1k-request run lives in repro.tools.bench_serve).
DEFAULT_REQUESTS = 60

#: The one module allowed to touch the real clock.
_CLOCK_MODULE = "clock.py"
#: Wall-clock attribute reads flagged by SV004.
_WALL_CLOCK_ATTRS = {
    "time", "monotonic", "perf_counter", "process_time", "sleep",
    "monotonic_ns", "perf_counter_ns", "time_ns", "now", "utcnow", "today",
}
_WALL_CLOCK_MODULES = {"time", "datetime"}
#: Unbounded-queue constructors flagged by SV001.
_QUEUE_CTORS = {"Queue", "LifoQueue", "PriorityQueue", "SimpleQueue"}
#: Blocking methods needing a timeout (SV002).
_BLOCKING_METHODS = {"wait", "join"}


def _finding(code: str, layer: str, message: str,
             location: str = "") -> Finding:
    pass_name, severity, _ = CODE_CATALOGUE[code]
    return Finding(rule=code, severity=severity, layer=layer,
                   message=message, location=location)


def serve_package_root() -> Path:
    import repro.serve

    return Path(repro.serve.__file__).parent


# ---------------------------------------------------------------------------
# static lint (SV001-SV005)
# ---------------------------------------------------------------------------
def _enclosing_classes(tree: ast.Module) -> Dict[int, str]:
    """lineno -> class name, for every line inside a class body."""
    spans: Dict[int, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            end = getattr(node, "end_lineno", node.lineno)
            for line in range(node.lineno, end + 1):
                spans.setdefault(line, node.name)
    return spans


def _lint_module(path: Path, rel: str) -> List[Finding]:
    findings: List[Finding] = []
    try:
        tree = ast.parse(path.read_text())
    except (OSError, SyntaxError) as exc:
        findings.append(_finding(
            "SV005", rel, f"serve module failed to parse: {exc}",
            str(path),
        ))
        return findings
    classes = _enclosing_classes(tree)
    is_clock = path.name == _CLOCK_MODULE

    for node in ast.walk(tree):
        # -- SV004: wall-clock reads -----------------------------------
        if not is_clock:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                names = ([a.name for a in node.names]
                         if isinstance(node, ast.Import)
                         else [node.module or ""])
                for name in names:
                    if name.split(".")[0] in _WALL_CLOCK_MODULES:
                        findings.append(_finding(
                            "SV004", rel,
                            f"imports {name!r}: only {_CLOCK_MODULE} may "
                            "touch the real clock; take a Clock instance",
                            f"{path}:{node.lineno}",
                        ))
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in _WALL_CLOCK_MODULES
                    and node.attr in _WALL_CLOCK_ATTRS):
                findings.append(_finding(
                    "SV004", rel,
                    f"wall-clock read {node.value.id}.{node.attr}: "
                    "deadlines must flow through the injected Clock",
                    f"{path}:{node.lineno}",
                ))

        # -- SV001: queue discipline -----------------------------------
        if isinstance(node, ast.Call):
            func = node.func
            ctor = (func.attr if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else "")
            if ctor in _QUEUE_CTORS:
                findings.append(_finding(
                    "SV001", rel,
                    f"{ctor}() constructed in the serve path: unbounded "
                    "growth under overload; use BoundedDeque (coded "
                    "rejection at capacity)",
                    f"{path}:{node.lineno}",
                ))
            elif ctor == "deque":
                has_maxlen = any(kw.arg == "maxlen" for kw in node.keywords)
                inside = classes.get(node.lineno, "")
                if has_maxlen:
                    findings.append(_finding(
                        "SV001", rel,
                        "deque(maxlen=...) in the serve path drops "
                        "silently from the far end at capacity; use "
                        "BoundedDeque (coded rejection)",
                        f"{path}:{node.lineno}",
                    ))
                elif inside != "BoundedDeque":
                    findings.append(_finding(
                        "SV001", rel,
                        "bare deque() outside BoundedDeque: every serve "
                        "queue must enforce a capacity with coded "
                        "rejection",
                        f"{path}:{node.lineno}",
                    ))

            # -- SV002: blocking without a bound -----------------------
            if (isinstance(func, ast.Attribute)
                    and func.attr in _BLOCKING_METHODS
                    and not node.args
                    and not any(kw.arg == "timeout"
                                for kw in node.keywords)):
                findings.append(_finding(
                    "SV002", rel,
                    f".{func.attr}() with no timeout: a stalled peer "
                    "freezes the serving thread forever; every wait in "
                    "the serve path must be bounded",
                    f"{path}:{node.lineno}",
                ))

        # -- SV005: swallowed exceptions -------------------------------
        if isinstance(node, ast.ExceptHandler):
            if node.type is None:
                findings.append(_finding(
                    "SV005", rel,
                    "bare except: catches everything (including "
                    "KeyboardInterrupt) and hides the fault class; "
                    "catch Exception and answer with a coded response",
                    f"{path}:{node.lineno}",
                ))
            elif (len(node.body) == 1
                    and isinstance(node.body[0], ast.Pass)):
                findings.append(_finding(
                    "SV005", rel,
                    "except-pass: the fault vanishes instead of "
                    "becoming a coded response or a counter",
                    f"{path}:{node.lineno}",
                ))
    return findings


def lint_serve(root: Optional[Path] = None) -> List[Finding]:
    """The full SV001-SV005 static pass over the serve package."""
    root = Path(root) if root is not None else serve_package_root()
    findings: List[Finding] = []
    files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
    for path in files:
        rel = os.path.relpath(str(path), str(root.parent))
        findings.extend(_lint_module(path, rel))
    # SV003: synccheck's lock rules with the serve package as corpus.
    for sy in lint_sync(roots=[root]):
        findings.append(_finding(
            "SV003", sy.layer,
            f"[{sy.rule}] {sy.message}",
            sy.location,
        ))
    return findings


# ---------------------------------------------------------------------------
# dynamic certification (SV101-SV105)
# ---------------------------------------------------------------------------
@dataclass
class ReplayOutcome:
    """Everything one replay produced, for auditing."""

    net: str
    threads: int
    regime: str                     # "healthy" | "chaos"
    budget: float = 0.5             # uniform trace latency budget
    submitted: List[str] = field(default_factory=list)
    deliveries: Dict[str, List] = field(default_factory=dict)
    status_counts: Dict[str, int] = field(default_factory=dict)
    restarts: int = 0
    reloads: int = 0
    shed: int = 0
    duplicates_suppressed: int = 0
    batches: int = 0

    def to_json(self) -> dict:
        return {
            "net": self.net, "threads": self.threads,
            "regime": self.regime, "requests": len(self.submitted),
            "status_counts": dict(self.status_counts),
            "restarts": self.restarts, "reloads": self.reloads,
            "shed": self.shed, "batches": self.batches,
            "duplicates_suppressed": self.duplicates_suppressed,
        }


def _sequential_reference(net_name: str, max_batch: int):
    """A fresh sequential net with staged sources, for parity replay."""
    from repro.serve.engine import (
        _resolve_output_blob,
        _swap_in_staged_sources,
    )
    from repro.zoo.build import build_net

    net = build_net(net_name, phase="TEST")
    staged = _swap_in_staged_sources(net, max_batch)
    output = _resolve_output_blob(net, None)
    return net, staged, output


def _audit_replay(
    outcome: ReplayOutcome,
    engine,
    net_name: str,
    healthy: bool,
) -> List[Finding]:
    """SV101-SV104 over one replay's deliveries and batch log."""
    findings: List[Finding] = []
    where = f"{net_name}/t={outcome.threads}/{outcome.regime}"

    lost = [rid for rid in outcome.submitted
            if rid not in outcome.deliveries]
    if lost:
        findings.append(_finding(
            "SV101", where,
            f"{len(lost)} of {len(outcome.submitted)} requests got no "
            f"response (first: {lost[:3]})",
        ))
    dup = {rid: len(rs) for rid, rs in outcome.deliveries.items()
           if len(rs) > 1}
    if dup:
        findings.append(_finding(
            "SV102", where,
            f"{len(dup)} request(s) answered more than once: "
            f"{sorted(dup.items())[:3]}",
        ))

    # Late 'ok' responses are a protocol bug in any regime: the server
    # must demote them to coded timeouts.  The trace uses one uniform
    # budget, so each request's deadline reconstructs as submitted_at +
    # budget, and submitted_at = completed_at - latency.
    late_ok = [
        resp for responses in outcome.deliveries.values()
        for resp in responses[:1]
        if resp.status == "ok"
        and resp.completed_at > (resp.completed_at - resp.latency
                                 + outcome.budget)
    ]
    if late_ok:
        findings.append(_finding(
            "SV104", where,
            f"{len(late_ok)} 'ok' response(s) delivered after their "
            "deadline instead of being demoted to coded timeouts",
        ))
    if healthy:
        non_ok = {status: count
                  for status, count in outcome.status_counts.items()
                  if status != "ok"}
        if non_ok:
            findings.append(_finding(
                "SV104", where,
                "healthy replay must serve every request within its "
                f"budget, got {non_ok}",
            ))

    # SV103: bitwise parity of every served batch vs sequential forward.
    ref_net, ref_staged, ref_output = _sequential_reference(
        net_name, engine.max_batch
    )
    mismatches = 0
    first = None
    for record in engine.batch_log:
        for source in ref_staged:
            source.stage(record.images)
        ref_net.forward()
        ref_rows = np.array(ref_output.data, copy=True)
        for row, rid in enumerate(record.request_ids):
            if rid is None or rid not in outcome.deliveries:
                continue
            resp = outcome.deliveries[rid][0]
            if resp.status != "ok":
                continue
            if not np.array_equal(resp.output, ref_rows[row]):
                mismatches += 1
                if first is None:
                    first = (record.batch_index, row, rid)
    if mismatches:
        findings.append(_finding(
            "SV103", where,
            f"{mismatches} served output(s) differ bitwise from "
            f"sequential Net.forward (first: batch {first[0]} row "
            f"{first[1]} request {first[2]!r})",
        ))
    return findings


def certify_config(
    net_name: str,
    threads: int,
    requests: int = DEFAULT_REQUESTS,
    seed: int = 0,
    plan=None,
    max_batch: int = 4,
    max_delay: float = 0.004,
    capacity: int = 16,
    budget: float = 0.5,
    trace_out: Optional[str] = None,
) -> Tuple[List[Finding], List[ReplayOutcome]]:
    """Healthy + chaos replays for one (net, team width)."""
    import tempfile

    from repro.resilience.faults import (
        ChunkAbort,
        FaultPlan,
        PoisonSample,
        RequestStorm,
        SlowChunk,
    )
    from repro.serve.chaos import chaos
    from repro.serve.clock import ManualClock
    from repro.serve.engine import InferenceEngine
    from repro.serve.server import InferenceServer
    from repro.serve.trace import RequestTrace, replay_trace
    from repro.zoo.build import build_net

    findings: List[Finding] = []
    outcomes: List[ReplayOutcome] = []

    def run_replay(regime: str) -> Tuple[ReplayOutcome, object]:
        clock = ManualClock()
        engine = InferenceEngine(
            lambda: build_net(net_name, phase="TEST"),
            num_threads=threads, max_batch=max_batch, clock=clock,
            backoff_s=0.001,
        )
        outcome = ReplayOutcome(net=net_name, threads=threads,
                                regime=regime, budget=budget)

        def record(resp) -> None:
            outcome.deliveries.setdefault(resp.request_id, []).append(resp)

        server = InferenceServer(
            engine, capacity=capacity, max_delay=max_delay,
            on_deliver=record,
        )
        trace = RequestTrace.generate(
            requests, engine.sample_shape, seed=seed, budget=budget,
        )
        if trace_out and regime == "healthy":
            trace.save(trace_out)
        try:
            if regime == "healthy":
                outcome.submitted = replay_trace(server, trace)
            else:
                # The chaos script: crash batch 1, straggle batch 3,
                # poison one mid-trace request, storm past capacity at
                # two-thirds, and hot-reload same-weights mid-trace.
                target_layer = _first_parallel_layer(engine.net)
                plan_ = plan if plan is not None else FaultPlan(
                    ChunkAbort(layer=target_layer, iteration=1),
                    SlowChunk(layer=target_layer, batch=3,
                              delay_s=min(0.05, budget / 4)),
                    PoisonSample(request=requests // 3),
                    RequestStorm(at_request=(2 * requests) // 3,
                                 count=capacity + max_batch),
                )
                with tempfile.TemporaryDirectory() as tmp:
                    snapshot = os.path.join(tmp, "weights.npz")
                    engine.net.save(snapshot)
                    hooks = {
                        requests // 2: lambda: server.reload(snapshot),
                    }
                    with chaos(engine, plan_) as harness:
                        outcome.submitted = replay_trace(
                            server, trace, chaos=harness, hooks=hooks,
                        )
        finally:
            stats = server.stats()
            outcome.status_counts = {
                status: count
                for status, count in stats["delivered"].items()
            }
            outcome.restarts = stats["engine_restarts"]
            outcome.reloads = stats["engine_reloads"]
            outcome.shed = stats["shed"]
            outcome.batches = stats["batches_served"]
            outcome.duplicates_suppressed = stats["duplicates_suppressed"]
        return outcome, engine

    for regime in ("healthy", "chaos"):
        outcome, engine = run_replay(regime)
        outcomes.append(outcome)
        try:
            findings.extend(_audit_replay(
                outcome, engine, net_name, healthy=(regime == "healthy"),
            ))
            if regime == "chaos":
                where = f"{net_name}/t={threads}/chaos"
                if plan is None:
                    poisoned_id = f"t{seed}-{requests // 3}"
                    poisoned = outcome.deliveries.get(poisoned_id, [])
                    if not poisoned or \
                            poisoned[0].status != "quarantined-input":
                        got = (poisoned[0].status if poisoned
                               else "nothing")
                        findings.append(_finding(
                            "SV104", where,
                            f"poisoned request {poisoned_id!r} was not "
                            f"quarantined with a coded response "
                            f"(got {got})",
                        ))
                if plan is None and outcome.restarts < 1:
                    findings.append(_finding(
                        "SV104", where,
                        "injected worker crash never exercised a team "
                        "restart (the recovery path went untested)",
                    ))
                findings.append(_finding(
                    "SV105", where,
                    f"chaos replay: {len(outcome.submitted)} requests, "
                    f"statuses {dict(sorted(outcome.status_counts.items()))}, "
                    f"{outcome.restarts} restart(s), "
                    f"{outcome.reloads} reload(s), {outcome.shed} shed, "
                    f"{outcome.duplicates_suppressed} duplicate(s) "
                    "suppressed",
                ))
        finally:
            engine.close()
    return findings, outcomes


def _first_parallel_layer(net) -> str:
    """The chaos target: the first layer with learnable parameters
    (conv/fc — guaranteed chunked across worker threads)."""
    for layer in net.layers:
        if layer.blobs:
            return layer.name
    return net.layer_names[-1]


# ---------------------------------------------------------------------------
# report + driver
# ---------------------------------------------------------------------------
@dataclass
class ServecheckReport:
    findings: List[Finding] = field(default_factory=list)
    replays: List[ReplayOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(f.severity == ERROR for f in self.findings)

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "findings": [f.to_json() for f in self.findings],
            "replays": [r.to_json() for r in self.replays],
        }

    def summary_lines(self) -> List[str]:
        lines = []
        for f in self.findings:
            loc = f" [{f.location}]" if f.location else ""
            lines.append(
                f"{f.rule} {f.severity:<7} {f.layer}: {f.message}{loc}"
            )
        for r in self.replays:
            lines.append(
                f"-- {r.net} t={r.threads} {r.regime}: "
                f"{len(r.submitted)} requests, "
                f"{dict(sorted(r.status_counts.items()))}, "
                f"{r.restarts} restart(s), {r.batches} batch(es)"
            )
        lines.append(
            "servecheck: OK" if self.ok else "servecheck: FINDINGS"
        )
        return lines


def run_servecheck(
    nets: Sequence[str] = DEFAULT_NETS,
    threads: Sequence[int] = DEFAULT_THREADS,
    requests: int = DEFAULT_REQUESTS,
    seed: int = 0,
    static_only: bool = False,
    trace_out: Optional[str] = None,
) -> ServecheckReport:
    """The full servecheck pass: static lint, then per-config replays."""
    report = ServecheckReport()
    report.findings.extend(lint_serve())
    if static_only:
        return report
    for net_name in nets:
        for team in threads:
            findings, outcomes = certify_config(
                net_name, team, requests=requests, seed=seed,
                trace_out=trace_out,
            )
            report.findings.extend(findings)
            report.replays.extend(outcomes)
    return report
