"""Performance certifier: PE static lint, roofline classifier, and
cost-model calibration (the ninth analyzer family).

The paper's coarse-grain claim is a *performance* claim, and the planner
(PL) optimizes against :class:`~repro.simulator.cpu_model.CPUModel` —
so two things need certifying that no correctness gate covers: the
source stays free of the anti-patterns that eat the planned speedups,
and the cost model keeps predicting the machine it runs on.  Three
passes:

* **Static lint (PE001-PE005)** — :mod:`repro.analysis.perflint`:
  float64 upcast creep, hot-loop allocations, contiguity copies, and
  iteration-space-sized Python loops in chunk-reachable code, checked
  against each layer's declared
  :class:`~repro.framework.layer.PerfDecl` allow-list.
* **Roofline classifier (PE101/PE102)** — from
  :func:`~repro.simulator.cost_model.net_costs` and the CPU model:
  per-layer arithmetic intensity and compute- vs bandwidth-bound
  classification at each thread count.  PE101 (INFO) surfaces layers
  whose *planned* thread width exceeds the DRAM bandwidth saturation
  width — the point where an extra thread buys <10% more bandwidth —
  while the layer is DRAM-bound, i.e. threads the planner spent that
  the memory system cannot feed.  PE102 (INFO) flags layers whose
  modelled time is majority per-segment dispatch (granularity-limited).
* **Calibration certifier (PE201-PE203)** — times every zoo layer
  fwd/bwd through :class:`~repro.core.trace.TracingExecutor` at each
  thread count (median-of-k, BLAS pools pinned), compares against
  ``CPUModel.layer_times``, and gates on drift.  Absolute microseconds
  are host-specific — the model is calibrated to the paper's Xeon, the
  measuring container is whatever CI hands us — so a global scale
  (geometric mean of measured/predicted over all quiet layers) absorbs
  the host difference, and the gate checks the *per-layer-type
  residuals* around that scale: the model's job here is ranking layers
  and thread counts for the planner, which survives a uniform rescale
  but not a per-type bias.  PE201 (ERROR) fires when a (type, pass)
  geomean residual leaves the tolerance band; PE203 (WARNING) marks
  measurements too noisy to use (MAD/median above 0.5, or under the
  noise floor); PE202 (INFO) summarizes each fit.

The calibration run is written to ``BENCH_perf.json`` in the
``repro-bench/1`` envelope (:mod:`repro.bench.schema`) so CI can diff
successive runs on the same host.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.perflint import lint_perf
from repro.analysis.report import ERROR, INFO, WARNING, Finding

DEFAULT_NETS = ("lenet", "cifar10", "mlp")
DEFAULT_THREADS = (1, 2, 8)
DEFAULT_ITERS = 3
DEFAULT_WARMUP = 1

#: Band half-width for PE201: a (type, pass) geomean residual outside
#: [1/tol, tol] of the fitted global scale fails the gate.  Python-level
#: per-type overheads differ (a numpy pooling plane walk and a BLAS gemm
#: sit at different distances from the model's C-like efficiency
#: assumptions), so the band is wide; what it refuses is a *systematic*
#: per-type bias large enough to invert the planner's layer ranking.
DEFAULT_TOLERANCE = 8.0

#: Layers measured below this are timer noise on any host; they never
#: enter the scale fit or the gate (they stay in the report).
NOISE_FLOOR_US = 50.0

#: MAD/median above this marks a measurement unstable (PE203).
NOISY_MAD_RATIO = 0.5

#: Marginal DRAM bandwidth gain per extra thread below which the
#: saturation width is reached (PE101's threshold).
SATURATION_GAIN = 1.10

#: Dispatch share of modelled layer time above which PE102 calls the
#: layer dispatch-bound.
DISPATCH_SHARE = 0.5


# ---------------------------------------------------------------------------
# roofline classifier (PE101 / PE102)
# ---------------------------------------------------------------------------
@dataclass
class RooflineRow:
    """One layer pass's roofline classification across thread counts."""

    key: str
    layer_type: str
    flops: float
    bytes: float
    intensity: float          # flops per byte
    per_threads: Dict[int, Dict[str, object]] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "key": self.key,
            "type": self.layer_type,
            "flops": self.flops,
            "bytes": self.bytes,
            "intensity": round(self.intensity, 3),
            "threads": {str(t): dict(v)
                        for t, v in sorted(self.per_threads.items())},
        }


def dram_saturation_width(model, max_threads: Optional[int] = None) -> int:
    """Smallest width past which an extra thread buys <10% bandwidth.

    Scanned over the modelled machine's full core count regardless of
    the tested thread range — saturation is a machine property.
    """
    if max_threads is None:
        max_threads = model.params.cores
    max_threads = max(max_threads, 2)
    prev = model.dram_bandwidth(1)
    for t in range(2, max_threads + 1):
        bw = model.dram_bandwidth(t)
        if bw < prev * SATURATION_GAIN:
            return t - 1
        prev = bw
    return max_threads


def _classify(model, cost, width: int) -> Dict[str, object]:
    """Compute- vs bandwidth-bound verdict of one pass at ``width``."""
    p = model.params
    serial_compute = cost.flops / model.op_rate(cost.type)
    if cost.serial or width <= 1:
        mem = (cost.bytes / p.serial_bw_bytes_per_us if cost.serial
               else model.memory_time(cost.bytes, 1))
        bound = "bandwidth" if mem > serial_compute else "compute"
        return {"width": 1, "bound": bound, "path": "serial",
                "compute_us": round(serial_compute, 1),
                "memory_us": round(mem, 1)}
    used = min(width, max(cost.space, 1))
    imbalance = model._imbalance(cost.space, used)
    cores = min(model.effective_cores(used), used)
    compute = serial_compute / cores * imbalance
    mem = model.memory_time(cost.bytes, used)
    per_thread = cost.bytes / used
    path = ("cache" if per_thread <= p.cache_resident_bytes else "dram")
    return {"width": used,
            "bound": "bandwidth" if mem > compute else "compute",
            "path": path,
            "compute_us": round(compute, 1),
            "memory_us": round(mem, 1)}


def roofline_net(
    name: str,
    threads: Sequence[int],
    model,
) -> Tuple[List[RooflineRow], List[Finding]]:
    """Roofline rows + PE101/PE102 findings for one zoo net."""
    from repro.analysis.plancheck import plan_spec
    from repro.data import register_default_sources
    from repro.simulator.cost_model import spec_costs
    from repro.zoo.build import _SPECS

    register_default_sources()
    spec_fn = _SPECS[name][0]
    costs = spec_costs(spec_fn())
    sat = dram_saturation_width(model)

    rows: Dict[str, RooflineRow] = {}
    findings: List[Finding] = []
    for team in sorted(set(threads)):
        plan = plan_spec(spec_fn(), net_name=name, threads=team).plan
        for cost in costs:
            row = rows.get(cost.key)
            if row is None:
                row = rows[cost.key] = RooflineRow(
                    key=cost.key, layer_type=cost.type, flops=cost.flops,
                    bytes=cost.bytes,
                    intensity=(cost.flops / cost.bytes if cost.bytes
                               else math.inf),
                )
            layer_name = cost.key.rsplit(".", 1)[0]
            planned = plan.layers.get(layer_name) if plan else None
            width = planned.threads if planned else min(
                team, max(cost.space, 1))
            verdict = _classify(model, cost, width)
            row.per_threads[team] = verdict
            if (verdict["bound"] == "bandwidth"
                    and verdict.get("path") == "dram"
                    and verdict["width"] > sat):
                findings.append(Finding(
                    rule="PE101", severity=INFO, layer=f"{name}:{cost.key}",
                    message=(
                        f"planned width {verdict['width']} at T={team} "
                        f"exceeds the DRAM saturation width {sat} while "
                        "the pass is bandwidth-bound "
                        f"({verdict['memory_us']}us memory vs "
                        f"{verdict['compute_us']}us compute); the extra "
                        "threads wait on memory the planner's locality "
                        "term already prices"
                    ),
                ))
            if verdict["width"] > 1:
                total = model.layer_time(cost, width)
                dispatch = (cost.segments * model.params.dispatch_us
                            / verdict["width"])
                if total > 0 and dispatch / total > DISPATCH_SHARE:
                    findings.append(Finding(
                        rule="PE102", severity=INFO,
                        layer=f"{name}:{cost.key}",
                        message=(
                            f"per-segment dispatch is "
                            f"{dispatch / total:.0%} of the modelled "
                            f"{total:.1f}us at T={team}: the pass is "
                            "granularity-limited, not compute-limited"
                        ),
                    ))
    return list(rows.values()), findings


# ---------------------------------------------------------------------------
# calibration certifier (PE201 / PE202 / PE203)
# ---------------------------------------------------------------------------
def _geomean(values: Sequence[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _measure_net(
    name: str, team: int, iters: int, warmup: int
) -> Tuple[Dict[str, List[float]], object]:
    """Per-(layer, pass) microsecond samples over ``iters`` iterations.

    Returns ``(samples, net)`` — the net is reused for cost extraction
    so predictions see the measured batch geometry.
    """
    from repro.core import ParallelExecutor, TracingExecutor
    from repro.framework.solvers.base import SequentialExecutor
    from repro.zoo import build_net

    net = build_net(name)
    if team > 1:
        inner = ParallelExecutor(num_threads=team, reduction="blockwise")
    else:
        inner = SequentialExecutor()
    tracer = TracingExecutor(inner)
    samples: Dict[str, List[float]] = {}
    try:
        for _ in range(max(warmup, 0)):
            net.clear_param_diffs()
            tracer.forward(net)
            tracer.backward(net)
        for _ in range(max(iters, 1)):
            tracer.trace.clear()
            net.clear_param_diffs()
            tracer.forward(net)
            tracer.backward(net)
            for (layer, pass_), secs in tracer.trace.totals().items():
                suffix = "fwd" if pass_ == "forward" else "bwd"
                samples.setdefault(f"{layer}.{suffix}", []).append(secs * 1e6)
    finally:
        if isinstance(inner, ParallelExecutor):
            inner.close()
    return samples, net


def calibrate_net(
    name: str,
    threads: Sequence[int],
    iters: int,
    warmup: int,
    model,
    residual_pool: Dict[Tuple[str, str], List[float]],
) -> Tuple[Dict[str, object], List[Finding]]:
    """Measure one net at every team size; returns (BENCH entry, findings).

    Per-type residuals are appended to ``residual_pool`` so the PE201
    gate aggregates across every net before judging a layer type.
    """
    from repro.simulator import net_costs

    findings: List[Finding] = []
    per_team: Dict[str, object] = {}
    batch = None
    for team in threads:
        samples, net = _measure_net(name, team, iters, warmup)
        if net.tops and net.tops[0]:
            batch = net.tops[0][0].shape[0]
        costs = list(net_costs(net))
        predicted = model.layer_times(costs, team)
        kinds = {c.key: (c.type, c.pass_) for c in costs}

        records: Dict[str, Dict[str, object]] = {}
        fit: List[Tuple[str, float, float]] = []  # (key, measured, predicted)
        for key in sorted(samples):
            values = samples[key]
            med = statistics.median(values)
            mad = statistics.median([abs(v - med) for v in values])
            pred = predicted.get(key)
            noisy = (med <= 0 or (len(values) > 1 and mad / med
                                  > NOISY_MAD_RATIO))
            quiet = (not noisy and med >= NOISE_FLOOR_US
                     and pred is not None and pred > 0)
            records[key] = {
                "measured_us": round(med, 1),
                "mad_us": round(mad, 1),
                "predicted_us": (None if pred is None else round(pred, 1)),
                "residual": None,
                "noisy": not quiet,
            }
            if quiet:
                fit.append((key, med, pred))
            elif noisy and med >= NOISE_FLOOR_US:
                findings.append(Finding(
                    rule="PE203", severity=WARNING,
                    layer=f"{name}:{key}",
                    message=(
                        f"unstable measurement at T={team}: median "
                        f"{med:.1f}us with MAD {mad:.1f}us over {iters} "
                        "iterations; excluded from the calibration fit"
                    ),
                ))

        scale = _geomean([m / p for _, m, p in fit]) if fit else 1.0
        residuals = []
        for key, measured, pred in fit:
            residual = (measured / pred) / scale
            records[key]["residual"] = round(residual, 3)
            residuals.append(residual)
            kind = kinds.get(key)
            if kind is not None:
                residual_pool.setdefault(kind, []).append(residual)
        spread = (f"[{min(residuals):.2f}, {max(residuals):.2f}]"
                  if residuals else "[]")
        findings.append(Finding(
            rule="PE202", severity=INFO, layer=name,
            message=(
                f"T={team}: host/model scale {scale:.2f}x over "
                f"{len(fit)} quiet layer passes, residual spread {spread}"
            ),
        ))
        per_team[str(team)] = {"scale": round(scale, 4), "layers": records}

    entry = {"iters": iters, "warmup": warmup, "threads": per_team}
    if batch is not None:
        entry["batch"] = int(batch)
    return entry, findings


def judge_residuals(
    residual_pool: Dict[Tuple[str, str], List[float]],
    tolerance: float,
    severity: str = ERROR,
) -> Tuple[Dict[str, float], List[Finding]]:
    """PE201 over the pooled per-(type, pass) residuals."""
    findings: List[Finding] = []
    summary: Dict[str, float] = {}
    for (layer_type, pass_), residuals in sorted(residual_pool.items()):
        geo = _geomean(residuals)
        summary[f"{layer_type}.{pass_}"] = round(geo, 3)
        if geo > tolerance or geo < 1.0 / tolerance:
            findings.append(Finding(
                rule="PE201", severity=severity,
                layer=f"{layer_type}.{pass_}",
                message=(
                    f"calibration drift: measured/predicted residual "
                    f"{geo:.2f}x (geomean over {len(residuals)} "
                    f"measurements) outside the [{1.0 / tolerance:.3f}, "
                    f"{tolerance:.1f}] tolerance band; recalibrate "
                    "op_efficiency for this layer type or investigate "
                    "the regression"
                ),
            ))
    return summary, findings


# ---------------------------------------------------------------------------
# the combined report
# ---------------------------------------------------------------------------
@dataclass
class PerfReport:
    """Static lint + roofline + calibration for a set of zoo nets."""

    nets: Tuple[str, ...]
    threads: Tuple[int, ...]
    static_findings: List[Finding] = field(default_factory=list)
    roofline: Dict[str, List[RooflineRow]] = field(default_factory=dict)
    saturation_width: int = 0
    calibration_findings: List[Finding] = field(default_factory=list)
    type_residuals: Dict[str, float] = field(default_factory=dict)
    bench_nets: Dict[str, object] = field(default_factory=dict)
    timing_ran: bool = False
    timer: Optional[Dict[str, object]] = None

    @property
    def findings(self) -> List[Finding]:
        return list(self.static_findings) + list(self.calibration_findings)

    @property
    def ok(self) -> bool:
        return not any(f.severity == ERROR for f in self.findings)

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "nets": list(self.nets),
            "threads": list(self.threads),
            "saturation_width": self.saturation_width,
            "static_findings": [f.to_json() for f in self.static_findings],
            "roofline": {
                name: [row.to_json() for row in rows]
                for name, rows in sorted(self.roofline.items())
            },
            "type_residuals": dict(sorted(self.type_residuals.items())),
            "timing_ran": self.timing_ran,
            "findings": [f.to_json() for f in self.calibration_findings],
        }

    def summary_lines(self) -> List[str]:
        lines = [
            f"perfcheck: nets={','.join(self.nets)} "
            f"threads={','.join(str(t) for t in self.threads)}"
        ]
        lines.append(
            f"  static lint: {len(self.static_findings)} finding(s)"
        )
        for f in self.static_findings:
            lines.append(f"    {f.rule} [{f.severity}] {f.layer}: "
                         f"{f.message}")
        lines.append(
            f"  roofline: DRAM saturation width {self.saturation_width}"
        )
        for name, rows in sorted(self.roofline.items()):
            bound_at_max = sum(
                1 for row in rows
                if row.per_threads.get(max(self.threads), {}).get("bound")
                == "bandwidth"
            )
            lines.append(
                f"    {name}: {len(rows)} passes, {bound_at_max} "
                f"bandwidth-bound at T={max(self.threads)}"
            )
        if self.timing_ran:
            lines.append("  calibration:")
            for key, value in sorted(self.type_residuals.items()):
                lines.append(f"    residual {key}: {value:.2f}x")
        else:
            lines.append("  calibration: skipped (--static-only)")
        for f in self.calibration_findings:
            lines.append(f"  {f.rule} [{f.severity}] {f.layer}: {f.message}")
        verdict = "OK" if self.ok else "FAILED"
        lines.append(f"  perfcheck verdict: {verdict}")
        return lines


def run_perfcheck(
    nets: Sequence[str] = DEFAULT_NETS,
    threads: Sequence[int] = DEFAULT_THREADS,
    iters: int = DEFAULT_ITERS,
    warmup: int = DEFAULT_WARMUP,
    tolerance: float = DEFAULT_TOLERANCE,
    static_only: bool = False,
    timing_warn_only: bool = False,
    model=None,
    log=lambda msg: None,
) -> PerfReport:
    """The full perfcheck pass over the given zoo nets."""
    from repro.bench.pinning import pin_blas_threads

    blas = pin_blas_threads()
    if model is None:
        from repro.simulator import CPUModel

        model = CPUModel()

    report = PerfReport(nets=tuple(nets), threads=tuple(threads))
    log("perfcheck: static PE lint ...")
    report.static_findings = lint_perf()

    report.saturation_width = dram_saturation_width(model)
    for name in nets:
        log(f"perfcheck: roofline {name} ...")
        rows, findings = roofline_net(name, threads, model)
        report.roofline[name] = rows
        report.calibration_findings.extend(findings)

    if not static_only:
        residual_pool: Dict[Tuple[str, str], List[float]] = {}
        for name in nets:
            log(f"perfcheck: calibrating {name} at "
                f"T={','.join(str(t) for t in threads)} "
                f"(iters={iters}, warmup={warmup}) ...")
            entry, findings = calibrate_net(
                name, threads, iters, warmup, model, residual_pool,
            )
            report.bench_nets[name] = entry
            report.calibration_findings.extend(findings)
        severity = WARNING if timing_warn_only else ERROR
        residual_summary, drift = judge_residuals(
            residual_pool, tolerance, severity)
        report.type_residuals = residual_summary
        report.calibration_findings.extend(drift)
        report.timing_ran = True
        report.timer = {"iters": iters, "warmup": warmup,
                        "clock": "perf_counter", "blas": blas}
    return report
