"""plancheck: static per-layer auto-parallelization planner + plan linter.

The paper parallelizes every layer identically; PaSE and the "hidden
dimensions" line of work show per-layer strategies win.  This pass
searches, **from a NetSpec alone** (no execution), a per-layer execution
strategy for a given team size:

* how many leading coalesced dims to distribute (the rest fold into a
  chunk *granularity*, so chunk boundaries stay on whole inner blocks);
* how many threads the layer uses (1 = inline on the master, no
  parallel region at all);
* the loop schedule (static — the deterministic family the tiers need);
* the gradient reduction mode, restricted to modes whose invariance
  tier is at least the *claimed* tier of the whole plan.

Candidates are priced by the simulator's cost oracle
(:func:`repro.simulator.cost_model.spec_costs` for the geometry —
structurally identical to ``net_costs`` — and
:meth:`repro.simulator.cpu_model.CPUModel.plan_layer_time` for the
time).  Because a producer/consumer thread-width mismatch costs input
re-fetches, per-layer choices couple along the net DAG; the search is a
Viterbi-style dynamic program over the layer chain whose state is the
layer's thread width, with two branch-and-bound prunes:

* **dominance** — among candidates of one layer with the same thread
  width, only the cheapest (coalesce depth x reduction mode) survives;
  exact, because the DAG coupling depends on widths only;
* **bound** — a width is dropped when its standalone lower bound
  exceeds the cheapest width's standalone time plus an upper bound on
  the locality it could ever save (2x the serial-producer penalty).

The uniform strategy (every layer at the full team width) is always a
search point, so the planned prediction is never worse than uniform by
construction — PL005 guards the invariant anyway.

Findings are PL-coded (catalogued in :mod:`repro.analysis.codes`):
PL001-PL006 lint the plan statically, PL101-PL104 surface executor/plan
drift at load time (via :func:`repro.core.plan.plan_drift`), and
PL201/PL202 come from the dynamic certification that a planned run
delivers the plan's claimed invariance tier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import ERROR, INFO, WARNING, Finding
from repro.core.plan import ExecutionPlan, LayerPlan, plan_drift
from repro.core.reduction import (
    BITWISE_INVARIANT,
    DETERMINISTIC_PER_T,
    NONDETERMINISTIC,
    REDUCTION_MODES,
    TIER_ORDER,
    invariance_tier,
)
from repro.framework.net_spec import NetSpec
from repro.framework.shape_inference import ShapeError
from repro.framework.symbolic import infer_net
from repro.simulator.cost_model import LayerCost, spec_costs
from repro.simulator.cpu_model import CPUModel

#: PL006 fires when a layer's predicted static imbalance exceeds this.
IMBALANCE_THRESHOLD = 0.20

#: Cheapest reduction mode delivering each claimable tier (the uniform
#: baseline's mode, and the planner's default pick per tier).
_TIER_BASE_MODE = {
    BITWISE_INVARIANT: "blockwise",
    DETERMINISTIC_PER_T: "ordered",
    NONDETERMINISTIC: "atomic",
}

#: Maximum coalesce depth the planner explores (dims beyond this fold
#: into the granularity; matches the paper's S x D1 x D2 nesting).
MAX_COALESCE_DEPTH = 3


# ---------------------------------------------------------------------------
# per-layer search nodes
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Candidate:
    """One per-layer strategy the search prices."""

    threads: int
    coalesced: int      # leading dims distributed
    granularity: int    # native civ iterations per schedulable unit
    units: int          # schedulable units = ceil(space / granularity)
    reduction: Optional[str]


@dataclass
class _Node:
    """One layer of the search chain."""

    name: str
    type: str
    space: int
    dims: Tuple[Tuple[str, int], ...]
    fwd: LayerCost
    bwd: Optional[LayerCost]
    candidates: List[Candidate] = field(default_factory=list)
    considered: int = 0
    pruned: int = 0


def _product(values) -> int:
    out = 1
    for v in values:
        out *= v
    return out


def derive_dims(
    type_name: str,
    bottom_shape: Sequence[int],
    cost: LayerCost,
) -> Tuple[Tuple[str, int], ...]:
    """Factor a layer's coalesced iteration space into named dims.

    The factorization mirrors what each layer's chunk protocol actually
    coalesces (sample for conv/ip/lrn/loss, sample x channel for
    pooling, sample x channel x spatial for element-wise layers); when
    the product does not reproduce the costed space the single opaque
    ``iteration`` dim is used — never a wrong factorization.
    """
    space = cost.space
    if cost.serial:
        return (("serial", space),)
    t = type_name.lower()
    dims: Tuple[Tuple[str, int], ...]
    if t == "pooling" and len(bottom_shape) >= 2:
        dims = (("sample", bottom_shape[0]), ("channel", bottom_shape[1]))
    elif cost.dist == "element":
        if len(bottom_shape) == 4:
            dims = (
                ("sample", bottom_shape[0]),
                ("channel", bottom_shape[1]),
                ("spatial", bottom_shape[2] * bottom_shape[3]),
            )
        elif len(bottom_shape) == 2:
            dims = (("sample", bottom_shape[0]), ("channel", bottom_shape[1]))
        else:
            dims = (("element", space),)
    elif cost.dist == "sample":
        dims = (("sample", space),)
    elif cost.dist == "sample-channel" and len(bottom_shape) >= 2:
        dims = (("sample", bottom_shape[0]), ("channel", bottom_shape[1]))
    else:
        dims = (("iteration", space),)
    if _product(extent for _, extent in dims) != space:
        dims = (("iteration", space),)
    return dims


def thread_widths(team: int) -> List[int]:
    """Candidate thread widths: 1, powers of two below the team, team."""
    widths = {1, team}
    width = 2
    while width < team:
        widths.add(width)
        width *= 2
    return sorted(widths)


def _allowed_modes(claim: str) -> List[str]:
    rank = TIER_ORDER[claim]
    return [
        mode for mode in REDUCTION_MODES
        if TIER_ORDER[invariance_tier(mode, True)] >= rank
    ]


def _enumerate_candidates(node: _Node, team: int, claim: str) -> List[Candidate]:
    if node.fwd.serial:
        return [Candidate(1, len(node.dims), 1, node.space, None)]
    extents = [extent for _, extent in node.dims]
    has_reduction = node.bwd is not None and node.bwd.reduction_bytes > 0
    modes = _allowed_modes(claim) if has_reduction else [None]
    out = [Candidate(1, 1, _product(extents[1:]), extents[0], None)]
    max_depth = min(len(extents), MAX_COALESCE_DEPTH)
    for width in thread_widths(team):
        if width <= 1:
            continue
        for depth in range(1, max_depth + 1):
            units = _product(extents[:depth])
            granularity = _product(extents[depth:])
            if width > units:
                continue  # more threads than schedulable units
            for mode in modes:
                out.append(Candidate(width, depth, granularity, units, mode))
    return out


# ---------------------------------------------------------------------------
# pricing (the cost oracle)
# ---------------------------------------------------------------------------
class _Oracle:
    """Prices candidates with :meth:`CPUModel.plan_layer_time`."""

    def __init__(self, model: CPUModel, team: int) -> None:
        self.model = model
        self.team = team

    def _space_override(
        self, cost: LayerCost, cand: Candidate, node: _Node
    ) -> Optional[int]:
        # The granularity was derived against the forward space; only
        # apply it to passes that coalesce the same space.
        if cost.space == node.space and cand.granularity > 1:
            return cand.units
        return None

    def fwd_time(
        self,
        node: _Node,
        cand: Candidate,
        producer: Optional[str] = None,
        producer_threads: Optional[int] = None,
    ) -> float:
        return self.model.plan_layer_time(
            node.fwd, cand.threads,
            team_threads=self.team,
            space=self._space_override(node.fwd, cand, node),
            producer=producer, producer_threads=producer_threads,
        )

    def bwd_time(
        self,
        node: _Node,
        cand: Candidate,
        producer: Optional[str] = None,
        producer_threads: Optional[int] = None,
    ) -> float:
        if node.bwd is None:
            return 0.0
        return self.model.plan_layer_time(
            node.bwd, cand.threads,
            team_threads=self.team,
            space=self._space_override(node.bwd, cand, node),
            reduction_mode=cand.reduction,
            block_count=node.bwd.space,
            producer=producer, producer_threads=producer_threads,
        )

    def standalone(self, node: _Node, cand: Candidate) -> float:
        return self.fwd_time(node, cand) + self.bwd_time(node, cand)

    def locality_bound(self, node: _Node, cand: Candidate) -> float:
        """Upper bound on locality either pass could ever pay.

        The serial-producer penalty moves ``miss * (1 - 1/t)`` of the
        input; the worst width mismatch moves at most ``miss`` — less
        than twice that for any t >= 2 — so 2x the serial-producer
        delta bounds it.
        """
        if cand.threads <= 1:
            return 0.0
        extra = (
            self.fwd_time(node, cand, producer="serial")
            - self.fwd_time(node, cand)
        )
        extra += (
            self.bwd_time(node, cand, producer="serial")
            - self.bwd_time(node, cand)
        )
        return 2.0 * extra


def _prune(node: _Node, oracle: _Oracle, team: int) -> None:
    """Dominance + bound pruning (see module docstring)."""
    node.considered = len(node.candidates)
    by_width: Dict[int, Tuple[float, Candidate]] = {}
    for cand in node.candidates:
        time = oracle.standalone(node, cand)
        best = by_width.get(cand.threads)
        if best is None or time < best[0]:
            by_width[cand.threads] = (time, cand)
    bound = min(
        time + oracle.locality_bound(node, cand)
        for time, cand in by_width.values()
    )
    kept = [
        cand for width, (time, cand) in sorted(by_width.items())
        if time <= bound or width in (1, team)
    ]
    node.pruned = node.considered - len(kept)
    node.candidates = kept


# ---------------------------------------------------------------------------
# the DP search
# ---------------------------------------------------------------------------
def _build_nodes(
    spec: NetSpec, phase: str, batch: Optional[int]
) -> List[_Node]:
    costs = spec_costs(spec, phase=phase, batch=batch)
    by_name: Dict[str, Dict[str, LayerCost]] = {}
    order: List[str] = []
    for cost in costs:
        if cost.name not in by_name:
            by_name[cost.name] = {}
            order.append(cost.name)
        by_name[cost.name][cost.pass_] = cost
    sym = infer_net(spec, phase=phase, batch=batch, strict=True)
    shapes: Dict[str, Sequence[int]] = {}
    types: Dict[str, str] = {}
    for inf in sym.layers:
        types.setdefault(inf.spec.name, inf.spec.type)
        if inf.bottoms:
            shapes.setdefault(inf.spec.name, inf.bottoms[0].shape)
    nodes = []
    for name in order:
        fwd = by_name[name]["forward"]
        bwd = by_name[name].get("backward")
        dims = derive_dims(types.get(name, fwd.type), shapes.get(name, ()), fwd)
        nodes.append(_Node(
            name=name, type=fwd.type, space=fwd.space, dims=dims,
            fwd=fwd, bwd=bwd,
        ))
    return nodes


def _search(
    nodes: List[_Node], oracle: _Oracle
) -> Tuple[List[Candidate], float]:
    """Viterbi DP over the layer chain; returns picks and total time."""
    INF = float("inf")
    # score[ci] = best total up to node j using candidate ci; back[j][ci]
    score = []
    back: List[List[int]] = []
    for j, node in enumerate(nodes):
        new_score = []
        new_back = []
        for cand in node.candidates:
            if j == 0:
                new_score.append(oracle.fwd_time(node, cand))
                new_back.append(-1)
                continue
            prev_node = nodes[j - 1]
            best, best_prev = INF, -1
            for pi, prev in enumerate(prev_node.candidates):
                total = (
                    score[pi]
                    + oracle.fwd_time(
                        node, cand,
                        producer=prev_node.fwd.dist,
                        producer_threads=prev.threads,
                    )
                    + oracle.bwd_time(
                        prev_node, prev,
                        producer=node.bwd.dist if node.bwd else None,
                        producer_threads=cand.threads,
                    )
                )
                if total < best:
                    best, best_prev = total, pi
            new_score.append(best)
            new_back.append(best_prev)
        score = new_score
        back.append(new_back)
    # close the chain: the last layer's backward has no upstream producer
    last = nodes[-1]
    best_ci, best_total = -1, INF
    for ci, cand in enumerate(last.candidates):
        total = score[ci] + oracle.bwd_time(last, cand)
        if total < best_total:
            best_total, best_ci = total, ci
    picks: List[Candidate] = []
    ci = best_ci
    for j in range(len(nodes) - 1, -1, -1):
        picks.append(nodes[j].candidates[ci])
        ci = back[j][ci]
    picks.reverse()
    return picks, best_total


def assignment_times(
    nodes: List[_Node], picks: List[Candidate], oracle: _Oracle
) -> Dict[str, float]:
    """Per-pass times of one fixed assignment, keyed like
    :meth:`CPUModel.layer_times` (``"<layer>.fwd"`` / ``".bwd"``)."""
    out: Dict[str, float] = {}
    for j, (node, cand) in enumerate(zip(nodes, picks)):
        if j == 0:
            out[node.fwd.key] = oracle.fwd_time(node, cand)
        else:
            prev_node, prev = nodes[j - 1], picks[j - 1]
            out[node.fwd.key] = oracle.fwd_time(
                node, cand,
                producer=prev_node.fwd.dist, producer_threads=prev.threads,
            )
        if node.bwd is not None:
            # Gradients flow from the next layer *with a backward pass*
            # (mirrors cost_model.producer_dist).
            k = j + 1
            while k < len(nodes) and nodes[k].bwd is None:
                k += 1
            nxt_node = nodes[k] if k < len(nodes) else None
            nxt = picks[k] if k < len(nodes) else None
            out[node.bwd.key] = oracle.bwd_time(
                node, cand,
                producer=nxt_node.bwd.dist if nxt_node is not None else None,
                producer_threads=nxt.threads if nxt is not None else None,
            )
    return out


def _chain_time(
    nodes: List[_Node], picks: List[Candidate], oracle: _Oracle
) -> float:
    """Total time of one fixed assignment, summed in cost order (fwd
    then bwd per layer) so it is bitwise comparable to
    :meth:`CPUModel.iteration_time` under the uniform assignment."""
    times = assignment_times(nodes, picks, oracle)
    total = 0.0
    for node in nodes:
        total += times[node.fwd.key]
        if node.bwd is not None:
            total += times[node.bwd.key]
    return total


def uniform_candidates(
    nodes: List[_Node], team: int, mode: Optional[str]
) -> List[Candidate]:
    """The paper's global strategy: every layer at the full team width."""
    picks = []
    for node in nodes:
        if node.fwd.serial:
            picks.append(Candidate(1, len(node.dims), 1, node.space, None))
        else:
            has_reduction = (
                node.bwd is not None and node.bwd.reduction_bytes > 0
            )
            picks.append(Candidate(
                team, len(node.dims), 1, node.space,
                mode if has_reduction else None,
            ))
    return picks


# ---------------------------------------------------------------------------
# lint (PL001-PL006) and drift (PL101-PL104)
# ---------------------------------------------------------------------------
def lint_plan(
    plan: ExecutionPlan, spec: Optional[NetSpec] = None, phase: str = "TRAIN"
) -> List[Finding]:
    """Static plan lint — machine-checkable like every repro artifact."""
    findings: List[Finding] = []
    if spec is not None:
        known = {s.name for s in spec.layers_for_phase(phase)}
        # split layers are inserted at net build time; accept their names
        for name in plan.layers:
            if name not in known and "_split" not in name:
                findings.append(Finding(
                    "PL001", ERROR, name,
                    f"plan references layer {name!r} which does not exist "
                    f"in net {plan.net!r} (phase {phase})",
                ))
    claim_rank = TIER_ORDER.get(plan.tier)
    if claim_rank is None:
        findings.append(Finding(
            "PL004", ERROR, "",
            f"plan claims unknown invariance tier {plan.tier!r}",
        ))
        claim_rank = 0
    for name, lp in plan.layers.items():
        extents = [extent for _, extent in lp.dims]
        if lp.dims:
            if lp.coalesced < 1 or lp.coalesced > len(extents):
                findings.append(Finding(
                    "PL002", ERROR, name,
                    f"coalesced depth {lp.coalesced} outside the layer's "
                    f"{len(extents)} declared dim(s)",
                ))
                continue
            if _product(extents) != lp.space:
                findings.append(Finding(
                    "PL002", ERROR, name,
                    f"declared dims {lp.dims} multiply to "
                    f"{_product(extents)} but the recorded iteration "
                    f"space is {lp.space}",
                ))
            if _product(extents[lp.coalesced:]) != lp.granularity:
                findings.append(Finding(
                    "PL002", ERROR, name,
                    f"granularity {lp.granularity} does not match the "
                    f"non-coalesced dims product "
                    f"{_product(extents[lp.coalesced:])}",
                ))
        units = -(-lp.space // lp.granularity) if lp.space else 0
        if lp.space and lp.threads > max(units, 1):
            findings.append(Finding(
                "PL003", ERROR, name,
                f"{lp.threads} threads exceed the chunkable extent "
                f"({units} unit(s) of granularity {lp.granularity} over "
                f"space {lp.space})",
            ))
        base_mode = _TIER_BASE_MODE[plan.tier] if claim_rank else "atomic"
        layer_rank = TIER_ORDER[lp.tier(base_mode, True)]
        if layer_rank < claim_rank:
            findings.append(Finding(
                "PL004", ERROR, name,
                f"reduction mode {lp.reduction!r} under schedule "
                f"{lp.schedule!r} delivers a weaker tier than the plan's "
                f"claimed {plan.tier!r}",
            ))
        if lp.space and lp.threads > 1 and units >= lp.threads:
            ideal = units / lp.threads
            busiest = -(-units // lp.threads)
            imbalance = busiest / ideal - 1.0
            if imbalance > IMBALANCE_THRESHOLD:
                findings.append(Finding(
                    "PL006", INFO, name,
                    f"predicted static imbalance {imbalance:.0%} exceeds "
                    f"{IMBALANCE_THRESHOLD:.0%} ({units} unit(s) over "
                    f"{lp.threads} threads: busiest {busiest} vs ideal "
                    f"{ideal:.1f})",
                ))
    if plan.uniform_us and plan.predicted_us > plan.uniform_us:
        findings.append(Finding(
            "PL005", WARNING, "",
            f"plan predicted {plan.predicted_us:.1f}us, slower than the "
            f"uniform baseline {plan.uniform_us:.1f}us",
        ))
    return findings


_DRIFT_SEVERITY = {
    "PL101": ERROR, "PL102": ERROR, "PL103": ERROR, "PL104": WARNING,
}


def drift_findings(plan: ExecutionPlan, net, num_threads: int) -> List[Finding]:
    """Wrap :func:`repro.core.plan.plan_drift` tuples into Findings."""
    return [
        Finding(code, _DRIFT_SEVERITY.get(code, ERROR), layer, message)
        for code, layer, message in plan_drift(plan, net, num_threads)
    ]


# ---------------------------------------------------------------------------
# report model
# ---------------------------------------------------------------------------
@dataclass
class NetPlanReport:
    """Planning result for one net at one team size."""

    net: str
    phase: str
    batch: Optional[int]
    threads: int
    claim: str
    plan: Optional[ExecutionPlan] = None
    findings: List[Finding] = field(default_factory=list)
    predicted_us: float = 0.0
    uniform_us: float = 0.0
    candidates_considered: int = 0
    candidates_pruned: int = 0

    @property
    def ok(self) -> bool:
        return not any(f.severity == ERROR for f in self.findings)

    @property
    def gate_ok(self) -> bool:
        """Gate contract: lint clean AND predicted >= uniform (PL005)."""
        return self.ok and not any(f.rule == "PL005" for f in self.findings)

    @property
    def predicted_speedup(self) -> float:
        if not self.predicted_us:
            return 0.0
        return self.uniform_us / self.predicted_us

    def to_json(self) -> dict:
        return {
            "net": self.net,
            "phase": self.phase,
            "batch": self.batch,
            "threads": self.threads,
            "claim": self.claim,
            "ok": self.ok,
            "gate_ok": self.gate_ok,
            "predicted_us": self.predicted_us,
            "uniform_us": self.uniform_us,
            "predicted_speedup": self.predicted_speedup,
            "candidates_considered": self.candidates_considered,
            "candidates_pruned": self.candidates_pruned,
            "plan": None if self.plan is None else self.plan.to_json(),
            "findings": [f.to_json() for f in self.findings],
        }

    def summary_lines(self) -> List[str]:
        status = "OK" if self.gate_ok else "VIOLATIONS"
        lines = [
            f"plancheck: net={self.net} phase={self.phase} "
            f"threads={self.threads} claim={self.claim} -> {status} "
            f"(planned {self.predicted_us:.0f}us vs uniform "
            f"{self.uniform_us:.0f}us, "
            f"{self.predicted_speedup:.2f}x predicted, "
            f"{self.candidates_pruned}/{self.candidates_considered} "
            f"candidates pruned)"
        ]
        if self.plan is not None:
            for name, lp in self.plan.layers.items():
                mode = lp.reduction or "-"
                lines.append(
                    f"  {name:<14} t={lp.threads:<2} g={lp.granularity:<6} "
                    f"{lp.schedule:<8} {mode:<9} space={lp.space}"
                )
        for finding in self.findings:
            lines.append(
                f"  [{finding.rule}/{finding.severity}] "
                f"{finding.layer or '<plan>'}: {finding.message}"
            )
        return lines


@dataclass
class PlancheckReport:
    """Top-level document: one entry per (net, team size)."""

    reports: List[NetPlanReport] = field(default_factory=list)

    @property
    def findings(self) -> List[Finding]:
        out: List[Finding] = []
        for report in self.reports:
            out.extend(report.findings)
        return out

    @property
    def ok(self) -> bool:
        return all(r.gate_ok for r in self.reports)

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "reports": [r.to_json() for r in self.reports],
        }

    def summary_lines(self) -> List[str]:
        lines: List[str] = []
        for report in self.reports:
            lines.extend(report.summary_lines())
        lines.append("verdict: " + ("OK" if self.ok else "VIOLATIONS FOUND"))
        return lines


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------
def plan_spec(
    spec: NetSpec,
    *,
    net_name: str = "",
    phase: str = "TRAIN",
    threads: int = 8,
    batch: Optional[int] = None,
    claim: str = BITWISE_INVARIANT,
    model: Optional[CPUModel] = None,
) -> NetPlanReport:
    """Plan one net at one team size; lint the result."""
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if claim not in TIER_ORDER:
        raise ValueError(
            f"unknown invariance tier {claim!r}; expected one of "
            f"{sorted(TIER_ORDER)}"
        )
    model = model or CPUModel()
    label = net_name or spec.name or "<anonymous>"
    report = NetPlanReport(
        net=label, phase=phase, batch=batch, threads=threads, claim=claim,
    )
    try:
        nodes = _build_nodes(spec, phase, batch)
    except (KeyError, ShapeError) as exc:
        report.findings.append(Finding(
            "PL001", ERROR, "",
            f"cannot plan {label!r}: {exc} (run netcheck for a full "
            "shape report)",
        ))
        return report
    if not nodes:
        report.findings.append(Finding(
            "PL001", ERROR, "",
            f"net {label!r} has no layers in phase {phase}",
        ))
        return report

    oracle = _Oracle(model, threads)
    for node in nodes:
        node.candidates = _enumerate_candidates(node, threads, claim)
        _prune(node, oracle, threads)
    report.candidates_considered = sum(n.considered for n in nodes)
    report.candidates_pruned = sum(n.pruned for n in nodes)

    picks, _ = _search(nodes, oracle)
    # Re-sum the winning assignment in cost order so predicted/uniform
    # totals are bitwise comparable to each other (and, under the
    # uniform assignment, to CPUModel.iteration_time).
    predicted = _chain_time(nodes, picks, oracle)
    base_mode = _TIER_BASE_MODE[claim]
    uniform = uniform_candidates(nodes, threads, base_mode)
    uniform_us = _chain_time(nodes, uniform, oracle)

    plan = ExecutionPlan(
        net=spec.name or label, batch=_batch_of(nodes, batch),
        team_threads=threads, tier=claim, phase=phase,
        predicted_us=predicted, uniform_us=uniform_us,
    )
    for node, cand in zip(nodes, picks):
        plan.add(LayerPlan(
            layer=node.name, threads=cand.threads,
            granularity=cand.granularity, schedule="static",
            reduction=cand.reduction, space=node.space,
            dims=node.dims, coalesced=cand.coalesced,
        ))
    report.plan = plan
    report.predicted_us = predicted
    report.uniform_us = uniform_us
    report.findings.extend(lint_plan(plan, spec, phase))
    return report


def _batch_of(nodes: List[_Node], batch: Optional[int]) -> int:
    if batch is not None:
        return batch
    for node in nodes:
        for dim_name, extent in node.dims:
            if dim_name == "sample":
                return extent
    return 0


def uniform_chain_time(
    spec: NetSpec,
    *,
    phase: str = "TRAIN",
    threads: int = 8,
    batch: Optional[int] = None,
    mode: str = "ordered",
    model: Optional[CPUModel] = None,
) -> float:
    """Price the uniform strategy through the planner's own chain walk.

    With ``mode="ordered"`` this must equal
    ``CPUModel.iteration_time(net_costs(net), threads)`` exactly — the
    cost-model parity regression asserts it for every zoo net.
    """
    model = model or CPUModel()
    nodes = _build_nodes(spec, phase, batch)
    oracle = _Oracle(model, threads)
    return _chain_time(nodes, uniform_candidates(nodes, threads, mode), oracle)


def certify_plan(
    net_name: str,
    *,
    threads: int = 8,
    claim: str = BITWISE_INVARIANT,
    iters: int = 2,
    batch: int = 4,
    model: Optional[CPUModel] = None,
) -> Tuple[List[Finding], Optional[ExecutionPlan]]:
    """Dynamically certify that a planned run delivers its claimed tier.

    Re-plans ``net_name`` at the certification batch size (so the plan's
    recorded spaces match the replayed net), then replays the planned
    configuration through the detcheck trajectory machinery:

    * claim ``bitwise_invariant`` — the planned trajectory must be
      bitwise equal to the **sequential** one (PL201 on violation);
    * claim ``deterministic_per_t`` — two planned runs must agree
      bitwise (PL201); divergence from the sequential run is reported
      as PL202 (info, within tier);
    * claim ``nondeterministic`` — nothing to certify.
    """
    from repro.analysis.detcheck import capture_trajectory, first_divergence
    from repro.zoo.build import _SPECS

    if net_name not in _SPECS:
        raise KeyError(f"unknown zoo net {net_name!r}")
    spec = _SPECS[net_name][0]()
    report = plan_spec(
        spec, net_name=net_name, threads=threads, batch=batch,
        claim=claim, model=model,
    )
    findings = [
        f for f in report.findings if f.severity == ERROR
    ]
    if findings or report.plan is None:
        return findings, report.plan
    plan = report.plan
    base_mode = _TIER_BASE_MODE[claim]
    planned = capture_trajectory(
        net_name, iters, batch=batch, threads=threads, mode=base_mode,
        plan=plan,
    )
    if claim == BITWISE_INVARIANT:
        sequential = capture_trajectory(net_name, iters, batch=batch)
        divergence = first_divergence(sequential, planned)
        if divergence is not None:
            findings.append(Finding(
                "PL201", ERROR, divergence.layer,
                f"planned run violates claimed tier {claim!r} vs the "
                f"sequential trajectory: {divergence.describe()}",
            ))
    elif claim == DETERMINISTIC_PER_T:
        replay = capture_trajectory(
            net_name, iters, batch=batch, threads=threads, mode=base_mode,
            plan=plan,
        )
        divergence = first_divergence(planned, replay)
        if divergence is not None:
            findings.append(Finding(
                "PL201", ERROR, divergence.layer,
                f"planned run violates claimed tier {claim!r}: two "
                f"replays diverge: {divergence.describe()}",
            ))
        sequential = capture_trajectory(net_name, iters, batch=batch)
        within = first_divergence(sequential, planned)
        if within is not None:
            findings.append(Finding(
                "PL202", INFO, within.layer,
                f"divergence from the sequential trajectory, within the "
                f"claimed tier: {within.describe()}",
            ))
    return findings, plan


def run_plancheck(
    nets: Sequence[str],
    threads: Sequence[int] = (1, 2, 8),
    batch: Optional[int] = None,
    claim: str = BITWISE_INVARIANT,
    certify: bool = False,
    certify_iters: int = 2,
    certify_batch: int = 4,
) -> PlancheckReport:
    """Plan + lint every requested zoo net at every team size."""
    from repro.zoo.build import _SPECS

    report = PlancheckReport()
    for name in nets:
        if name not in _SPECS:
            raise SystemExit(
                f"unknown zoo net {name!r}; available: "
                f"{', '.join(sorted(_SPECS))}"
            )
        spec_fn = _SPECS[name][0]
        for team in threads:
            net_report = plan_spec(
                spec_fn(), net_name=name, threads=team, batch=batch,
                claim=claim,
            )
            if certify and team > 1:
                certify_findings, _ = certify_plan(
                    name, threads=team, claim=claim,
                    iters=certify_iters, batch=certify_batch,
                )
                net_report.findings.extend(certify_findings)
            report.reports.append(net_report)
    return report
