"""Runtime-invariant lint: ordered-merge discipline in the executor.

The privatized-reduction protocol demands that every merge of a private
gradient buffer into the shared one (``add_into``) executed *inside a
parallel region* happens under mutual exclusion — wrapped in a lambda
handed to ``ctx.ordered(...)`` or ``ctx.critical(...)``.  A bare
``add_into`` in a region function is exactly the race the paper's
ordered/critical merge phases exist to prevent.

RT001 parses ``src/repro/core/parallel_net.py`` and checks, for every
nested function named ``region`` (the closures dispatched to worker
threads via ``team.parallel``), that each ``add_into`` call is
syntactically inside a ``lambda`` that is passed — directly, or through
a local name such as ``merge = lambda: ...`` — to ``ctx.ordered`` or
``ctx.critical``.  ``add_into`` calls outside region functions (the
master-only tree/blockwise merge loops) are exempt: they run after the
team has joined.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro.analysis.report import ERROR, Finding

_GUARD_ATTRS = {"ordered", "critical"}


def _parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _guarded_lambdas(region: ast.FunctionDef) -> Set[ast.Lambda]:
    """Lambdas inside ``region`` that flow into ctx.ordered/critical."""
    guarded: Set[ast.Lambda] = set()
    # names bound to lambdas: merge = lambda: ...
    lambda_names: Dict[str, ast.Lambda] = {}
    for node in ast.walk(region):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    lambda_names[target.id] = node.value
    for node in ast.walk(region):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _GUARD_ATTRS):
            continue
        for arg in node.args:
            if isinstance(arg, ast.Lambda):
                guarded.add(arg)
            elif isinstance(arg, ast.Name) and arg.id in lambda_names:
                guarded.add(lambda_names[arg.id])
    return guarded


def _enclosing_lambda(node: ast.AST,
                      parents: Dict[ast.AST, ast.AST],
                      stop: ast.AST) -> Optional[ast.Lambda]:
    cur = parents.get(node)
    while cur is not None and cur is not stop:
        if isinstance(cur, ast.Lambda):
            return cur
        cur = parents.get(cur)
    return None


def lint_runtime(source_path: Optional[str] = None) -> List[Finding]:
    """Run RT001 over the parallel executor source."""
    if source_path is None:
        import repro.core.parallel_net as pn
        source_path = pn.__file__
    path = Path(source_path)
    findings: List[Finding] = []
    try:
        tree = ast.parse(path.read_text())
    except (OSError, SyntaxError) as exc:
        findings.append(Finding(
            rule="RT001", severity=ERROR, layer="<runtime>",
            message=f"cannot parse {path}: {exc}",
        ))
        return findings

    parents = _parent_map(tree)
    for node in ast.walk(tree):
        if not (isinstance(node, ast.FunctionDef) and node.name == "region"):
            continue
        guarded = _guarded_lambdas(node)
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            name = (func.attr if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else None)
            if name != "add_into":
                continue
            lam = _enclosing_lambda(call, parents, stop=node)
            if lam is None or lam not in guarded:
                findings.append(Finding(
                    rule="RT001", severity=ERROR, layer="<runtime>",
                    message=(
                        "add_into at line "
                        f"{call.lineno} executes inside a parallel region "
                        "without ctx.ordered/ctx.critical protection; "
                        "concurrent merges into the shared gradient race"
                    ),
                    location=f"{path}:{call.lineno}",
                ))
    return findings
