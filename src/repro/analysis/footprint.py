"""Static write-footprint classification of layer chunk methods.

The coarse-grain runtime's safety contract is purely about *writes*: a
layer's ``forward_chunk``/``backward_chunk`` may touch only the blob
regions owned by its ``[lo, hi)`` iterations, and any cross-sample
coefficient accumulation must go through the privatized ``param_grads``
buffers.  This module checks that contract from the source: it parses a
layer class with :mod:`ast`, extracts every array write its chunk
methods perform (subscript assignment, ``np.copyto``, ufunc ``out=``,
``blaslib.gemm/gemv`` output operands, ``im2col/col2im`` ``out=``,
``np.add.at``, ``.fill``), resolves each write back to a *root*
(bottom/top blob data/diff, ``param_grads``, parameter blob diffs,
``self`` attributes, or freshly allocated locals), and decides whether
the write is *chunk-bounded* — confined to the ``[lo, hi)`` slice or to
an index drawn from ``range(lo, hi)``.

Classification per pass:

* all writes chunk-bounded (or private)        -> ``SAMPLE_DISJOINT``
* accumulation into ``param_grads``            -> ``REDUCTION``
* an unbounded write to a shared array         -> ``UNSAFE``
* a write the analyzer cannot resolve          -> ``UNKNOWN``

Classes overriding :meth:`backward_loops` are analyzed through the
``self._backward_*`` helper methods their loop bodies call (each helper
has its own ``lo``/``hi`` loop space), mirroring what the runtime
actually executes.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.framework.layer import (
    DECLARABLE_FOOTPRINTS,
    FootprintDecl,
    REDUCTION,
    SAMPLE_DISJOINT,
    SEQUENTIAL,
    UNKNOWN,
    UNSAFE,
)
from repro.analysis.report import ERROR, WARNING, Finding, LayerReport

#: Methods that constitute "defining your own chunk code": a class with
#: any of these in its own ``__dict__`` must also declare its footprint.
CHUNK_METHODS = ("forward_chunk", "backward_chunk", "backward_loops")

# Array-allocating numpy constructors whose results are chunk-private.
_FRESH_FUNCS = {
    "empty", "zeros", "ones", "full", "empty_like", "zeros_like",
    "ones_like", "full_like", "arange", "array", "asarray",
    "ascontiguousarray", "where", "clip", "sign", "exp", "log", "log1p",
    "sqrt", "power", "abs", "maximum", "minimum", "tanh", "prod",
}

# Module-level helpers returning thread-private storage: the scratch
# pool hands each worker thread its own buffer, so a pooled array is as
# chunk-private as a fresh np.empty.
_POOL_FUNCS = {"scratch_buffer"}

# Methods that return a *view* of their receiver (alias-preserving).
_VIEW_METHODS = {"reshape", "ravel", "view", "squeeze", "transpose"}
# Methods returning a copy (result is private).
_COPY_METHODS = {"astype", "copy", "flatten", "sum", "max", "min", "mean",
                 "argmax", "argmin", "argpartition", "argsort"}


# ----------------------------------------------------------------------
# symbolic values
# ----------------------------------------------------------------------
# A root is a tuple:
#   ("io", "bottom"|"top", index|"*", "data"|"diff")  blob contents
#   ("blob", "bottom"|"top", index|"*")               a Blob object
#   ("seq", "bottom"|"top"|"param_grads"|"blobs")     the sequence itself
#   ("param_grad", index|"*")                         privatized grad buf
#   ("param", index|"*", "data"|"diff")               parameter blob array
#   ("attr", name)                                    self.<name> array
#   ("self",)                                         the instance
#   ("local",)                                        freshly allocated
#   ("unknown",)                                      unresolvable

@dataclass(frozen=True)
class Val:
    root: Tuple
    bounded: bool = False


_LOCAL = Val(("local",))
_UNKNOWN = Val(("unknown",))


@dataclass
class WriteEvent:
    """One array write found in a chunk method."""

    root: Tuple
    bounded: bool
    lineno: int
    desc: str

    @property
    def kind(self) -> str:
        return self.root[0]


@dataclass
class MethodWrites:
    """All writes of one analyzed method."""

    name: str
    writes: List[WriteEvent] = field(default_factory=list)
    unresolved: List[WriteEvent] = field(default_factory=list)


class _ChunkVisitor(ast.NodeVisitor):
    """Walks one chunk-method body collecting write events.

    ``roles`` maps parameter names to symbolic roots (e.g. the second
    positional arg of ``forward_chunk`` is the bottom sequence); ``lo``
    and ``hi`` name the chunk bounds.
    """

    def __init__(self, func: ast.FunctionDef, roles: Dict[str, Val],
                 lo: Optional[str], hi: Optional[str]) -> None:
        self.env: Dict[str, Val] = dict(roles)
        self.lo = lo
        self.hi = hi
        self.bound_names: Set[str] = set()
        self.result = MethodWrites(func.name)
        self.self_calls: List[str] = []

    # -- resolution ----------------------------------------------------
    def resolve(self, node: ast.AST) -> Val:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, _UNKNOWN)
        if isinstance(node, ast.Subscript):
            base = self.resolve(node.value)
            bounded = self._slice_bounded(node.slice)
            if base.root[0] == "seq":
                index = self._const_index(node.slice)
                seq = base.root[1]
                if seq in ("bottom", "top"):
                    return Val(("blob", seq, index))
                if seq == "param_grads":
                    return Val(("param_grad", index))
                if seq == "blobs":
                    return Val(("blob_param", index))
                return _UNKNOWN
            if base.root[0] in ("io", "param_grad", "param", "attr",
                               "local"):
                return Val(base.root, base.bounded or bounded)
            return base if base.root[0] != "unknown" else _UNKNOWN
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            attr = node.attr
            if base.root[0] == "self":
                if attr == "blobs":
                    return Val(("seq", "blobs"))
                return Val(("attr", attr))
            if base.root[0] == "blob":
                _, io, index = base.root
                if attr in ("data", "flat_data"):
                    return Val(("io", io, index, "data"))
                if attr in ("diff", "flat_diff"):
                    return Val(("io", io, index, "diff"))
                return _UNKNOWN
            if base.root[0] == "blob_param":
                index = base.root[1]
                if attr in ("data", "flat_data"):
                    return Val(("param", index, "data"))
                if attr in ("diff", "flat_diff"):
                    return Val(("param", index, "diff"))
                return _UNKNOWN
            return _UNKNOWN
        if isinstance(node, ast.Call):
            return self._resolve_call(node)
        if isinstance(node, ast.IfExp):
            # `param_grads[1] if self.bias_term else None`: the write
            # target is whichever arm carries a shared root.
            body = self.resolve(node.body)
            if body.root[0] not in ("local", "unknown"):
                return body
            return self.resolve(node.orelse)
        if isinstance(node, (ast.BinOp, ast.UnaryOp, ast.Compare,
                             ast.ListComp, ast.GeneratorExp)):
            return _LOCAL
        if isinstance(node, ast.Constant):
            return _LOCAL
        if isinstance(node, ast.Tuple):
            return _LOCAL
        return _UNKNOWN

    def _resolve_call(self, node: ast.Call) -> Val:
        func = node.func
        if isinstance(func, ast.Attribute):
            recv = self.resolve(func.value)
            # numpy / module-level constructors and elementwise helpers
            if isinstance(func.value, ast.Name) and func.value.id in (
                "np", "numpy"
            ):
                if func.attr in _FRESH_FUNCS:
                    return _LOCAL
                return _UNKNOWN
            # self._view(x) and friends: view of the argument
            if recv.root[0] == "self":
                if func.attr == "_view" and node.args:
                    return self.resolve(node.args[0])
                return _UNKNOWN
            if func.attr in _VIEW_METHODS:
                return recv
            if func.attr in _COPY_METHODS:
                return _LOCAL
            return _UNKNOWN
        if isinstance(func, ast.Name) and func.id in _POOL_FUNCS:
            return _LOCAL
        return _UNKNOWN

    # -- chunk-boundedness --------------------------------------------
    def _expr_bounded(self, node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                if sub.id in (self.lo, self.hi):
                    return True
                if sub.id in self.bound_names:
                    return True
        return False

    def _slice_bounded(self, sl: ast.AST) -> bool:
        return self._expr_bounded(sl)

    def _const_index(self, sl: ast.AST):
        if isinstance(sl, ast.Constant) and isinstance(sl.value, int):
            return sl.value
        if (isinstance(sl, ast.UnaryOp) and isinstance(sl.op, ast.USub)
                and isinstance(sl.operand, ast.Constant)):
            return -sl.operand.value
        return "*"

    # -- write recording ----------------------------------------------
    def _record_write(self, target: ast.AST, lineno: int,
                      desc: str, extra_bounded: bool = False) -> None:
        val = self.resolve(target)
        bounded = val.bounded or extra_bounded
        if isinstance(target, ast.Subscript):
            bounded = bounded or self._slice_bounded(target.slice)
        if val.root[0] == "local":
            return  # private scratch: always safe
        if val.root[0] in ("unknown", "self", "seq", "blob", "blob_param"):
            self.result.unresolved.append(
                WriteEvent(("unknown",), bounded, lineno, desc)
            )
            return
        self.result.writes.append(WriteEvent(val.root, bounded, lineno, desc))

    # -- statement handling -------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        value = self.resolve(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.env[target.id] = value
            elif isinstance(target, ast.Subscript):
                self._record_write(target, node.lineno, "assignment")
            elif isinstance(target, ast.Attribute):
                # `self.x = ...` inside a chunk rebinds layer state:
                # every thread clobbers the same attribute.
                resolved = self.resolve(target)
                if resolved.root[0] == "attr":
                    self.result.writes.append(WriteEvent(
                        resolved.root, False, node.lineno,
                        "attribute rebind"
                    ))
            elif isinstance(target, ast.Tuple):
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        self.env[elt.id] = _UNKNOWN
                    elif isinstance(elt, ast.Subscript):
                        self._record_write(elt, node.lineno, "assignment")
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if isinstance(target, ast.Subscript):
            self._record_write(target, node.lineno, "accumulation")
        elif isinstance(target, ast.Attribute):
            # `self.blobs[0].flat_diff += ...`: accumulation into a
            # shared array reached through an attribute chain.
            self._record_write(target, node.lineno, "accumulation")
        elif isinstance(target, ast.Name):
            val = self.env.get(target.id)
            if val is not None and val.root[0] not in ("local", "unknown"):
                self.result.writes.append(
                    WriteEvent(val.root, val.bounded, node.lineno,
                               "accumulation")
                )
            elif val is None or val.root[0] == "unknown":
                self.result.unresolved.append(
                    WriteEvent(("unknown",), False, node.lineno,
                               "accumulation")
                )
        self.visit(node.value)

    def _element_of(self, seq_expr: ast.AST) -> Val:
        """Symbolic value of one element drawn from an iterated sequence."""
        val = self.resolve(seq_expr)
        if val.root[0] == "seq":
            if val.root[1] in ("bottom", "top"):
                return Val(("blob", val.root[1], "*"))
            if val.root[1] == "blobs":
                return Val(("blob_param", "*"))
            if val.root[1] == "param_grads":
                return Val(("param_grad", "*"))
        if val.root[0] == "local":
            return _LOCAL
        return _UNKNOWN

    def _bind_loop_target(self, target: ast.AST, iter_node: ast.AST) -> None:
        """Bind loop variable(s) to element values of the iterable —
        including ``zip(...)`` and ``enumerate(...)`` destructuring."""
        if isinstance(iter_node, ast.Call) and isinstance(
            iter_node.func, ast.Name
        ):
            fname = iter_node.func.id
            if (fname == "zip" and isinstance(target, ast.Tuple)
                    and len(target.elts) == len(iter_node.args)):
                for elt, arg in zip(target.elts, iter_node.args):
                    if isinstance(elt, ast.Name):
                        self.env[elt.id] = self._element_of(arg)
                    else:
                        self._bind_loop_target(elt, arg)
                return
            if (fname == "enumerate" and isinstance(target, ast.Tuple)
                    and len(target.elts) == 2 and iter_node.args):
                if isinstance(target.elts[0], ast.Name):
                    self.env[target.elts[0].id] = _LOCAL
                self._bind_loop_target(target.elts[1], iter_node.args[0])
                return
        if isinstance(target, ast.Name):
            self.env[target.id] = self._element_of(iter_node)
        elif isinstance(target, ast.Tuple):
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    self.env[elt.id] = _UNKNOWN

    def visit_For(self, node: ast.For) -> None:
        # range(lo, hi) loop variables index chunk-owned iterations
        if (isinstance(node.iter, ast.Call)
                and isinstance(node.iter.func, ast.Name)
                and node.iter.func.id == "range"
                and isinstance(node.target, ast.Name)):
            if self._expr_bounded(node.iter):
                self.bound_names.add(node.target.id)
            else:
                self.env.setdefault(node.target.id, _UNKNOWN)
        else:
            self._bind_loop_target(node.target, node.iter)
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            # np.copyto(dst, src)
            if (isinstance(func.value, ast.Name)
                    and func.value.id in ("np", "numpy")):
                if func.attr == "copyto" and node.args:
                    self._record_write(node.args[0], node.lineno,
                                       "np.copyto")
            # np.add.at(arr, idx, vals) / np.subtract.at ...
            if (isinstance(func.value, ast.Attribute)
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id in ("np", "numpy")
                    and func.attr == "at" and node.args):
                self._record_write(node.args[0], node.lineno, "ufunc.at")
            # blaslib.gemm(...)/gemv(...): last positional arg is output
            if (isinstance(func.value, ast.Name)
                    and func.value.id == "blaslib"):
                if func.attr in ("gemm", "gemv") and node.args:
                    self._record_write(node.args[-1], node.lineno,
                                       f"blaslib.{func.attr} output")
                # im2col/col2im write through out=
            # arr.fill(v)
            if func.attr == "fill":
                self._record_write(func.value, node.lineno, ".fill")
            # self._helper(...) calls (followed for backward_loops)
            if (isinstance(func.value, ast.Name)
                    and self.env.get(func.value.id, _UNKNOWN).root[0]
                    == "self"):
                self.self_calls.append(func.attr)
        # any call with an out= keyword writes through it
        for kw in node.keywords:
            if kw.arg == "out":
                self._record_write(kw.value, node.lineno, "out= operand")
        self.generic_visit(node)


def _method_roles(kind: str, func: ast.FunctionDef) -> Tuple[
    Dict[str, Val], Optional[str], Optional[str]
]:
    """Map a chunk method's parameters to symbolic roots."""
    params = [a.arg for a in func.args.args]
    roles: Dict[str, Val] = {}
    lo = hi = None
    if params:
        roles[params[0]] = Val(("self",))
    if kind == "forward_chunk" and len(params) >= 5:
        roles[params[1]] = Val(("seq", "bottom"))
        roles[params[2]] = Val(("seq", "top"))
        lo, hi = params[3], params[4]
    elif kind == "backward_chunk" and len(params) >= 7:
        roles[params[1]] = Val(("seq", "top"))
        roles[params[3]] = Val(("seq", "bottom"))
        lo, hi = params[4], params[5]
        roles[params[6]] = Val(("seq", "param_grads"))
    else:  # helper: go by name
        for name in params[1:]:
            if name == "bottom":
                roles[name] = Val(("seq", "bottom"))
            elif name == "top":
                roles[name] = Val(("seq", "top"))
            elif name == "param_grads" or name == "grads":
                roles[name] = Val(("seq", "param_grads"))
            elif name == "lo":
                lo = name
            elif name == "hi":
                hi = name
    return roles, lo, hi


def _parse_function(func) -> Optional[ast.FunctionDef]:
    try:
        src = textwrap.dedent(inspect.getsource(func))
        _, first_line = inspect.getsourcelines(func)
    except (OSError, TypeError):
        return None
    try:
        tree = ast.parse(src)
    except SyntaxError:
        return None
    # report file line numbers, not method-relative ones
    ast.increment_lineno(tree, first_line - 1)
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            return node
    return None


def analyze_method(func, kind: str) -> Optional[Tuple[MethodWrites,
                                                      List[str]]]:
    """Extract write events from one chunk method (or helper).

    Returns ``(writes, self_call_names)`` or ``None`` when the source is
    unavailable (builtins, C extensions).
    """
    node = _parse_function(func)
    if node is None:
        return None
    roles, lo, hi = _method_roles(kind, node)
    visitor = _ChunkVisitor(node, roles, lo, hi)
    for stmt in node.body:
        visitor.visit(stmt)
    return visitor.result, visitor.self_calls


def _classify(writes: Sequence[WriteEvent],
              unresolved: Sequence[WriteEvent]) -> Tuple[str, Set[int],
                                                         List[WriteEvent]]:
    """Classify one pass's writes.

    Returns ``(classification, reduction_indices, offending_writes)``.
    """
    reduction_indices: Set[int] = set()
    offending: List[WriteEvent] = []
    has_reduction = False
    for w in writes:
        if w.kind == "param_grad":
            has_reduction = True
            if isinstance(w.root[1], int):
                reduction_indices.add(w.root[1])
            continue
        if w.kind == "attr":
            continue  # judged against the scratch declaration separately
        if not w.bounded:
            offending.append(w)
    if offending:
        return UNSAFE, reduction_indices, offending
    if unresolved:
        return UNKNOWN, reduction_indices, list(unresolved)
    if has_reduction:
        return REDUCTION, reduction_indices, []
    return SAMPLE_DISJOINT, reduction_indices, []


def _location(cls, func) -> str:
    try:
        path = inspect.getsourcefile(func) or "?"
        _, line = inspect.getsourcelines(func)
        return f"{path}:{line}"
    except (OSError, TypeError):
        return cls.__name__


def analyze_layer_class(cls) -> LayerReport:
    """Run the static footprint pass over one layer class."""
    declared: Optional[FootprintDecl] = getattr(cls, "write_footprint", None)
    own_chunk_code = any(m in cls.__dict__ for m in CHUNK_METHODS)
    findings: List[Finding] = []

    if own_chunk_code and "write_footprint" not in cls.__dict__:
        findings.append(Finding(
            rule="FP001", severity=ERROR, layer=cls.__name__,
            message=(
                "defines its own chunk method(s) "
                f"({', '.join(m for m in CHUNK_METHODS if m in cls.__dict__)}) "
                "but does not declare write_footprint; an inherited "
                "declaration cannot vouch for overridden code"
            ),
            location=_location(cls, cls),
        ))

    # ---- forward ----
    fwd_writes: List[WriteEvent] = []
    fwd_unresolved: List[WriteEvent] = []
    attr_writes: List[WriteEvent] = []
    fwd_func = getattr(cls, "forward_chunk", None)
    analyzed = analyze_method(fwd_func, "forward_chunk") if fwd_func else None
    if analyzed is not None:
        mw, _ = analyzed
        fwd_writes = [w for w in mw.writes if w.kind != "attr"]
        attr_writes += [w for w in mw.writes if w.kind == "attr"]
        fwd_unresolved = mw.unresolved
    inferred_forward, _, fwd_offending = _classify(
        fwd_writes, fwd_unresolved
    )

    # ---- backward ----
    bwd_writes: List[WriteEvent] = []
    bwd_unresolved: List[WriteEvent] = []
    if "backward_loops" in cls.__dict__:
        # Analyze the helper methods the loop bodies dispatch to.
        analyzed = analyze_method(cls.__dict__["backward_loops"],
                                  "backward_loops")
        helper_names: List[str] = []
        if analyzed is not None:
            _, helper_names = analyzed
        if not helper_names:
            bwd_unresolved.append(WriteEvent(
                ("unknown",), False, 0,
                "backward_loops body could not be followed"
            ))
        for name in helper_names:
            helper = getattr(cls, name, None)
            sub = analyze_method(helper, "helper") if helper else None
            if sub is None:
                bwd_unresolved.append(WriteEvent(
                    ("unknown",), False, 0, f"helper {name} unavailable"
                ))
                continue
            mw, _ = sub
            bwd_writes += [w for w in mw.writes if w.kind != "attr"]
            attr_writes += [w for w in mw.writes if w.kind == "attr"]
            bwd_unresolved += mw.unresolved
    else:
        bwd_func = getattr(cls, "backward_chunk", None)
        analyzed = (analyze_method(bwd_func, "backward_chunk")
                    if bwd_func else None)
        if analyzed is not None:
            mw, _ = analyzed
            bwd_writes = [w for w in mw.writes if w.kind != "attr"]
            attr_writes += [w for w in mw.writes if w.kind == "attr"]
            bwd_unresolved = mw.unresolved
    inferred_backward, reduction_indices, bwd_offending = _classify(
        bwd_writes, bwd_unresolved
    )
    # An unbounded direct write to a parameter blob diff is a racy
    # reduction bypass, not merely "unsafe".
    direct_param = [w for w in bwd_offending if w.kind == "param"]

    report = LayerReport(
        cls_name=cls.__name__,
        declared=declared,
        inferred_forward=inferred_forward,
        inferred_backward=inferred_backward,
        inferred_reduction_params=tuple(sorted(reduction_indices)),
        findings=findings,
    )

    decl_forward = declared.forward if declared else SAMPLE_DISJOINT
    decl_backward = declared.backward if declared else SAMPLE_DISJOINT
    scratch = set(declared.scratch) if declared else set()

    # FP005: whole-buffer writes in a layer not declared sequential
    if inferred_forward == UNSAFE and decl_forward != SEQUENTIAL:
        w = fwd_offending[0]
        findings.append(Finding(
            rule="FP005", severity=ERROR, layer=cls.__name__,
            message=(
                f"forward_chunk writes {_root_desc(w.root)} outside the "
                f"chunk bounds ({w.desc}, line {w.lineno}); whole-buffer "
                "writes require forward=SEQUENTIAL"
            ),
        ))
    elif inferred_forward == UNKNOWN and decl_forward != SEQUENTIAL:
        findings.append(Finding(
            rule="FP006", severity=WARNING, layer=cls.__name__,
            message=(
                "forward_chunk contains a write the analyzer cannot "
                "resolve; verify the footprint manually"
            ),
        ))

    # FP002/FP003: backward classification against the declaration
    if decl_backward == SEQUENTIAL:
        pass
    elif direct_param:
        w = direct_param[0]
        findings.append(Finding(
            rule="FP003", severity=ERROR, layer=cls.__name__,
            message=(
                f"backward pass writes parameter blob diff "
                f"{_root_desc(w.root)} directly without chunk bounds "
                f"(line {w.lineno}); cross-sample coefficient gradients "
                "must accumulate into the privatized param_grads buffers"
            ),
        ))
    elif inferred_backward == UNSAFE:
        w = bwd_offending[0]
        findings.append(Finding(
            rule="FP002", severity=ERROR, layer=cls.__name__,
            message=(
                f"backward pass writes {_root_desc(w.root)} outside the "
                f"chunk bounds ({w.desc}, line {w.lineno}) but declares "
                f"backward={decl_backward!r}"
            ),
        ))
    elif inferred_backward == REDUCTION:
        if decl_backward != REDUCTION:
            findings.append(Finding(
                rule="FP002", severity=ERROR, layer=cls.__name__,
                message=(
                    "backward pass accumulates into param_grads (a "
                    "privatized reduction) but declares "
                    f"backward={decl_backward!r}; declare "
                    "backward=REDUCTION with its reduction_params"
                ),
            ))
        else:
            undeclared = reduction_indices - set(
                declared.reduction_params if declared else ()
            )
            if undeclared:
                findings.append(Finding(
                    rule="FP003", severity=ERROR, layer=cls.__name__,
                    message=(
                        f"param_grads indices {sorted(undeclared)} are "
                        "accumulated but missing from the declared "
                        "reduction_params"
                    ),
                ))
    elif inferred_backward == UNKNOWN:
        findings.append(Finding(
            rule="FP006", severity=WARNING, layer=cls.__name__,
            message=(
                "backward pass contains a write the analyzer cannot "
                "resolve; verify the footprint manually"
            ),
        ))

    # FP004: hidden layer state written in the coalesced loop
    if decl_forward != SEQUENTIAL or decl_backward != SEQUENTIAL:
        for w in attr_writes:
            name = w.root[1]
            if name not in scratch:
                findings.append(Finding(
                    rule="FP004", severity=ERROR, layer=cls.__name__,
                    message=(
                        f"chunk code writes undeclared layer state "
                        f"self.{name} (line {w.lineno}); declare it in the "
                        "footprint's scratch tuple (and ensure the writes "
                        "are chunk-disjoint) or move it out of the "
                        "parallel loop"
                    ),
                ))
            elif not w.bounded:
                findings.append(Finding(
                    rule="FP004", severity=ERROR, layer=cls.__name__,
                    message=(
                        f"declared scratch self.{name} is written outside "
                        f"the chunk bounds (line {w.lineno}); concurrent "
                        "chunks would overlap"
                    ),
                ))
    return report


def _root_desc(root: Tuple) -> str:
    kind = root[0]
    if kind == "io":
        return f"{root[1]}[{root[2]}].{root[3]}"
    if kind == "param":
        return f"self.blobs[{root[1]}].{root[2]}"
    if kind == "param_grad":
        return f"param_grads[{root[1]}]"
    if kind == "attr":
        return f"self.{root[1]}"
    return str(root)


def builtin_layer_classes() -> Dict[str, type]:
    """All registered layer classes (importing the built-in package)."""
    import repro.framework.layers  # noqa: F401  (fills the registry)
    from repro.framework.layer import _REGISTRY

    classes: Dict[str, type] = {}
    for cls in _REGISTRY.values():
        classes[cls.__name__] = cls
    return classes


def analyze_classes(classes: Sequence[type]) -> Dict[str, LayerReport]:
    reports: Dict[str, LayerReport] = {}
    for cls in classes:
        reports[cls.__name__] = analyze_layer_class(cls)
    return reports
