"""Static performance-bug lint: the PE0xx half of the performance certifier.

The planner (PL) and the graph compiler (FU) buy speedups; this pass
finds the source-level anti-patterns that silently eat them.  Four
hazards are flagged in **chunk-reachable** code — the methods the thread
team executes per chunk, per iteration, where a stray allocation or a
dtype upcast multiplies by ``space x iterations x threads``:

* **PE001 — dtype-upcast creep**: ``float64`` intermediates
  (``astype(np.float64)``, ``dtype=np.float64``, ``np.float64(...)``)
  double the memory traffic of a pipeline whose cost model and arena are
  sized for ``DTYPE`` (float32).  Deliberate double accumulation (fixed
  summation order backing the bitwise contract) is declared via
  :class:`~repro.framework.layer.PerfDecl`.
* **PE002 — hot-loop allocation**: array-constructing calls
  (``np.zeros``/``np.empty``/``np.stack``/...) inside chunk code are
  allocator churn the per-thread scratch pool
  (:func:`repro.compiler.scratch.scratch_buffer`) exists to eliminate.
* **PE003 — implicit contiguity copy**: ``np.ascontiguousarray``,
  ``.flatten()``, and ``.ravel()`` on a sliced receiver materialize a
  copy per call; deliberate ones (BLAS needs contiguous operands) are
  declared.
* **PE004 — iteration-space-sized Python loop**: a ``range()`` loop
  whose bounds are tainted by the chunk bounds ``lo``/``hi`` runs the
  interpreter once per coalesced iteration.  Sometimes that *is* the
  design (one BLAS call per civ, priced as ``segments`` dispatch by the
  cost model) — then it is declared, with the why in the note.

Chunk-reachable means: the chunk protocol methods themselves
(``forward_chunk``/``backward_chunk`` and ``_forward*``/``_backward*``
loop bodies) plus every own method transitively reachable from them
through ``self.<method>()`` calls (LRN's ``_window_sum`` helper).  The
sequential prologue/epilogue (``reshape``, ``forward_finalize``,
``backward_loops``) runs once per pass, not per chunk, and is exempt.

Declarations are verified, not trusted: **PE005** flags drift — an
allowance naming a method the class does not define, a method that is
not chunk-reachable, or an allowance whose construct no longer exists in
the code.  Inherited declarations never vouch for a subclass's own
methods (mirrors FP001/DC006).

A small source scan also covers ``repro.core`` and ``repro.compiler``:
the runtime and compiler hot paths must stay float64-free (PE001) —
there is no declaration mechanism there because there is no legitimate
use.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.footprint import _parse_function
from repro.analysis.report import ERROR, WARNING, Finding

#: numpy array-constructing calls that allocate a fresh buffer per call.
_ALLOC_CONSTRUCTORS = {
    "zeros", "empty", "ones", "full",
    "zeros_like", "empty_like", "ones_like", "full_like",
    "arange", "linspace", "concatenate", "stack", "vstack", "hstack",
    "column_stack", "tile", "meshgrid",
}

#: Methods whose own def makes a layer "chunk code" (the roots of the
#: chunk-reachability closure) — same convention as the DC004 lint.
_CHUNK_METHOD_PREFIXES = ("_backward", "_forward")
_CHUNK_METHOD_NAMES = {"forward_chunk", "backward_chunk"}

#: PerfDecl category -> (rule, severity) of the finding it silences.
_CATEGORY_RULES = {
    "float64": ("PE001", ERROR),
    "allocs": ("PE002", ERROR),
    "copies": ("PE003", WARNING),
    "loops": ("PE004", WARNING),
}


def _dotted(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` attribute chain as a name tuple, or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _terminal_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_float64_ref(node: ast.AST) -> bool:
    """Is this expression a reference to the float64 dtype?"""
    chain = _dotted(node)
    if chain is not None:
        return chain[-1] == "float64"
    return isinstance(node, ast.Name) and node.id == "float64"


def _float64_sites(tree: ast.AST) -> List[Tuple[int, str]]:
    """(lineno, description) of every float64 construct under ``tree``."""
    sites: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _terminal_name(node.func)
        if name == "astype" and node.args and _is_float64_ref(node.args[0]):
            sites.append((node.lineno, "astype(np.float64)"))
        elif name == "float64":
            sites.append((node.lineno, "np.float64(...)"))
        else:
            for kw in node.keywords:
                if kw.arg == "dtype" and _is_float64_ref(kw.value):
                    sites.append((node.lineno, f"{name}(dtype=np.float64)"))
    return sites


def _alloc_sites(tree: ast.AST) -> List[Tuple[int, str]]:
    """(lineno, constructor) of every fresh-array allocation."""
    sites: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _dotted(node.func)
        if (chain is not None and len(chain) >= 2
                and chain[0] in ("np", "numpy")
                and chain[-1] in _ALLOC_CONSTRUCTORS):
            sites.append((node.lineno, f"np.{chain[-1]}"))
    return sites


def _copy_sites(tree: ast.AST) -> List[Tuple[int, str]]:
    """(lineno, description) of implicit/explicit contiguity copies."""
    sites: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _terminal_name(node.func)
        if name == "ascontiguousarray":
            sites.append((node.lineno, "np.ascontiguousarray"))
        elif isinstance(node.func, ast.Attribute):
            if name == "flatten":
                sites.append((node.lineno, ".flatten() (always copies)"))
            elif name == "ravel" and isinstance(node.func.value,
                                                ast.Subscript):
                sites.append((node.lineno,
                              ".ravel() on a sliced (strided) receiver"))
    return sites


def _mentions_tainted(node: ast.AST, tainted: Set[str]) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in tainted:
            return True
    return False


def _loop_sites(tree: ast.FunctionDef) -> List[Tuple[int, str]]:
    """(lineno, description) of iteration-space-sized Python loops.

    Taint analysis: the chunk bounds ``lo``/``hi`` seed the tainted set;
    any name assigned from an expression mentioning a tainted name
    becomes tainted (two passes reach a fixpoint for straight-line
    code).  A ``for`` over ``range(...)`` whose arguments mention a
    tainted name iterates O(chunk size) times — geometry-sized loops
    (``range(self.kernel_h)``) stay clean.
    """
    tainted: Set[str] = set()
    arg_names = {a.arg for a in tree.args.args}
    for seed in ("lo", "hi"):
        if seed in arg_names:
            tainted.add(seed)
    if not tainted:
        return []
    for _ in range(2):
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                if _mentions_tainted(node.value, tainted):
                    for target in node.targets:
                        for sub in ast.walk(target):
                            if isinstance(sub, ast.Name):
                                tainted.add(sub.id)
            elif isinstance(node, ast.AugAssign):
                if (_mentions_tainted(node.value, tainted)
                        and isinstance(node.target, ast.Name)):
                    tainted.add(node.target.id)
    sites: List[Tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.For):
            continue
        call = node.iter
        if (isinstance(call, ast.Call)
                and _terminal_name(call.func) == "range"
                and any(_mentions_tainted(a, tainted) for a in call.args)):
            args = ", ".join(ast.unparse(a) for a in call.args)
            sites.append((node.lineno, f"for ... in range({args})"))
    return sites


_SITE_SCANNERS = {
    "float64": _float64_sites,
    "allocs": _alloc_sites,
    "copies": _copy_sites,
    "loops": _loop_sites,
}

_HAZARD_HINTS = {
    "float64": ("float64 intermediate doubles memory traffic vs DTYPE; "
                "declare deliberate double accumulation via PerfDecl"),
    "allocs": ("fresh allocation per chunk call is allocator churn; "
               "route through repro.compiler.scratch.scratch_buffer or "
               "declare why pooling does not apply"),
    "copies": ("materializes a copy per call; declare it if a BLAS call "
               "requires the contiguous operand"),
    "loops": ("Python-level loop over an iteration-space-sized range; "
              "declare it if per-civ BLAS dispatch is the design"),
}


# ---------------------------------------------------------------------------
# chunk reachability
# ---------------------------------------------------------------------------
def _own_method_trees(cls) -> Dict[str, ast.FunctionDef]:
    """Parsed ASTs of every function defined in the class's own __dict__."""
    trees: Dict[str, ast.FunctionDef] = {}
    for name, obj in cls.__dict__.items():
        if not callable(obj) or isinstance(obj, type):
            continue
        func = getattr(obj, "__func__", obj)  # unwrap staticmethod et al.
        node = _parse_function(func)
        if node is not None:
            trees[name] = node
    return trees


def _is_chunk_method(name: str) -> bool:
    return (name in _CHUNK_METHOD_NAMES
            or name.startswith(_CHUNK_METHOD_PREFIXES))


def _self_calls(tree: ast.FunctionDef) -> Set[str]:
    """Names of own methods invoked as ``self.<name>(...)``."""
    called: Set[str] = set()
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"):
            called.add(node.func.attr)
    return called


def chunk_reachable_methods(trees: Dict[str, ast.FunctionDef]) -> Set[str]:
    """Chunk roots plus own methods transitively self-called from them."""
    reachable = {name for name in trees if _is_chunk_method(name)}
    frontier = list(reachable)
    while frontier:
        method = frontier.pop()
        for callee in _self_calls(trees[method]):
            if callee in trees and callee not in reachable:
                reachable.add(callee)
                frontier.append(callee)
    return reachable


# ---------------------------------------------------------------------------
# layer-class lint (PE001-PE005)
# ---------------------------------------------------------------------------
def analyze_layer_perf(cls) -> List[Finding]:
    """PE001-PE005 over one layer class."""
    findings: List[Finding] = []
    trees = _own_method_trees(cls)
    cls_name = cls.__name__
    reachable = chunk_reachable_methods(trees)
    decl = cls.__dict__.get("perf_decl")

    used: Dict[str, Set[str]] = {cat: set() for cat in _SITE_SCANNERS}
    for method in sorted(reachable):
        tree = trees[method]
        for cat, scanner in _SITE_SCANNERS.items():
            sites = scanner(tree)
            if not sites:
                continue
            allowed = getattr(decl, cat, ()) if decl is not None else ()
            if method in allowed:
                used[cat].add(method)
                continue
            rule, severity = _CATEGORY_RULES[cat]
            lineno, what = sites[0]
            extra = (f" (+{len(sites) - 1} more site(s))"
                     if len(sites) > 1 else "")
            findings.append(Finding(
                rule=rule, severity=severity, layer=cls_name,
                message=(
                    f"{what} in chunk-reachable method {method} (line "
                    f"{lineno}){extra}: {_HAZARD_HINTS[cat]}"
                ),
            ))

    if decl is not None:
        for cat in _SITE_SCANNERS:
            for method in getattr(decl, cat):
                if method not in trees:
                    findings.append(Finding(
                        rule="PE005", severity=ERROR, layer=cls_name,
                        message=(
                            f"perf_decl {cat} names {method!r} but the "
                            "class defines no such method of its own; "
                            "declarations never vouch for inherited code"
                        ),
                    ))
                elif method not in reachable:
                    findings.append(Finding(
                        rule="PE005", severity=ERROR, layer=cls_name,
                        message=(
                            f"perf_decl {cat} names {method!r}, which is "
                            "not chunk-reachable; the allowance is dead "
                            "weight — drop it"
                        ),
                    ))
                elif method not in used[cat]:
                    findings.append(Finding(
                        rule="PE005", severity=ERROR, layer=cls_name,
                        message=(
                            f"perf_decl grants {cat} in {method!r} but the "
                            "method no longer contains that construct; "
                            "stale allowance — drop it"
                        ),
                    ))
    return findings


def analyze_layer_classes_perf(
    classes: Optional[Sequence[type]] = None,
) -> List[Finding]:
    """PE001-PE005 over every registered (or given) layer class."""
    if classes is None:
        from repro.analysis.footprint import builtin_layer_classes

        classes = list(builtin_layer_classes().values())
    findings: List[Finding] = []
    seen = set()
    for cls in classes:
        if cls in seen:
            continue
        seen.add(cls)
        findings.extend(analyze_layer_perf(cls))
    return findings


# ---------------------------------------------------------------------------
# runtime/compiler source scan (PE001 only — no declaration mechanism)
# ---------------------------------------------------------------------------
def default_scan_roots() -> List[Path]:
    """Packages whose hot paths must stay float64-free."""
    import repro.compiler
    import repro.core

    return [Path(pkg.__file__).parent
            for pkg in (repro.core, repro.compiler)]


def lint_sources_perf(roots: Optional[Iterable[Path]] = None) -> List[Finding]:
    """PE001 over every ``.py`` file under ``roots``."""
    findings: List[Finding] = []
    for root in (roots if roots is not None else default_scan_roots()):
        root = Path(root)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            where = f"<{path.stem}>"
            try:
                tree = ast.parse(path.read_text())
            except (OSError, SyntaxError) as exc:
                findings.append(Finding(
                    rule="PE001", severity=ERROR, layer=where,
                    message=f"cannot parse {path}: {exc}",
                ))
                continue
            for lineno, what in _float64_sites(tree):
                findings.append(Finding(
                    rule="PE001", severity=ERROR, layer=where,
                    message=(
                        f"{what}: runtime/compiler code computes in DTYPE "
                        "(float32); float64 here doubles the bandwidth the "
                        "cost model and arena are sized for"
                    ),
                    location=f"{path}:{lineno}",
                ))
    return findings


def lint_perf() -> List[Finding]:
    """The full static PE0xx pass: layer-class lint + source scan."""
    return analyze_layer_classes_perf() + lint_sources_perf()
